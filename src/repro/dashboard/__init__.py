"""Results dashboard: per-commit BENCH history, noise-band gating, HTML.

The loop the ROADMAP asked for ("Results dashboard and hard
perf-regression gating") in three pieces:

* :mod:`repro.dashboard.history` — an append-only, journaled
  ``benchmarks/history.jsonl`` store: one checksummed line per
  ``repro bench`` session, keyed by git SHA, with a loader that
  tolerates torn tails and corrupt lines the way the run-store journal
  does.  This is the commit-over-commit perf trail.
* :mod:`repro.dashboard.gate` — a noise-band regression model over that
  history (median ± k·MAD of recent same-machine entries) that replaces
  the single-baseline percent check once enough history exists, so CI
  fails only on changes outside the machine's own noise.
* :mod:`repro.dashboard.render` — a zero-dependency static HTML
  renderer (``repro dashboard``): throughput trends per engine, figure
  diffs vs the paper's targets (:mod:`repro.dashboard.figures`), cache
  and failure trends, and a stall-attribution flame sourced from the
  observe bus.
"""

from repro.dashboard.figures import (
    PAPER_TARGETS,
    FigureTarget,
    figure_diffs,
    summarize_figures,
)
from repro.dashboard.gate import (
    DEFAULT_GATE_K,
    DEFAULT_MIN_ENTRIES,
    DEFAULT_WINDOW,
    GateResult,
    NoiseBand,
    evaluate_gate,
    noise_band,
)
from repro.dashboard.history import (
    HISTORY_SCHEMA_VERSION,
    HistoryEntry,
    append_history,
    load_history,
)
from repro.dashboard.render import render_dashboard, write_dashboard

__all__ = [
    "DEFAULT_GATE_K",
    "DEFAULT_MIN_ENTRIES",
    "DEFAULT_WINDOW",
    "FigureTarget",
    "GateResult",
    "HISTORY_SCHEMA_VERSION",
    "HistoryEntry",
    "NoiseBand",
    "PAPER_TARGETS",
    "append_history",
    "evaluate_gate",
    "figure_diffs",
    "load_history",
    "noise_band",
    "render_dashboard",
    "summarize_figures",
    "write_dashboard",
]
