"""Figure headline metrics and the paper's target values.

``repro bench`` already builds every figure's rows; this module boils
each figure down to the scalar(s) the paper reports (mean cycle
reduction, mean slowdown on the half file, …) so the perf artifact —
and therefore the per-commit history — carries reproduction quality
alongside simulator speed.  ``PAPER_TARGETS`` pins the numbers the
RegMutex paper states for Figures 7–13 (the same values the benchmark
suite's docstrings assert neighbourhoods around), and the dashboard
renders measured-minus-paper diffs from the two.

Metrics are fractions (0.13 == +13 %).  A figure run on an app subset
still summarizes — the dashboard labels every diff with the app count
so a 1-app CI smoke is never mistaken for the full 8-app average.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FigureTarget:
    """One paper-reported headline number for a figure."""

    figure: str
    metric: str
    paper: float
    description: str


# The paper's stated averages (§IV): the values the benchmark suite
# prints "(paper +X%)" against.  Figures without a stated scalar
# (fig10/fig11 sweeps, fig13 per-app rates) are summarized but not
# diffed against a target.
PAPER_TARGETS: tuple[FigureTarget, ...] = (
    FigureTarget("fig7", "mean_cycle_reduction", 0.13,
                 "mean cycle reduction, RegMutex on baseline GTX480"),
    FigureTarget("fig8", "mean_increase_bare", 0.23,
                 "mean cycle increase, half RF without RegMutex"),
    FigureTarget("fig8", "mean_increase_regmutex", 0.09,
                 "mean cycle increase, half RF with RegMutex"),
    FigureTarget("fig9a", "mean_reduction_owf", 0.019,
                 "mean reduction, OWF on baseline arch"),
    FigureTarget("fig9a", "mean_reduction_rfv", 0.162,
                 "mean reduction, RFV on baseline arch"),
    FigureTarget("fig9a", "mean_reduction_regmutex", 0.128,
                 "mean reduction, RegMutex on baseline arch"),
    FigureTarget("fig9b", "mean_increase_none", 0.229,
                 "mean increase on half RF, no technique"),
    FigureTarget("fig9b", "mean_increase_owf", 0.206,
                 "mean increase on half RF, OWF"),
    FigureTarget("fig9b", "mean_increase_rfv", 0.059,
                 "mean increase on half RF, RFV"),
    FigureTarget("fig9b", "mean_increase_regmutex", 0.108,
                 "mean increase on half RF, RegMutex"),
    FigureTarget("fig12a", "mean_reduction_paired", 0.08,
                 "mean reduction, paired-warps on baseline arch"),
    FigureTarget("fig12a", "mean_reduction_default", 0.12,
                 "mean reduction, default RegMutex on baseline arch"),
    FigureTarget("fig12b", "mean_increase_paired", 0.17,
                 "mean increase on half RF, paired-warps"),
    FigureTarget("fig12b", "mean_increase_default", 0.09,
                 "mean increase on half RF, default RegMutex"),
)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def summarize_figures(rows_by_name: dict[str, list]) -> dict[str, dict[str, float]]:
    """Headline metric(s) per figure from its built rows.

    Rows are the dataclasses :mod:`repro.harness.experiments` builds;
    empty row lists and unknown figures are skipped, so a partial
    ``--figures`` bench still produces a well-formed summary.  Every
    figure also records ``apps``, the row/app count the means cover.
    """
    summary: dict[str, dict[str, float]] = {}
    for name, rows in sorted(rows_by_name.items()):
        if not rows:
            continue
        metrics: dict[str, float] = {}
        if name == "fig7":
            metrics["mean_cycle_reduction"] = _mean(
                [r.cycle_reduction for r in rows])
            metrics["mean_acquire_success"] = _mean(
                [r.acquire_success_rate for r in rows])
        elif name == "fig8":
            metrics["mean_increase_bare"] = _mean(
                [r.increase_no_technique for r in rows])
            metrics["mean_increase_regmutex"] = _mean(
                [r.increase_regmutex for r in rows])
        elif name == "fig9a":
            metrics["mean_reduction_owf"] = _mean(
                [r.reduction_owf for r in rows])
            metrics["mean_reduction_rfv"] = _mean(
                [r.reduction_rfv for r in rows])
            metrics["mean_reduction_regmutex"] = _mean(
                [r.reduction_regmutex for r in rows])
        elif name == "fig9b":
            metrics["mean_increase_none"] = _mean(
                [r.increase_none for r in rows])
            metrics["mean_increase_owf"] = _mean(
                [r.increase_owf for r in rows])
            metrics["mean_increase_rfv"] = _mean(
                [r.increase_rfv for r in rows])
            metrics["mean_increase_regmutex"] = _mean(
                [r.increase_regmutex for r in rows])
        elif name == "fig10":
            picks = [r for r in rows if r.is_heuristic_pick]
            if picks:
                metrics["mean_reduction_heuristic"] = _mean(
                    [r.cycle_reduction for r in picks])
        elif name == "fig11":
            picks = [r for r in rows if r.is_heuristic_pick]
            if picks:
                metrics["mean_acquire_success_heuristic"] = _mean(
                    [r.acquire_success_rate for r in picks])
        elif name in ("fig12a", "fig12b"):
            kind = "reduction" if name == "fig12a" else "increase"
            metrics[f"mean_{kind}_paired"] = _mean(
                [r.metric for r in rows])
            metrics[f"mean_{kind}_default"] = _mean(
                [r.metric_default for r in rows])
        elif name == "fig13":
            metrics["mean_success_default"] = _mean(
                [r.success_default for r in rows])
            metrics["mean_success_paired"] = _mean(
                [r.success_paired for r in rows])
        else:
            continue
        apps = {getattr(r, "app", None) for r in rows}
        apps.discard(None)
        metrics["apps"] = float(len(apps) or len(rows))
        summary[name] = {k: round(v, 6) for k, v in metrics.items()}
    return summary


def figure_diffs(
    figures: dict[str, dict[str, float]],
) -> list[tuple[FigureTarget, float, float]]:
    """(target, measured, measured - paper) for every matched target."""
    diffs = []
    for target in PAPER_TARGETS:
        metrics = figures.get(target.figure)
        if not metrics or target.metric not in metrics:
            continue
        measured = metrics[target.metric]
        diffs.append((target, measured, measured - target.paper))
    return diffs
