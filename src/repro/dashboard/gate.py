"""Noise-band perf gate: fail CI only outside the machine's own noise.

The fixed ``--fail-threshold 50`` gate asks one committed artifact to
stand in for every machine's notion of "normal", which forces the band
absurdly wide.  With per-commit history the band can come from the
data: take the last ``window`` same-machine entries for the series
being gated, model normal as ``median ± k·MAD`` (median absolute
deviation — robust, so one regressed commit in the history cannot drag
the center), and fail the run only when its throughput falls below the
band floor.  Faster-than-band is never a failure.

Until a machine has ``min_entries`` of history the gate is
*inconclusive* and callers fall back to the fixed-threshold check — the
gate may never fail a run for lacking data (the same principle as
:func:`repro.observe.perf.compare_perf_artifacts`'s inconclusive
verdict).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median

from repro.dashboard.history import HistoryEntry
from repro.observe.perf import (
    STATUS_INCONCLUSIVE,
    STATUS_OK,
    STATUS_REGRESSED,
)

DEFAULT_WINDOW = 20
DEFAULT_GATE_K = 4.0
DEFAULT_MIN_ENTRIES = 5

# MAD collapses to ~0 when history is eerily stable (or repeated), and
# a zero-width band would fail the next run for existing.  Never let
# the band floor sit closer than this fraction below the center.
MIN_BAND_FRACTION = 0.10


@dataclass(frozen=True)
class NoiseBand:
    """``median ± k·MAD`` over one machine's recent throughput numbers."""

    center: float
    mad: float
    lo: float
    hi: float
    n: int
    k: float

    def describe(self) -> str:
        return (
            f"band [{self.lo:,.0f}, {self.hi:,.0f}] cycles/sec "
            f"(median {self.center:,.0f} ± {self.k:g}·MAD {self.mad:,.0f}, "
            f"n={self.n})"
        )


def noise_band(values: list[float], k: float = DEFAULT_GATE_K) -> NoiseBand:
    """Fit the band to a non-empty sample of throughput numbers."""
    if not values:
        raise ValueError("noise_band needs at least one value")
    center = median(values)
    mad = median(abs(v - center) for v in values)
    half_width = max(k * mad, MIN_BAND_FRACTION * center)
    return NoiseBand(
        center=center,
        mad=mad,
        lo=center - half_width,
        hi=center + half_width,
        n=len(values),
        k=k,
    )


@dataclass(frozen=True)
class GateResult:
    """The gate's verdict for one bench session."""

    status: str
    message: str
    band: NoiseBand | None = None
    current: float | None = None

    @property
    def regressed(self) -> bool:
        return self.status == STATUS_REGRESSED

    @property
    def inconclusive(self) -> bool:
        return self.status == STATUS_INCONCLUSIVE


def evaluate_gate(
    current_cps: float | None,
    history: list[HistoryEntry],
    *,
    label: str | None = None,
    machine: str | None = None,
    window: int = DEFAULT_WINDOW,
    k: float = DEFAULT_GATE_K,
    min_entries: int = DEFAULT_MIN_ENTRIES,
) -> GateResult:
    """Gate one session's throughput against its own history.

    Only entries from the same ``machine`` (and, when given, the same
    ``label``) feed the band — cross-machine throughput comparisons are
    exactly the noise this model exists to remove.  The caller passes
    history *excluding* the session under test.
    """
    relevant = [
        e for e in history
        if e.cycles_per_sec is not None
        and (machine is None or e.machine == machine)
        and (label is None or e.label == label)
    ]
    relevant = relevant[-window:]
    if len(relevant) < min_entries:
        return GateResult(
            status=STATUS_INCONCLUSIVE,
            message=(
                f"noise-band gate inconclusive: {len(relevant)} usable "
                f"history entries (need {min_entries}) for "
                f"machine={machine!r} label={label!r}"
            ),
            current=current_cps,
        )
    band = noise_band([e.cycles_per_sec for e in relevant], k=k)
    if current_cps is None:
        return GateResult(
            status=STATUS_INCONCLUSIVE,
            message=(
                "noise-band gate inconclusive: session has no "
                "cycles_per_sec (all jobs cached?)"
            ),
            band=band,
        )
    if current_cps < band.lo:
        return GateResult(
            status=STATUS_REGRESSED,
            message=(
                f"throughput {current_cps:,.0f} cycles/sec fell below the "
                f"noise band: {band.describe()}"
            ),
            band=band,
            current=current_cps,
        )
    return GateResult(
        status=STATUS_OK,
        message=(
            f"throughput {current_cps:,.0f} cycles/sec within "
            f"{band.describe()}"
        ),
        band=band,
        current=current_cps,
    )
