"""Per-commit BENCH history: an append-only journal of bench sessions.

Every ``repro bench --history PATH`` appends one line to a JSONL
journal — the full schema-1 perf artifact plus the provenance CI knows
and the artifact doesn't: the git SHA, a timestamp, the executing
machine, and an optional engine label.  The file is the substrate for
both the noise-band gate (:mod:`repro.dashboard.gate`) and the trend
charts (:mod:`repro.dashboard.render`).

Durability follows the run-store journal's discipline
(:mod:`repro.harness.runner`): one fsync'd JSON line per entry, a
per-line checksum over the payload, and a loader that leaves a torn
final line (a writer killed mid-append) unconsumed and skips corrupt
complete lines instead of refusing the file.  History is *advisory
infrastructure* — a half-written line must never take the gate or the
dashboard down with it.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass

HISTORY_SCHEMA_VERSION = 1


def _entry_checksum(payload: dict) -> str:
    """Stable content hash of one entry's payload (sans the checksum)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class HistoryEntry:
    """One bench session as recorded in the history journal."""

    sha: str
    timestamp: float
    label: str
    machine: str
    engine: str | None
    artifact: dict

    # -- derived views the gate and renderer read ---------------------------
    @property
    def cycles_per_sec(self) -> float | None:
        value = self.artifact.get("totals", {}).get("cycles_per_sec")
        return float(value) if value is not None else None

    @property
    def cache_hit_rate(self) -> float:
        return float(self.artifact.get("cache", {}).get("hit_rate", 0.0))

    @property
    def failures(self) -> int:
        return int(self.artifact.get("totals", {}).get("failures", 0))

    @property
    def failure_kinds(self) -> dict[str, int]:
        return dict(self.artifact.get("failure_kinds", {}))

    @property
    def figures(self) -> dict[str, dict[str, float]]:
        return dict(self.artifact.get("figures", {}))

    @property
    def series(self) -> str:
        """The trend line this entry belongs to (engine wins over label)."""
        return self.engine or self.label

    def to_payload(self) -> dict:
        return {
            "schema": HISTORY_SCHEMA_VERSION,
            "sha": self.sha,
            "timestamp": round(self.timestamp, 3),
            "label": self.label,
            "machine": self.machine,
            "engine": self.engine,
            "artifact": self.artifact,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "HistoryEntry":
        if payload.get("schema") != HISTORY_SCHEMA_VERSION:
            raise ValueError(
                f"history schema {payload.get('schema')!r} != "
                f"{HISTORY_SCHEMA_VERSION}"
            )
        artifact = payload["artifact"]
        if not isinstance(artifact, dict) or "totals" not in artifact:
            raise ValueError("history entry has no artifact totals")
        return cls(
            sha=str(payload["sha"]),
            timestamp=float(payload["timestamp"]),
            label=str(payload.get("label", artifact.get("label", "run"))),
            machine=str(payload.get("machine", "")),
            engine=payload.get("engine"),
            artifact=artifact,
        )


def default_machine() -> str:
    """The machine label entries get unless the caller overrides it.

    Noise bands only make sense within one machine's numbers, so CI
    should pass an explicit stable label (runner hostnames churn);
    ``platform.node()`` is the honest local default.
    """
    return platform.node() or "unknown"


def append_history(
    path: str,
    artifact: dict,
    sha: str,
    timestamp: float | None = None,
    machine: str | None = None,
    engine: str | None = None,
) -> HistoryEntry:
    """Durably append one bench session to the history journal.

    ``sha`` is the commit the session measured (CI passes
    ``$GITHUB_SHA``); ``timestamp`` defaults to now.  The line is
    checksummed and fsync'd so a crash mid-append leaves at worst a
    torn tail the loader already ignores.
    """
    entry = HistoryEntry(
        sha=sha,
        timestamp=time.time() if timestamp is None else float(timestamp),
        label=str(artifact.get("label", "run")),
        machine=default_machine() if machine is None else machine,
        engine=engine,
        artifact=artifact,
    )
    payload = entry.to_payload()
    line = json.dumps(
        dict(payload, checksum=_entry_checksum(payload)),
        sort_keys=True, separators=(",", ":"),
    ) + "\n"
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(line)
        fh.flush()
        os.fsync(fh.fileno())
    return entry


def load_history(path: str) -> list[HistoryEntry]:
    """Read the journal, oldest first, surviving torn and corrupt lines.

    A final line without a terminating newline is a writer killed
    mid-append: it is left unconsumed (the next append resolves it).
    Complete lines that fail to parse, fail their checksum, or carry an
    unknown schema are skipped — one bad line must not cost the trail.
    """
    entries: list[HistoryEntry] = []
    try:
        with open(path) as fh:
            for line in fh:
                if not line.endswith("\n"):
                    break  # torn tail from an interrupted append
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    payload = json.loads(stripped)
                    checksum = payload.pop("checksum", None)
                    if checksum != _entry_checksum(payload):
                        raise ValueError("checksum mismatch")
                    entries.append(HistoryEntry.from_payload(payload))
                except (KeyError, TypeError, ValueError):
                    continue  # corrupt line: skipped, never fatal
    except OSError:
        return []
    return entries
