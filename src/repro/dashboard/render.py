"""Zero-dependency static HTML renderer for the results dashboard.

``repro dashboard`` feeds this module the committed BENCH artifacts,
the per-commit history journal, and (optionally) one observed profile
run, and gets back a single self-contained HTML file: no scripts, no
external assets, inline SVG charts, a table view per chart, and a
light/dark role sheet so the file reads the same in CI artifact
viewers and local browsers.

Charts follow a small fixed grammar: categorical series take palette
slots in a fixed order (never cycled), lines are 2px with ring-wrapped
end markers, bars cap at 24px with rounded data-ends and 2px surface
gaps, grids are hairline and recessive, text never wears a series
color, and every figure-vs-paper diff is a diverging bar around a gray
zero line.  Rendering is deterministic for a given input (the caller
passes ``generated_at``), which is what lets the golden-file test pin
the output byte-for-byte.
"""

from __future__ import annotations

import html
import os

from repro.dashboard.figures import figure_diffs
from repro.dashboard.history import HistoryEntry

# Categorical palette slots (light, dark) — assigned to series in fixed
# order, never cycled; past 8 series fold into the table view.
_SERIES = (
    ("#2a78d6", "#3987e5"),   # blue
    ("#eb6834", "#d95926"),   # orange
    ("#1baf7a", "#199e70"),   # aqua
    ("#eda100", "#c98500"),   # yellow
    ("#e87ba4", "#d55181"),   # magenta
    ("#008300", "#008300"),   # green
    ("#4a3aa7", "#9085e9"),   # violet
    ("#e34948", "#e66767"),   # red
)
# Diverging pair for the paper-target diffs (polarity, not judgement):
# blue = above the paper's value, red = below.
_DIVERGE_POS = ("#2a78d6", "#3987e5")
_DIVERGE_NEG = ("#e34948", "#e66767")

_PLOT_W, _PLOT_H = 640, 180
_PAD_L, _PAD_R, _PAD_T, _PAD_B = 64, 96, 12, 28


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: float | int | None) -> str:
    if value is None:
        return "—"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.1f}"
    return f"{int(value):,}"


def _pp(fraction: float) -> str:
    """A fraction as signed percentage points (+1.3 pp)."""
    return f"{fraction * 100:+.1f} pp"


def _nice_ticks(hi: float, count: int = 4) -> list[float]:
    """Clean round tick values from 0 up to at least ``hi``."""
    if hi <= 0:
        return [0.0, 1.0]
    raw = hi / count
    magnitude = 10 ** max(0, len(str(int(raw))) - 1)
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if step * count >= hi:
            break
    ticks = [step * i for i in range(count + 1)]
    while ticks[-1] < hi:
        ticks.append(ticks[-1] + step)
    return ticks


def _series_var(index: int) -> str:
    return f"var(--series-{index + 1})"


def _svg_open(height: int) -> str:
    width = _PLOT_W + _PAD_L + _PAD_R
    return (
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'role="img" xmlns="http://www.w3.org/2000/svg">'
    )


def _grid_and_axis(ticks: list[float], y_of, y_fmt) -> list[str]:
    parts = []
    for tick in ticks:
        y = y_of(tick)
        parts.append(
            f'<line x1="{_PAD_L}" y1="{y:.1f}" x2="{_PAD_L + _PLOT_W}" '
            f'y2="{y:.1f}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_PAD_L - 8}" y="{y + 4:.1f}" text-anchor="end" '
            f'class="tick">{_esc(y_fmt(tick))}</text>'
        )
    parts.append(
        f'<line x1="{_PAD_L}" y1="{y_of(ticks[0]):.1f}" '
        f'x2="{_PAD_L + _PLOT_W}" y2="{y_of(ticks[0]):.1f}" '
        f'stroke="var(--axis)" stroke-width="1"/>'
    )
    return parts


def _legend(names: list[str]) -> str:
    """Legend row — present whenever two or more series share a plot."""
    if len(names) < 2:
        return ""
    keys = "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:{_series_var(i)}"></span>{_esc(name)}</span>'
        for i, name in enumerate(names)
    )
    return f'<div class="legend">{keys}</div>'


def _details_table(caption: str, head: list[str], rows: list[list[str]]) -> str:
    head_html = "".join(f"<th>{_esc(h)}</th>" for h in head)
    body_html = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return (
        f'<details><summary>{_esc(caption)}</summary>'
        f'<table><thead><tr>{head_html}</tr></thead>'
        f'<tbody>{body_html}</tbody></table></details>'
    )


def _section(title: str, subtitle: str, body: str) -> str:
    sub = f'<p class="sub">{_esc(subtitle)}</p>' if subtitle else ""
    return (
        f'<section><h2>{_esc(title)}</h2>{sub}{body}</section>'
    )


# ---------------------------------------------------------------------------
# Line chart (trends over history entries)
# ---------------------------------------------------------------------------

def _line_chart(
    series: list[tuple[str, list[tuple[str, float]]]],
    y_fmt,
) -> str:
    """Multi-series line chart; x is the shared ordered category axis.

    ``series`` maps name -> [(x label, y value)].  Series beyond the
    eight palette slots are dropped from the plot (the table view keeps
    them); x labels are short SHAs.
    """
    series = series[:len(_SERIES)]
    xs: list[str] = []
    for _, points in series:
        for x_label, _ in points:
            if x_label not in xs:
                xs.append(x_label)
    peak = max((y for _, pts in series for _, y in pts), default=0.0)
    ticks = _nice_ticks(peak)
    top = ticks[-1]

    def y_of(v: float) -> float:
        return _PAD_T + _PLOT_H * (1.0 - v / top)

    def x_of(i: int) -> float:
        if len(xs) == 1:
            return _PAD_L + _PLOT_W / 2.0
        return _PAD_L + _PLOT_W * i / (len(xs) - 1)

    height = _PAD_T + _PLOT_H + _PAD_B
    parts = [_svg_open(height)]
    parts += _grid_and_axis(ticks, y_of, y_fmt)
    stride = max(1, len(xs) // 8)
    for i, x_label in enumerate(xs):
        if i % stride and i != len(xs) - 1:
            continue
        parts.append(
            f'<text x="{x_of(i):.1f}" y="{height - 8}" '
            f'text-anchor="middle" class="tick">{_esc(x_label)}</text>'
        )
    for s_index, (name, points) in enumerate(series):
        color = _series_var(s_index)
        coords = [
            (x_of(xs.index(x_label)), y_of(y)) for x_label, y in points
        ]
        if len(coords) > 1:
            path = " ".join(
                f"{'M' if i == 0 else 'L'}{x:.1f} {y:.1f}"
                for i, (x, y) in enumerate(coords)
            )
            parts.append(
                f'<path d="{path}" fill="none" stroke="{color}" '
                f'stroke-width="2" stroke-linejoin="round" '
                f'stroke-linecap="round"/>'
            )
        for (x, y), (x_label, value) in zip(coords, points):
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="{color}" '
                f'stroke="var(--surface-1)" stroke-width="2">'
                f'<title>{_esc(name)} @ {_esc(x_label)}: '
                f'{_esc(y_fmt(value))}</title></circle>'
            )
        end_x, end_y = coords[-1]
        parts.append(
            f'<text x="{end_x + 10:.1f}" y="{end_y + 4:.1f}" '
            f'class="endlabel">{_esc(y_fmt(points[-1][1]))}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _throughput_trend(history: list[HistoryEntry]) -> str:
    groups: dict[str, list[HistoryEntry]] = {}
    for entry in history:
        if entry.cycles_per_sec is not None:
            groups.setdefault(entry.series, []).append(entry)
    if not groups:
        return ""
    names = sorted(groups)
    series = [
        (name, [(e.sha[:7], e.cycles_per_sec) for e in groups[name]])
        for name in names
    ]
    rows = [
        [e.sha[:7], name, e.machine, f"{e.cycles_per_sec:,.0f}"]
        for name in names for e in groups[name]
    ]
    body = (
        _legend(names)
        + _line_chart(series, y_fmt=_fmt)
        + _details_table("table view — throughput per commit",
                         ["commit", "series", "machine", "cycles/sec"], rows)
    )
    return _section(
        "Simulator throughput over commits",
        "totals.cycles_per_sec per bench session, one line per "
        "engine/label; computed jobs only (cached cycles never count).",
        body,
    )


def _cache_trend(history: list[HistoryEntry]) -> str:
    points = [(e.sha[:7], e.cache_hit_rate * 100.0) for e in history]
    if not points:
        return ""
    rows = [[sha, f"{rate:.1f} %"] for sha, rate in points]
    body = (
        _line_chart([("cache hit rate", points)],
                    y_fmt=lambda v: f"{v:.0f} %")
        + _details_table("table view — cache hit rate per commit",
                         ["commit", "hit rate"], rows)
    )
    return _section(
        "Run-store cache hit rate",
        "share of jobs answered from the journaled run store per session.",
        body,
    )


def _failure_trend(history: list[HistoryEntry]) -> str:
    points = [(e.sha[:7], float(e.failures)) for e in history]
    if not points:
        return ""
    kind_totals: dict[str, int] = {}
    for entry in history:
        for kind, count in entry.failure_kinds.items():
            kind_totals[kind] = kind_totals.get(kind, 0) + count
    rows = [[kind, str(count)] for kind, count in sorted(kind_totals.items())]
    body = _line_chart([("job failures", points)],
                       y_fmt=lambda v: f"{v:.0f}")
    if rows:
        body += _details_table("table view — failure kinds (all sessions)",
                               ["failure kind", "count"], rows)
    return _section(
        "Job failures over commits",
        "failed jobs per bench session; kinds from the repro.errors "
        "taxonomy.",
        body,
    )


# ---------------------------------------------------------------------------
# Bars (artifact snapshot + paper diffs + stall flame)
# ---------------------------------------------------------------------------

def _artifact_bars(artifacts: list[tuple[str, dict]]) -> str:
    items = []
    for source, artifact in artifacts:
        cps = artifact.get("totals", {}).get("cycles_per_sec")
        if cps is not None:
            items.append((artifact.get("label", source), float(cps), source))
    if not items:
        return ""
    peak = max(v for _, v, _ in items)
    ticks = _nice_ticks(peak)
    top = ticks[-1]
    bar_h, gap = 24, 2
    row_h = bar_h + 12
    height = _PAD_T + row_h * len(items) + _PAD_B

    def x_of(v: float) -> float:
        return _PAD_L + _PLOT_W * v / top

    parts = [_svg_open(height)]
    for tick in ticks:
        x = x_of(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_PAD_T}" x2="{x:.1f}" '
            f'y2="{height - _PAD_B}" stroke="var(--grid)" '
            f'stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{height - 8}" text-anchor="middle" '
            f'class="tick">{_esc(_fmt(tick))}</text>'
        )
    for i, (label, value, source) in enumerate(items):
        y = _PAD_T + row_h * i + gap
        w = max(x_of(value) - _PAD_L, 6.0)
        parts.append(
            f'<path d="M{_PAD_L} {y:.1f} h{w - 4:.1f} a4 4 0 0 1 4 4 '
            f'v{bar_h - 8} a4 4 0 0 1 -4 4 h-{w - 4:.1f} z" '
            f'fill="var(--series-1)">'
            f'<title>{_esc(label)} ({_esc(source)}): '
            f'{_esc(_fmt(value))} cycles/sec</title></path>'
        )
        parts.append(
            f'<text x="{_PAD_L - 8}" y="{y + bar_h / 2 + 4:.1f}" '
            f'text-anchor="end" class="tick">{_esc(label)}</text>'
        )
        parts.append(
            f'<text x="{_PAD_L + w + 8:.1f}" y="{y + bar_h / 2 + 4:.1f}" '
            f'class="endlabel">{_esc(_fmt(value))}</text>'
        )
    parts.append("</svg>")
    rows = [[label, source, _fmt(value)] for label, value, source in items]
    body = "".join(parts) + _details_table(
        "table view — committed artifacts",
        ["label", "file", "cycles/sec"], rows)
    return _section(
        "Committed BENCH artifacts",
        "headline throughput of every BENCH_*.json in the tree "
        "(one magnitude, one hue).",
        body,
    )


def _figures_from(history: list[HistoryEntry],
                  artifacts: list[tuple[str, dict]]) -> dict:
    """Latest known metrics per figure: artifacts first, history wins."""
    merged: dict[str, dict[str, float]] = {}
    for _, artifact in artifacts:
        for fig, metrics in (artifact.get("figures") or {}).items():
            merged[fig] = dict(metrics)
    for entry in history:
        for fig, metrics in entry.figures.items():
            merged[fig] = dict(metrics)
    return merged


def _paper_diff_bars(history: list[HistoryEntry],
                     artifacts: list[tuple[str, dict]]) -> str:
    diffs = figure_diffs(_figures_from(history, artifacts))
    if not diffs:
        return ""
    span = max(0.02, max(abs(delta) for _, _, delta in diffs))
    bar_h, gap = 16, 2
    row_h = bar_h + 10
    height = _PAD_T + row_h * len(diffs) + _PAD_B
    mid_x = _PAD_L + _PLOT_W / 2.0

    def w_of(delta: float) -> float:
        return (_PLOT_W / 2.0 - 8) * abs(delta) / span

    parts = [_svg_open(height)]
    parts.append(
        f'<line x1="{mid_x:.1f}" y1="{_PAD_T}" x2="{mid_x:.1f}" '
        f'y2="{height - _PAD_B}" stroke="var(--axis)" stroke-width="1"/>'
    )
    parts.append(
        f'<text x="{mid_x:.1f}" y="{height - 8}" text-anchor="middle" '
        f'class="tick">paper value</text>'
    )
    rows = []
    for i, (target, measured, delta) in enumerate(diffs):
        y = _PAD_T + row_h * i + gap
        w = max(w_of(delta), 6.0)
        label = f"{target.figure} · {target.metric}"
        color = "var(--pos)" if delta >= 0 else "var(--neg)"
        if delta >= 0:
            shape = (f'M{mid_x:.1f} {y:.1f} h{w - 4:.1f} a4 4 0 0 1 4 4 '
                     f'v{bar_h - 8} a4 4 0 0 1 -4 4 h-{w - 4:.1f} z')
            value_x, anchor = mid_x + w + 8, "start"
        else:
            shape = (f'M{mid_x:.1f} {y:.1f} h-{w - 4:.1f} a4 4 0 0 0 -4 4 '
                     f'v{bar_h - 8} a4 4 0 0 0 4 4 h{w - 4:.1f} z')
            value_x, anchor = mid_x - w - 8, "end"
        parts.append(
            f'<path d="{shape}" fill="{color}">'
            f'<title>{_esc(target.description)}: measured '
            f'{measured * 100:.1f} % vs paper {target.paper * 100:.1f} % '
            f'({_esc(_pp(delta))})</title></path>'
        )
        parts.append(
            f'<text x="{_PAD_L - 8}" y="{y + bar_h / 2 + 4:.1f}" '
            f'text-anchor="end" class="tick">{_esc(label)}</text>'
        )
        parts.append(
            f'<text x="{value_x:.1f}" y="{y + bar_h / 2 + 4:.1f}" '
            f'text-anchor="{anchor}" class="endlabel">'
            f'{_esc(_pp(delta))}</text>'
        )
        rows.append([label, f"{measured * 100:.1f} %",
                     f"{target.paper * 100:.1f} %", _pp(delta)])
    parts.append("</svg>")
    key = (
        '<div class="legend">'
        '<span class="key"><span class="swatch" '
        'style="background:var(--pos)"></span>above paper value</span>'
        '<span class="key"><span class="swatch" '
        'style="background:var(--neg)"></span>below paper value</span>'
        '</div>'
    )
    body = key + "".join(parts) + _details_table(
        "table view — figure metrics vs paper",
        ["figure · metric", "measured", "paper", "diff"], rows)
    return _section(
        "Figure metrics vs paper targets",
        "latest measured headline per figure, diffed against the "
        "RegMutex paper's stated averages (percentage points; polarity "
        "only — which side of the paper's number, not better/worse).",
        body,
    )


def _stall_flame(profile: dict) -> str:
    stalls: dict[str, int] = dict(profile.get("stalls", {}))
    issue_slots = int(profile.get("issue_slots", 0))
    issued = int(profile.get("issued", 0))
    if not stalls or issue_slots <= 0:
        return ""
    idle = sum(stalls.values())
    bar_h, gap = 24, 2
    height = _PAD_T + 2 * (bar_h + 12) + _PAD_B
    categories = sorted(stalls, key=lambda c: (-stalls[c], c))

    def seg(x: float, w: float, color: str, tip: str) -> str:
        return (
            f'<rect x="{x:.1f}" y="{{y}}" width="{max(w - gap, 1.0):.1f}" '
            f'height="{bar_h}" fill="{color}"><title>{tip}</title></rect>'
        )

    parts = [_svg_open(height)]
    # Top bar: issued vs idle split of every issue slot.
    y = _PAD_T
    issued_w = _PLOT_W * issued / issue_slots
    parts.append(seg(_PAD_L, issued_w, "var(--series-1)",
                     f"issued: {issued:,} of {issue_slots:,} slots")
                 .format(y=y))
    parts.append(seg(_PAD_L + issued_w, _PLOT_W - issued_w, "var(--grid)",
                     f"idle: {idle:,} slots").format(y=y))
    parts.append(
        f'<text x="{_PAD_L - 8}" y="{y + bar_h / 2 + 4}" text-anchor="end" '
        f'class="tick">issue slots</text>'
    )
    # Second level: idle slots fanned into stall categories.
    y = _PAD_T + bar_h + 12
    x = _PAD_L
    rows = []
    for i, cat in enumerate(categories):
        share = stalls[cat] / idle if idle else 0.0
        w = _PLOT_W * stalls[cat] / issue_slots
        parts.append(seg(x, w, _series_var((i + 1) % len(_SERIES)),
                         f"{cat}: {stalls[cat]:,} idle slots "
                         f"({share:.0%} of idle)").format(y=y))
        x += w
        rows.append([cat, f"{stalls[cat]:,}", f"{share:.0%}"])
    parts.append(
        f'<text x="{_PAD_L - 8}" y="{y + bar_h / 2 + 4}" text-anchor="end" '
        f'class="tick">idle split</text>'
    )
    parts.append("</svg>")
    names = ["issued"] + categories
    keys = "".join(
        f'<span class="key"><span class="swatch" style="background:'
        f'{_series_var(i if i == 0 else (i % len(_SERIES)))}"></span>'
        f'{_esc(name)}</span>'
        for i, name in enumerate(names)
    )
    body = (
        f'<div class="legend">{keys}</div>' + "".join(parts)
        + _details_table("table view — stall attribution",
                         ["category", "idle slots", "share of idle"], rows)
    )
    return _section(
        "Stall attribution — " + str(profile.get("title", "profiled run")),
        "issue slots split into issued vs idle, idle fanned into the "
        "observe bus's stall categories (sums exactly to SmStats).",
        body,
    )


# ---------------------------------------------------------------------------
# Page assembly
# ---------------------------------------------------------------------------

def _stat_tiles(history: list[HistoryEntry],
                artifacts: list[tuple[str, dict]]) -> str:
    tiles = []
    if history:
        latest = history[-1]
        tiles.append((
            "Latest bench commit", latest.sha[:10],
            f"{latest.label} on {latest.machine}",
        ))
        cps = latest.cycles_per_sec
        tiles.append((
            "Latest throughput",
            f"{cps:,.0f} c/s" if cps is not None else "cached",
            f"{latest.failures} failure(s), "
            f"{latest.cache_hit_rate:.0%} cache hits",
        ))
        tiles.append((
            "History entries", f"{len(history)}",
            f"{len({e.sha for e in history})} distinct commits",
        ))
    tiles.append((
        "Committed artifacts", f"{len(artifacts)}",
        "BENCH_*.json in the tree",
    ))
    cells = "".join(
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div>'
        f'<div class="sub">{_esc(sub)}</div></div>'
        for label, value, sub in tiles
    )
    return f'<div class="tiles">{cells}</div>'


_STYLE = """
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948;
  --pos: #2a78d6; --neg: #e34948;
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767;
    --pos: #3987e5; --neg: #e66767;
  }
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 0 0 2px; }
.viz-root .sub { color: var(--text-secondary); margin: 0 0 10px; }
.viz-root header .sub { margin-bottom: 20px; }
.viz-root section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 0 0 16px;
  max-width: 880px;
}
.viz-root .tiles {
  display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 16px;
  max-width: 880px;
}
.viz-root .tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; flex: 1 1 160px;
}
.viz-root .tile .label { color: var(--text-secondary); font-size: 12px; }
.viz-root .tile .value { font-size: 26px; font-weight: 600; }
.viz-root .tile .sub { color: var(--muted); font-size: 12px; margin: 0; }
.viz-root .legend {
  display: flex; flex-wrap: wrap; gap: 14px; margin: 0 0 6px;
  color: var(--text-secondary); font-size: 12px;
}
.viz-root .key { display: inline-flex; align-items: center; gap: 6px; }
.viz-root .swatch {
  width: 10px; height: 10px; border-radius: 2px; display: inline-block;
}
.viz-root svg { display: block; }
.viz-root .tick {
  fill: var(--muted); font-size: 11px;
  font-variant-numeric: tabular-nums;
}
.viz-root .endlabel { fill: var(--text-secondary); font-size: 11px; }
.viz-root details { margin-top: 8px; color: var(--text-secondary); }
.viz-root details summary { cursor: pointer; font-size: 12px; }
.viz-root table {
  border-collapse: collapse; margin-top: 8px; font-size: 12px;
  font-variant-numeric: tabular-nums;
}
.viz-root th, .viz-root td {
  text-align: left; padding: 3px 12px 3px 0;
  border-bottom: 1px solid var(--grid);
}
.viz-root footer { color: var(--muted); font-size: 12px; }
"""


def render_dashboard(
    history: list[HistoryEntry],
    artifacts: list[tuple[str, dict]],
    *,
    profile: dict | None = None,
    generated_at: str = "",
    title: str = "RegMutex reproduction — results dashboard",
) -> str:
    """Assemble the full self-contained dashboard page."""
    sections = [
        _stat_tiles(history, artifacts),
        _artifact_bars(artifacts),
        _throughput_trend(history),
        _paper_diff_bars(history, artifacts),
        _cache_trend(history),
        _failure_trend(history),
    ]
    if profile:
        sections.append(_stall_flame(profile))
    meta = (
        f"{len(history)} history entr{'y' if len(history) == 1 else 'ies'}, "
        f"{len(artifacts)} artifact(s)"
        + (f" · generated {generated_at}" if generated_at else "")
    )
    body = "".join(s for s in sections if s)
    if not history and not artifacts:
        body = (
            '<p class="sub">No data yet — run <code>repro bench '
            "--history benchmarks/history.jsonl</code> to start the "
            "trail.</p>"
        ) + body
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_STYLE}</style></head>\n"
        '<body class="viz-root"><header>'
        f"<h1>{_esc(title)}</h1>"
        f'<p class="sub">{_esc(meta)}</p></header>\n'
        f"{body}\n"
        "<footer>Self-contained static page — no scripts, no external "
        "assets. Built by <code>repro dashboard</code>.</footer>"
        "</body></html>\n"
    )


def write_dashboard(path: str, html_text: str) -> str:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(html_text)
    return path
