"""Warp schedulers: greedy-then-oldest (GTO) and loose round-robin (LRR).

Each SM hosts ``config.num_schedulers`` scheduler instances; resident
warps are partitioned across them by warp id (even/odd for two
schedulers, as on Fermi).  A scheduler, given the set of issuable warps
this cycle, picks one.

GTO (the paper's baseline policy): keep issuing from the same warp until
it stalls, then switch to the oldest ready warp (oldest = lowest launch
sequence number).

LRR: rotate through warps in id order starting after the last issued.

The OWF baseline (Jatala et al.) adds *owner-warp-first* on top of GTO:
warps holding the pair lock outrank everyone else, which
:mod:`repro.baselines.owf` implements as a priority hook.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.sim.warp import Warp


class WarpScheduler:
    """Base scheduler interface."""

    def __init__(self, scheduler_id: int) -> None:
        self.scheduler_id = scheduler_id
        # Cumulative issued-instruction count, read by the observability
        # probes for the per-scheduler Perfetto tracks.
        self.issued_count = 0

    def pick(self, candidates: Sequence[Warp]) -> Optional[Warp]:
        """Choose one warp among issuable candidates (None if empty)."""
        raise NotImplementedError

    def notify_issued(self, warp: Warp) -> None:
        """Called after the chosen warp successfully issued."""
        self.issued_count += 1

    def notify_removed(self, warp: Warp) -> None:
        """Called when a warp leaves the SM (CTA retired)."""

    # -- checkpointing (repro.sim.checkpoint) -------------------------------------
    def snapshot(self) -> dict:
        """Mutable rotation state (policy-specific fields via override)."""
        return {"issued_count": self.issued_count}

    def restore(self, payload: dict, warps_by_id: dict[int, Warp]) -> None:
        self.issued_count = payload["issued_count"]


def _by_warp_id(warp: Warp) -> int:
    """Module-level sort key: ``min(key=lambda ...)`` on the issue path
    would build a fresh closure per cycle."""
    return warp.warp_id


class GtoScheduler(WarpScheduler):
    """Greedy-then-oldest with an optional priority hook.

    ``priority`` maps a warp to a sort key *before* the greedy/oldest
    rule; lower sorts first.  The default gives every warp equal priority.
    """

    def __init__(
        self,
        scheduler_id: int,
        priority: Callable[[Warp], int] | None = None,
    ) -> None:
        super().__init__(scheduler_id)
        self._greedy: Optional[Warp] = None
        # With no hook every warp ties at priority 0; the single-pass
        # partition below would only rediscover ``top == candidates``,
        # so the common case (no OWF-style hook installed) skips it —
        # this is on the per-cycle issue path.
        self._default_priority = priority is None
        self._priority = priority or (lambda w: 0)
        # Persistent top-tier scratch: no per-pick list allocation.
        self._top: list[Warp] = []

    def pick(self, candidates: Sequence[Warp]) -> Optional[Warp]:
        if not candidates:
            return None
        if self._default_priority:
            greedy = self._greedy
            if greedy is not None and greedy in candidates:
                return greedy
            return min(candidates, key=_by_warp_id)
        # Single pass: the hook runs exactly once per candidate (OWF's
        # hook is pure but hooks are user-supplied — don't assume).
        priority = self._priority
        top = self._top
        top.clear()
        best_priority: int | None = None
        for w in candidates:
            p = priority(w)
            if best_priority is None or p < best_priority:
                best_priority = p
                top.clear()
                top.append(w)
            elif p == best_priority:
                top.append(w)
        if self._greedy is not None and self._greedy in top:
            return self._greedy
        # Oldest = smallest warp id (ids are assigned in launch order).
        return min(top, key=_by_warp_id)

    def notify_issued(self, warp: Warp) -> None:
        self.issued_count += 1
        self._greedy = warp

    def notify_removed(self, warp: Warp) -> None:
        if self._greedy is warp:
            self._greedy = None

    def snapshot(self) -> dict:
        payload = super().snapshot()
        payload["greedy"] = (
            self._greedy.warp_id if self._greedy is not None else None
        )
        return payload

    def restore(self, payload: dict, warps_by_id: dict[int, Warp]) -> None:
        super().restore(payload, warps_by_id)
        greedy = payload["greedy"]
        # The greedy pointer is an object reference: resolve through the
        # restored warps so ``greedy in candidates`` identity holds.  A
        # warp that issued EXIT gets notify_issued *after* its CTA
        # retired, so the live pointer can legitimately reference a
        # departed warp — behaviorally identical to None (it can never
        # reappear among candidates), so restore it as None.
        self._greedy = (
            warps_by_id.get(greedy) if greedy is not None else None
        )


class LrrScheduler(WarpScheduler):
    """Loose round-robin: next warp id after the last issued one."""

    def __init__(self, scheduler_id: int) -> None:
        super().__init__(scheduler_id)
        self._last_id = -1

    def pick(self, candidates: Sequence[Warp]) -> Optional[Warp]:
        if not candidates:
            return None
        # Candidates arrive id-ascending by construction: the SM builds
        # them in launch order and re-inserts requalified warps in id
        # position (both steppers), so the old per-pick sort only
        # reproduced the order it was given.
        last = self._last_id
        for warp in candidates:
            if warp.warp_id > last:
                return warp
        return candidates[0]

    def notify_issued(self, warp: Warp) -> None:
        self.issued_count += 1
        self._last_id = warp.warp_id

    def notify_removed(self, warp: Warp) -> None:
        pass

    def snapshot(self) -> dict:
        payload = super().snapshot()
        payload["last_id"] = self._last_id
        return payload

    def restore(self, payload: dict, warps_by_id: dict[int, Warp]) -> None:
        super().restore(payload, warps_by_id)
        self._last_id = payload["last_id"]


def make_scheduler(
    policy: str,
    scheduler_id: int,
    priority: Callable[[Warp], int] | None = None,
) -> WarpScheduler:
    """Factory keyed by the config's ``scheduler_policy`` string."""
    if policy == "gto":
        return GtoScheduler(scheduler_id, priority=priority)
    if policy == "lrr":
        if priority is not None:
            raise ValueError("priority hook is only supported for GTO")
        return LrrScheduler(scheduler_id)
    raise ValueError(f"unknown scheduler policy {policy!r}")
