"""Simulation statistics containers."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SmStats:
    """Counters accumulated by one SM over a kernel run."""

    cycles: int = 0
    instructions_issued: int = 0
    warps_launched: int = 0
    ctas_launched: int = 0
    # Stall breakdown: cycles in which a scheduler had no issuable warp,
    # attributed to the dominant blocker among its warps that cycle.
    idle_scheduler_cycles: int = 0
    stall_scoreboard: int = 0
    stall_memory: int = 0
    stall_barrier: int = 0
    stall_acquire: int = 0
    # RegMutex / sharing-technique counters.
    acquire_attempts: int = 0
    acquire_successes: int = 0
    release_count: int = 0
    acquire_wait_cycles: int = 0  # warp-cycles spent blocked on acquire
    # Occupancy bookkeeping: sum over cycles of resident warps, for
    # computing achieved occupancy.
    resident_warp_cycles: int = 0

    @property
    def acquire_success_rate(self) -> float:
        """Successful acquires among all acquire attempts (Figure 11b/13)."""
        if self.acquire_attempts == 0:
            return 1.0
        return self.acquire_successes / self.acquire_attempts

    def achieved_occupancy(self, max_warps: int) -> float:
        if self.cycles == 0 or max_warps == 0:
            return 0.0
        return self.resident_warp_cycles / (self.cycles * max_warps)

    def merge(self, other: "SmStats") -> None:
        """Accumulate another SM's counters (cycles take the max — SMs
        run concurrently)."""
        self.cycles = max(self.cycles, other.cycles)
        for name in (
            "instructions_issued", "warps_launched", "ctas_launched",
            "idle_scheduler_cycles", "stall_scoreboard", "stall_memory",
            "stall_barrier", "stall_acquire", "acquire_attempts",
            "acquire_successes", "release_count", "acquire_wait_cycles",
            "resident_warp_cycles",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class KernelStats:
    """Whole-device result of one kernel launch."""

    kernel_name: str
    config_name: str
    technique: str
    cycles: int
    theoretical_occupancy: float
    ctas_per_sm: int
    per_sm: list[SmStats] = field(default_factory=list)

    @property
    def total(self) -> SmStats:
        agg = SmStats()
        for sm in self.per_sm:
            agg.merge(sm)
        return agg

    @property
    def acquire_success_rate(self) -> float:
        return self.total.acquire_success_rate

    def cycle_reduction_vs(self, baseline: "KernelStats") -> float:
        """Fractional execution-cycle reduction relative to a baseline run
        (positive = faster than baseline). The paper's Figures 7/9a/10/12a."""
        if baseline.cycles == 0:
            return 0.0
        return (baseline.cycles - self.cycles) / baseline.cycles

    def cycle_increase_vs(self, baseline: "KernelStats") -> float:
        """Fractional execution-cycle increase relative to a baseline run
        (positive = slower). The paper's Figures 8/9b/12b."""
        if baseline.cycles == 0:
            return 0.0
        return (self.cycles - baseline.cycles) / baseline.cycles
