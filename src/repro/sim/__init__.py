"""Cycle-level GPU simulator substrate.

A simplified GPGPU-Sim-like model: per-SM warp schedulers issue one
instruction per scheduler per cycle from ready warps, subject to a
register scoreboard, memory latency, CTA barriers, and — when a
register-sharing technique is installed — acquire/release arbitration.
CTAs are dispatched onto SMs as register/thread/slot resources allow,
which is where occupancy (and RegMutex's occupancy boost) enters.
"""

from repro.sim.stats import SmStats, KernelStats
from repro.sim.warp import Warp, WarpStatus
from repro.sim.cta import Cta
from repro.sim.scoreboard import Scoreboard
from repro.sim.scheduler import make_scheduler, GtoScheduler, LrrScheduler
from repro.sim.memory import MemoryModel
from repro.sim.regfile import BaselineRegisterMapper, MappedRegister
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.gpu import Gpu, LaunchResult, simulate_kernel
from repro.sim.banks import BankedRegisterFile
from repro.sim.multikernel import launch_concurrent, kernels_similar
from repro.sim.trace import Trace, TraceEvent, TracingTechniqueState

__all__ = [
    "SmStats",
    "KernelStats",
    "Warp",
    "WarpStatus",
    "Cta",
    "Scoreboard",
    "make_scheduler",
    "GtoScheduler",
    "LrrScheduler",
    "MemoryModel",
    "BaselineRegisterMapper",
    "MappedRegister",
    "StreamingMultiprocessor",
    "Gpu",
    "LaunchResult",
    "simulate_kernel",
    "BankedRegisterFile",
    "launch_concurrent",
    "kernels_similar",
    "Trace",
    "TraceEvent",
    "TracingTechniqueState",
]
