"""Versioned, schema-checked SM checkpoints for crash-safe simulation.

A checkpoint is a pure-JSON snapshot of *everything* that determines the
rest of an SM's schedule: per-warp architectural and queue state, the
scoreboard's pending writes, the memory model's in-flight multiset and
its hit/miss RNG stream position, scheduler rotation state
(GTO greedy pointer / LRR cursor / issued counts), the event or
columnar engine's ready lists and sleeper heaps, the installed
technique's own bookkeeping (SRP bitmask + LUT, pair locks, OWF
subscriptions, RFV pool), every ``SmStats`` counter, and the SM-level
RNG stream.  Restoring it into a freshly constructed SM (same
constructor arguments) and calling ``run()`` produces the *bit-identical*
tail — same final cycle, same stats, same oracle digests — as the
uninterrupted run, on all three issue engines.  That property is what
lets the harness resume a crashed worker from its last checkpoint
instead of recomputing, with the cached result indistinguishable from a
clean run.

Layering: every stateful component serializes itself
(``Scoreboard.snapshot``, ``MemoryModel.snapshot``,
``IssueEngine.snapshot``, ``ColumnarCore.checkpoint_state``, scheduler
``snapshot``, technique ``state_snapshot``); this module composes them,
stamps the envelope (schema version, issue engine, kernel/config
fingerprints), and owns the torn-write-safe file format.  Warp objects
are rebuilt from scratch on restore — never patched in place — so a
restored SM holds no references into the dead run.

Failure taxonomy (:mod:`repro.errors`): a wrong schema or engine raises
the typed :class:`CheckpointSchemaError` /
:class:`CheckpointEngineMismatchError` — never a silent partial resume —
and an unreadable / truncated / checksum-failing file raises
:class:`CheckpointCorruptError`.  None of these are
:class:`SimulationError`\\ s: a bad checkpoint says nothing about the
simulation's determinism, so the harness falls back to a fresh run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os

from repro.errors import (
    CheckpointCorruptError,
    CheckpointEngineMismatchError,
    CheckpointError,
    CheckpointSchemaError,
)
from repro.sim.cta import Cta
from repro.sim.rand import DeterministicRng
from repro.sim.warp import Warp, WarpStatus

# Bump on any change to the payload layout.  Restore refuses mismatched
# schemas outright: silently reinterpreting old fields would trade a
# loud typed error for a wrong-but-plausible simulation result.
CHECKPOINT_SCHEMA_VERSION = 1


# -- context fingerprints -----------------------------------------------------

def kernel_fingerprint(kernel) -> str:
    """Content hash of the kernel a checkpoint was taken under.

    Instruction dataclass reprs are deterministic and cover opcode,
    operands, and annotations; the metadata repr covers placement-
    relevant sizes (|Bs|, |Es|, threads/CTA, regs/thread)."""
    h = hashlib.sha256()
    h.update(kernel.name.encode())
    h.update(repr(kernel.metadata).encode())
    for inst in kernel.instructions:
        h.update(repr(inst).encode())
    return h.hexdigest()


def config_fingerprint(config) -> str:
    """Hash of the full frozen config repr (``issue_engine`` included —
    but the engine is also stored unhashed in the envelope so a mismatch
    raises the *specific* typed error before this generic one)."""
    return hashlib.sha256(repr(config).encode()).hexdigest()


# -- capture ------------------------------------------------------------------

def _capture_warp(warp: Warp) -> dict:
    """One warp's full mutable state.  Works identically for plain warps
    and bound columnar views: the view's properties read the columns."""
    return {
        "warp_id": warp.warp_id,
        "cta_id": warp.cta_id,
        "slot": warp.slot,
        "pc": warp.pc,
        "status": warp.status.value,
        "stalled_on": warp.stalled_on,
        "wake_cycle": warp.wake_cycle,
        "dynamic_instructions": warp.dynamic_instructions,
        "qstate": warp.qstate,
        "rng_state": warp.rng._state,
        "trips": {str(pc): n for pc, n in warp._trips_remaining.items()},
        "holds_extended_set": warp.holds_extended_set,
        "srp_section": warp.srp_section,
        "acquire_block_since": warp.acquire_block_since,
        "owns_pair_lock": warp.owns_pair_lock,
    }


def capture_sm(sm) -> dict:
    """Snapshot a quiescent SM (between cycles) into a JSON-safe dict."""
    engine = sm.config.issue_engine
    if sm._columnar is not None:
        scoreboard_state = None
        engine_state = sm._columnar.checkpoint_state()
    else:
        scoreboard_state = sm.scoreboard.snapshot()
        engine_state = (
            sm._engine.snapshot() if sm._engine is not None else None
        )
    payload = {
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "issue_engine": engine,
        "kernel_fingerprint": kernel_fingerprint(sm.kernel),
        "config_fingerprint": config_fingerprint(sm.config),
        "cycle": sm.cycle,
        "sm": {
            "cycle": sm.cycle,
            "last_progress_cycle": sm._last_progress_cycle,
            "ctas_pending": sm.ctas_pending,
            "next_warp_id": sm._next_warp_id,
            "next_cta_seq": sm._next_cta_seq,
            "resident_warp_count": sm._resident_warp_count,
            "occupied_slots": sorted(sm._occupied_slots),
            "rng_state": sm.rng._state,
        },
        "stats": dataclasses.asdict(sm.stats),
        "ctas": [
            {
                "cta_id": cta.cta_id,
                "arrived": sorted(cta._arrived),
                "warps": [_capture_warp(w) for w in cta.warps],
            }
            for cta in sm.resident_ctas
        ],
        "memory": sm.memory.snapshot(),
        "scoreboard": scoreboard_state,
        "schedulers": [s.snapshot() for s in sm.schedulers],
        "engine_state": engine_state,
        "technique": sm.technique.state_snapshot(),
    }
    if sm.banked_rf is not None:
        payload["banked_rf"] = {
            "total_reads": sm.banked_rf.total_reads,
            "total_conflicts": sm.banked_rf.total_conflicts,
        }
    if sm._sanitizer is not None:
        payload["sanitizer"] = {
            "claims": {
                str(phys): list(claim)
                for phys, claim in sm._sanitizer._claims.items()
            },
        }
    return payload


# -- restore ------------------------------------------------------------------

def validate_payload(sm, payload: dict) -> None:
    """Refuse anything but an exact-context checkpoint, with the most
    specific typed error available (schema > engine > context)."""
    if not isinstance(payload, dict) or "schema" not in payload:
        raise CheckpointCorruptError(
            "checkpoint payload is not a schema-tagged mapping"
        )
    if payload["schema"] != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointSchemaError(
            f"checkpoint schema {payload['schema']!r} is not the "
            f"supported version {CHECKPOINT_SCHEMA_VERSION}"
        )
    engine = sm.config.issue_engine
    if payload["issue_engine"] != engine:
        raise CheckpointEngineMismatchError(
            f"checkpoint was written by issue engine "
            f"{payload['issue_engine']!r}; refusing to resume under "
            f"{engine!r} (queue state is engine-specific)"
        )
    if payload["kernel_fingerprint"] != kernel_fingerprint(sm.kernel):
        raise CheckpointError(
            "checkpoint kernel fingerprint does not match this SM's kernel"
        )
    if payload["config_fingerprint"] != config_fingerprint(sm.config):
        raise CheckpointError(
            "checkpoint config fingerprint does not match this SM's config"
        )


def restore_into(sm, payload: dict) -> None:
    """Rebuild ``sm``'s mutable state from ``payload``.

    ``sm`` must be freshly constructed with the same constructor
    arguments as the checkpointed SM (same kernel/config/technique
    class/seeded RNG); its constructor-launched CTAs and queues are torn
    down wholesale and rebuilt from the payload.
    """
    # Imported here: sm.py imports this module's sibling classes.
    from repro.sim.columnar import ColumnarCore, ColumnarScoreboard
    from repro.sim.scoreboard import Scoreboard
    from repro.sim.wakequeue import IssueEngine

    validate_payload(sm, payload)
    config = sm.config
    s = payload["sm"]

    sm.cycle = s["cycle"]
    sm._last_progress_cycle = s["last_progress_cycle"]
    sm.ctas_pending = s["ctas_pending"]
    sm._next_warp_id = s["next_warp_id"]
    sm._next_cta_seq = s["next_cta_seq"]
    sm._resident_warp_count = s["resident_warp_count"]
    sm._occupied_slots = set(s["occupied_slots"])
    for field, value in payload["stats"].items():
        setattr(sm.stats, field, value)

    # Fresh containers (never patch constructor-launched state).  The
    # scheduler *objects* are kept — their rotation state restores below
    # and techniques may hold priority hooks bound to them.
    sm.resident_ctas = []
    sm._ctas_by_id = {}
    sm._warps_by_scheduler = [[] for _ in range(config.num_schedulers)]
    sm._sched_units = [
        (sched, warps, [])
        for sched, warps in zip(sm.schedulers, sm._warps_by_scheduler)
    ]
    if config.issue_engine in ("columnar", "native"):
        sm._columnar = ColumnarCore(sm.schedulers, config)
        sm.scoreboard = ColumnarScoreboard(sm._columnar)
        sm._engine = None
    else:
        sm._columnar = None
        sm.scoreboard = Scoreboard()
        sm._engine = (
            IssueEngine(sm.schedulers)
            if config.issue_engine == "event" else None
        )

    warps_by_id: dict[int, Warp] = {}
    for cta_p in payload["ctas"]:
        cta_id = cta_p["cta_id"]
        kernel = (
            sm._kernels_for_ctas[cta_id]
            if sm._kernels_for_ctas is not None else sm.kernel
        )
        warps = []
        for wp in cta_p["warps"]:
            rng = DeterministicRng(1)
            rng._state = wp["rng_state"]
            wid = wp["warp_id"]
            if sm._columnar is not None:
                warp = sm._columnar.new_warp(
                    wid, cta_id, kernel, rng, wp["slot"]
                )
            else:
                warp = Warp(wid, cta_id, kernel, rng, slot=wp["slot"])
            warp.pc = wp["pc"]
            warp.status = WarpStatus(wp["status"])
            warp.stalled_on = wp["stalled_on"]
            warp.wake_cycle = wp["wake_cycle"]
            warp.dynamic_instructions = wp["dynamic_instructions"]
            warp.qstate = wp["qstate"]
            warp.holds_extended_set = wp["holds_extended_set"]
            warp.srp_section = wp["srp_section"]
            warp.acquire_block_since = wp["acquire_block_since"]
            warp.owns_pair_lock = wp["owns_pair_lock"]
            # In-place: the columnar core's trips column aliases this dict.
            trips = warp._trips_remaining
            trips.clear()
            trips.update({int(pc): n for pc, n in wp["trips"].items()})
            warps.append(warp)
            warps_by_id[wid] = warp
            sm._warps_by_scheduler[wid % config.num_schedulers].append(warp)
        cta = Cta(cta_id, warps)
        cta._arrived = set(cta_p["arrived"])
        sm.resident_ctas.append(cta)
        sm._ctas_by_id[cta_id] = cta

    if sm._columnar is not None:
        sm._columnar.checkpoint_restore(payload["engine_state"], sm.cycle)
    else:
        sm.scoreboard.restore(payload["scoreboard"])
        if sm._engine is not None:
            sm._engine.restore(payload["engine_state"], warps_by_id)
    sm.memory.restore(payload["memory"])
    for sched, sched_payload in zip(sm.schedulers, payload["schedulers"]):
        sched.restore(sched_payload, warps_by_id)
    sm.technique.state_restore(payload["technique"], warps_by_id)
    sm.rng._state = s["rng_state"]

    if sm.banked_rf is not None and payload.get("banked_rf") is not None:
        sm.banked_rf.total_reads = payload["banked_rf"]["total_reads"]
        sm.banked_rf.total_conflicts = payload["banked_rf"]["total_conflicts"]
    if sm._sanitizer is not None:
        claims = (payload.get("sanitizer") or {}).get("claims", {})
        sm._sanitizer._claims = {
            int(phys): (claim[0], claim[1]) for phys, claim in claims.items()
        }
        by_warp: dict[int, list[int]] = {}
        for phys, (wid, _reg) in sm._sanitizer._claims.items():
            by_warp.setdefault(wid, []).append(phys)
        sm._sanitizer._claims_by_warp = by_warp
    if sm._observer is not None:
        # Emits the RESTORE event and re-seeds the observer's stall
        # baseline / sample cursor from the restored counters.
        sm._observer.on_restore(sm, sm.cycle)


# -- torn-write-safe file format ----------------------------------------------

def checkpoint_path(directory: str, total_ctas: int) -> str:
    """Checkpoint file for one SM of a launch.

    Keyed by CTA count, not ``sm_id``: the per-SM RNG seed and hence the
    whole schedule depend only on ``total_ctas`` (``Gpu.launch`` memoizes
    equal-count SMs the same way), so one file serves every SM that
    simulates that count."""
    return os.path.join(directory, f"sm_{total_ctas}.ckpt.json")


def _canonical(payload: dict) -> str:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def write_checkpoint(path: str, payload: dict) -> None:
    """Atomic, fsync'd write: tmp file in the same directory, flushed to
    disk, then ``os.replace`` — a crash leaves either the previous
    checkpoint or the new one, never a torn file."""
    body = _canonical(payload)
    envelope = {
        "checksum": hashlib.sha256(body.encode()).hexdigest(),
        "payload": payload,
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(envelope, fh, separators=(",", ":"), sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_checkpoint(path: str) -> dict:
    """Load and checksum-verify a checkpoint file.

    Raises :class:`CheckpointCorruptError` for anything short of a
    fully intact envelope: missing file, truncation, bit-rot, or a
    checksum that no longer matches the payload."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            envelope = json.load(fh)
    except OSError as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path} unreadable: {exc}"
        ) from exc
    except ValueError as exc:
        raise CheckpointCorruptError(
            f"checkpoint {path} is not valid JSON (truncated write?): {exc}"
        ) from exc
    if (
        not isinstance(envelope, dict)
        or "checksum" not in envelope
        or "payload" not in envelope
    ):
        raise CheckpointCorruptError(
            f"checkpoint {path} envelope missing checksum/payload"
        )
    payload = envelope["payload"]
    digest = hashlib.sha256(_canonical(payload).encode()).hexdigest()
    if digest != envelope["checksum"]:
        raise CheckpointCorruptError(
            f"checkpoint {path} failed checksum verification "
            "(corrupted on disk)"
        )
    return payload
