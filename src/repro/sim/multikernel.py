"""Concurrent kernel co-scheduling, with the paper's fallback rule.

The paper (§IV): "Co-scheduling dissimilar kernels on an SM is not
supported by our technique and results in falling back to the default
execution mode (zero-sized extended set)."  This module implements
exactly that contract:

* :func:`launch_concurrent` places CTAs of several kernels on the same
  device.  When all kernels are *similar* (the same instruction stream
  — the common GPU case the paper assumes for RegMutex), the installed
  technique applies as usual.
* When the kernels are dissimilar, every kernel is compiled with a
  zero-sized extended set (no acquire/release primitives, full static
  allocation) and execution proceeds in the stock mode.

CTA placement interleaves the kernels round-robin; each SM sizes its
residency so the *worst-case* kernel mix fits (per-CTA cost is taken as
the maximum across kernels, the conservative choice a real co-scheduler
must make without per-slot repacking).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import GpuConfig
from repro.arch.occupancy import theoretical_occupancy
from repro.errors import KernelPlacementError, SimulationError
from repro.isa.kernel import Kernel
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import KernelStats, SmStats
from repro.sim.technique import BaselineTechnique, SharingTechnique


@dataclass(frozen=True)
class ConcurrentLaunchResult:
    stats: KernelStats
    kernels: tuple[Kernel, ...]
    fell_back_to_default: bool

    @property
    def cycles(self) -> int:
        return self.stats.cycles


def kernels_similar(kernels: list[Kernel]) -> bool:
    """The paper's similarity condition: identical programs.

    Metadata (name) may differ; what matters is that every warp executes
    the same instruction stream, so one |Bs|/|Es| split and one communal
    SRP apply to all resident warps.
    """
    first = kernels[0]
    return all(
        k.instructions == first.instructions
        and k.metadata.regs_per_thread == first.metadata.regs_per_thread
        and k.metadata.threads_per_cta == first.metadata.threads_per_cta
        for k in kernels[1:]
    )


def launch_concurrent(
    kernels: list[Kernel],
    ctas_each: list[int],
    config: GpuConfig,
    technique: SharingTechnique | None = None,
    seed: int = 2018,
    max_cycles: int = 50_000_000,
    observer_factory=None,
) -> ConcurrentLaunchResult:
    """Run several kernels concurrently on one device.

    ``observer_factory`` (``sm_id -> SmObserver | None``) attaches
    observability per SM, same contract as :meth:`repro.sim.gpu.Gpu.launch`.
    """
    if not kernels:
        raise ValueError("need at least one kernel")
    if len(kernels) != len(ctas_each):
        raise ValueError("kernels and ctas_each must align")
    if any(c <= 0 for c in ctas_each):
        raise ValueError("every kernel needs at least one CTA")
    technique = technique or BaselineTechnique()

    similar = kernels_similar(kernels)
    fell_back = not similar and not isinstance(technique, BaselineTechnique)

    if similar and not fell_back:
        compiled = [technique.prepare_kernel(kernels[0], config)] * len(kernels)
        occ = technique.occupancy(compiled[0], config)
        state_factory = lambda stats: technique.make_sm_state(  # noqa: E731
            compiled[0], config, stats
        )
    else:
        # Fallback: zero-sized extended sets, stock execution for all.
        compiled = [
            k.with_metadata(base_set_size=None, extended_set_size=None)
            for k in kernels
        ]
        # Conservative residency: every resident slot must be able to
        # hold the most expensive kernel in the mix.
        occs = [theoretical_occupancy(config, k.metadata) for k in compiled]
        occ = min(occs, key=lambda o: o.ctas_per_sm)
        base = BaselineTechnique()
        state_factory = lambda stats: base.make_sm_state(  # noqa: E731
            compiled[0], config, stats
        )
    if occ.ctas_per_sm <= 0:
        raise KernelPlacementError("kernel mix does not fit on the SM")

    # Interleave the grid round-robin across kernels.  Each pass over
    # the kernel list must place at least one CTA, so the loop is
    # bounded by the total CTA count — the guard turns any future
    # bookkeeping bug (which would spin here forever) into an error.
    schedule: list[Kernel] = []
    remaining = list(ctas_each)
    total_ctas = sum(ctas_each)
    passes = 0
    while any(remaining):
        passes += 1
        if passes > total_ctas:
            raise SimulationError(
                f"concurrent CTA schedule failed to converge after "
                f"{passes} passes (remaining={remaining}) — "
                "round-robin placement made no progress"
            )
        for i, k in enumerate(compiled):
            if remaining[i] > 0:
                schedule.append(k)
                remaining[i] -= 1

    # Partition the schedule across SMs (contiguous chunks).
    num_sms = config.num_sms
    per_sm: list[list[Kernel]] = [[] for _ in range(num_sms)]
    for idx, k in enumerate(schedule):
        per_sm[idx % num_sms].append(k)

    sm_stats: list[SmStats] = []
    for sm_id, sm_kernels in enumerate(per_sm):
        if not sm_kernels:
            sm_stats.append(SmStats())
            continue
        stats = SmStats()
        sm = StreamingMultiprocessor(
            sm_id=sm_id,
            config=config,
            kernel=sm_kernels[0],
            technique_state=state_factory(stats),
            ctas_resident_limit=occ.ctas_per_sm,
            total_ctas=len(sm_kernels),
            rng=DeterministicRng(seed * 7 + sm_id),
            stats=stats,
            kernels_for_ctas=sm_kernels,
        )
        if observer_factory is not None:
            observer = observer_factory(sm_id)
            if observer is not None:
                observer.attach(sm)
        sm_stats.append(sm.run(max_cycles=max_cycles))

    cycles = max((s.cycles for s in sm_stats), default=0)
    kstats = KernelStats(
        kernel_name="+".join(k.name for k in kernels),
        config_name=config.name,
        technique=technique.name if not fell_back else "baseline(fallback)",
        cycles=cycles,
        theoretical_occupancy=occ.occupancy,
        ctas_per_sm=occ.ctas_per_sm,
        per_sm=sm_stats,
    )
    return ConcurrentLaunchResult(
        stats=kstats,
        kernels=tuple(compiled),
        fell_back_to_default=fell_back,
    )
