"""Architected-to-physical register mapping (operand-collector level).

The baseline GPU maps a warp's architected register X to physical index
``Y = X + B`` with ``B = Coeff * Widx`` where Coeff is the kernel's
per-thread register allocation (paper §III-B2, Figure 6a).  The RegMutex
mapper in :mod:`repro.regmutex.mapping` extends this with the
base/extended mux.

The simulator does not need physical indices for timing, but modelling
the mapper lets tests prove the central safety property: no two
co-resident warps ever map distinct (warp, architected) pairs onto the
same physical register — with the single sanctioned exception of SRP
sections being time-shared.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MappedRegister:
    """A resolved physical register index with provenance."""

    physical_index: int
    region: str  # "base" | "extended"


class BaselineRegisterMapper:
    """Stock ``Y = X + Coeff * Widx`` mapping."""

    def __init__(self, coeff: int, total_registers: int) -> None:
        if coeff <= 0:
            raise ValueError("per-warp register coefficient must be positive")
        self._coeff = coeff
        self._total = total_registers

    @property
    def coeff(self) -> int:
        return self._coeff

    def resolve(self, warp_index: int, arch_reg: int) -> MappedRegister:
        if arch_reg >= self._coeff:
            raise ValueError(
                f"architected register R{arch_reg} outside the warp's "
                f"{self._coeff}-register allocation"
            )
        physical = arch_reg + self._coeff * warp_index
        if physical >= self._total:
            raise ValueError(
                f"physical register {physical} exceeds register file size "
                f"{self._total} (warp {warp_index} not resident?)"
            )
        return MappedRegister(physical_index=physical, region="base")

    def max_resident_warps(self) -> int:
        """How many warps the register file can hold at this coefficient."""
        return self._total // self._coeff
