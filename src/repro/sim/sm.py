"""Streaming Multiprocessor pipeline.

Each cycle:

1. retire completed memory accesses and expire scoreboard entries,
2. wake warps whose blocked acquire may now succeed,
3. each warp scheduler picks one issuable warp (scoreboard-clean, not at
   a barrier, not blocked on acquire, technique gate open) and issues its
   next instruction,
4. the CTA dispatcher replaces retired CTAs with pending ones.

Issue semantics per instruction class:

* ALU/SFU — destination registers become ready after the opcode latency.
* LD — destination ready after the memory model's hit/miss latency;
  stalls if the in-flight window is full.
* ST — fire-and-forget.
* BRA/JMP — branch resolves immediately (annotations decide direction).
* BAR.SYNC — warp parks until all live warps of its CTA arrive.
* ACQUIRE/RELEASE — delegated to the installed sharing technique.
* EXIT — warp finishes; a fully finished CTA retires and frees its slot.

The model is deliberately at GPGPU-Sim's "simplified depiction" level
(paper Figure 4): fetch/decode/operand-collection are folded into a
single issue stage, which preserves the occupancy/latency-hiding/stall
interactions RegMutex lives on without modelling bank conflicts.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush

from repro.arch.config import ISSUE_ENGINES, GpuConfig
from repro.errors import (
    CycleLimitExceededError,
    DeadlockDiagnostic,
    SimulationDeadlockError,
    WarpSnapshot,
)
from repro.isa.instructions import Instruction, OpClass, Opcode
from repro.isa.kernel import Kernel
from repro.sim.columnar import (
    K_ACQUIRE,
    K_ALU,
    K_BARRIER,
    K_BRA,
    K_EXIT,
    K_JMP,
    K_LOAD,
    K_SHARED_LOAD,
    K_STORE,
    SL_MEMORY,
    SL_NONE,
    SL_SCOREBOARD,
    SL_TECHNIQUE,
    ST_ACQUIRE,
    ST_BARRIER,
    ST_FINISHED,
    ST_READY,
    ColumnarCore,
    ColumnarScoreboard,
)
from repro.sim.cta import Cta
from repro.sim.memory import MemoryModel
from repro.sim.rand import DeterministicRng
from repro.sim.scheduler import WarpScheduler, make_scheduler
from repro.sim.scoreboard import Scoreboard
from repro.sim.stats import SmStats
from repro.sim.technique import SmTechniqueState
from repro.sim.wakequeue import (
    MEMORY_STALL_HORIZON,
    QS_ACQUIRE,
    QS_BARRIER,
    QS_READY,
    QS_SLEEPING,
    IssueEngine,
    _by_warp_id,
)
from repro.sim.warp import Warp, WarpStatus, resolve_conditional_branch

# Scoreboard-expiry cadence: purging every cycle is wasted work; the
# horizon only affects dict size, never correctness.
_EXPIRE_PERIOD = 64

# Eager acquire-retry backoff (cycles): "retries at later rounds when the
# warp gets scheduled again" (§III-B1) — the warp yields its scheduler
# between polls instead of spinning in the greedy slot.
_EAGER_RETRY_BACKOFF = 16

# Optional C backend for the columnar loop (issue_engine="native").
# Missing extension is not an error: "native" then runs the pure-Python
# columnar stepper (identical results, one RuntimeWarning per process).
try:
    from repro import _native
except ImportError:  # pragma: no cover - depends on the build
    _native = None

if _native is not None:
    # The extension hardcodes the column encodings; refuse it (and fall
    # back) if they ever drift from the Python constants.
    import repro.sim.columnar as _col_mod
    import repro.sim.wakequeue as _wq_mod

    _NATIVE_CONST_NAMES = (
        "ST_READY", "ST_BARRIER", "ST_ACQUIRE", "ST_FINISHED",
        "SL_NONE", "SL_SCOREBOARD", "SL_MEMORY", "SL_TECHNIQUE",
        "K_ALU", "K_LOAD", "K_SHARED_LOAD", "K_STORE", "K_EXIT",
        "K_JMP", "K_BRA", "K_BARRIER", "K_ACQUIRE", "K_RELEASE",
    )
    if not (
        getattr(_native, "NATIVE_ABI", None) == 1
        and all(
            getattr(_native, name) == getattr(_col_mod, name)
            for name in _NATIVE_CONST_NAMES
        )
        and all(
            getattr(_native, name) == getattr(_wq_mod, name)
            for name in ("QS_OUT", "QS_READY", "QS_SLEEPING",
                         "QS_BARRIER", "QS_ACQUIRE")
        )
    ):  # pragma: no cover - guards a build/source mismatch
        import warnings as _warnings

        _warnings.warn(
            "repro._native was built against different column encodings; "
            "ignoring it (issue_engine='native' will run pure Python)",
            RuntimeWarning,
            stacklevel=2,
        )
        _native = None

#: Issue-engine dispatch: engine name -> StreamingMultiprocessor step
#: method name.  Keys mirror repro.arch.config.ISSUE_ENGINES (asserted
#: below); benchmarks and CLIs discover engines from this dict.
ISSUE_ENGINE_REGISTRY = {
    "event": "_step_event",
    "scan": "_step_scan",
    "columnar": "_step_columnar",
    "native": "_step_columnar",
}
assert tuple(ISSUE_ENGINE_REGISTRY) == ISSUE_ENGINES, (
    "sm.py engine registry drifted from repro.arch.config.ISSUE_ENGINES"
)

_NATIVE_FALLBACK_WARNED = False


class StreamingMultiprocessor:
    """One SM executing a stream of identical CTAs."""

    def __init__(
        self,
        sm_id: int,
        config: GpuConfig,
        kernel: Kernel,
        technique_state: SmTechniqueState,
        ctas_resident_limit: int,
        total_ctas: int,
        rng: DeterministicRng,
        scheduler_priority=None,
        stats: SmStats | None = None,
        kernels_for_ctas: list[Kernel] | None = None,
    ) -> None:
        if ctas_resident_limit <= 0 and total_ctas > 0:
            raise ValueError(
                "kernel cannot be placed: zero CTAs fit on the SM "
                "(register file too small for even one CTA)"
            )
        self.sm_id = sm_id
        self.config = config
        self.kernel = kernel
        self.technique = technique_state
        self.ctas_resident_limit = ctas_resident_limit
        self.ctas_pending = total_ctas
        self.rng = rng
        self.stats = stats if stats is not None else SmStats()
        self.cycle = 0
        # Watchdog marker: the last cycle any warp advanced its pc or
        # finished (a successful acquire/release advances the pc, so
        # every SRP state transition moves this too).
        self._last_progress_cycle = 0
        # Observability: None (the default) costs one ``is not None``
        # branch per cycle; ``repro.observe.SmObserver.attach`` installs
        # a live one.  Must exist before ``_fill_ctas`` so the launch
        # hook can test it.
        self._observer = None

        self.schedulers: list[WarpScheduler] = [
            make_scheduler(config.scheduler_policy, i, priority=scheduler_priority)
            for i in range(config.num_schedulers)
        ]
        # Columnar store (``config.issue_engine == "columnar"``): per-slot
        # state arrays + thin Warp views — see repro.sim.columnar.  When
        # active, the scoreboard is the columnar facade over the same
        # store, so every external consumer (sanitizer hazard re-check,
        # deadlock diagnostics, tests) reads the columns through the
        # identical Scoreboard API.
        self._columnar: ColumnarCore | None = None
        self._use_native = False
        if config.issue_engine in ("columnar", "native"):
            self._columnar = ColumnarCore(self.schedulers, config)
            self.scoreboard = ColumnarScoreboard(self._columnar)
            if config.issue_engine == "native":
                if _native is not None:
                    self._use_native = True
                else:
                    global _NATIVE_FALLBACK_WARNED
                    if not _NATIVE_FALLBACK_WARNED:
                        _NATIVE_FALLBACK_WARNED = True
                        import warnings

                        warnings.warn(
                            "repro._native extension is not built; "
                            "issue_engine='native' is falling back to the "
                            "pure-Python columnar stepper (identical "
                            "results, lower throughput). Build it with "
                            "`python setup.py build_ext --inplace`.",
                            RuntimeWarning,
                            stacklevel=4,
                        )
        else:
            self.scoreboard = Scoreboard()
        self.memory = MemoryModel(config, rng.fork(0x3E3))
        if config.model_bank_conflicts:
            from repro.sim.banks import BankedRegisterFile

            self.banked_rf = BankedRegisterFile(config.register_file_banks)
        else:
            self.banked_rf = None
        self.resident_ctas: list[Cta] = []
        self._ctas_by_id: dict[int, Cta] = {}
        self._warps_by_scheduler: list[list[Warp]] = [
            [] for _ in range(config.num_schedulers)
        ]
        # Issue-loop scratch: (scheduler, its warps, candidate buffer)
        # per scheduler slot.  The warp lists are the *same* objects as
        # ``_warps_by_scheduler`` entries (mutated in place by CTA
        # launch/retire); the candidate buffers persist across cycles so
        # ``step`` allocates nothing — building a fresh list per
        # scheduler per cycle was measurable on long runs.
        self._sched_units: list[tuple[WarpScheduler, list[Warp], list[Warp]]] = [
            (sched, warps, [])
            for sched, warps in zip(self.schedulers, self._warps_by_scheduler)
        ]
        # Event-driven issue engine (``config.issue_engine == "event"``):
        # per-scheduler ready/sleeper/blocked structures replacing the
        # all-warp scan — see repro.sim.wakequeue.  None selects the
        # retained scan stepper (the bit-identity reference).  Must
        # exist before ``_fill_ctas`` so the launch hook can feed it.
        self._engine: IssueEngine | None = None
        if config.issue_engine == "event":
            self._engine = IssueEngine(self.schedulers)
        self._resident_warp_count = 0
        self._next_warp_id = 0
        self._next_cta_seq = 0
        # SM-local warp-slot allocator.  Hardware structures (SRP status
        # bits, base register blocks, banked-RF lanes) are indexed by a
        # slot in [0, max_warps_per_sm); ``warp_id % max_warps_per_sm``
        # aliases once ids wrap past the slot count while earlier warps
        # are still resident (out-of-order CTA retirement), so slots are
        # allocated explicitly: the modulo value when free — which keeps
        # every non-colliding schedule bit-identical — else the lowest
        # free index.
        self._occupied_slots: set[int] = set()
        # Dynamic sanitizer (repro.check): like the observer, None costs
        # one ``is not None`` branch per cycle/issue.  Local import —
        # check/ imports sim modules.
        self._sanitizer = None
        if config.sanitizer:
            from repro.check.sanitizer import Sanitizer

            self._sanitizer = Sanitizer(self)
        # Heterogeneous co-scheduling: an optional per-CTA kernel list
        # (see repro.sim.multikernel); homogeneous launches use the
        # single kernel for every CTA.
        self._kernels_for_ctas = kernels_for_ctas
        if kernels_for_ctas is not None and len(kernels_for_ctas) < total_ctas:
            raise ValueError("kernels_for_ctas shorter than total_ctas")
        self._fill_ctas()

    # -- CTA dispatch -------------------------------------------------------------
    def _fill_ctas(self) -> None:
        while (
            self.ctas_pending > 0
            and len(self.resident_ctas) < self.ctas_resident_limit
        ):
            self._launch_cta()

    def _launch_cta(self) -> None:
        if self._kernels_for_ctas is not None:
            cta_kernel = self._kernels_for_ctas[self._next_cta_seq]
        else:
            cta_kernel = self.kernel
        warps_per_cta = (
            cta_kernel.metadata.threads_per_cta + self.config.warp_size - 1
        ) // self.config.warp_size
        warps = []
        for _ in range(warps_per_cta):
            if self._columnar is not None:
                # Columnar mode: the core owns the hot state and hands
                # back a bound view (slot columns initialized, scoreboard
                # row allocated, wid→slot adopted) — same RNG stream as
                # the object path (fork consumes no parent draws).
                warp = self._columnar.new_warp(
                    self._next_warp_id,
                    self._next_cta_seq,
                    cta_kernel,
                    self.rng.fork(self._next_warp_id + 1),
                    self._allocate_slot(self._next_warp_id),
                )
            else:
                warp = Warp(
                    warp_id=self._next_warp_id,
                    cta_id=self._next_cta_seq,
                    kernel=cta_kernel,
                    rng=self.rng.fork(self._next_warp_id + 1),
                    slot=self._allocate_slot(self._next_warp_id),
                )
            self.scoreboard.register_warp(warp.warp_id)
            warps.append(warp)
            self._warps_by_scheduler[
                self._next_warp_id % self.config.num_schedulers
            ].append(warp)
            self._next_warp_id += 1
        if self._engine is not None:
            for warp in warps:
                self._engine.add_warp(warp)
        elif self._columnar is not None:
            for warp in warps:
                self._columnar.add_warp(warp)
        cta = Cta(self._next_cta_seq, warps)
        self.resident_ctas.append(cta)
        self._ctas_by_id[cta.cta_id] = cta
        self._next_cta_seq += 1
        self.ctas_pending -= 1
        self._resident_warp_count += len(warps)
        self.stats.ctas_launched += 1
        self.stats.warps_launched += len(warps)
        if self._observer is not None:
            self._observer.on_cta_launch(self, cta)

    def _allocate_slot(self, warp_id: int) -> int:
        preferred = warp_id % self.config.max_warps_per_sm
        slot = preferred
        if slot in self._occupied_slots:
            slot = 0
            while slot in self._occupied_slots:
                slot += 1
        self._occupied_slots.add(slot)
        return slot

    def _retire_cta(self, cta: Cta) -> None:
        self.resident_ctas.remove(cta)
        del self._ctas_by_id[cta.cta_id]
        self._resident_warp_count -= len(cta.warps)
        if self._observer is not None:
            self._observer.on_cta_retire(self, cta)
        for warp in cta.warps:
            self._occupied_slots.discard(warp.slot)
            self.scoreboard.remove_warp(warp.warp_id)
            # Warps were partitioned by id at launch; the owning
            # scheduler slot is derivable, so only its list is touched.
            slot = warp.warp_id % self.config.num_schedulers
            self._warps_by_scheduler[slot].remove(warp)
            self.schedulers[slot].notify_removed(warp)
            if self._columnar is not None:
                # Detach the view (final values copied into the object)
                # and free the column slot for the next launch.
                self._columnar.release_warp(warp)

    # -- per-cycle machinery ------------------------------------------------------
    @property
    def resident_warps(self) -> int:
        return self._resident_warp_count

    @property
    def done(self) -> bool:
        return self.ctas_pending == 0 and not self.resident_ctas

    def _issuable(self, warp: Warp, inst: Instruction) -> bool:
        """Scoreboard + structural checks; technique gate applied here too.

        On failure, records why and — when the blocker has a known expiry
        — sets the warp's ``wake_cycle`` so schedulers skip it cheaply.
        """
        if not self.scoreboard.can_issue(warp.warp_id, inst, self.cycle):
            warp.stalled_on = "scoreboard"
            warp.wake_cycle = self.scoreboard.ready_cycle(
                warp.warp_id, inst, self.cycle
            )
            return False
        if inst.op_class is OpClass.LOAD and not self.memory.can_accept():
            warp.stalled_on = "memory"
            done = self.memory.earliest_completion(self.cycle)
            if done is not None:
                warp.wake_cycle = done
            return False
        if not self.technique.can_issue(warp, inst, self.cycle):
            warp.stalled_on = "technique"
            return False
        warp.stalled_on = None
        return True

    def _execute(self, warp: Warp, inst: Instruction) -> None:
        """Commit the issued instruction's effects."""
        cycle = self.cycle
        self.stats.instructions_issued += 1
        self.technique.on_issue(warp, inst, cycle)
        if self._sanitizer is not None:
            self._sanitizer.on_issue(warp, inst, cycle)

        bank_penalty = 0
        if self.banked_rf is not None and inst.srcs:
            physical = [
                self.technique.resolve_physical(warp, reg) for reg in inst.srcs
            ]
            bank_penalty = self.banked_rf.collect(
                warp.slot, physical
            ).extra_cycles

        if inst.op_class in (OpClass.IALU, OpClass.FALU, OpClass.SFU, OpClass.NOP):
            done = cycle + inst.latency + bank_penalty
            for reg in inst.dsts:
                self.scoreboard.record_write(warp.warp_id, reg, done)
            warp.advance(warp.pc + 1)
            return

        if inst.op_class is OpClass.LOAD:
            shared = inst.opcode is Opcode.LD_SHARED
            ready = self.memory.issue_load(cycle, shared=shared) + bank_penalty
            for reg in inst.dsts:
                self.scoreboard.record_write(warp.warp_id, reg, ready)
            warp.advance(warp.pc + 1)
            return

        if inst.op_class is OpClass.STORE:
            warp.advance(warp.pc + 1)
            return

        if inst.op_class is OpClass.BRANCH:
            if inst.is_exit:
                warp.finish()
                if self._engine is not None:
                    self._engine.on_finish(warp)
                self.technique.on_warp_finish(warp, cycle)
                cta = self._ctas_by_id[warp.cta_id]
                if cta.finished:
                    self._retire_cta(cta)
                    self._fill_ctas()
                return
            warp.advance(warp.resolve_branch_target(inst))
            return

        if inst.op_class is OpClass.BARRIER:
            cta = self._ctas_by_id[warp.cta_id]
            warp.advance(warp.pc + 1)  # resume past the barrier when released
            released = cta.arrive_at_barrier(warp)
            if released and self._engine is not None:
                self._engine.on_barrier_release(cta)
            return

        if inst.op_class is OpClass.REGMUTEX:
            if inst.opcode is Opcode.ACQUIRE:
                if self.technique.try_acquire(warp, cycle):
                    warp.advance(warp.pc + 1)
                elif warp.status is WarpStatus.READY:
                    # Eager retry policy: the warp was not parked, so it
                    # will re-poll — but not before a short backoff, or a
                    # greedy scheduler would let the spinner monopolize
                    # its issue slot and starve the very holders whose
                    # release it is waiting for (livelock).
                    warp.wake_cycle = cycle + _EAGER_RETRY_BACKOFF
                # else: parked by the wakeup policy until a release.
                return
            self.technique.release(warp, cycle)
            warp.advance(warp.pc + 1)
            return

        raise AssertionError(f"unhandled op class {inst.op_class}")

    def step(self) -> int:
        """Advance one cycle; returns the number of instructions issued.

        Dispatches to the event-driven stepper (the default), the
        columnar array-backed stepper (``issue_engine="columnar"``), or
        the naive all-warp-scan reference stepper
        (``issue_engine="scan"``).  All three are bit-identical — same
        cycle counts, same ``SmStats`` down to each stall counter, same
        oracle digests — which the wake-queue property tests and the
        ``repro check`` oracle enforce.
        """
        if self._columnar is not None:
            return self._step_columnar()
        if self._engine is not None:
            return self._step_event()
        return self._step_scan()

    def _step_event(self) -> int:
        """Event-driven issue path: cost per cycle is proportional to
        warps that can actually act, not to residents.

        Per scheduler: pop due sleepers into the sorted ready list,
        qualify exactly the ready warps (same ascending-warp-id order as
        the scan, so technique ``can_issue`` side effects replay
        identically), issue from the candidate list, then re-home warps
        the issue phase moved.  Stall attribution recomputes the scan's
        per-warp flags from aggregate counts (see
        ``SchedulerWakeQueue.sleeper_flags``), and only when the
        scheduler actually idled — the common issuing cycle skips it.
        """
        self.cycle += 1
        issued = 0
        cycle = self.cycle
        self.memory.retire(cycle)
        if cycle % _EXPIRE_PERIOD == 0:
            self.scoreboard.expire(cycle)

        engine = self._engine
        pending = self.technique.wakeup_pending()
        if pending:
            for warp in pending:
                if warp.status is WarpStatus.WAITING_ACQUIRE:
                    warp.status = WarpStatus.READY
                    engine.on_acquire_wake(warp)

        self.stats.resident_warp_cycles += self._resident_warp_count

        issue_width = self.config.issue_width_per_scheduler
        for unit in engine.units:
            unit.wake_due(cycle)
            # Blocked counts are captured before qualification: a warp
            # that parks *during* this pass (OWF's can_issue, a failed
            # ACQUIRE) contributes its park flag only from the next
            # cycle, exactly like the scan (which classifies by the
            # status it saw at scan time).
            barrier_count = unit.barrier_count
            acquire_count = unit.acquire_count
            ready = unit.ready
            candidates = unit.candidates
            keep = unit.keep
            candidates.clear()
            keep.clear()
            qual_mem = qual_sb = False
            for warp in ready:
                if self._issuable(warp, warp.current_instruction()):
                    candidates.append(warp)
                    keep.append(warp)
                    continue
                # The scan's else-branch flags, verbatim — including for
                # warps about to be detached below (they still fail
                # qualification *this* cycle in the scan).
                if warp.stalled_on == "memory":
                    qual_mem = True
                elif self.scoreboard.has_pending_memory(
                    warp.warp_id, cycle, horizon=20
                ):
                    qual_mem = True
                else:
                    qual_sb = True
                if warp.status is not WarpStatus.READY:
                    # OWF's can_issue parked the warp mid-qualification.
                    unit.park_acquire(warp)
                elif warp.wake_cycle > cycle:
                    unit.push_sleeper(warp, cycle)
                else:
                    # No self-timer (technique gate, saturated memory
                    # window with nothing in flight): requalify every
                    # cycle, like the scan.
                    keep.append(warp)
            ready[:] = keep

            issued_here = 0
            if candidates:
                sched = unit.sched
                issued_list = unit.issued
                for _ in range(issue_width):
                    chosen = sched.pick(candidates)
                    if chosen is None:
                        break
                    inst = chosen.current_instruction()
                    before = chosen.dynamic_instructions
                    self._execute(chosen, inst)
                    if chosen.dynamic_instructions != before:
                        self._last_progress_cycle = cycle
                    sched.notify_issued(chosen)
                    issued += 1
                    issued_here += 1
                    issued_list.append(chosen)
                    candidates.remove(chosen)
                    if (
                        not chosen.finished
                        and chosen.status is WarpStatus.READY
                        and chosen.wake_cycle <= cycle
                        and self._issuable(chosen, chosen.current_instruction())
                    ):
                        insort(candidates, chosen, key=_by_warp_id)
                for warp in issued_list:
                    unit.dispose_issued(warp, cycle)
                issued_list.clear()
            if issued_here == 0:
                self.stats.idle_scheduler_cycles += 1
                if acquire_count:
                    self.stats.stall_acquire += 1
                else:
                    mem_sleep, sb_sleep = unit.sleeper_flags(cycle)
                    if qual_mem or mem_sleep:
                        self.stats.stall_memory += 1
                    elif barrier_count:
                        self.stats.stall_barrier += 1
                    elif qual_sb or sb_sleep:
                        self.stats.stall_scoreboard += 1
        if self.config.debug_invariants:
            self.technique.check_invariants(cycle)
        if self._sanitizer is not None:
            self._sanitizer.on_cycle(self)
        if self._observer is not None:
            self._observer.on_cycle(self)
        return issued

    def _columnar_on_exit(self, warp: Warp, cycle: int) -> None:
        """EXIT commit for the columnar stepper: mirrors the event path
        (finish → engine release → technique hook → CTA retire/refill)
        writing the status/dyn columns directly."""
        core = self._columnar
        slot = warp.slot
        core.status[slot] = ST_FINISHED
        core.dyn[slot] += 1
        core.on_finish(warp.warp_id, slot)
        self.technique.on_warp_finish(warp, cycle)
        cta = self._ctas_by_id[warp.cta_id]
        if cta.finished:
            self._retire_cta(cta)
            self._fill_ctas()

    def _step_columnar(self) -> int:
        """Single-cycle entry point for the columnar engine (``step()``
        API): one iteration of :meth:`_run_columnar`, so manual steppers
        and the batched run share one implementation of the cycle body."""
        return self._run_columnar(0, single_step=True)

    def _run_columnar(
        self,
        max_cycles: int,
        single_step: bool = False,
        checkpoint_interval: int = 0,
        checkpoint_sink=None,
    ):
        """Array-backed issue path: the event engine's exact algorithm
        (wake-ordered ready lists, sleeper heaps, blocked counts, the
        same idle-attribution flags) over the columnar store.

        What changes is the *representation and the loop structure*, not
        the schedule: warps are ``(warp_id, slot)`` tuples indexing flat
        per-slot columns, instructions are pre-decoded per-kernel arrays
        (:class:`~repro.sim.columnar.KernelColumns`), and the
        qualification/execute/dispose steps are inlined into this one
        frame — no ``Warp`` attribute traffic, no ``Instruction``
        property/enum cost, no per-check method calls.  The whole run
        loop (step, fast-forward, watchdog, cycle limit) lives in this
        frame too, so per-cycle constants (hook bindings, column
        aliases, width/caps) are hoisted once per *run* instead of once
        per cycle, and the stall counters accumulate in locals that are
        flushed to ``SmStats`` only when someone can observe them (tail
        hooks, fast-forward hooks, error paths, return).

        Technique, sanitizer, and observer hooks still receive the bound
        views, so their side effects (and hence the issue order) replay
        identically; the default no-op technique hooks are detected once
        and skipped entirely.  ``self.cycle`` is kept current every
        cycle — mid-cycle hooks (CTA retire observers, the sanitizer)
        read it.

        Bit-identity with ``_step_event`` is enforced by the 3-way
        property tests and the differential oracle.  With
        ``single_step=True``, runs exactly one cycle, flushes, and
        returns the issued count (fast-forward/watchdog stay with the
        generic ``run`` loop in that mode — which never engages for
        columnar; it exists for manual ``step()`` drivers).
        """
        core = self._columnar
        (
            pc_col, wake_col, status_col, stall_col, qstate_col, dyn_col,
            views, kcs, rngs, trips, sb_rows, sb_max, sb_heap,
        ) = core.hot
        units = core.units
        num_sched = len(units)
        memory = self.memory
        mem_cap = memory._max_in_flight
        scoreboard = self.scoreboard
        tech = self.technique
        tech_cls = type(tech)
        # Hook-override detection (once per run: observer attach swaps
        # the technique object before run starts): a base-class no-op
        # hook is skipped without a call; an overridden one sees the
        # bound views as usual.
        tech_can_issue = (
            None if tech_cls.can_issue is SmTechniqueState.can_issue
            else tech.can_issue
        )
        tech_on_issue = (
            None if tech_cls.on_issue is SmTechniqueState.on_issue
            else tech.on_issue
        )
        tech_wakeups = (
            tech_cls.wakeup_pending is not SmTechniqueState.wakeup_pending
        )
        sanitizer = self._sanitizer
        banked_rf = self.banked_rf
        observer = self._observer
        stats = self.stats
        resident_ctas = self.resident_ctas
        issue_width = self.config.issue_width_per_scheduler
        debug_inv = self.config.debug_invariants
        window = self.config.watchdog_window
        tail_hooks = (
            debug_inv or sanitizer is not None or observer is not None
        )
        wid2slot = core.wid2slot
        multi_issue = issue_width > 1
        cycle = self.cycle
        last_progress = self._last_progress_cycle
        next_expire = cycle - (cycle % _EXPIRE_PERIOD) + _EXPIRE_PERIOD
        # Stall/issue counters accumulate in locals; flushed to stats at
        # observation points only.  The flush goes through the stats
        # instance dict (hoisted once per run): SmStats is a plain
        # dataclass, so ``sd[k] += d`` lands on exactly the attribute a
        # hook reads back, minus the attribute-protocol dispatch the
        # per-cycle tail-hook flush would otherwise pay seven times a
        # cycle.
        sd = stats.__dict__
        d_issued = d_idle = d_mem = d_bar = d_sb = d_acq = d_res = 0
        next_ckpt = None
        if checkpoint_interval and checkpoint_sink is not None:
            next_ckpt = cycle + checkpoint_interval

        while True:
            cycle += 1
            self.cycle = cycle
            issued_this = 0
            nxt = memory._next_retire
            if nxt is not None and nxt <= cycle:
                memory.retire(cycle)
            if cycle >= next_expire:
                next_expire = cycle + _EXPIRE_PERIOD
                while sb_heap and sb_heap[0][0] <= cycle:
                    heappop(sb_heap)
            if tech_wakeups:
                pending = tech.wakeup_pending()
                if pending:
                    for warp in pending:
                        if warp.status is WarpStatus.WAITING_ACQUIRE:
                            warp.status = WarpStatus.READY
                            core.on_acquire_wake(warp.warp_id, warp.slot)
            d_res += self._resident_warp_count

            for unit in units:
                ready = unit.ready
                sleepers = unit.sleepers
                if sleepers and sleepers[0][0] <= cycle:
                    while sleepers and sleepers[0][0] <= cycle:
                        _, wid, slot, is_mem = heappop(sleepers)
                        if is_mem:
                            unit.mem_sleepers -= 1
                        else:
                            unit.nonmem_sleepers -= 1
                        qstate_col[slot] = QS_READY
                        insort(ready, (wid, slot))
                # Blocked counts captured before qualification, like the
                # event stepper (a warp parking during this pass
                # contributes from the next cycle).
                barrier_count = unit.barrier_count
                acquire_count = unit.acquire_count
                qual_mem = qual_sb = False
                if ready:
                    candidates = unit.candidates
                    keep = unit.keep
                    candidates.clear()
                    # `keep` materializes lazily: in the dominant
                    # all-qualify cycle every item lands in candidates
                    # and `ready` is left untouched (qualified-so-far ==
                    # candidates, so the first failure seeds keep from
                    # it).
                    routed = False
                    for item in ready:
                        wid, slot = item
                        kc = kcs[slot]
                        pc = pc_col[slot]
                        # -- inline _issuable: scoreboard, memory
                        #    window, technique gate --
                        if sb_max[slot] <= cycle:
                            sb_ok = True
                        elif stall_col[slot] == SL_SCOREBOARD:
                            # Waking from a scoreboard sleep: the recorded
                            # wake IS the max over this pc's registers, and
                            # only the warp's own issues (none since) can
                            # grow its row — no re-scan needed.
                            sb_ok = wake_col[slot] <= cycle
                            latest = wake_col[slot]
                        else:
                            latest = cycle
                            row = sb_rows[slot]
                            for reg in kc.regs[pc]:
                                r = row[reg]
                                if r > latest:
                                    latest = r
                            sb_ok = latest <= cycle
                        if not sb_ok:
                            stall_col[slot] = SL_SCOREBOARD
                            wake_col[slot] = latest
                        elif (
                            K_LOAD <= kc.kind[pc] <= K_SHARED_LOAD
                            and memory._in_flight_total >= mem_cap
                        ):
                            stall_col[slot] = SL_MEMORY
                            done = memory.earliest_completion(cycle)
                            if done is not None:
                                wake_col[slot] = done
                        elif tech_can_issue is not None and not tech_can_issue(
                            views[slot], kc.insts[pc], cycle
                        ):
                            stall_col[slot] = SL_TECHNIQUE
                        else:
                            stall_col[slot] = SL_NONE
                            candidates.append(item)
                            if routed:
                                keep.append(item)
                            continue
                        # -- qualification failed: flags + routing --
                        if not routed:
                            routed = True
                            keep.clear()
                            keep.extend(candidates)
                        sc = stall_col[slot]
                        if sc == SL_MEMORY:
                            qual_mem = True
                        elif sb_max[slot] - cycle > MEMORY_STALL_HORIZON:
                            qual_mem = True
                        else:
                            qual_sb = True
                        if status_col[slot] != ST_READY:
                            # Technique can_issue parked the warp.
                            qstate_col[slot] = QS_ACQUIRE
                            unit.acquire_count += 1
                        elif wake_col[slot] > cycle:
                            qstate_col[slot] = QS_SLEEPING
                            wake = wake_col[slot]
                            is_mem = sc == SL_MEMORY
                            if is_mem:
                                unit.mem_sleepers += 1
                            else:
                                unit.nonmem_sleepers += 1
                                if wake - cycle > MEMORY_STALL_HORIZON:
                                    heappush(
                                        unit.far,
                                        wake - MEMORY_STALL_HORIZON,
                                    )
                            heappush(sleepers, (wake, wid, slot, is_mem))
                        else:
                            keep.append(item)
                    if routed:
                        ready[:] = keep
                else:
                    candidates = None

                issued_here = 0
                if candidates:
                    sched = unit.sched
                    sched_kind = unit.kind
                    issued_list = unit.issued
                    for _ in range(issue_width):
                        if not candidates:
                            break
                        # -- inline scheduler pick --
                        if sched_kind == 0:  # GTO, default priority
                            chosen = None
                            greedy = sched._greedy
                            if greedy is not None:
                                gwid = greedy.warp_id
                                for item in candidates:
                                    if item[0] == gwid:
                                        chosen = item
                                        break
                            if chosen is None:
                                chosen = candidates[0]  # oldest: sorted
                        elif sched_kind == 1:  # LRR
                            chosen = None
                            last = sched._last_id
                            for item in candidates:
                                if item[0] > last:
                                    chosen = item
                                    break
                            if chosen is None:
                                chosen = candidates[0]
                        else:  # priority hook: real pick over views
                            view_pick = sched.pick(
                                [views[s] for _, s in candidates]
                            )
                            if view_pick is None:
                                break
                            chosen = (view_pick.warp_id, view_pick.slot)
                        wid, slot = chosen
                        # -- inline _execute --
                        kc = kcs[slot]
                        pc = pc_col[slot]
                        kind = kc.kind[pc]
                        view = views[slot]
                        d_issued += 1
                        if tech_on_issue is not None:
                            tech_on_issue(view, kc.insts[pc], cycle)
                        if sanitizer is not None:
                            sanitizer.on_issue(view, kc.insts[pc], cycle)
                        bank_penalty = 0
                        if banked_rf is not None and kc.srcs[pc]:
                            physical = [
                                tech.resolve_physical(view, reg)
                                for reg in kc.srcs[pc]
                            ]
                            bank_penalty = banked_rf.collect(
                                slot, physical
                            ).extra_cycles
                        exited = False
                        if kind == K_ALU:
                            done = cycle + kc.lat[pc] + bank_penalty
                            row = sb_rows[slot]
                            for reg in kc.dsts[pc]:
                                if done > row[reg]:
                                    row[reg] = done
                                    heappush(sb_heap, (done, wid, reg))
                                    if done > sb_max[slot]:
                                        sb_max[slot] = done
                            pc_col[slot] = pc + 1
                            dyn_col[slot] += 1
                            last_progress = cycle
                        elif kind <= K_SHARED_LOAD:  # LOAD / SHARED_LOAD
                            done = memory.issue_load(
                                cycle, shared=kind == K_SHARED_LOAD
                            ) + bank_penalty
                            row = sb_rows[slot]
                            for reg in kc.dsts[pc]:
                                if done > row[reg]:
                                    row[reg] = done
                                    heappush(sb_heap, (done, wid, reg))
                                    if done > sb_max[slot]:
                                        sb_max[slot] = done
                            pc_col[slot] = pc + 1
                            dyn_col[slot] += 1
                            last_progress = cycle
                        elif kind == K_STORE:
                            pc_col[slot] = pc + 1
                            dyn_col[slot] += 1
                            last_progress = cycle
                        elif kind == K_JMP:
                            pc_col[slot] = kc.tgt[pc]
                            dyn_col[slot] += 1
                            last_progress = cycle
                        elif kind == K_BRA:
                            pc_col[slot] = resolve_conditional_branch(
                                pc, kc.tgt[pc], kc.trip[pc], kc.prob[pc],
                                trips[slot], rngs[slot],
                            )
                            dyn_col[slot] += 1
                            last_progress = cycle
                        elif kind == K_EXIT:
                            if observer is not None:
                                # CTA retire/launch hooks may read the
                                # shared counters: flush first.
                                sd["instructions_issued"] += d_issued
                                sd["idle_scheduler_cycles"] += d_idle
                                sd["stall_memory"] += d_mem
                                sd["stall_barrier"] += d_bar
                                sd["stall_scoreboard"] += d_sb
                                sd["stall_acquire"] += d_acq
                                sd["resident_warp_cycles"] += d_res
                                d_issued = d_idle = d_mem = d_bar = 0
                                d_sb = d_acq = d_res = 0
                                self._last_progress_cycle = last_progress
                            self._columnar_on_exit(view, cycle)
                            last_progress = cycle
                            exited = True
                        elif kind == K_BARRIER:
                            # Advance first: the warp resumes past the
                            # barrier when released.
                            pc_col[slot] = pc + 1
                            dyn_col[slot] += 1
                            last_progress = cycle
                            cta = self._ctas_by_id[view.cta_id]
                            if cta.arrive_at_barrier(view):
                                core.on_barrier_release(cta)
                        elif kind == K_ACQUIRE:
                            if tech.try_acquire(view, cycle):
                                pc_col[slot] = pc + 1
                                dyn_col[slot] += 1
                                last_progress = cycle
                            elif status_col[slot] == ST_READY:
                                # Eager retry backoff (see _execute).
                                wake_col[slot] = cycle + _EAGER_RETRY_BACKOFF
                        else:  # K_RELEASE
                            tech.release(view, cycle)
                            pc_col[slot] = pc + 1
                            dyn_col[slot] += 1
                            last_progress = cycle
                        # -- inline notify_issued --
                        if sched_kind == 0:
                            sched.issued_count += 1
                            sched._greedy = view
                        elif sched_kind == 1:
                            sched.issued_count += 1
                            sched._last_id = wid
                        else:
                            sched.notify_issued(view)
                        issued_this += 1
                        issued_here += 1
                        issued_list.append(chosen)
                        if multi_issue:
                            # candidates is dead after a width-1 pick
                            # (cleared on next use) — only maintain it
                            # when a second pick this cycle can read it.
                            candidates.remove(chosen)
                        # -- inline requalification for remaining width.
                        # Guarded on `exited`: after a CTA retire the
                        # slot may already host a fresh warp; the event
                        # stepper's `not chosen.finished` check is
                        # per-object, ours must not read the recycled
                        # slot. --
                        if (
                            not exited
                            and status_col[slot] == ST_READY
                            and wake_col[slot] <= cycle
                        ):
                            pc = pc_col[slot]
                            if sb_max[slot] <= cycle:
                                sb_ok = True
                            else:
                                latest = cycle
                                row = sb_rows[slot]
                                for reg in kc.regs[pc]:
                                    r = row[reg]
                                    if r > latest:
                                        latest = r
                                sb_ok = latest <= cycle
                            if not sb_ok:
                                stall_col[slot] = SL_SCOREBOARD
                                wake_col[slot] = latest
                            elif (
                                K_LOAD <= kc.kind[pc] <= K_SHARED_LOAD
                                and memory._in_flight_total >= mem_cap
                            ):
                                stall_col[slot] = SL_MEMORY
                                done = memory.earliest_completion(cycle)
                                if done is not None:
                                    wake_col[slot] = done
                            elif (
                                tech_can_issue is not None
                                and not tech_can_issue(
                                    views[slot], kc.insts[pc], cycle
                                )
                            ):
                                stall_col[slot] = SL_TECHNIQUE
                            else:
                                stall_col[slot] = SL_NONE
                                if multi_issue:
                                    insort(candidates, chosen)
                    for item in issued_list:
                        # -- inline dispose_issued (qstate-guarded,
                        #    idempotent) --
                        wid, slot = item
                        if qstate_col[slot] != QS_READY:
                            continue  # finished or re-homed same-pass
                        st = status_col[slot]
                        if st == ST_READY:
                            wake = wake_col[slot]
                            if wake > cycle:  # eager acquire backoff
                                ready.remove(item)
                                qstate_col[slot] = QS_SLEEPING
                                is_mem = stall_col[slot] == SL_MEMORY
                                if is_mem:
                                    unit.mem_sleepers += 1
                                else:
                                    unit.nonmem_sleepers += 1
                                    if wake - cycle > MEMORY_STALL_HORIZON:
                                        heappush(
                                            unit.far,
                                            wake - MEMORY_STALL_HORIZON,
                                        )
                                heappush(sleepers, (wake, wid, slot, is_mem))
                        elif st == ST_BARRIER:
                            ready.remove(item)
                            qstate_col[slot] = QS_BARRIER
                            unit.barrier_count += 1
                        elif st == ST_ACQUIRE:
                            ready.remove(item)
                            qstate_col[slot] = QS_ACQUIRE
                            unit.acquire_count += 1
                    issued_list.clear()
                if issued_here == 0:
                    d_idle += 1
                    if acquire_count:
                        d_acq += 1
                    else:
                        # Inline sleeper_flags: prune the far heap,
                        # then the aggregate-count classification.
                        far = unit.far
                        while far and far[0] <= cycle:
                            heappop(far)
                        far_n = len(far)
                        if qual_mem or unit.mem_sleepers > 0 or far_n > 0:
                            d_mem += 1
                        elif barrier_count:
                            d_bar += 1
                        elif qual_sb or unit.nonmem_sleepers > far_n:
                            d_sb += 1

            if tail_hooks or single_step:
                sd["instructions_issued"] += d_issued
                sd["idle_scheduler_cycles"] += d_idle
                sd["stall_memory"] += d_mem
                sd["stall_barrier"] += d_bar
                sd["stall_scoreboard"] += d_sb
                sd["stall_acquire"] += d_acq
                sd["resident_warp_cycles"] += d_res
                d_issued = d_idle = d_mem = d_bar = d_sb = d_acq = d_res = 0
                self._last_progress_cycle = last_progress
                if debug_inv:
                    tech.check_invariants(cycle)
                if sanitizer is not None:
                    sanitizer.on_cycle(self)
                if observer is not None:
                    observer.on_cycle(self)
                if single_step:
                    return issued_this

            # -- run-loop controls (mirrors the generic run loop) --
            if issued_this == 0 and (self.ctas_pending or resident_ctas):
                # Inline fast-forward: same targets as _fast_forward —
                # memory retired at cycle start, so _next_retire is the
                # earliest completion verbatim.  The scoreboard target is
                # ColumnarScoreboard.earliest_ready's lazy heap-peek
                # (pop stale/superseded entries until a live one), over
                # the locals already in hand.
                target = None
                while sb_heap:
                    ready_at, hwid, hreg = sb_heap[0]
                    if ready_at > cycle:
                        hslot = wid2slot.get(hwid)
                        if hslot is not None and sb_rows[hslot][hreg] == ready_at:
                            target = ready_at
                            break
                    heappop(sb_heap)
                mem_t = memory._next_retire
                if mem_t is not None and (target is None or mem_t < target):
                    target = mem_t
                # Completion-backed minimum so far: creditable against
                # the watchdog (see _fast_forward) iff it survives as
                # the overall minimum below.
                creditable = target
                for unit in units:
                    heap = unit.sleepers
                    if heap and (target is None or heap[0][0] < target):
                        target = heap[0][0]
                if target is None:
                    sd["instructions_issued"] += d_issued
                    sd["idle_scheduler_cycles"] += d_idle
                    sd["stall_memory"] += d_mem
                    sd["stall_barrier"] += d_bar
                    sd["stall_scoreboard"] += d_sb
                    sd["stall_acquire"] += d_acq
                    sd["resident_warp_cycles"] += d_res
                    d_issued = d_idle = d_mem = d_bar = 0
                    d_sb = d_acq = d_res = 0
                    self._last_progress_cycle = last_progress
                    self._fast_forward()  # no targets: raises deadlock
                    raise AssertionError("unreachable")
                skip = target - cycle - 1
                if skip > 0:
                    cycle += skip
                    self.cycle = cycle
                    if creditable is not None and creditable == target:
                        # Legitimate waiting on a pending completion —
                        # not livelock polling (see _fast_forward).
                        last_progress += skip
                    d_idle += skip * num_sched
                    d_mem += skip * num_sched
                    d_res += skip * self._resident_warp_count
                    if observer is not None:
                        sd["instructions_issued"] += d_issued
                        sd["idle_scheduler_cycles"] += d_idle
                        sd["stall_memory"] += d_mem
                        sd["stall_barrier"] += d_bar
                        sd["stall_scoreboard"] += d_sb
                        sd["stall_acquire"] += d_acq
                        sd["resident_warp_cycles"] += d_res
                        d_issued = d_idle = d_mem = d_bar = 0
                        d_sb = d_acq = d_res = 0
                        self._last_progress_cycle = last_progress
                        observer.on_fast_forward(self, skip)
            if window and cycle - last_progress > window:
                sd["instructions_issued"] += d_issued
                sd["idle_scheduler_cycles"] += d_idle
                sd["stall_memory"] += d_mem
                sd["stall_barrier"] += d_bar
                sd["stall_scoreboard"] += d_sb
                sd["stall_acquire"] += d_acq
                sd["resident_warp_cycles"] += d_res
                self._last_progress_cycle = last_progress
                diagnostic = self.diagnostic()
                if observer is not None:
                    observer.on_watchdog(self, diagnostic.summary())
                raise SimulationDeadlockError(
                    f"SM {self.sm_id} made no forward progress for "
                    f"{cycle - last_progress} cycles "
                    f"(watchdog window {window}) — deadlock/livelock; "
                    f"{diagnostic.summary()}",
                    diagnostic=diagnostic,
                )
            if cycle > max_cycles:
                sd["instructions_issued"] += d_issued
                sd["idle_scheduler_cycles"] += d_idle
                sd["stall_memory"] += d_mem
                sd["stall_barrier"] += d_bar
                sd["stall_scoreboard"] += d_sb
                sd["stall_acquire"] += d_acq
                sd["resident_warp_cycles"] += d_res
                self._last_progress_cycle = last_progress
                raise CycleLimitExceededError(
                    f"SM {self.sm_id} exceeded {max_cycles} cycles — "
                    "runaway kernel (or a livelock below the watchdog's "
                    "sensitivity)",
                    diagnostic=self.diagnostic(),
                )
            if not resident_ctas and not self.ctas_pending:
                break
            if next_ckpt is not None and cycle >= next_ckpt:
                next_ckpt = cycle + checkpoint_interval
                # The snapshot reads SmStats and _last_progress_cycle:
                # flush the delta locals first.  Timing-neutral — the
                # totals are identical whenever they are flushed.
                sd["instructions_issued"] += d_issued
                sd["idle_scheduler_cycles"] += d_idle
                sd["stall_memory"] += d_mem
                sd["stall_barrier"] += d_bar
                sd["stall_scoreboard"] += d_sb
                sd["stall_acquire"] += d_acq
                sd["resident_warp_cycles"] += d_res
                d_issued = d_idle = d_mem = d_bar = d_sb = d_acq = d_res = 0
                self._last_progress_cycle = last_progress
                checkpoint_sink(self.save_checkpoint())
                if observer is not None:
                    observer.on_checkpoint(self, cycle)

        sd["instructions_issued"] += d_issued
        sd["idle_scheduler_cycles"] += d_idle
        sd["stall_memory"] += d_mem
        sd["stall_barrier"] += d_bar
        sd["stall_scoreboard"] += d_sb
        sd["stall_acquire"] += d_acq
        sd["resident_warp_cycles"] += d_res
        self._last_progress_cycle = last_progress
        stats.cycles = cycle
        if observer is not None:
            observer.on_run_end(self)
        return stats

    def _run_native(
        self,
        max_cycles: int,
        checkpoint_interval: int = 0,
        checkpoint_sink=None,
    ) -> SmStats:
        """Batched run loop on the C backend (``repro._native``).

        The extension drives the exact ``_run_columnar`` algorithm over
        the *same* ColumnarCore state, re-entering Python only at hook
        observation points, so results, checkpoint payloads, and hook
        side effects are bit-identical.  Hook-override detection (the
        class-identity trick) happens here; the error paths return a
        status code and the typed exceptions are raised from this frame
        with the exact pure-Python messages.  ``step()`` drivers keep
        using the pure stepper — only the batched ``run()`` is native.
        """
        tech = self.technique
        tech_cls = type(tech)
        can_issue = (
            None if tech_cls.can_issue is SmTechniqueState.can_issue
            else tech.can_issue
        )
        on_issue = (
            None if tech_cls.on_issue is SmTechniqueState.on_issue
            else tech.on_issue
        )
        wakeups = (
            tech_cls.wakeup_pending is not SmTechniqueState.wakeup_pending
        )
        # The memory model is simulator core, not a hook: when it is the
        # stock MemoryModel (no subclass, no instance-level monkeypatch,
        # stock rng), the extension runs its C transliteration; any
        # customization drops just the memory calls back to Python.
        mem = self.memory
        mem_native = (
            type(mem) is MemoryModel
            and type(mem._rng) is DeterministicRng
            and "issue_load" not in mem.__dict__
            and "retire" not in mem.__dict__
        )
        sink = None
        if checkpoint_interval and checkpoint_sink is not None:
            sink = checkpoint_sink
        status, aux = _native.run_columnar(
            self,
            max_cycles,
            checkpoint_interval if sink is not None else 0,
            sink,
            can_issue,
            on_issue,
            wakeups,
            mem_native,
        )
        if status == 0:
            return aux
        if status == 2:
            # No issuable warp and no pending timer: _fast_forward
            # re-derives the (empty) target set and raises the
            # diagnostic-bearing SimulationDeadlockError.
            self._fast_forward()
            raise AssertionError("unreachable")
        if status == 3:
            window = self.config.watchdog_window
            diagnostic = self.diagnostic()
            if self._observer is not None:
                self._observer.on_watchdog(self, diagnostic.summary())
            raise SimulationDeadlockError(
                f"SM {self.sm_id} made no forward progress for "
                f"{self.cycle - self._last_progress_cycle} cycles "
                f"(watchdog window {window}) — deadlock/livelock; "
                f"{diagnostic.summary()}",
                diagnostic=diagnostic,
            )
        if status == 4:
            raise CycleLimitExceededError(
                f"SM {self.sm_id} exceeded {max_cycles} cycles — "
                "runaway kernel (or a livelock below the watchdog's "
                "sensitivity)",
                diagnostic=self.diagnostic(),
            )
        raise AssertionError(f"unknown native-run status {status!r}")

    def _step_scan(self) -> int:
        """Naive reference stepper: scan every resident warp, every cycle.

        Retained as the bit-identity oracle for the event engine (and
        selectable via ``issue_engine="scan"``): simple enough to audit
        by eye, slow enough to never be the default.
        """
        self.cycle += 1
        issued = 0
        cycle = self.cycle
        self.memory.retire(cycle)
        if cycle % _EXPIRE_PERIOD == 0:
            self.scoreboard.expire(cycle)

        for warp in self.technique.wakeup_pending():
            if warp.status is WarpStatus.WAITING_ACQUIRE:
                warp.status = WarpStatus.READY

        self.stats.resident_warp_cycles += self._resident_warp_count

        for sched, warps, candidates in self._sched_units:
            candidates.clear()
            saw_barrier = saw_acquire = saw_scoreboard = saw_memory = False
            for warp in warps:
                if warp.status is WarpStatus.FINISHED:
                    continue
                if warp.status is WarpStatus.AT_BARRIER:
                    saw_barrier = True
                    continue
                if warp.status is WarpStatus.WAITING_ACQUIRE:
                    saw_acquire = True
                    continue
                if warp.wake_cycle > cycle:
                    # Still inside a known stall window: the cached
                    # reason is exact (nothing the warp depends on can
                    # complete earlier than its recorded wake cycle).
                    if warp.stalled_on == "memory" or (
                        warp.wake_cycle - cycle > 20
                    ):
                        saw_memory = True
                    else:
                        saw_scoreboard = True
                    continue
                inst = warp.current_instruction()
                if self._issuable(warp, inst):
                    candidates.append(warp)
                elif warp.stalled_on == "memory":
                    saw_memory = True
                elif self.scoreboard.has_pending_memory(
                    warp.warp_id, cycle, horizon=20
                ):
                    saw_memory = True
                else:
                    saw_scoreboard = True

            issued_here = 0
            for _ in range(self.config.issue_width_per_scheduler):
                chosen = sched.pick(candidates)
                if chosen is None:
                    break
                inst = chosen.current_instruction()
                before = chosen.dynamic_instructions
                self._execute(chosen, inst)
                if chosen.dynamic_instructions != before:
                    # pc advanced or the warp finished — real forward
                    # progress, as opposed to a failed acquire poll.
                    self._last_progress_cycle = cycle
                sched.notify_issued(chosen)
                issued += 1
                issued_here += 1
                # The issued warp may have changed state (stalled on its
                # own result, parked, finished); re-qualify it for the
                # remaining slots of this cycle instead of re-scanning
                # every warp.  Re-inserted in id position — candidates
                # stay sorted, which the sort-free LRR pick relies on.
                candidates.remove(chosen)
                if (
                    not chosen.finished
                    and chosen.status is WarpStatus.READY
                    and chosen.wake_cycle <= cycle
                    and self._issuable(chosen, chosen.current_instruction())
                ):
                    insort(candidates, chosen, key=_by_warp_id)
            if issued_here == 0:
                self.stats.idle_scheduler_cycles += 1
                if saw_acquire:
                    self.stats.stall_acquire += 1
                elif saw_memory:
                    self.stats.stall_memory += 1
                elif saw_barrier:
                    self.stats.stall_barrier += 1
                elif saw_scoreboard:
                    self.stats.stall_scoreboard += 1
        if self.config.debug_invariants:
            self.technique.check_invariants(cycle)
        if self._sanitizer is not None:
            self._sanitizer.on_cycle(self)
        if self._observer is not None:
            self._observer.on_cycle(self)
        return issued

    # -- failure diagnostics ------------------------------------------------------
    def diagnostic(self) -> DeadlockDiagnostic:
        """Structured snapshot of the SM for deadlock/invariant errors."""
        warps = tuple(
            WarpSnapshot(
                warp_id=w.warp_id,
                cta_id=w.cta_id,
                pc=w.pc,
                status=w.status.value,
                stalled_on=w.stalled_on,
                wake_cycle=w.wake_cycle,
                holds_extended_set=w.holds_extended_set,
                srp_section=w.srp_section,
            )
            for cta in self.resident_ctas
            for w in cta.warps
            if not w.finished
        )
        scoreboard = {
            w.warp_id: self.scoreboard.pending_count(w.warp_id, self.cycle)
            for cta in self.resident_ctas
            for w in cta.warps
            if not w.finished
        }
        return DeadlockDiagnostic(
            sm_id=self.sm_id,
            cycle=self.cycle,
            last_progress_cycle=self._last_progress_cycle,
            warps=warps,
            scoreboard_pending=scoreboard,
            technique=self.technique.debug_snapshot(),
        )

    # -- checkpoint/restore -------------------------------------------------------
    def save_checkpoint(self) -> dict:
        """JSON-safe snapshot of the SM's full mutable state, taken at a
        cycle boundary.  See :mod:`repro.sim.checkpoint` for the payload
        layout and the bit-identity contract."""
        from repro.sim.checkpoint import capture_sm

        return capture_sm(self)

    def restore_checkpoint(self, payload: dict) -> None:
        """Rebuild this SM's state from a checkpoint payload.

        The SM must have been constructed with the same arguments as the
        checkpointed one (kernel, config, technique, seed); constructor-
        launched CTAs and queues are torn down and rebuilt.  Raises the
        typed :class:`repro.errors.CheckpointError` family on schema,
        engine, or context mismatch — never resumes silently."""
        from repro.sim.checkpoint import restore_into

        restore_into(self, payload)

    def _fast_forward(self) -> None:
        """Jump the clock to the next event when no warp can issue.

        Idle cycles are pure waiting: nothing can change until a pending
        write completes (scoreboard) or an in-flight load returns.  The
        skipped cycles are accounted exactly as if stepped one by one
        (idle/stall/resident-warp counters scale by the skip length).
        A warp parked at a barrier or acquire only wakes through another
        warp's progress, which itself requires one of those two timers —
        so no-timer-and-not-done means deadlock, and we raise.

        The three target sources are all O(log n) reads in event mode:
        the scoreboard's completion heap, the memory model's cached next
        retirement, and the per-scheduler sleeper-heap minima (every
        READY warp with a future wake cycle is in a sleeper heap by
        construction).  Scan mode iterates all warps instead, and both
        provably agree on ``min(targets)``.
        """
        targets = []
        sb = self.scoreboard.earliest_ready(self.cycle)
        if sb is not None:
            targets.append(sb)
        mem = self.memory.earliest_completion(self.cycle)
        if mem is not None:
            targets.append(mem)
        # Completion-backed targets (a pending scoreboard write or an
        # in-flight load) are *creditable*: a skip to one of them is
        # legitimate waiting on the machine, not fruitless polling, so
        # it must not count against the livelock watchdog — a single
        # DRAM access longer than the watchdog window would otherwise be
        # misreported as a livelock.  Pure sleeper-wake targets (eager
        # acquire-retry backoffs) stay uncredited: those short skips are
        # exactly the polling the watchdog exists to bound.
        creditable = min(targets) if targets else None
        # Eager acquire-retry backoffs are self-imposed timers: a READY
        # warp with a future wake_cycle will poll again at that cycle.
        if self._engine is not None:
            wake = self._engine.earliest_wake()
            if wake is not None:
                targets.append(wake)
        elif self._columnar is not None:
            wake = self._columnar.earliest_wake()
            if wake is not None:
                targets.append(wake)
        else:
            for warps in self._warps_by_scheduler:
                for w in warps:
                    if w.status is WarpStatus.READY and w.wake_cycle > self.cycle:
                        targets.append(w.wake_cycle)
        if not targets:
            diagnostic = self.diagnostic()
            raise SimulationDeadlockError(
                f"SM {self.sm_id} deadlocked at cycle {self.cycle}: "
                f"no issuable warp and no pending timer; "
                f"{diagnostic.summary()}",
                diagnostic=diagnostic,
            )
        target = min(targets)
        skip = max(0, target - self.cycle - 1)
        if skip == 0:
            return
        self.cycle += skip
        if creditable is not None and creditable == target:
            self._last_progress_cycle += skip
        self.stats.idle_scheduler_cycles += skip * len(self.schedulers)
        self.stats.stall_memory += skip * len(self.schedulers)
        self.stats.resident_warp_cycles += skip * self._resident_warp_count
        if self._observer is not None:
            self._observer.on_fast_forward(self, skip)

    def run(
        self,
        max_cycles: int = 50_000_000,
        checkpoint_interval: int = 0,
        checkpoint_sink=None,
    ) -> SmStats:
        """Run to completion.

        With ``checkpoint_interval > 0`` and a ``checkpoint_sink``
        callable, a full state snapshot (:meth:`save_checkpoint`) is
        handed to the sink roughly every ``checkpoint_interval`` cycles
        — the SM does no file I/O itself; persistence policy belongs to
        the caller (see :func:`repro.sim.checkpoint.write_checkpoint`).
        Emission is timing-neutral: the schedule and every stat are
        bit-identical with and without checkpointing.

        Raises :class:`SimulationDeadlockError` when the schedule stops
        making forward progress — immediately when no timer is pending
        (provable deadlock), or after ``config.watchdog_window`` cycles
        of fruitless polling (livelock: warps keep retrying an acquire
        that can never be granted).  Raises
        :class:`CycleLimitExceededError` at the ``max_cycles`` backstop.
        """
        if self._columnar is not None:
            if self._use_native:
                return self._run_native(
                    max_cycles,
                    checkpoint_interval=checkpoint_interval,
                    checkpoint_sink=checkpoint_sink,
                )
            return self._run_columnar(
                max_cycles,
                checkpoint_interval=checkpoint_interval,
                checkpoint_sink=checkpoint_sink,
            )
        window = self.config.watchdog_window
        next_ckpt = None
        if checkpoint_interval and checkpoint_sink is not None:
            next_ckpt = self.cycle + checkpoint_interval
        while not self.done:
            issued = self.step()
            if issued == 0 and not self.done:
                self._fast_forward()
            if next_ckpt is not None and self.cycle >= next_ckpt and not self.done:
                next_ckpt = self.cycle + checkpoint_interval
                checkpoint_sink(self.save_checkpoint())
                if self._observer is not None:
                    self._observer.on_checkpoint(self, self.cycle)
            if window and self.cycle - self._last_progress_cycle > window:
                diagnostic = self.diagnostic()
                if self._observer is not None:
                    self._observer.on_watchdog(self, diagnostic.summary())
                raise SimulationDeadlockError(
                    f"SM {self.sm_id} made no forward progress for "
                    f"{self.cycle - self._last_progress_cycle} cycles "
                    f"(watchdog window {window}) — deadlock/livelock; "
                    f"{diagnostic.summary()}",
                    diagnostic=diagnostic,
                )
            if self.cycle > max_cycles:
                raise CycleLimitExceededError(
                    f"SM {self.sm_id} exceeded {max_cycles} cycles — "
                    "runaway kernel (or a livelock below the watchdog's "
                    "sensitivity)",
                    diagnostic=self.diagnostic(),
                )
        self.stats.cycles = self.cycle
        if self._observer is not None:
            self._observer.on_run_end(self)
        return self.stats
