"""Warp state machine.

A warp walks the kernel's instruction list with a private program
counter, resolving branch direction from the workload's annotations
(deterministic loop trip counts, or probabilities drawn from the warp's
own RNG stream).  The SM pipeline transitions warps between statuses;
the warp itself only knows how to fetch its next instruction and advance.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.isa.instructions import Instruction
from repro.isa.kernel import Kernel
from repro.sim.rand import DeterministicRng


class WarpStatus(enum.Enum):
    READY = "ready"                  # eligible for issue
    AT_BARRIER = "at_barrier"        # arrived at BAR.SYNC, waiting for CTA
    WAITING_ACQUIRE = "wait_acquire"  # blocked on extended-set acquire
    FINISHED = "finished"            # executed EXIT


def resolve_conditional_branch(
    pc: int,
    target_pc: int,
    trip_count: Optional[int],
    prob: float,
    trips: dict[int, int],
    rng: DeterministicRng,
) -> int:
    """Direction of a conditional branch at ``pc``: the behavior half of
    the warp's control flow, shared between :meth:`Warp.resolve_branch_target`
    and the columnar stepper (``repro.sim.columnar``), which reads the
    pre-decoded annotations out of :class:`~repro.sim.columnar.KernelColumns`
    instead of the ``Instruction``.  Both callers must sample the same RNG
    stream in the same order — keeping the logic in one place is what makes
    the engines' branch outcomes bit-identical by construction.

    Trip-count-annotated branches iterate deterministically
    (``trip_count`` taken transfers, then one fall-through, then the
    counter rearms for outer-loop re-entry).  Probability-annotated
    branches sample the warp's RNG (only when ``prob > 0.0`` — an
    unannotated branch must not consume a draw).
    """
    if trip_count is not None:
        remaining = trips.get(pc, trip_count)
        if remaining > 0:
            trips[pc] = remaining - 1
            return target_pc
        trips[pc] = trip_count
        return pc + 1
    if prob > 0.0 and rng.uniform() < prob:
        return target_pc
    return pc + 1


class Warp:
    """One warp resident on an SM."""

    __slots__ = (
        "warp_id", "cta_id", "kernel", "pc", "status", "rng",
        "_trips_remaining", "holds_extended_set", "srp_section",
        "dynamic_instructions", "acquire_block_since",
        "owns_pair_lock", "stalled_on", "wake_cycle", "slot", "qstate",
    )

    def __init__(
        self,
        warp_id: int,
        cta_id: int,
        kernel: Kernel,
        rng: DeterministicRng,
        slot: int | None = None,
    ) -> None:
        self.warp_id = warp_id
        self.cta_id = cta_id
        # SM-local warp slot: indexes the per-SM hardware structures
        # (SRP status bit, register-file base block, banked-RF lane).
        # warp_id is globally unique and monotonic; two warps whose ids
        # differ by max_warps_per_sm must still get distinct slots, so
        # the SM allocates slots explicitly.  Defaults to warp_id for
        # directly constructed warps (tests, single-wave setups).
        self.slot = warp_id if slot is None else slot
        self.kernel = kernel
        self.pc = 0
        self.status = WarpStatus.READY
        self.rng = rng
        self._trips_remaining: dict[int, int] = {}
        # RegMutex state
        self.holds_extended_set = False
        self.srp_section: Optional[int] = None
        # Diagnostics
        self.dynamic_instructions = 0
        self.acquire_block_since: Optional[int] = None
        # OWF baseline state
        self.owns_pair_lock = False
        # Why the warp could not issue last time it was considered
        # ("scoreboard" | "memory" | "technique" | None) — feeds the
        # stall breakdown.
        self.stalled_on: Optional[str] = None
        # Scheduler skip hint: the warp cannot possibly issue before this
        # cycle (its blocking scoreboard entries cannot change while it
        # is stalled, because only the warp's own issues add entries).
        self.wake_cycle = 0
        # Which event-engine structure owns the warp (QS_* constants in
        # repro.sim.wakequeue) — makes unblock hooks idempotent.  Stays
        # 0 (QS_OUT) under the scan stepper.
        self.qstate = 0

    # -- instruction access --------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.status is WarpStatus.FINISHED

    def current_instruction(self) -> Instruction:
        return self.kernel[self.pc]

    # -- control flow ----------------------------------------------------------
    def resolve_branch_target(self, inst: Instruction) -> int:
        """Next PC after executing branch ``inst`` at the current PC.

        Trip-count-annotated branches iterate deterministically
        (``trip_count`` taken transfers, then one fall-through, then the
        counter rearms for outer-loop re-entry).  Probability-annotated
        branches sample the warp's RNG.  Unannotated conditional branches
        fall through.
        """
        if not inst.is_branch:
            raise ValueError("resolve_branch_target on a non-branch")
        if not inst.is_conditional_branch:  # JMP
            return self.kernel.label_pc(inst.target)
        return resolve_conditional_branch(
            self.pc,
            self.kernel.label_pc(inst.target),
            inst.trip_count,
            inst.taken_probability if inst.taken_probability is not None else 0.0,
            self._trips_remaining,
            self.rng,
        )

    def advance(self, next_pc: int) -> None:
        self.pc = next_pc
        self.dynamic_instructions += 1

    def finish(self) -> None:
        self.status = WarpStatus.FINISHED
        self.dynamic_instructions += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Warp(id={self.warp_id}, cta={self.cta_id}, pc={self.pc}, "
            f"{self.status.value})"
        )
