/* nativemodule.c — optional C backend for the columnar issue engine.
 *
 * This is a line-for-line transliteration of
 * StreamingMultiprocessor._run_columnar (src/repro/sim/sm.py) operating
 * on the *same* Python objects: the ColumnarCore column lists, the
 * per-unit ready/sleeper/far structures, the scheduler and technique
 * objects.  No state is mirrored into C between cycles — every list,
 * dict and counter the pure-Python stepper mutates is mutated here
 * through the CPython API, so views, checkpoints, hooks and the
 * sanitizer observe bit-identical state at every observation point.
 *
 * Python is re-entered only where the pure stepper calls a hook:
 * technique can_issue/on_issue/try_acquire/release/wakeup_pending,
 * sanitizer + observer strides, CTA barrier arrival, memory model
 * calls, checkpoint emission.  Everything else (qualification in
 * launch order, scoreboard pending-maxima, sleeper fast-forward,
 * stall attribution) runs as plain C over unboxed longs.
 *
 * Error contract: any hook may raise; we return NULL *without*
 * flushing the delta-stat locals, matching the pure stepper (whose
 * frame locals are lost when an exception unwinds).  The watchdog /
 * cycle-limit / no-target-deadlock paths flush first and return a
 * status code; sm.py raises the typed error with the exact message.
 *
 * Return protocol: run_columnar(...) -> (status, aux)
 *   0 = run complete            aux = stats (cycles already stamped)
 *   2 = deadlock, no timer      aux = None (caller calls _fast_forward)
 *   3 = watchdog tripped        aux = None (caller raises)
 *   4 = cycle limit exceeded    aux = None (caller raises)
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <string.h>
#include <limits.h>

/* Column encodings — mirrored from repro.sim.columnar / wakequeue.
 * sm.py cross-checks every one of these against the Python constants
 * at import time and refuses to use the extension on drift. */
#define ST_READY 0
#define ST_BARRIER 1
#define ST_ACQUIRE 2
#define ST_FINISHED 3
#define SL_NONE 0
#define SL_SCOREBOARD 1
#define SL_MEMORY 2
#define SL_TECHNIQUE 3
#define QS_OUT 0
#define QS_READY 1
#define QS_SLEEPING 2
#define QS_BARRIER 3
#define QS_ACQUIRE 4
#define K_ALU 0
#define K_LOAD 1
#define K_SHARED_LOAD 2
#define K_STORE 3
#define K_EXIT 4
#define K_JMP 5
#define K_BRA 6
#define K_BARRIER 7
#define K_ACQUIRE 8
#define K_RELEASE 9

#define TRIP_NONE LONG_MIN
#define U64_MASK 0xFFFFFFFFFFFFFFFFULL

/* ---- interned attribute names -------------------------------------- */
static PyObject *S_state, *S_warp_id, *S_slot, *S_cta_id, *S_status,
    *S_issued_count, *S_greedy, *S_last_id, *S_barrier_count,
    *S_acquire_count, *S_mem_sleepers, *S_nonmem_sleepers,
    *S_next_retire, *S_in_flight_total, *S_instructions_issued,
    *S_idle_scheduler_cycles, *S_stall_memory, *S_stall_barrier,
    *S_stall_scoreboard, *S_stall_acquire, *S_resident_warp_cycles,
    *S_cycles, *S_cycle, *S_last_progress_cycle, *S_resident_warp_count,
    *S_ctas_pending, *S_arrive_at_barrier, *S_extra_cycles,
    *S_kind, *S_lat, *S_tgt, *S_trip, *S_prob, *S_dsts, *S_srcs,
    *S_regs, *S_insts, *S_units, *S_sched, *S_ready, *S_candidates,
    *S_keep, *S_issued, *S_sleepers, *S_far, *S_pick, *S_notify_issued,
    *S_hot, *S_wid2slot, *S_columnar, *S_memory, *S_retire,
    *S_issue_load, *S_earliest_completion, *S_technique, *S_sanitizer_a,
    *S_banked_rf, *S_observer_a, *S_stats, *S_resident_ctas,
    *S_ctas_by_id, *S_columnar_on_exit, *S_save_checkpoint, *S_config,
    *S_issue_width_per_scheduler, *S_debug_invariants, *S_watchdog_window,
    *S_max_in_flight, *S_on_issue, *S_on_cycle, *S_on_fast_forward,
    *S_on_checkpoint, *S_on_run_end, *S_wakeup_pending, *S_try_acquire,
    *S_release, *S_check_invariants, *S_resolve_physical, *S_collect,
    *S_on_acquire_wake, *S_on_barrier_release, *S_READY_attr,
    *S_WAITING_ACQUIRE_attr, *S_in_flight_d, *S_rng_a, *S_loads_issued,
    *S_l1_hits, *S_l1_hit_latency, *S_dram_latency, *S_l1_hit_rate;

/* ---- small helpers -------------------------------------------------- */

static inline long
lget(PyObject *list, Py_ssize_t i)
{
    return PyLong_AsLong(PyList_GET_ITEM(list, i));
}

static inline int
lset(PyObject *list, Py_ssize_t i, long v)
{
    PyObject *o = PyLong_FromLong(v);
    if (o == NULL)
        return -1;
    return PyList_SetItem(list, i, o);
}

static long
get_long_attr(PyObject *obj, PyObject *name, int *err)
{
    PyObject *o = PyObject_GetAttr(obj, name);
    if (o == NULL) {
        *err = 1;
        return 0;
    }
    long v = PyLong_AsLong(o);
    Py_DECREF(o);
    if (v == -1 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    return v;
}

static int
set_long_attr(PyObject *obj, PyObject *name, long v)
{
    PyObject *o = PyLong_FromLong(v);
    if (o == NULL)
        return -1;
    int r = PyObject_SetAttr(obj, name, o);
    Py_DECREF(o);
    return r;
}

static int
add_long_attr(PyObject *obj, PyObject *name, long d)
{
    if (d == 0)
        return 0;
    int err = 0;
    long v = get_long_attr(obj, name, &err);
    if (err)
        return -1;
    return set_long_attr(obj, name, v + d);
}

/* ---- heapq transliteration (PyObject_RichCompareBool ordering) ------ */

/* Ordering fast path: the queue/heap entries are small-int tuples
 * ((wake, wid, slot, is_mem), (done, wid, reg), (wid, slot)) or bare
 * ints, so compare element-wise as C longs when possible.  Bools are
 * PyLong subtypes and compare numerically, exactly like CPython's
 * tuple/long rich comparison; anything else (or an overflowing int)
 * falls back to PyObject_RichCompareBool. */
static int
fast_cmp2(PyObject *a, PyObject *b, int op)
{
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b)) {
        Py_ssize_t na = PyTuple_GET_SIZE(a), nb = PyTuple_GET_SIZE(b);
        Py_ssize_t n = na < nb ? na : nb;
        for (Py_ssize_t i = 0; i < n; i++) {
            PyObject *x = PyTuple_GET_ITEM(a, i);
            PyObject *y = PyTuple_GET_ITEM(b, i);
            if (!PyLong_Check(x) || !PyLong_Check(y))
                goto fallback;
            int ovx = 0, ovy = 0;
            long lx = PyLong_AsLongAndOverflow(x, &ovx);
            long ly = PyLong_AsLongAndOverflow(y, &ovy);
            if (ovx || ovy)
                goto fallback;
            if ((lx == -1 || ly == -1) && PyErr_Occurred())
                return -1;
            if (lx != ly)
                return op == Py_LT ? lx < ly : 0;
        }
        if (op == Py_EQ)
            return na == nb;
        return na < nb;
    }
    if (PyLong_CheckExact(a) && PyLong_CheckExact(b)) {
        int ovx = 0, ovy = 0;
        long lx = PyLong_AsLongAndOverflow(a, &ovx);
        long ly = PyLong_AsLongAndOverflow(b, &ovy);
        if (!ovx && !ovy) {
            if ((lx == -1 || ly == -1) && PyErr_Occurred())
                return -1;
            return op == Py_LT ? lx < ly : lx == ly;
        }
    }
fallback:
    return PyObject_RichCompareBool(a, b, op);
}

static inline int
fast_lt(PyObject *a, PyObject *b)
{
    return fast_cmp2(a, b, Py_LT);
}

static int
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int lt = fast_lt(newitem, parent);
        if (lt < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (!lt)
            break;
        Py_INCREF(parent);
        PyList_SetItem(heap, pos, parent);
        pos = parentpos;
    }
    PyList_SetItem(heap, pos, newitem);
    return 0;
}

static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int lt = fast_lt(PyList_GET_ITEM(heap, childpos),
                             PyList_GET_ITEM(heap, rightpos));
            if (lt < 0) {
                Py_DECREF(newitem);
                return -1;
            }
            if (!lt)
                childpos = rightpos;
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        PyList_SetItem(heap, pos, child);
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    PyList_SetItem(heap, pos, newitem);
    return heap_siftdown(heap, startpos, pos);
}

/* heappush(heap, item); does NOT steal item. */
static int
heap_push(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) < 0)
        return -1;
    return heap_siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* heappop(heap) -> new reference, or NULL on error.  heap non-empty. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (n == 1)
        return last;
    PyObject *ret = PyList_GET_ITEM(heap, 0);
    Py_INCREF(ret);
    PyList_SetItem(heap, 0, last);
    if (heap_siftup(heap, 0) < 0) {
        Py_DECREF(ret);
        return NULL;
    }
    return ret;
}

/* bisect.insort (insort_right); does NOT steal item. */
static int
list_insort(PyObject *list, PyObject *item)
{
    Py_ssize_t lo = 0, hi = PyList_GET_SIZE(list);
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        int lt = fast_lt(item, PyList_GET_ITEM(list, mid));
        if (lt < 0)
            return -1;
        if (lt)
            hi = mid;
        else
            lo = mid + 1;
    }
    return PyList_Insert(list, lo, item);
}

/* list.remove(item) — first == match; ValueError when absent. */
static int
list_remove(PyObject *list, PyObject *item)
{
    Py_ssize_t n = PyList_GET_SIZE(list);
    for (Py_ssize_t i = 0; i < n; i++) {
        int eq = fast_cmp2(PyList_GET_ITEM(list, i), item, Py_EQ);
        if (eq < 0)
            return -1;
        if (eq)
            return PyList_SetSlice(list, i, i + 1, NULL);
    }
    PyErr_SetString(PyExc_ValueError, "list.remove(x): x not in list");
    return -1;
}

static inline int
list_clear_all(PyObject *list)
{
    if (PyList_GET_SIZE(list) == 0)
        return 0;
    return PyList_SetSlice(list, 0, PY_SSIZE_T_MAX, NULL);
}

/* DeterministicRng.uniform(): xorshift64* over the object's _state. */
static int
rng_uniform(PyObject *rng, double *out)
{
    PyObject *st = PyObject_GetAttr(rng, S_state);
    if (st == NULL)
        return -1;
    uint64_t x = PyLong_AsUnsignedLongLong(st);
    Py_DECREF(st);
    if (x == (uint64_t)-1 && PyErr_Occurred())
        return -1;
    x ^= x >> 12;
    x = (x ^ (x << 25)) & U64_MASK;
    x ^= x >> 27;
    uint64_t mixed = (x * 0x2545F4914F6CDD1DULL) & U64_MASK;
    PyObject *ns = PyLong_FromUnsignedLongLong(x);
    if (ns == NULL)
        return -1;
    int r = PyObject_SetAttr(rng, S_state, ns);
    Py_DECREF(ns);
    if (r < 0)
        return -1;
    /* Exact: uint64 -> double is correctly rounded, and the divisor is
     * a power of two, matching CPython's int/int true division. */
    *out = (double)mixed / 18446744073709551616.0;
    return 0;
}

/* ---- KernelColumns cache -------------------------------------------- */

typedef struct {
    PyObject *kc;       /* strong: keeps identity + arrays alive */
    PyObject *insts;    /* strong: tuple of Instruction */
    PyObject *srcs;     /* strong: list of tuples (banked-RF path) */
    Py_ssize_t n;
    long *kind, *lat, *tgt, *trip;
    double *prob;
    long *regs_data;
    Py_ssize_t *regs_off;   /* n + 1 offsets into regs_data */
    long *dsts_data;
    Py_ssize_t *dsts_off;
    Py_ssize_t *srcs_len;
} KCache;

static void
kcache_free(KCache *k)
{
    Py_XDECREF(k->kc);
    Py_XDECREF(k->insts);
    Py_XDECREF(k->srcs);
    PyMem_Free(k->kind);
    PyMem_Free(k->lat);
    PyMem_Free(k->tgt);
    PyMem_Free(k->trip);
    PyMem_Free(k->prob);
    PyMem_Free(k->regs_data);
    PyMem_Free(k->regs_off);
    PyMem_Free(k->dsts_data);
    PyMem_Free(k->dsts_off);
    PyMem_Free(k->srcs_len);
    memset(k, 0, sizeof(*k));
}

static int
flatten_reg_lists(PyObject *lst, Py_ssize_t n, long **data, Py_ssize_t **off)
{
    Py_ssize_t total = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        total += PyTuple_GET_SIZE(PyList_GET_ITEM(lst, i));
    *data = PyMem_Malloc(sizeof(long) * (total ? total : 1));
    *off = PyMem_Malloc(sizeof(Py_ssize_t) * (n + 1));
    if (*data == NULL || *off == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    Py_ssize_t p = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        (*off)[i] = p;
        PyObject *t = PyList_GET_ITEM(lst, i);
        Py_ssize_t m = PyTuple_GET_SIZE(t);
        for (Py_ssize_t j = 0; j < m; j++) {
            long v = PyLong_AsLong(PyTuple_GET_ITEM(t, j));
            if (v == -1 && PyErr_Occurred())
                return -1;
            (*data)[p++] = v;
        }
    }
    (*off)[n] = p;
    return 0;
}

static int
kcache_build(KCache *k, PyObject *kc)
{
    memset(k, 0, sizeof(*k));
    PyObject *kind = NULL, *lat = NULL, *tgt = NULL, *trip = NULL,
             *prob = NULL, *dsts = NULL, *regs = NULL;
    int ok = -1;
    kind = PyObject_GetAttr(kc, S_kind);
    lat = PyObject_GetAttr(kc, S_lat);
    tgt = PyObject_GetAttr(kc, S_tgt);
    trip = PyObject_GetAttr(kc, S_trip);
    prob = PyObject_GetAttr(kc, S_prob);
    dsts = PyObject_GetAttr(kc, S_dsts);
    regs = PyObject_GetAttr(kc, S_regs);
    k->srcs = PyObject_GetAttr(kc, S_srcs);
    k->insts = PyObject_GetAttr(kc, S_insts);
    if (!kind || !lat || !tgt || !trip || !prob || !dsts || !regs
        || !k->srcs || !k->insts)
        goto done;
    Py_ssize_t n = PyList_GET_SIZE(kind);
    k->n = n;
    k->kind = PyMem_Malloc(sizeof(long) * (n ? n : 1));
    k->lat = PyMem_Malloc(sizeof(long) * (n ? n : 1));
    k->tgt = PyMem_Malloc(sizeof(long) * (n ? n : 1));
    k->trip = PyMem_Malloc(sizeof(long) * (n ? n : 1));
    k->prob = PyMem_Malloc(sizeof(double) * (n ? n : 1));
    k->srcs_len = PyMem_Malloc(sizeof(Py_ssize_t) * (n ? n : 1));
    if (!k->kind || !k->lat || !k->tgt || !k->trip || !k->prob
        || !k->srcs_len) {
        PyErr_NoMemory();
        goto done;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        k->kind[i] = lget(kind, i);
        k->lat[i] = lget(lat, i);
        k->tgt[i] = lget(tgt, i);
        PyObject *t = PyList_GET_ITEM(trip, i);
        k->trip[i] = (t == Py_None) ? TRIP_NONE : PyLong_AsLong(t);
        k->prob[i] = PyFloat_AsDouble(PyList_GET_ITEM(prob, i));
        k->srcs_len[i] = PyTuple_GET_SIZE(PyList_GET_ITEM(k->srcs, i));
    }
    if (PyErr_Occurred())
        goto done;
    if (flatten_reg_lists(regs, n, &k->regs_data, &k->regs_off) < 0)
        goto done;
    if (flatten_reg_lists(dsts, n, &k->dsts_data, &k->dsts_off) < 0)
        goto done;
    k->kc = kc;
    Py_INCREF(kc);
    ok = 0;
done:
    Py_XDECREF(kind);
    Py_XDECREF(lat);
    Py_XDECREF(tgt);
    Py_XDECREF(trip);
    Py_XDECREF(prob);
    Py_XDECREF(dsts);
    Py_XDECREF(regs);
    if (ok < 0)
        kcache_free(k);
    return ok;
}

/* ---- per-run state -------------------------------------------------- */

typedef struct {
    PyObject *unit, *sched;
    PyObject *ready, *candidates, *keep, *issued, *sleepers, *far;
    PyObject *sched_pick, *sched_notify; /* kind 2 only */
    long kind;
} UnitC;

typedef struct {
    PyObject *sm;
    PyObject *core, *hot;
    PyObject *pc_col, *wake_col, *status_col, *stall_col, *qstate_col,
        *dyn_col, *views, *kcs, *rngs, *trips, *sb_rows, *sb_max, *sb_heap;
    PyObject *memory, *mem_retire, *mem_issue_load, *mem_earliest;
    PyObject *mem_rng, *mem_in_flight;           /* mem_native only */
    PyObject *tech, *tech_can_issue, *tech_on_issue, *tech_wakeup,
        *tech_try_acquire, *tech_release, *tech_check_inv;
    PyObject *san_on_issue, *san_on_cycle;       /* NULL: no sanitizer */
    PyObject *banked_rf, *tech_resolve_physical, *banked_collect;
    PyObject *observer;                          /* NULL: no observer */
    PyObject *obs_on_cycle, *obs_on_fast_forward, *obs_on_checkpoint,
        *obs_on_run_end;
    PyObject *stats, *resident_ctas, *ctas_by_id, *wid2slot;
    PyObject *columnar_on_exit, *save_checkpoint, *checkpoint_sink;
    PyObject *status_ready, *status_waiting_acquire; /* WarpStatus members */
    PyObject *on_acquire_wake, *on_barrier_release;
    PyObject *cyc_obj;                           /* PyLong of cycle */
    long issue_width, window, mem_cap, num_sched;
    long l1_lat, dram_lat, shared_lat;
    double l1_rate;
    int multi_issue, debug_inv, tail_hooks, tech_wakeups, mem_native;
    long expire_period, eager_backoff, horizon;
    UnitC *units;
    int nunits;
    KCache *kcaches;
    int nkc, kccap;
    PyObject **slot_kc_obj;
    KCache **slot_kc;
    Py_ssize_t slot_cap;
    long d_issued, d_idle, d_mem, d_bar, d_sb, d_acq, d_res;
    long cycle, last_progress;
    /* Mirror of sm._resident_warp_count: only CTA retire/launch (the
     * _columnar_on_exit path) changes it mid-run, so it is re-read
     * after every on-exit call instead of every cycle. */
    long resident_cnt;
} RunState;

static void
runstate_free(RunState *S)
{
    Py_XDECREF(S->core); Py_XDECREF(S->hot);
    Py_XDECREF(S->memory); Py_XDECREF(S->mem_retire);
    Py_XDECREF(S->mem_issue_load); Py_XDECREF(S->mem_earliest);
    Py_XDECREF(S->mem_rng); Py_XDECREF(S->mem_in_flight);
    Py_XDECREF(S->tech); Py_XDECREF(S->tech_try_acquire);
    Py_XDECREF(S->tech_release); Py_XDECREF(S->tech_check_inv);
    Py_XDECREF(S->tech_wakeup);
    Py_XDECREF(S->san_on_issue); Py_XDECREF(S->san_on_cycle);
    Py_XDECREF(S->banked_rf); Py_XDECREF(S->tech_resolve_physical);
    Py_XDECREF(S->banked_collect);
    Py_XDECREF(S->observer); Py_XDECREF(S->obs_on_cycle);
    Py_XDECREF(S->obs_on_fast_forward); Py_XDECREF(S->obs_on_checkpoint);
    Py_XDECREF(S->obs_on_run_end);
    Py_XDECREF(S->stats); Py_XDECREF(S->resident_ctas);
    Py_XDECREF(S->ctas_by_id); Py_XDECREF(S->wid2slot);
    Py_XDECREF(S->columnar_on_exit); Py_XDECREF(S->save_checkpoint);
    Py_XDECREF(S->status_ready); Py_XDECREF(S->status_waiting_acquire);
    Py_XDECREF(S->on_acquire_wake); Py_XDECREF(S->on_barrier_release);
    Py_XDECREF(S->cyc_obj);
    if (S->units != NULL) {
        for (int i = 0; i < S->nunits; i++) {
            UnitC *u = &S->units[i];
            Py_XDECREF(u->unit); Py_XDECREF(u->sched);
            Py_XDECREF(u->ready); Py_XDECREF(u->candidates);
            Py_XDECREF(u->keep); Py_XDECREF(u->issued);
            Py_XDECREF(u->sleepers); Py_XDECREF(u->far);
            Py_XDECREF(u->sched_pick); Py_XDECREF(u->sched_notify);
        }
        PyMem_Free(S->units);
    }
    if (S->kcaches != NULL) {
        for (int i = 0; i < S->nkc; i++)
            kcache_free(&S->kcaches[i]);
        PyMem_Free(S->kcaches);
    }
    PyMem_Free(S->slot_kc_obj);
    PyMem_Free(S->slot_kc);
}

/* Resolve the KCache for a slot, memoised per slot by the identity of
 * kcs[slot] (slot recycling swaps the object; identity check is the
 * same trick ColumnarCore._kc_cache uses). */
static KCache *
slot_kcache(RunState *S, Py_ssize_t slot)
{
    PyObject *kcobj = PyList_GET_ITEM(S->kcs, slot);
    if (slot < S->slot_cap && S->slot_kc_obj[slot] == kcobj)
        return S->slot_kc[slot];
    for (int i = 0; i < S->nkc; i++) {
        if (S->kcaches[i].kc == kcobj) {
            if (slot < S->slot_cap) {
                S->slot_kc_obj[slot] = kcobj;
                S->slot_kc[slot] = &S->kcaches[i];
            }
            return &S->kcaches[i];
        }
    }
    if (S->nkc == S->kccap) {
        int ncap = S->kccap ? S->kccap * 2 : 8;
        KCache *nk = PyMem_Realloc(S->kcaches, sizeof(KCache) * ncap);
        if (nk == NULL) {
            PyErr_NoMemory();
            return NULL;
        }
        /* realloc may move the array: invalidate the slot memo. */
        if (nk != S->kcaches)
            for (Py_ssize_t s = 0; s < S->slot_cap; s++)
                S->slot_kc_obj[s] = NULL;
        S->kcaches = nk;
        S->kccap = ncap;
    }
    KCache *k = &S->kcaches[S->nkc];
    if (kcache_build(k, kcobj) < 0)
        return NULL;
    S->nkc++;
    if (slot < S->slot_cap) {
        S->slot_kc_obj[slot] = kcobj;
        S->slot_kc[slot] = k;
    }
    return k;
}

/* Flush the delta-stat locals into SmStats + _last_progress_cycle.
 * Zero-skip per field: totals are identical, attribute traffic isn't
 * wasted on zeros (mirrors the guarded flush in the pure stepper). */
static int
flush_stats(RunState *S)
{
    if (add_long_attr(S->stats, S_instructions_issued, S->d_issued) < 0)
        return -1;
    if (add_long_attr(S->stats, S_idle_scheduler_cycles, S->d_idle) < 0)
        return -1;
    if (add_long_attr(S->stats, S_stall_memory, S->d_mem) < 0)
        return -1;
    if (add_long_attr(S->stats, S_stall_barrier, S->d_bar) < 0)
        return -1;
    if (add_long_attr(S->stats, S_stall_scoreboard, S->d_sb) < 0)
        return -1;
    if (add_long_attr(S->stats, S_stall_acquire, S->d_acq) < 0)
        return -1;
    if (add_long_attr(S->stats, S_resident_warp_cycles, S->d_res) < 0)
        return -1;
    S->d_issued = S->d_idle = S->d_mem = S->d_bar = 0;
    S->d_sb = S->d_acq = S->d_res = 0;
    return set_long_attr(S->sm, S_last_progress_cycle, S->last_progress);
}

static int
set_cycle(RunState *S, long cycle)
{
    PyObject *o = PyLong_FromLong(cycle);
    if (o == NULL)
        return -1;
    Py_XSETREF(S->cyc_obj, o);
    S->cycle = cycle;
    return PyObject_SetAttr(S->sm, S_cycle, o);
}

/* ---- MemoryModel fast path ------------------------------------------ */

/* C transliteration of MemoryModel.issue_load.  Counters, the in-flight
 * multiset, and the rng stream position all live in the Python object
 * and are updated eagerly (not deferred to a flush), so any hook that
 * inspects the memory model mid-run sees exactly the pure-path state. */
static int
mem_issue_load_c(RunState *S, long cycle, int shared, long *ready)
{
    if (shared) {
        *ready = cycle + S->shared_lat;
        return 0;
    }
    int err = 0;
    long total = get_long_attr(S->memory, S_in_flight_total, &err);
    if (err)
        return -1;
    if (total >= S->mem_cap) {
        PyErr_SetString(PyExc_RuntimeError,
                        "memory model saturated; call can_accept first");
        return -1;
    }
    if (add_long_attr(S->memory, S_loads_issued, 1) < 0)
        return -1;
    double u;
    if (rng_uniform(S->mem_rng, &u) < 0)
        return -1;
    long latency;
    if (u < S->l1_rate) {
        if (add_long_attr(S->memory, S_l1_hits, 1) < 0)
            return -1;
        latency = S->l1_lat;
    }
    else
        latency = S->dram_lat;
    long done = cycle + latency;
    PyObject *key = PyLong_FromLong(done);
    if (key == NULL)
        return -1;
    PyObject *cur = PyDict_GetItemWithError(S->mem_in_flight, key);
    if (cur == NULL && PyErr_Occurred()) {
        Py_DECREF(key);
        return -1;
    }
    long n = 1;
    if (cur != NULL) {
        n = PyLong_AsLong(cur) + 1;
        if (n == 0 && PyErr_Occurred()) {
            Py_DECREF(key);
            return -1;
        }
    }
    PyObject *nv = PyLong_FromLong(n);
    if (nv == NULL) {
        Py_DECREF(key);
        return -1;
    }
    int r = PyDict_SetItem(S->mem_in_flight, key, nv);
    Py_DECREF(nv);
    Py_DECREF(key);
    if (r < 0)
        return -1;
    if (set_long_attr(S->memory, S_in_flight_total, total + 1) < 0)
        return -1;
    PyObject *nxt = PyObject_GetAttr(S->memory, S_next_retire);
    if (nxt == NULL)
        return -1;
    int update = (nxt == Py_None);
    if (!update) {
        long cached = PyLong_AsLong(nxt);
        if (cached == -1 && PyErr_Occurred()) {
            Py_DECREF(nxt);
            return -1;
        }
        update = done < cached;
    }
    Py_DECREF(nxt);
    if (update && set_long_attr(S->memory, S_next_retire, done) < 0)
        return -1;
    *ready = done;
    return 0;
}

/* C transliteration of MemoryModel.retire.  The caller has already
 * established _next_retire is due (<= cycle), mirroring the pure
 * path's early return. */
static int
mem_retire_c(RunState *S, long cycle)
{
    PyObject *dict = S->mem_in_flight;
    Py_ssize_t sz = PyDict_Size(dict);
    PyObject *stackbuf[64];
    PyObject **due = stackbuf;
    if (sz > 64) {
        due = PyMem_Malloc(sizeof(PyObject *) * sz);
        if (due == NULL) {
            PyErr_NoMemory();
            return -1;
        }
    }
    Py_ssize_t ndue = 0;
    long removed = 0, newmin = 0;
    int have_min = 0, ok = 0;
    PyObject *k, *v;
    Py_ssize_t pos = 0;
    while (PyDict_Next(dict, &pos, &k, &v)) {
        long c = PyLong_AsLong(k);
        if (c == -1 && PyErr_Occurred())
            goto done;
        if (c <= cycle) {
            long n = PyLong_AsLong(v);
            if (n == -1 && PyErr_Occurred())
                goto done;
            removed += n;
            Py_INCREF(k);
            due[ndue++] = k;
        }
        else if (!have_min || c < newmin) {
            have_min = 1;
            newmin = c;
        }
    }
    for (Py_ssize_t i = 0; i < ndue; i++)
        if (PyDict_DelItem(dict, due[i]) < 0)
            goto done;
    if (removed) {
        int err = 0;
        long total = get_long_attr(S->memory, S_in_flight_total, &err);
        if (err)
            goto done;
        if (set_long_attr(S->memory, S_in_flight_total, total - removed) < 0)
            goto done;
    }
    if (have_min) {
        if (set_long_attr(S->memory, S_next_retire, newmin) < 0)
            goto done;
    }
    else if (PyObject_SetAttr(S->memory, S_next_retire, Py_None) < 0)
        goto done;
    ok = 1;
done:
    for (Py_ssize_t i = 0; i < ndue; i++)
        Py_DECREF(due[i]);
    if (due != stackbuf)
        PyMem_Free(due);
    return ok ? 0 : -1;
}

/* GetAttr that maps a None value to NULL-without-error. */
static PyObject *
getattr_or_none(PyObject *obj, PyObject *name)
{
    PyObject *o = PyObject_GetAttr(obj, name);
    if (o == NULL)
        return NULL;
    if (o == Py_None) {
        Py_DECREF(o);
        return NULL;
    }
    return o;
}

static int
runstate_setup(RunState *S, PyObject *sm, PyObject *sink,
               PyObject *can_issue, PyObject *on_issue, int wakeups,
               int mem_native)
{
    int err = 0;
    S->sm = sm;
    S->checkpoint_sink = (sink == Py_None) ? NULL : sink;
    S->tech_can_issue = (can_issue == Py_None) ? NULL : can_issue;
    S->tech_on_issue = (on_issue == Py_None) ? NULL : on_issue;
    S->tech_wakeups = wakeups;
    S->mem_native = mem_native;

    S->core = PyObject_GetAttr(sm, S_columnar);
    if (S->core == NULL || S->core == Py_None) {
        if (S->core != NULL)
            PyErr_SetString(PyExc_RuntimeError,
                            "native engine requires a ColumnarCore");
        return -1;
    }
    S->hot = PyObject_GetAttr(S->core, S_hot);
    if (S->hot == NULL || !PyTuple_Check(S->hot)
        || PyTuple_GET_SIZE(S->hot) != 13) {
        if (S->hot != NULL)
            PyErr_SetString(PyExc_RuntimeError, "core.hot: expected 13-tuple");
        return -1;
    }
    /* Borrowed from S->hot (which we own): stable for the whole run —
     * ColumnarCore mutates these lists in place, never rebinds them. */
    S->pc_col = PyTuple_GET_ITEM(S->hot, 0);
    S->wake_col = PyTuple_GET_ITEM(S->hot, 1);
    S->status_col = PyTuple_GET_ITEM(S->hot, 2);
    S->stall_col = PyTuple_GET_ITEM(S->hot, 3);
    S->qstate_col = PyTuple_GET_ITEM(S->hot, 4);
    S->dyn_col = PyTuple_GET_ITEM(S->hot, 5);
    S->views = PyTuple_GET_ITEM(S->hot, 6);
    S->kcs = PyTuple_GET_ITEM(S->hot, 7);
    S->rngs = PyTuple_GET_ITEM(S->hot, 8);
    S->trips = PyTuple_GET_ITEM(S->hot, 9);
    S->sb_rows = PyTuple_GET_ITEM(S->hot, 10);
    S->sb_max = PyTuple_GET_ITEM(S->hot, 11);
    S->sb_heap = PyTuple_GET_ITEM(S->hot, 12);

    S->wid2slot = PyObject_GetAttr(S->core, S_wid2slot);
    S->on_acquire_wake = PyObject_GetAttr(S->core, S_on_acquire_wake);
    S->on_barrier_release = PyObject_GetAttr(S->core, S_on_barrier_release);
    if (!S->wid2slot || !S->on_acquire_wake || !S->on_barrier_release)
        return -1;

    S->memory = PyObject_GetAttr(sm, S_memory);
    if (S->memory == NULL)
        return -1;
    S->mem_retire = PyObject_GetAttr(S->memory, S_retire);
    S->mem_issue_load = PyObject_GetAttr(S->memory, S_issue_load);
    S->mem_earliest = PyObject_GetAttr(S->memory, S_earliest_completion);
    if (!S->mem_retire || !S->mem_issue_load || !S->mem_earliest)
        return -1;
    S->mem_cap = get_long_attr(S->memory, S_max_in_flight, &err);
    if (err)
        return -1;
    if (S->mem_native) {
        /* The wrapper has verified type(memory) is MemoryModel with no
         * instance-level method overrides, so the C transliteration of
         * issue_load/retire is exact.  State (counters, the in-flight
         * multiset, the rng stream) stays in the Python object and is
         * updated eagerly, so hooks and checkpoints see what the pure
         * path would have written. */
        S->mem_rng = PyObject_GetAttr(S->memory, S_rng_a);
        S->mem_in_flight = PyObject_GetAttr(S->memory, S_in_flight_d);
        if (!S->mem_rng || !S->mem_in_flight)
            return -1;
        if (!PyDict_CheckExact(S->mem_in_flight)) {
            /* Unexpected shape: quietly take the Python path. */
            Py_CLEAR(S->mem_rng);
            Py_CLEAR(S->mem_in_flight);
            S->mem_native = 0;
        }
    }

    S->tech = PyObject_GetAttr(sm, S_technique);
    if (S->tech == NULL)
        return -1;
    S->tech_try_acquire = PyObject_GetAttr(S->tech, S_try_acquire);
    S->tech_release = PyObject_GetAttr(S->tech, S_release);
    S->tech_check_inv = PyObject_GetAttr(S->tech, S_check_invariants);
    if (!S->tech_try_acquire || !S->tech_release || !S->tech_check_inv)
        return -1;
    if (S->tech_wakeups) {
        S->tech_wakeup = PyObject_GetAttr(S->tech, S_wakeup_pending);
        if (S->tech_wakeup == NULL)
            return -1;
    }

    PyObject *san = getattr_or_none(sm, S_sanitizer_a);
    if (san == NULL && PyErr_Occurred())
        return -1;
    if (san != NULL) {
        S->san_on_issue = PyObject_GetAttr(san, S_on_issue);
        S->san_on_cycle = PyObject_GetAttr(san, S_on_cycle);
        Py_DECREF(san);
        if (!S->san_on_issue || !S->san_on_cycle)
            return -1;
    }

    S->banked_rf = getattr_or_none(sm, S_banked_rf);
    if (S->banked_rf == NULL && PyErr_Occurred())
        return -1;
    if (S->banked_rf != NULL) {
        S->tech_resolve_physical =
            PyObject_GetAttr(S->tech, S_resolve_physical);
        S->banked_collect = PyObject_GetAttr(S->banked_rf, S_collect);
        if (!S->tech_resolve_physical || !S->banked_collect)
            return -1;
    }

    S->observer = getattr_or_none(sm, S_observer_a);
    if (S->observer == NULL && PyErr_Occurred())
        return -1;
    if (S->observer != NULL) {
        S->obs_on_cycle = PyObject_GetAttr(S->observer, S_on_cycle);
        S->obs_on_fast_forward =
            PyObject_GetAttr(S->observer, S_on_fast_forward);
        S->obs_on_checkpoint =
            PyObject_GetAttr(S->observer, S_on_checkpoint);
        S->obs_on_run_end = PyObject_GetAttr(S->observer, S_on_run_end);
        if (!S->obs_on_cycle || !S->obs_on_fast_forward
            || !S->obs_on_checkpoint || !S->obs_on_run_end)
            return -1;
    }

    S->stats = PyObject_GetAttr(sm, S_stats);
    S->resident_ctas = PyObject_GetAttr(sm, S_resident_ctas);
    S->ctas_by_id = PyObject_GetAttr(sm, S_ctas_by_id);
    S->columnar_on_exit = PyObject_GetAttr(sm, S_columnar_on_exit);
    S->save_checkpoint = PyObject_GetAttr(sm, S_save_checkpoint);
    if (!S->stats || !S->resident_ctas || !S->ctas_by_id
        || !S->columnar_on_exit || !S->save_checkpoint)
        return -1;

    PyObject *config = PyObject_GetAttr(sm, S_config);
    if (config == NULL)
        return -1;
    S->issue_width = get_long_attr(config, S_issue_width_per_scheduler, &err);
    if (!err) {
        PyObject *dbg = PyObject_GetAttr(config, S_debug_invariants);
        if (dbg == NULL)
            err = 1;
        else {
            S->debug_inv = PyObject_IsTrue(dbg);
            Py_DECREF(dbg);
            if (S->debug_inv < 0)
                err = 1;
        }
    }
    if (!err)
        S->window = get_long_attr(config, S_watchdog_window, &err);
    if (!err && S->mem_native) {
        S->l1_lat = get_long_attr(config, S_l1_hit_latency, &err);
        if (!err)
            S->dram_lat = get_long_attr(config, S_dram_latency, &err);
        if (!err) {
            PyObject *hr = PyObject_GetAttr(config, S_l1_hit_rate);
            if (hr == NULL)
                err = 1;
            else {
                S->l1_rate = PyFloat_AsDouble(hr);
                Py_DECREF(hr);
                if (S->l1_rate == -1.0 && PyErr_Occurred())
                    err = 1;
            }
        }
        S->shared_lat = S->l1_lat / 2 + 1;
    }
    Py_DECREF(config);
    if (err)
        return -1;
    S->multi_issue = S->issue_width > 1;
    S->tail_hooks = S->debug_inv || S->san_on_cycle != NULL
        || S->observer != NULL;

    /* WarpStatus members for the wakeup drain (identity compares). */
    {
        PyObject *warp_mod = PyImport_ImportModule("repro.sim.warp");
        if (warp_mod == NULL)
            return -1;
        PyObject *ws = PyObject_GetAttrString(warp_mod, "WarpStatus");
        Py_DECREF(warp_mod);
        if (ws == NULL)
            return -1;
        S->status_ready = PyObject_GetAttr(ws, S_READY_attr);
        S->status_waiting_acquire =
            PyObject_GetAttr(ws, S_WAITING_ACQUIRE_attr);
        Py_DECREF(ws);
        if (!S->status_ready || !S->status_waiting_acquire)
            return -1;
    }
    /* Timing constants, fetched from sm.py / wakequeue so they can
     * never drift from the pure stepper. */
    {
        PyObject *sm_mod = PyImport_ImportModule("repro.sim.sm");
        if (sm_mod == NULL)
            return -1;
        PyObject *wq_mod = PyImport_ImportModule("repro.sim.wakequeue");
        if (wq_mod == NULL) {
            Py_DECREF(sm_mod);
            return -1;
        }
        PyObject *a = PyObject_GetAttrString(sm_mod, "_EXPIRE_PERIOD");
        PyObject *b = PyObject_GetAttrString(sm_mod, "_EAGER_RETRY_BACKOFF");
        PyObject *c = PyObject_GetAttrString(wq_mod, "MEMORY_STALL_HORIZON");
        Py_DECREF(sm_mod);
        Py_DECREF(wq_mod);
        if (!a || !b || !c) {
            Py_XDECREF(a); Py_XDECREF(b); Py_XDECREF(c);
            return -1;
        }
        S->expire_period = PyLong_AsLong(a);
        S->eager_backoff = PyLong_AsLong(b);
        S->horizon = PyLong_AsLong(c);
        Py_DECREF(a); Py_DECREF(b); Py_DECREF(c);
        if (PyErr_Occurred())
            return -1;
    }

    PyObject *units_list = PyObject_GetAttr(S->core, S_units);
    if (units_list == NULL)
        return -1;
    S->nunits = (int)PyList_GET_SIZE(units_list);
    S->num_sched = S->nunits;
    S->units = PyMem_Calloc(S->nunits ? S->nunits : 1, sizeof(UnitC));
    if (S->units == NULL) {
        Py_DECREF(units_list);
        PyErr_NoMemory();
        return -1;
    }
    for (int i = 0; i < S->nunits; i++) {
        UnitC *u = &S->units[i];
        u->unit = PyList_GET_ITEM(units_list, i);
        Py_INCREF(u->unit);
        u->sched = PyObject_GetAttr(u->unit, S_sched);
        u->ready = PyObject_GetAttr(u->unit, S_ready);
        u->candidates = PyObject_GetAttr(u->unit, S_candidates);
        u->keep = PyObject_GetAttr(u->unit, S_keep);
        u->issued = PyObject_GetAttr(u->unit, S_issued);
        u->sleepers = PyObject_GetAttr(u->unit, S_sleepers);
        u->far = PyObject_GetAttr(u->unit, S_far);
        if (!u->sched || !u->ready || !u->candidates || !u->keep
            || !u->issued || !u->sleepers || !u->far) {
            Py_DECREF(units_list);
            return -1;
        }
        u->kind = get_long_attr(u->unit, S_kind, &err);
        if (err) {
            Py_DECREF(units_list);
            return -1;
        }
        if (u->kind == 2) {
            u->sched_pick = PyObject_GetAttr(u->sched, S_pick);
            u->sched_notify = PyObject_GetAttr(u->sched, S_notify_issued);
            if (!u->sched_pick || !u->sched_notify) {
                Py_DECREF(units_list);
                return -1;
            }
        }
    }
    Py_DECREF(units_list);

    S->slot_cap = PyList_GET_SIZE(S->views);
    S->slot_kc_obj = PyMem_Calloc(S->slot_cap ? S->slot_cap : 1,
                                  sizeof(PyObject *));
    S->slot_kc = PyMem_Calloc(S->slot_cap ? S->slot_cap : 1,
                              sizeof(KCache *));
    if (S->slot_kc_obj == NULL || S->slot_kc == NULL) {
        PyErr_NoMemory();
        return -1;
    }

    S->cycle = get_long_attr(sm, S_cycle, &err);
    if (err)
        return -1;
    S->last_progress = get_long_attr(sm, S_last_progress_cycle, &err);
    if (err)
        return -1;
    S->resident_cnt = get_long_attr(sm, S_resident_warp_count, &err);
    if (err)
        return -1;
    S->cyc_obj = PyLong_FromLong(S->cycle);
    if (S->cyc_obj == NULL)
        return -1;
    return 0;
}

/* Park a warp in its unit's sleeper heap (qualification + dispose). */
static int
park_sleeper(RunState *S, UnitC *u, long cycle, long wake,
             PyObject *wid_o, PyObject *slot_o, int is_mem)
{
    if (is_mem) {
        if (add_long_attr(u->unit, S_mem_sleepers, 1) < 0)
            return -1;
    }
    else {
        if (add_long_attr(u->unit, S_nonmem_sleepers, 1) < 0)
            return -1;
        if (wake - cycle > S->horizon) {
            PyObject *f = PyLong_FromLong(wake - S->horizon);
            if (f == NULL)
                return -1;
            int r = heap_push(u->far, f);
            Py_DECREF(f);
            if (r < 0)
                return -1;
        }
    }
    PyObject *t = PyTuple_New(4);
    if (t == NULL)
        return -1;
    PyObject *w = PyLong_FromLong(wake);
    if (w == NULL) {
        Py_DECREF(t);
        return -1;
    }
    PyTuple_SET_ITEM(t, 0, w);
    Py_INCREF(wid_o);
    PyTuple_SET_ITEM(t, 1, wid_o);
    Py_INCREF(slot_o);
    PyTuple_SET_ITEM(t, 2, slot_o);
    PyObject *b = is_mem ? Py_True : Py_False;
    Py_INCREF(b);
    PyTuple_SET_ITEM(t, 3, b);
    int r = heap_push(u->sleepers, t);
    Py_DECREF(t);
    return r;
}

/* Scoreboard dst-register writes for ALU/LOAD completions. */
static int
sb_write(RunState *S, KCache *kc, long pc, long slot, PyObject *wid_o,
         long done)
{
    PyObject *row = PyList_GET_ITEM(S->sb_rows, slot);
    for (Py_ssize_t j = kc->dsts_off[pc]; j < kc->dsts_off[pc + 1]; j++) {
        long reg = kc->dsts_data[j];
        if (done > lget(row, reg)) {
            if (lset(row, reg, done) < 0)
                return -1;
            PyObject *t = PyTuple_New(3);
            if (t == NULL)
                return -1;
            PyObject *d = PyLong_FromLong(done);
            PyObject *r = PyLong_FromLong(reg);
            if (d == NULL || r == NULL) {
                Py_XDECREF(d);
                Py_XDECREF(r);
                Py_DECREF(t);
                return -1;
            }
            PyTuple_SET_ITEM(t, 0, d);
            Py_INCREF(wid_o);
            PyTuple_SET_ITEM(t, 1, wid_o);
            PyTuple_SET_ITEM(t, 2, r);
            int rc = heap_push(S->sb_heap, t);
            Py_DECREF(t);
            if (rc < 0)
                return -1;
            if (done > lget(S->sb_max, slot)
                && lset(S->sb_max, slot, done) < 0)
                return -1;
        }
    }
    return 0;
}

static inline int
advance_pc(RunState *S, long slot, long newpc)
{
    if (lset(S->pc_col, slot, newpc) < 0)
        return -1;
    return lset(S->dyn_col, slot, lget(S->dyn_col, slot) + 1);
}

/* One simulated cycle over every scheduler unit: sleeper wake-ups,
 * qualification, pick/execute/dispose, idle attribution.  Mirrors the
 * per-unit body of _run_columnar exactly.  Returns issued count via
 * *issued_out, -1 on a raised hook. */
static int
do_cycle(RunState *S, long cycle, long *issued_out)
{
    long issued_this = 0;
    int err = 0;
    for (int ui = 0; ui < S->nunits; ui++) {
        UnitC *u = &S->units[ui];
        PyObject *ready = u->ready;
        PyObject *sleepers = u->sleepers;
        while (PyList_GET_SIZE(sleepers) > 0
               && PyLong_AsLong(PyTuple_GET_ITEM(
                      PyList_GET_ITEM(sleepers, 0), 0)) <= cycle) {
            PyObject *t = heap_pop(sleepers);
            if (t == NULL)
                return -1;
            PyObject *wid_o = PyTuple_GET_ITEM(t, 1);
            PyObject *slot_o = PyTuple_GET_ITEM(t, 2);
            int is_mem = PyObject_IsTrue(PyTuple_GET_ITEM(t, 3));
            if (is_mem < 0
                || add_long_attr(u->unit,
                                 is_mem ? S_mem_sleepers : S_nonmem_sleepers,
                                 -1) < 0) {
                Py_DECREF(t);
                return -1;
            }
            long slot = PyLong_AsLong(slot_o);
            if (lset(S->qstate_col, slot, QS_READY) < 0) {
                Py_DECREF(t);
                return -1;
            }
            PyObject *pair = PyTuple_New(2);
            if (pair == NULL) {
                Py_DECREF(t);
                return -1;
            }
            Py_INCREF(wid_o);
            PyTuple_SET_ITEM(pair, 0, wid_o);
            Py_INCREF(slot_o);
            PyTuple_SET_ITEM(pair, 1, slot_o);
            int r = list_insort(ready, pair);
            Py_DECREF(pair);
            Py_DECREF(t);
            if (r < 0)
                return -1;
        }
        /* Blocked counts captured before qualification (event-stepper
         * semantics: a warp parking this pass counts from next cycle). */
        long barrier_count = get_long_attr(u->unit, S_barrier_count, &err);
        if (err)
            return -1;
        long acquire_count = get_long_attr(u->unit, S_acquire_count, &err);
        if (err)
            return -1;
        int qual_mem = 0, qual_sb = 0;
        int have_candidates = 0;
        PyObject *candidates = u->candidates;
        if (PyList_GET_SIZE(ready) > 0) {
            have_candidates = 1;
            if (list_clear_all(candidates) < 0)
                return -1;
            int routed = 0;
            for (Py_ssize_t i = 0; i < PyList_GET_SIZE(ready); i++) {
                PyObject *item = PyList_GET_ITEM(ready, i);
                Py_INCREF(item);
                long slot = PyLong_AsLong(PyTuple_GET_ITEM(item, 1));
                KCache *kc = slot_kcache(S, slot);
                if (kc == NULL)
                    goto item_fail;
                long pc = lget(S->pc_col, slot);
                int sb_ok;
                long latest = 0;
                long sbm = lget(S->sb_max, slot);
                if (sbm <= cycle)
                    sb_ok = 1;
                else if (lget(S->stall_col, slot) == SL_SCOREBOARD) {
                    latest = lget(S->wake_col, slot);
                    sb_ok = latest <= cycle;
                }
                else {
                    latest = cycle;
                    PyObject *row = PyList_GET_ITEM(S->sb_rows, slot);
                    for (Py_ssize_t j = kc->regs_off[pc];
                         j < kc->regs_off[pc + 1]; j++) {
                        long r = lget(row, kc->regs_data[j]);
                        if (r > latest)
                            latest = r;
                    }
                    sb_ok = latest <= cycle;
                }
                int qualified = 0;
                if (!sb_ok) {
                    if (lset(S->stall_col, slot, SL_SCOREBOARD) < 0
                        || lset(S->wake_col, slot, latest) < 0)
                        goto item_fail;
                }
                else if (kc->kind[pc] >= K_LOAD
                         && kc->kind[pc] <= K_SHARED_LOAD) {
                    long inflight =
                        get_long_attr(S->memory, S_in_flight_total, &err);
                    if (err)
                        goto item_fail;
                    if (inflight >= S->mem_cap) {
                        if (lset(S->stall_col, slot, SL_MEMORY) < 0)
                            goto item_fail;
                        PyObject *done = PyObject_CallFunctionObjArgs(
                            S->mem_earliest, S->cyc_obj, NULL);
                        if (done == NULL)
                            goto item_fail;
                        if (done != Py_None) {
                            long dv = PyLong_AsLong(done);
                            Py_DECREF(done);
                            if ((dv == -1 && PyErr_Occurred())
                                || lset(S->wake_col, slot, dv) < 0)
                                goto item_fail;
                        }
                        else
                            Py_DECREF(done);
                    }
                    else
                        qualified = 1;
                }
                else
                    qualified = 1;
                if (qualified && S->tech_can_issue != NULL) {
                    PyObject *r = PyObject_CallFunctionObjArgs(
                        S->tech_can_issue, PyList_GET_ITEM(S->views, slot),
                        PyTuple_GET_ITEM(kc->insts, pc), S->cyc_obj, NULL);
                    if (r == NULL)
                        goto item_fail;
                    int ok = PyObject_IsTrue(r);
                    Py_DECREF(r);
                    if (ok < 0)
                        goto item_fail;
                    if (!ok) {
                        qualified = 0;
                        if (lset(S->stall_col, slot, SL_TECHNIQUE) < 0)
                            goto item_fail;
                    }
                }
                if (qualified) {
                    if (lset(S->stall_col, slot, SL_NONE) < 0
                        || PyList_Append(candidates, item) < 0
                        || (routed && PyList_Append(u->keep, item) < 0))
                        goto item_fail;
                    Py_DECREF(item);
                    continue;
                }
                /* qualification failed: flags + routing */
                if (!routed) {
                    routed = 1;
                    if (list_clear_all(u->keep) < 0
                        || PyList_SetSlice(u->keep, 0, 0, candidates) < 0)
                        goto item_fail;
                }
                long sc = lget(S->stall_col, slot);
                if (sc == SL_MEMORY)
                    qual_mem = 1;
                else if (lget(S->sb_max, slot) - cycle > S->horizon)
                    qual_mem = 1;
                else
                    qual_sb = 1;
                if (lget(S->status_col, slot) != ST_READY) {
                    if (lset(S->qstate_col, slot, QS_ACQUIRE) < 0
                        || add_long_attr(u->unit, S_acquire_count, 1) < 0)
                        goto item_fail;
                }
                else {
                    long wake = lget(S->wake_col, slot);
                    if (wake > cycle) {
                        if (lset(S->qstate_col, slot, QS_SLEEPING) < 0
                            || park_sleeper(S, u, cycle, wake,
                                            PyTuple_GET_ITEM(item, 0),
                                            PyTuple_GET_ITEM(item, 1),
                                            sc == SL_MEMORY) < 0)
                            goto item_fail;
                    }
                    else if (PyList_Append(u->keep, item) < 0)
                        goto item_fail;
                }
                Py_DECREF(item);
                continue;
            item_fail:
                Py_DECREF(item);
                return -1;
            }
            if (routed
                && PyList_SetSlice(ready, 0, PY_SSIZE_T_MAX, u->keep) < 0)
                return -1;
        }

        long issued_here = 0;
        if (have_candidates && PyList_GET_SIZE(candidates) > 0) {
            PyObject *issued_list = u->issued;
            for (long wi = 0; wi < S->issue_width; wi++) {
                if (PyList_GET_SIZE(candidates) == 0)
                    break;
                PyObject *chosen = NULL; /* owned */
                PyObject *view = NULL;   /* owned */
                if (u->kind == 0) { /* GTO, default priority */
                    PyObject *greedy = PyObject_GetAttr(u->sched, S_greedy);
                    if (greedy == NULL)
                        return -1;
                    if (greedy != Py_None) {
                        PyObject *g = PyObject_GetAttr(greedy, S_warp_id);
                        if (g == NULL) {
                            Py_DECREF(greedy);
                            return -1;
                        }
                        long gwid = PyLong_AsLong(g);
                        Py_DECREF(g);
                        Py_ssize_t nc = PyList_GET_SIZE(candidates);
                        for (Py_ssize_t i = 0; i < nc; i++) {
                            PyObject *it = PyList_GET_ITEM(candidates, i);
                            if (PyLong_AsLong(PyTuple_GET_ITEM(it, 0))
                                == gwid) {
                                chosen = it;
                                Py_INCREF(chosen);
                                break;
                            }
                        }
                    }
                    Py_DECREF(greedy);
                    if (chosen == NULL) { /* oldest: sorted */
                        chosen = PyList_GET_ITEM(candidates, 0);
                        Py_INCREF(chosen);
                    }
                }
                else if (u->kind == 1) { /* LRR */
                    long last = get_long_attr(u->sched, S_last_id, &err);
                    if (err)
                        return -1;
                    Py_ssize_t nc = PyList_GET_SIZE(candidates);
                    for (Py_ssize_t i = 0; i < nc; i++) {
                        PyObject *it = PyList_GET_ITEM(candidates, i);
                        if (PyLong_AsLong(PyTuple_GET_ITEM(it, 0)) > last) {
                            chosen = it;
                            Py_INCREF(chosen);
                            break;
                        }
                    }
                    if (chosen == NULL) {
                        chosen = PyList_GET_ITEM(candidates, 0);
                        Py_INCREF(chosen);
                    }
                }
                else { /* priority hook: real pick over views */
                    Py_ssize_t nc = PyList_GET_SIZE(candidates);
                    PyObject *vl = PyList_New(nc);
                    if (vl == NULL)
                        return -1;
                    for (Py_ssize_t i = 0; i < nc; i++) {
                        long s = PyLong_AsLong(PyTuple_GET_ITEM(
                            PyList_GET_ITEM(candidates, i), 1));
                        PyObject *v = PyList_GET_ITEM(S->views, s);
                        Py_INCREF(v);
                        PyList_SET_ITEM(vl, i, v);
                    }
                    PyObject *pick = PyObject_CallFunctionObjArgs(
                        u->sched_pick, vl, NULL);
                    Py_DECREF(vl);
                    if (pick == NULL)
                        return -1;
                    if (pick == Py_None) {
                        Py_DECREF(pick);
                        break;
                    }
                    PyObject *pw = PyObject_GetAttr(pick, S_warp_id);
                    PyObject *ps = PyObject_GetAttr(pick, S_slot);
                    Py_DECREF(pick);
                    if (pw == NULL || ps == NULL) {
                        Py_XDECREF(pw);
                        Py_XDECREF(ps);
                        return -1;
                    }
                    chosen = PyTuple_New(2);
                    if (chosen == NULL) {
                        Py_DECREF(pw);
                        Py_DECREF(ps);
                        return -1;
                    }
                    PyTuple_SET_ITEM(chosen, 0, pw);
                    PyTuple_SET_ITEM(chosen, 1, ps);
                }
                {
                    PyObject *wid_o = PyTuple_GET_ITEM(chosen, 0);
                    long wid = PyLong_AsLong(wid_o);
                    long slot = PyLong_AsLong(PyTuple_GET_ITEM(chosen, 1));
                    KCache *kc = slot_kcache(S, slot);
                    if (kc == NULL)
                        goto pick_fail;
                    long pc = lget(S->pc_col, slot);
                    long kind = kc->kind[pc];
                    view = PyList_GET_ITEM(S->views, slot);
                    Py_INCREF(view);
                    S->d_issued += 1;
                    if (S->tech_on_issue != NULL) {
                        PyObject *r = PyObject_CallFunctionObjArgs(
                            S->tech_on_issue, view,
                            PyTuple_GET_ITEM(kc->insts, pc), S->cyc_obj,
                            NULL);
                        if (r == NULL)
                            goto pick_fail;
                        Py_DECREF(r);
                    }
                    if (S->san_on_issue != NULL) {
                        PyObject *r = PyObject_CallFunctionObjArgs(
                            S->san_on_issue, view,
                            PyTuple_GET_ITEM(kc->insts, pc), S->cyc_obj,
                            NULL);
                        if (r == NULL)
                            goto pick_fail;
                        Py_DECREF(r);
                    }
                    long bank_penalty = 0;
                    if (S->banked_rf != NULL && kc->srcs_len[pc] > 0) {
                        PyObject *srcs_t = PyList_GET_ITEM(kc->srcs, pc);
                        Py_ssize_t m = PyTuple_GET_SIZE(srcs_t);
                        PyObject *phys = PyList_New(m);
                        if (phys == NULL)
                            goto pick_fail;
                        for (Py_ssize_t j = 0; j < m; j++) {
                            PyObject *p = PyObject_CallFunctionObjArgs(
                                S->tech_resolve_physical, view,
                                PyTuple_GET_ITEM(srcs_t, j), NULL);
                            if (p == NULL) {
                                Py_DECREF(phys);
                                goto pick_fail;
                            }
                            PyList_SET_ITEM(phys, j, p);
                        }
                        PyObject *res = PyObject_CallFunctionObjArgs(
                            S->banked_collect, PyTuple_GET_ITEM(chosen, 1),
                            phys, NULL);
                        Py_DECREF(phys);
                        if (res == NULL)
                            goto pick_fail;
                        PyObject *ec =
                            PyObject_GetAttr(res, S_extra_cycles);
                        Py_DECREF(res);
                        if (ec == NULL)
                            goto pick_fail;
                        bank_penalty = PyLong_AsLong(ec);
                        Py_DECREF(ec);
                        if (bank_penalty == -1 && PyErr_Occurred())
                            goto pick_fail;
                    }
                    int exited = 0;
                    if (kind == K_ALU) {
                        long done = cycle + kc->lat[pc] + bank_penalty;
                        if (sb_write(S, kc, pc, slot, wid_o, done) < 0
                            || advance_pc(S, slot, pc + 1) < 0)
                            goto pick_fail;
                        S->last_progress = cycle;
                    }
                    else if (kind <= K_SHARED_LOAD) { /* LOAD/SHARED_LOAD */
                        long done;
                        if (S->mem_native) {
                            if (mem_issue_load_c(S, cycle,
                                                 kind == K_SHARED_LOAD,
                                                 &done) < 0)
                                goto pick_fail;
                        }
                        else {
                            PyObject *r = PyObject_CallFunctionObjArgs(
                                S->mem_issue_load, S->cyc_obj,
                                kind == K_SHARED_LOAD ? Py_True : Py_False,
                                NULL);
                            if (r == NULL)
                                goto pick_fail;
                            done = PyLong_AsLong(r);
                            Py_DECREF(r);
                            if (done == -1 && PyErr_Occurred())
                                goto pick_fail;
                        }
                        done += bank_penalty;
                        if (sb_write(S, kc, pc, slot, wid_o, done) < 0
                            || advance_pc(S, slot, pc + 1) < 0)
                            goto pick_fail;
                        S->last_progress = cycle;
                    }
                    else if (kind == K_STORE) {
                        if (advance_pc(S, slot, pc + 1) < 0)
                            goto pick_fail;
                        S->last_progress = cycle;
                    }
                    else if (kind == K_JMP) {
                        if (advance_pc(S, slot, kc->tgt[pc]) < 0)
                            goto pick_fail;
                        S->last_progress = cycle;
                    }
                    else if (kind == K_BRA) {
                        long newpc;
                        if (kc->trip[pc] != TRIP_NONE) {
                            PyObject *trips_d =
                                PyList_GET_ITEM(S->trips, slot);
                            PyObject *key = PyLong_FromLong(pc);
                            if (key == NULL)
                                goto pick_fail;
                            PyObject *rem =
                                PyDict_GetItemWithError(trips_d, key);
                            if (rem == NULL && PyErr_Occurred()) {
                                Py_DECREF(key);
                                goto pick_fail;
                            }
                            long remaining =
                                rem ? PyLong_AsLong(rem) : kc->trip[pc];
                            long store;
                            if (remaining > 0) {
                                store = remaining - 1;
                                newpc = kc->tgt[pc];
                            }
                            else {
                                store = kc->trip[pc];
                                newpc = pc + 1;
                            }
                            PyObject *sv = PyLong_FromLong(store);
                            if (sv == NULL) {
                                Py_DECREF(key);
                                goto pick_fail;
                            }
                            int rc = PyDict_SetItem(trips_d, key, sv);
                            Py_DECREF(sv);
                            Py_DECREF(key);
                            if (rc < 0)
                                goto pick_fail;
                        }
                        else if (kc->prob[pc] > 0.0) {
                            double uu;
                            if (rng_uniform(
                                    PyList_GET_ITEM(S->rngs, slot), &uu) < 0)
                                goto pick_fail;
                            newpc = uu < kc->prob[pc] ? kc->tgt[pc] : pc + 1;
                        }
                        else
                            newpc = pc + 1;
                        if (advance_pc(S, slot, newpc) < 0)
                            goto pick_fail;
                        S->last_progress = cycle;
                    }
                    else if (kind == K_EXIT) {
                        /* CTA retire/launch hooks may read the shared
                         * counters: flush first. */
                        if (S->observer != NULL && flush_stats(S) < 0)
                            goto pick_fail;
                        PyObject *r = PyObject_CallFunctionObjArgs(
                            S->columnar_on_exit, view, S->cyc_obj, NULL);
                        if (r == NULL)
                            goto pick_fail;
                        Py_DECREF(r);
                        {
                            int rerr = 0;
                            S->resident_cnt = get_long_attr(
                                S->sm, S_resident_warp_count, &rerr);
                            if (rerr)
                                goto pick_fail;
                        }
                        S->last_progress = cycle;
                        exited = 1;
                    }
                    else if (kind == K_BARRIER) {
                        /* Advance first: the warp resumes past the
                         * barrier when released. */
                        if (advance_pc(S, slot, pc + 1) < 0)
                            goto pick_fail;
                        S->last_progress = cycle;
                        PyObject *cid = PyObject_GetAttr(view, S_cta_id);
                        if (cid == NULL)
                            goto pick_fail;
                        PyObject *cta =
                            PyDict_GetItemWithError(S->ctas_by_id, cid);
                        if (cta == NULL) {
                            if (!PyErr_Occurred())
                                PyErr_SetObject(PyExc_KeyError, cid);
                            Py_DECREF(cid);
                            goto pick_fail;
                        }
                        Py_INCREF(cta);
                        Py_DECREF(cid);
                        PyObject *r = PyObject_CallMethodObjArgs(
                            cta, S_arrive_at_barrier, view, NULL);
                        if (r == NULL) {
                            Py_DECREF(cta);
                            goto pick_fail;
                        }
                        int released = PyObject_IsTrue(r);
                        Py_DECREF(r);
                        if (released < 0) {
                            Py_DECREF(cta);
                            goto pick_fail;
                        }
                        if (released) {
                            PyObject *r2 = PyObject_CallFunctionObjArgs(
                                S->on_barrier_release, cta, NULL);
                            if (r2 == NULL) {
                                Py_DECREF(cta);
                                goto pick_fail;
                            }
                            Py_DECREF(r2);
                        }
                        Py_DECREF(cta);
                    }
                    else if (kind == K_ACQUIRE) {
                        PyObject *r = PyObject_CallFunctionObjArgs(
                            S->tech_try_acquire, view, S->cyc_obj, NULL);
                        if (r == NULL)
                            goto pick_fail;
                        int got = PyObject_IsTrue(r);
                        Py_DECREF(r);
                        if (got < 0)
                            goto pick_fail;
                        if (got) {
                            if (advance_pc(S, slot, pc + 1) < 0)
                                goto pick_fail;
                            S->last_progress = cycle;
                        }
                        else if (lget(S->status_col, slot) == ST_READY) {
                            /* Eager retry backoff (see _execute). */
                            if (lset(S->wake_col, slot,
                                     cycle + S->eager_backoff) < 0)
                                goto pick_fail;
                        }
                    }
                    else { /* K_RELEASE */
                        PyObject *r = PyObject_CallFunctionObjArgs(
                            S->tech_release, view, S->cyc_obj, NULL);
                        if (r == NULL)
                            goto pick_fail;
                        Py_DECREF(r);
                        if (advance_pc(S, slot, pc + 1) < 0)
                            goto pick_fail;
                        S->last_progress = cycle;
                    }
                    /* inline notify_issued */
                    if (u->kind == 0) {
                        if (add_long_attr(u->sched, S_issued_count, 1) < 0
                            || PyObject_SetAttr(u->sched, S_greedy,
                                                view) < 0)
                            goto pick_fail;
                    }
                    else if (u->kind == 1) {
                        if (add_long_attr(u->sched, S_issued_count, 1) < 0
                            || set_long_attr(u->sched, S_last_id, wid) < 0)
                            goto pick_fail;
                    }
                    else {
                        PyObject *r = PyObject_CallFunctionObjArgs(
                            u->sched_notify, view, NULL);
                        if (r == NULL)
                            goto pick_fail;
                        Py_DECREF(r);
                    }
                    issued_this += 1;
                    issued_here += 1;
                    if (PyList_Append(issued_list, chosen) < 0)
                        goto pick_fail;
                    if (S->multi_issue
                        && list_remove(candidates, chosen) < 0)
                        goto pick_fail;
                    /* inline requalification for remaining width; guarded
                     * on `exited` — the slot may host a fresh warp after a
                     * CTA retire and must not be read. */
                    if (!exited && lget(S->status_col, slot) == ST_READY
                        && lget(S->wake_col, slot) <= cycle) {
                        pc = lget(S->pc_col, slot);
                        int sb_ok;
                        long latest = 0;
                        if (lget(S->sb_max, slot) <= cycle)
                            sb_ok = 1;
                        else {
                            latest = cycle;
                            PyObject *row =
                                PyList_GET_ITEM(S->sb_rows, slot);
                            for (Py_ssize_t j = kc->regs_off[pc];
                                 j < kc->regs_off[pc + 1]; j++) {
                                long r = lget(row, kc->regs_data[j]);
                                if (r > latest)
                                    latest = r;
                            }
                            sb_ok = latest <= cycle;
                        }
                        int requal = 0;
                        if (!sb_ok) {
                            if (lset(S->stall_col, slot, SL_SCOREBOARD) < 0
                                || lset(S->wake_col, slot, latest) < 0)
                                goto pick_fail;
                        }
                        else if (kc->kind[pc] >= K_LOAD
                                 && kc->kind[pc] <= K_SHARED_LOAD) {
                            long inflight = get_long_attr(
                                S->memory, S_in_flight_total, &err);
                            if (err)
                                goto pick_fail;
                            if (inflight >= S->mem_cap) {
                                if (lset(S->stall_col, slot,
                                         SL_MEMORY) < 0)
                                    goto pick_fail;
                                PyObject *done =
                                    PyObject_CallFunctionObjArgs(
                                        S->mem_earliest, S->cyc_obj, NULL);
                                if (done == NULL)
                                    goto pick_fail;
                                if (done != Py_None) {
                                    long dv = PyLong_AsLong(done);
                                    Py_DECREF(done);
                                    if ((dv == -1 && PyErr_Occurred())
                                        || lset(S->wake_col, slot, dv) < 0)
                                        goto pick_fail;
                                }
                                else
                                    Py_DECREF(done);
                            }
                            else
                                requal = 1;
                        }
                        else
                            requal = 1;
                        if (requal && S->tech_can_issue != NULL) {
                            PyObject *r = PyObject_CallFunctionObjArgs(
                                S->tech_can_issue,
                                PyList_GET_ITEM(S->views, slot),
                                PyTuple_GET_ITEM(kc->insts, pc),
                                S->cyc_obj, NULL);
                            if (r == NULL)
                                goto pick_fail;
                            int ok = PyObject_IsTrue(r);
                            Py_DECREF(r);
                            if (ok < 0)
                                goto pick_fail;
                            if (!ok) {
                                requal = 0;
                                if (lset(S->stall_col, slot,
                                         SL_TECHNIQUE) < 0)
                                    goto pick_fail;
                            }
                        }
                        if (requal) {
                            if (lset(S->stall_col, slot, SL_NONE) < 0)
                                goto pick_fail;
                            if (S->multi_issue
                                && list_insort(candidates, chosen) < 0)
                                goto pick_fail;
                        }
                    }
                }
                Py_DECREF(view);
                Py_DECREF(chosen);
                continue;
            pick_fail:
                Py_XDECREF(view);
                Py_XDECREF(chosen);
                return -1;
            }

            /* inline dispose_issued (qstate-guarded, idempotent) */
            Py_ssize_t ni = PyList_GET_SIZE(issued_list);
            for (Py_ssize_t i = 0; i < ni; i++) {
                PyObject *item = PyList_GET_ITEM(issued_list, i);
                long slot = PyLong_AsLong(PyTuple_GET_ITEM(item, 1));
                if (lget(S->qstate_col, slot) != QS_READY)
                    continue; /* finished or re-homed same-pass */
                long st = lget(S->status_col, slot);
                if (st == ST_READY) {
                    long wake = lget(S->wake_col, slot);
                    if (wake > cycle) { /* eager acquire backoff */
                        if (list_remove(ready, item) < 0
                            || lset(S->qstate_col, slot, QS_SLEEPING) < 0
                            || park_sleeper(
                                   S, u, cycle, wake,
                                   PyTuple_GET_ITEM(item, 0),
                                   PyTuple_GET_ITEM(item, 1),
                                   lget(S->stall_col, slot)
                                       == SL_MEMORY) < 0)
                            return -1;
                    }
                }
                else if (st == ST_BARRIER) {
                    if (list_remove(ready, item) < 0
                        || lset(S->qstate_col, slot, QS_BARRIER) < 0
                        || add_long_attr(u->unit, S_barrier_count, 1) < 0)
                        return -1;
                }
                else if (st == ST_ACQUIRE) {
                    if (list_remove(ready, item) < 0
                        || lset(S->qstate_col, slot, QS_ACQUIRE) < 0
                        || add_long_attr(u->unit, S_acquire_count, 1) < 0)
                        return -1;
                }
            }
            if (list_clear_all(issued_list) < 0)
                return -1;
        }
        if (issued_here == 0) {
            S->d_idle += 1;
            if (acquire_count)
                S->d_acq += 1;
            else {
                /* Inline sleeper_flags: prune the far heap, then the
                 * aggregate-count classification. */
                while (PyList_GET_SIZE(u->far) > 0
                       && PyLong_AsLong(PyList_GET_ITEM(u->far, 0))
                              <= cycle) {
                    PyObject *p = heap_pop(u->far);
                    if (p == NULL)
                        return -1;
                    Py_DECREF(p);
                }
                long far_n = PyList_GET_SIZE(u->far);
                long ms = get_long_attr(u->unit, S_mem_sleepers, &err);
                if (err)
                    return -1;
                if (qual_mem || ms > 0 || far_n > 0)
                    S->d_mem += 1;
                else if (barrier_count)
                    S->d_bar += 1;
                else {
                    long nms =
                        get_long_attr(u->unit, S_nonmem_sleepers, &err);
                    if (err)
                        return -1;
                    if (qual_sb || nms > far_n)
                        S->d_sb += 1;
                }
            }
        }
    }
    *issued_out = issued_this;
    return 0;
}

/* ---- the batched run loop ------------------------------------------- */

static PyObject *
native_run(PyObject *self, PyObject *args)
{
    PyObject *sm, *sink, *can_issue, *on_issue;
    long max_cycles, interval;
    int wakeups, mem_native;
    (void)self;
    if (!PyArg_ParseTuple(args, "OllOOOpp", &sm, &max_cycles, &interval,
                          &sink, &can_issue, &on_issue, &wakeups,
                          &mem_native))
        return NULL;
    RunState St;
    memset(&St, 0, sizeof(St));
    RunState *S = &St;
    if (runstate_setup(S, sm, sink, can_issue, on_issue, wakeups,
                       mem_native) < 0) {
        runstate_free(S);
        return NULL;
    }
    long next_expire =
        S->cycle - (S->cycle % S->expire_period) + S->expire_period;
    long next_ckpt = -1;
    if (interval && S->checkpoint_sink != NULL)
        next_ckpt = S->cycle + interval;
    long status = 0;

    for (;;) {
        long cycle = S->cycle + 1;
        if (set_cycle(S, cycle) < 0)
            goto fail;
        long issued_this = 0;
        {
            PyObject *nxt = PyObject_GetAttr(S->memory, S_next_retire);
            if (nxt == NULL)
                goto fail;
            if (nxt != Py_None) {
                long nv = PyLong_AsLong(nxt);
                Py_DECREF(nxt);
                if (nv == -1 && PyErr_Occurred())
                    goto fail;
                if (nv <= cycle) {
                    if (S->mem_native) {
                        if (mem_retire_c(S, cycle) < 0)
                            goto fail;
                    }
                    else {
                        PyObject *r = PyObject_CallFunctionObjArgs(
                            S->mem_retire, S->cyc_obj, NULL);
                        if (r == NULL)
                            goto fail;
                        Py_DECREF(r);
                    }
                }
            }
            else
                Py_DECREF(nxt);
        }
        if (cycle >= next_expire) {
            next_expire = cycle + S->expire_period;
            while (PyList_GET_SIZE(S->sb_heap) > 0
                   && PyLong_AsLong(PyTuple_GET_ITEM(
                          PyList_GET_ITEM(S->sb_heap, 0), 0)) <= cycle) {
                PyObject *p = heap_pop(S->sb_heap);
                if (p == NULL)
                    goto fail;
                Py_DECREF(p);
            }
        }
        if (S->tech_wakeups) {
            PyObject *pending = PyObject_CallNoArgs(S->tech_wakeup);
            if (pending == NULL)
                goto fail;
            int truthy = PyObject_IsTrue(pending);
            if (truthy < 0) {
                Py_DECREF(pending);
                goto fail;
            }
            if (truthy) {
                PyObject *fast = PySequence_Fast(
                    pending, "wakeup_pending() must be iterable");
                if (fast == NULL) {
                    Py_DECREF(pending);
                    goto fail;
                }
                Py_ssize_t np = PySequence_Fast_GET_SIZE(fast);
                for (Py_ssize_t i = 0; i < np; i++) {
                    PyObject *warp = PySequence_Fast_GET_ITEM(fast, i);
                    PyObject *wst = PyObject_GetAttr(warp, S_status);
                    if (wst == NULL) {
                        Py_DECREF(fast);
                        Py_DECREF(pending);
                        goto fail;
                    }
                    int is_wa = (wst == S->status_waiting_acquire);
                    Py_DECREF(wst);
                    if (!is_wa)
                        continue;
                    if (PyObject_SetAttr(warp, S_status,
                                         S->status_ready) < 0) {
                        Py_DECREF(fast);
                        Py_DECREF(pending);
                        goto fail;
                    }
                    PyObject *wwid = PyObject_GetAttr(warp, S_warp_id);
                    PyObject *wslot = PyObject_GetAttr(warp, S_slot);
                    PyObject *r = NULL;
                    if (wwid != NULL && wslot != NULL)
                        r = PyObject_CallFunctionObjArgs(
                            S->on_acquire_wake, wwid, wslot, NULL);
                    Py_XDECREF(wwid);
                    Py_XDECREF(wslot);
                    if (r == NULL) {
                        Py_DECREF(fast);
                        Py_DECREF(pending);
                        goto fail;
                    }
                    Py_DECREF(r);
                }
                Py_DECREF(fast);
            }
            Py_DECREF(pending);
        }
        S->d_res += S->resident_cnt;

        if (do_cycle(S, cycle, &issued_this) < 0)
            goto fail;

        if (S->tail_hooks) {
            if (flush_stats(S) < 0)
                goto fail;
            if (S->debug_inv) {
                PyObject *r = PyObject_CallFunctionObjArgs(
                    S->tech_check_inv, S->cyc_obj, NULL);
                if (r == NULL)
                    goto fail;
                Py_DECREF(r);
            }
            if (S->san_on_cycle != NULL) {
                PyObject *r = PyObject_CallFunctionObjArgs(
                    S->san_on_cycle, sm, NULL);
                if (r == NULL)
                    goto fail;
                Py_DECREF(r);
            }
            if (S->observer != NULL) {
                PyObject *r = PyObject_CallFunctionObjArgs(
                    S->obs_on_cycle, sm, NULL);
                if (r == NULL)
                    goto fail;
                Py_DECREF(r);
            }
        }

        /* -- run-loop controls (mirrors the generic run loop) -- */
        if (issued_this == 0) {
            PyObject *pending_ctas = PyObject_GetAttr(sm, S_ctas_pending);
            if (pending_ctas == NULL)
                goto fail;
            int busy = PyObject_IsTrue(pending_ctas);
            Py_DECREF(pending_ctas);
            if (busy < 0)
                goto fail;
            if (!busy)
                busy = PyList_GET_SIZE(S->resident_ctas) > 0;
            if (busy) {
                /* Inline fast-forward: lazy scoreboard peek + memory +
                 * sleeper minima, identical to _fast_forward. */
                int has_target = 0;
                long target = 0;
                while (PyList_GET_SIZE(S->sb_heap) > 0) {
                    PyObject *top = PyList_GET_ITEM(S->sb_heap, 0);
                    long ready_at =
                        PyLong_AsLong(PyTuple_GET_ITEM(top, 0));
                    if (ready_at > cycle) {
                        PyObject *hwid = PyTuple_GET_ITEM(top, 1);
                        PyObject *hslot_o = PyDict_GetItemWithError(
                            S->wid2slot, hwid);
                        if (hslot_o == NULL && PyErr_Occurred())
                            goto fail;
                        if (hslot_o != NULL) {
                            long hslot = PyLong_AsLong(hslot_o);
                            long hreg = PyLong_AsLong(
                                PyTuple_GET_ITEM(top, 2));
                            if (lget(PyList_GET_ITEM(S->sb_rows, hslot),
                                     hreg) == ready_at) {
                                target = ready_at;
                                has_target = 1;
                                break;
                            }
                        }
                    }
                    PyObject *p = heap_pop(S->sb_heap);
                    if (p == NULL)
                        goto fail;
                    Py_DECREF(p);
                }
                {
                    PyObject *mt =
                        PyObject_GetAttr(S->memory, S_next_retire);
                    if (mt == NULL)
                        goto fail;
                    if (mt != Py_None) {
                        long mv = PyLong_AsLong(mt);
                        if (mv == -1 && PyErr_Occurred()) {
                            Py_DECREF(mt);
                            goto fail;
                        }
                        if (!has_target || mv < target) {
                            target = mv;
                            has_target = 1;
                        }
                    }
                    Py_DECREF(mt);
                }
                /* Completion-backed minimum so far: creditable against
                 * the watchdog iff it survives as the overall minimum. */
                int has_creditable = has_target;
                long creditable = target;
                for (int ui = 0; ui < S->nunits; ui++) {
                    PyObject *heap = S->units[ui].sleepers;
                    if (PyList_GET_SIZE(heap) > 0) {
                        long first = PyLong_AsLong(PyTuple_GET_ITEM(
                            PyList_GET_ITEM(heap, 0), 0));
                        if (!has_target || first < target) {
                            target = first;
                            has_target = 1;
                        }
                    }
                }
                if (!has_target) {
                    if (flush_stats(S) < 0)
                        goto fail;
                    status = 2; /* caller re-runs _fast_forward: raises */
                    break;
                }
                long skip = target - cycle - 1;
                if (skip > 0) {
                    cycle += skip;
                    if (set_cycle(S, cycle) < 0)
                        goto fail;
                    if (has_creditable && creditable == target)
                        S->last_progress += skip;
                    S->d_idle += skip * S->num_sched;
                    S->d_mem += skip * S->num_sched;
                    S->d_res += skip * S->resident_cnt;
                    if (S->observer != NULL) {
                        if (flush_stats(S) < 0)
                            goto fail;
                        PyObject *sk = PyLong_FromLong(skip);
                        if (sk == NULL)
                            goto fail;
                        PyObject *r = PyObject_CallFunctionObjArgs(
                            S->obs_on_fast_forward, sm, sk, NULL);
                        Py_DECREF(sk);
                        if (r == NULL)
                            goto fail;
                        Py_DECREF(r);
                    }
                }
            }
        }
        if (S->window && cycle - S->last_progress > S->window) {
            if (flush_stats(S) < 0)
                goto fail;
            status = 3; /* caller raises SimulationDeadlockError */
            break;
        }
        if (cycle > max_cycles) {
            if (flush_stats(S) < 0)
                goto fail;
            status = 4; /* caller raises CycleLimitExceededError */
            break;
        }
        {
            int done = PyList_GET_SIZE(S->resident_ctas) == 0;
            if (done) {
                PyObject *pending_ctas =
                    PyObject_GetAttr(sm, S_ctas_pending);
                if (pending_ctas == NULL)
                    goto fail;
                int more = PyObject_IsTrue(pending_ctas);
                Py_DECREF(pending_ctas);
                if (more < 0)
                    goto fail;
                if (!more)
                    break;
            }
        }
        if (next_ckpt >= 0 && cycle >= next_ckpt) {
            next_ckpt = cycle + interval;
            /* The snapshot reads SmStats and _last_progress_cycle:
             * flush first (timing-neutral). */
            if (flush_stats(S) < 0)
                goto fail;
            PyObject *ck = PyObject_CallNoArgs(S->save_checkpoint);
            if (ck == NULL)
                goto fail;
            PyObject *r = PyObject_CallFunctionObjArgs(
                S->checkpoint_sink, ck, NULL);
            Py_DECREF(ck);
            if (r == NULL)
                goto fail;
            Py_DECREF(r);
            if (S->observer != NULL) {
                PyObject *r2 = PyObject_CallFunctionObjArgs(
                    S->obs_on_checkpoint, sm, S->cyc_obj, NULL);
                if (r2 == NULL)
                    goto fail;
                Py_DECREF(r2);
            }
        }
    }

    if (status == 0) {
        if (flush_stats(S) < 0)
            goto fail;
        if (set_long_attr(S->stats, S_cycles, S->cycle) < 0)
            goto fail;
        if (S->observer != NULL) {
            PyObject *r = PyObject_CallFunctionObjArgs(
                S->obs_on_run_end, sm, NULL);
            if (r == NULL)
                goto fail;
            Py_DECREF(r);
        }
        PyObject *res = Py_BuildValue("(lO)", status, S->stats);
        runstate_free(S);
        return res;
    }
    {
        PyObject *res = Py_BuildValue("(lO)", status, Py_None);
        runstate_free(S);
        return res;
    }
fail:
    runstate_free(S);
    return NULL;
}

/* ---- module boilerplate --------------------------------------------- */

static PyMethodDef native_methods[] = {
    {"run_columnar", native_run, METH_VARARGS,
     "run_columnar(sm, max_cycles, checkpoint_interval, checkpoint_sink,"
     " can_issue, on_issue, wakeups) -> (status, aux)\n\n"
     "Batched columnar run loop over the SM's ColumnarCore.  Statuses:\n"
     "0=done (aux=stats), 2=deadlock/no timer, 3=watchdog, 4=cycle limit."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "repro._native",
    "C backend for the columnar issue engine (issue_engine=\"native\").",
    -1,
    native_methods,
    NULL, NULL, NULL, NULL,
};

static int
intern_all(void)
{
#define IN(var, s)                                   \
    do {                                             \
        var = PyUnicode_InternFromString(s);         \
        if (var == NULL)                             \
            return -1;                               \
    } while (0)
    IN(S_state, "_state");
    IN(S_in_flight_d, "_in_flight");
    IN(S_rng_a, "_rng");
    IN(S_loads_issued, "loads_issued");
    IN(S_l1_hits, "l1_hits");
    IN(S_l1_hit_latency, "l1_hit_latency");
    IN(S_dram_latency, "dram_latency");
    IN(S_l1_hit_rate, "l1_hit_rate");
    IN(S_warp_id, "warp_id");
    IN(S_slot, "slot");
    IN(S_cta_id, "cta_id");
    IN(S_status, "status");
    IN(S_issued_count, "issued_count");
    IN(S_greedy, "_greedy");
    IN(S_last_id, "_last_id");
    IN(S_barrier_count, "barrier_count");
    IN(S_acquire_count, "acquire_count");
    IN(S_mem_sleepers, "mem_sleepers");
    IN(S_nonmem_sleepers, "nonmem_sleepers");
    IN(S_next_retire, "_next_retire");
    IN(S_in_flight_total, "_in_flight_total");
    IN(S_instructions_issued, "instructions_issued");
    IN(S_idle_scheduler_cycles, "idle_scheduler_cycles");
    IN(S_stall_memory, "stall_memory");
    IN(S_stall_barrier, "stall_barrier");
    IN(S_stall_scoreboard, "stall_scoreboard");
    IN(S_stall_acquire, "stall_acquire");
    IN(S_resident_warp_cycles, "resident_warp_cycles");
    IN(S_cycles, "cycles");
    IN(S_cycle, "cycle");
    IN(S_last_progress_cycle, "_last_progress_cycle");
    IN(S_resident_warp_count, "_resident_warp_count");
    IN(S_ctas_pending, "ctas_pending");
    IN(S_arrive_at_barrier, "arrive_at_barrier");
    IN(S_extra_cycles, "extra_cycles");
    IN(S_kind, "kind");
    IN(S_lat, "lat");
    IN(S_tgt, "tgt");
    IN(S_trip, "trip");
    IN(S_prob, "prob");
    IN(S_dsts, "dsts");
    IN(S_srcs, "srcs");
    IN(S_regs, "regs");
    IN(S_insts, "insts");
    IN(S_units, "units");
    IN(S_sched, "sched");
    IN(S_ready, "ready");
    IN(S_candidates, "candidates");
    IN(S_keep, "keep");
    IN(S_issued, "issued");
    IN(S_sleepers, "sleepers");
    IN(S_far, "far");
    IN(S_pick, "pick");
    IN(S_notify_issued, "notify_issued");
    IN(S_hot, "hot");
    IN(S_wid2slot, "wid2slot");
    IN(S_columnar, "_columnar");
    IN(S_memory, "memory");
    IN(S_retire, "retire");
    IN(S_issue_load, "issue_load");
    IN(S_earliest_completion, "earliest_completion");
    IN(S_technique, "technique");
    IN(S_sanitizer_a, "_sanitizer");
    IN(S_banked_rf, "banked_rf");
    IN(S_observer_a, "_observer");
    IN(S_stats, "stats");
    IN(S_resident_ctas, "resident_ctas");
    IN(S_ctas_by_id, "_ctas_by_id");
    IN(S_columnar_on_exit, "_columnar_on_exit");
    IN(S_save_checkpoint, "save_checkpoint");
    IN(S_config, "config");
    IN(S_issue_width_per_scheduler, "issue_width_per_scheduler");
    IN(S_debug_invariants, "debug_invariants");
    IN(S_watchdog_window, "watchdog_window");
    IN(S_max_in_flight, "_max_in_flight");
    IN(S_on_issue, "on_issue");
    IN(S_on_cycle, "on_cycle");
    IN(S_on_fast_forward, "on_fast_forward");
    IN(S_on_checkpoint, "on_checkpoint");
    IN(S_on_run_end, "on_run_end");
    IN(S_wakeup_pending, "wakeup_pending");
    IN(S_try_acquire, "try_acquire");
    IN(S_release, "release");
    IN(S_check_invariants, "check_invariants");
    IN(S_resolve_physical, "resolve_physical");
    IN(S_collect, "collect");
    IN(S_on_acquire_wake, "on_acquire_wake");
    IN(S_on_barrier_release, "on_barrier_release");
    IN(S_READY_attr, "READY");
    IN(S_WAITING_ACQUIRE_attr, "WAITING_ACQUIRE");
#undef IN
    return 0;
}

PyMODINIT_FUNC
PyInit__native(void)
{
    if (intern_all() < 0)
        return NULL;
    PyObject *m = PyModule_Create(&native_module);
    if (m == NULL)
        return NULL;
    /* Export the compiled-in encodings so sm.py can verify them against
     * the Python constants and refuse the extension on drift. */
#define EXPORT(c)                                     \
    if (PyModule_AddIntConstant(m, #c, c) < 0) {      \
        Py_DECREF(m);                                 \
        return NULL;                                  \
    }
    EXPORT(ST_READY) EXPORT(ST_BARRIER) EXPORT(ST_ACQUIRE)
    EXPORT(ST_FINISHED)
    EXPORT(SL_NONE) EXPORT(SL_SCOREBOARD) EXPORT(SL_MEMORY)
    EXPORT(SL_TECHNIQUE)
    EXPORT(QS_OUT) EXPORT(QS_READY) EXPORT(QS_SLEEPING)
    EXPORT(QS_BARRIER) EXPORT(QS_ACQUIRE)
    EXPORT(K_ALU) EXPORT(K_LOAD) EXPORT(K_SHARED_LOAD) EXPORT(K_STORE)
    EXPORT(K_EXIT) EXPORT(K_JMP) EXPORT(K_BRA) EXPORT(K_BARRIER)
    EXPORT(K_ACQUIRE) EXPORT(K_RELEASE)
#undef EXPORT
    if (PyModule_AddIntConstant(m, "NATIVE_ABI", 1) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
