"""Cooperative Thread Array: a barrier-synchronized group of warps."""

from __future__ import annotations

from repro.sim.warp import Warp, WarpStatus


class Cta:
    """A CTA resident on an SM: its warps plus barrier bookkeeping."""

    __slots__ = ("cta_id", "warps", "_arrived")

    def __init__(self, cta_id: int, warps: list[Warp]) -> None:
        if not warps:
            raise ValueError("CTA must contain at least one warp")
        self.cta_id = cta_id
        self.warps = warps
        self._arrived: set[int] = set()

    @property
    def num_warps(self) -> int:
        return len(self.warps)

    @property
    def finished(self) -> bool:
        return all(w.finished for w in self.warps)

    # -- barrier protocol -------------------------------------------------------
    def arrive_at_barrier(self, warp: Warp) -> bool:
        """Mark a warp arrived; returns True when the barrier releases.

        Finished warps don't participate (a warp that has exited cannot
        arrive, matching CUDA semantics where ``__syncthreads`` must be
        reached by all *live* threads of the CTA).
        """
        warp.status = WarpStatus.AT_BARRIER
        self._arrived.add(warp.warp_id)
        live = [w for w in self.warps if not w.finished]
        if all(w.warp_id in self._arrived for w in live):
            for w in live:
                if w.status is WarpStatus.AT_BARRIER:
                    w.status = WarpStatus.READY
            self._arrived.clear()
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cta(id={self.cta_id}, warps={self.num_warps})"
