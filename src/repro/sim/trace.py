"""Cycle-trace recording — compatibility shim over the event bus.

This module predates :mod:`repro.observe`; its :class:`TraceEvent` /
:class:`Trace` containers and the :class:`TracingTechniqueState`
decorator are kept so existing tests and examples run unchanged, but
the recording itself now rides the observability event bus: the shim is
an :class:`~repro.observe.hooks.ObservingTechniqueState` with a private
bus whose events are down-converted to ``TraceEvent``.  New code should
attach a :class:`repro.observe.SmObserver` instead, which adds stall
attribution, CTA lifecycle, SRP section tracks, and probe timelines on
top of the five kinds recorded here.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.observe.bus import EventBus
from repro.observe.events import SimEvent
from repro.observe.hooks import ObservingTechniqueState
from repro.sim.technique import SmTechniqueState


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is one of: issue, acquire_ok, acquire_blocked, release,
    warp_finish.
    """

    cycle: int
    kind: str
    warp_id: int
    pc: int
    opcode: Optional[str] = None


@dataclass
class Trace:
    """An append-only event log with query helpers."""

    events: list[TraceEvent] = field(default_factory=list)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_warp(self, warp_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.warp_id == warp_id]

    def hold_intervals(self, warp_id: int) -> list[tuple[int, int]]:
        """(acquire cycle, release cycle) pairs for one warp.

        An unmatched trailing acquire (section reclaimed at EXIT) closes
        at the warp's finish event, or at the last traced cycle.
        """
        intervals: list[tuple[int, int]] = []
        start: Optional[int] = None
        finish: Optional[int] = None
        for e in self.for_warp(warp_id):
            if e.kind == "acquire_ok" and start is None:
                start = e.cycle
            elif e.kind == "release" and start is not None:
                intervals.append((start, e.cycle))
                start = None
            elif e.kind == "warp_finish":
                finish = e.cycle
        if start is not None:
            last = finish if finish is not None else (
                self.events[-1].cycle if self.events else start
            )
            intervals.append((start, last))
        return intervals

    def __len__(self) -> int:
        return len(self.events)


# The five event kinds the legacy recorder captured; the bus also
# carries stall/CTA/section kinds, which the shim drops.
_TRACE_KINDS = frozenset(
    ("issue", "acquire_ok", "acquire_blocked", "release", "warp_finish")
)


class TracingTechniqueState(ObservingTechniqueState):
    """Deprecated recorder: an observing wrapper feeding a :class:`Trace`.

    Kept for source compatibility; emits a :class:`DeprecationWarning`
    on construction.  Prefer ``repro.observe.SmObserver.attach(sm)``.
    """

    def __init__(self, inner: SmTechniqueState, trace: Trace | None = None) -> None:
        warnings.warn(
            "TracingTechniqueState is deprecated; attach a "
            "repro.observe.SmObserver (or wrap with "
            "repro.observe.ObservingTechniqueState) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(inner, EventBus())
        self.trace = trace if trace is not None else Trace()
        self.bus.subscribe(self._record)

    def _record(self, event: SimEvent) -> None:
        if event.kind in _TRACE_KINDS:
            self.trace.append(TraceEvent(
                event.cycle, event.kind, event.warp_id, event.pc, event.detail
            ))
