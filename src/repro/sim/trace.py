"""Cycle-trace recording for debugging and analysis.

A :class:`TraceRecorder` subscribes to an SM and logs issue events,
acquire/release outcomes, barrier arrivals, and CTA launches/retirements
as structured tuples.  It exists for three consumers: the test suite
(asserting event orderings the aggregate counters cannot express),
interactive debugging of workload shapes, and the per-warp timeline
example.

The recorder wraps a technique state (decorator pattern) so it sees
acquire/release traffic without the SM pipeline knowing about tracing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.instructions import Instruction
from repro.sim.technique import SmTechniqueState
from repro.sim.warp import Warp


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is one of: issue, acquire_ok, acquire_blocked, release,
    warp_finish.
    """

    cycle: int
    kind: str
    warp_id: int
    pc: int
    opcode: Optional[str] = None


@dataclass
class Trace:
    """An append-only event log with query helpers."""

    events: list[TraceEvent] = field(default_factory=list)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_warp(self, warp_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.warp_id == warp_id]

    def hold_intervals(self, warp_id: int) -> list[tuple[int, int]]:
        """(acquire cycle, release cycle) pairs for one warp.

        An unmatched trailing acquire (section reclaimed at EXIT) closes
        at the warp's finish event, or at the last traced cycle.
        """
        intervals: list[tuple[int, int]] = []
        start: Optional[int] = None
        finish: Optional[int] = None
        for e in self.for_warp(warp_id):
            if e.kind == "acquire_ok" and start is None:
                start = e.cycle
            elif e.kind == "release" and start is not None:
                intervals.append((start, e.cycle))
                start = None
            elif e.kind == "warp_finish":
                finish = e.cycle
        if start is not None:
            last = finish if finish is not None else (
                self.events[-1].cycle if self.events else start
            )
            intervals.append((start, last))
        return intervals

    def __len__(self) -> int:
        return len(self.events)


class TracingTechniqueState(SmTechniqueState):
    """Wraps another technique state and records its decisions."""

    def __init__(self, inner: SmTechniqueState, trace: Trace | None = None) -> None:
        super().__init__(inner.kernel, inner.config, inner.stats)
        self.inner = inner
        self.trace = trace if trace is not None else Trace()

    def can_issue(self, warp: Warp, inst: Instruction, cycle: int) -> bool:
        return self.inner.can_issue(warp, inst, cycle)

    def on_issue(self, warp: Warp, inst: Instruction, cycle: int) -> None:
        self.trace.append(TraceEvent(
            cycle, "issue", warp.warp_id, warp.pc, inst.opcode.value
        ))
        self.inner.on_issue(warp, inst, cycle)

    def try_acquire(self, warp: Warp, cycle: int) -> bool:
        granted = self.inner.try_acquire(warp, cycle)
        kind = "acquire_ok" if granted else "acquire_blocked"
        self.trace.append(TraceEvent(cycle, kind, warp.warp_id, warp.pc))
        return granted

    def release(self, warp: Warp, cycle: int) -> None:
        held_before = warp.holds_extended_set
        self.inner.release(warp, cycle)
        if held_before:
            self.trace.append(TraceEvent(cycle, "release", warp.warp_id, warp.pc))

    def on_warp_finish(self, warp: Warp, cycle: int) -> None:
        self.inner.on_warp_finish(warp, cycle)
        self.trace.append(TraceEvent(cycle, "warp_finish", warp.warp_id, warp.pc))

    def wakeup_pending(self) -> list[Warp]:
        return self.inner.wakeup_pending()
