"""Columnar SM core: array-backed hot state behind thin object views.

The scan and event steppers keep the simulation's hot state scattered
across Python objects — a ``Warp`` per resident warp, dict-of-dicts in
the ``Scoreboard``, enum-valued attributes read through descriptor
lookups, and an ``Instruction`` dataclass whose ``op_class``/``latency``
properties re-hash an enum on every fetch.  Profiling the event engine
on the SAD long run shows the ceiling is exactly that object model:
~63 Python calls and several hundred attribute/enum operations per
simulated cycle, none of them algorithmically necessary.

This module restructures the per-SM hot state into a **columnar store**:

* :class:`KernelColumns` — a one-time pre-decode of a kernel into
  parallel per-pc arrays (kind code, latency, register tuples, resolved
  branch targets, trip counts, taken probabilities).  Kills the
  ``Instruction`` property and enum-hash cost from the issue path.
* :class:`ColumnarCore` — per-slot parallel arrays for everything the
  issue loop touches: pc, wake cycle, status code, stall-reason code,
  queue-state code, dynamic instruction count, scoreboard rows and
  per-slot pending maxima, plus per-scheduler ready lists and sleeper
  heaps of bare ``(warp_id, slot)`` tuples.
* :class:`ColumnarWarpView` — a ``Warp`` subclass whose hot attributes
  are properties proxying into the columns, so the public API is
  unchanged: techniques, the CTA barrier protocol, observers, the
  sanitizer, probes, and diagnostics all keep reading/writing
  ``warp.pc``/``warp.status``/... while the stepper works on the arrays.
* :class:`ColumnarScoreboard` — an API-compatible facade over the rows
  (same methods as :class:`repro.sim.scoreboard.Scoreboard`), so the
  sanitizer's hazard re-check and the deadlock diagnostics are agnostic
  to which engine owns the state.

Representation note (measured, not assumed): the hot columns are plain
Python lists, *not* NumPy arrays.  Scalar indexing — which is all the
issue loop does — costs ~74 ns on a list vs ~186 ns on an ndarray (and
numpy scalar comparison boxes through ``np.bool_``), so ndarray-backed
columns would be ~2.5x *slower* here.  NumPy earns its keep on the bulk
reads: :meth:`ColumnarCore.snapshot` exports the columns as arrays, and
the masked invariant sweeps (:meth:`ColumnarCore.check_hygiene`, the
probes' histogram path) vectorize over them.  NumPy is optional at
import — the pure-Python fallbacks keep scan/event-only installs
working.

Scoreboard rows never expire (unlike the dict engine's periodic
``expire``): a stale entry has ``ready <= cycle`` and every consumer
compares with ``> cycle``-style predicates, so retention is invisible.
That also makes ``has_pending_memory`` O(1): row values only grow, so
the per-slot ``sb_max`` *is* the maximum pending completion, and
"any write further than ``horizon`` out" reduces to one comparison.

Bit-identity contract: identical cycle counts, identical per-stall
``SmStats``, identical oracle digests against both retained steppers —
enforced by the 3-way property tests in ``tests/sim/test_wakequeue.py``
and the differential oracle.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.isa.instructions import Instruction, OpClass, Opcode
from repro.isa.kernel import Kernel
from repro.sim.rand import DeterministicRng
from repro.sim.scheduler import GtoScheduler, LrrScheduler
from repro.sim.wakequeue import (
    MEMORY_STALL_HORIZON,
    QS_ACQUIRE,
    QS_BARRIER,
    QS_OUT,
    QS_READY,
    QS_SLEEPING,
)
from repro.sim.warp import Warp, WarpStatus

try:  # Bulk/masked ops only — the hot loop never touches numpy.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None

# -- column encodings ---------------------------------------------------------

# Warp status codes (column representation of WarpStatus).
ST_READY = 0
ST_BARRIER = 1
ST_ACQUIRE = 2
ST_FINISHED = 3
STATUS_ENUM = (
    WarpStatus.READY,
    WarpStatus.AT_BARRIER,
    WarpStatus.WAITING_ACQUIRE,
    WarpStatus.FINISHED,
)
STATUS_CODE = {status: code for code, status in enumerate(STATUS_ENUM)}

# Stall-reason codes (column representation of Warp.stalled_on).
SL_NONE = 0
SL_SCOREBOARD = 1
SL_MEMORY = 2
SL_TECHNIQUE = 3
STALL_STR = (None, "scoreboard", "memory", "technique")
STALL_CODE = {s: code for code, s in enumerate(STALL_STR)}

# Instruction kind codes (column representation of OpClass + the opcode
# distinctions the stepper cares about).  K_LOAD/K_SHARED_LOAD are
# adjacent so the memory-window gate is a two-comparison test.
K_ALU = 0          # IALU / FALU / SFU / NOP: fixed-latency register ops
K_LOAD = 1         # LD.GLOBAL — occupies the in-flight window
K_SHARED_LOAD = 2  # LD.SHARED — fixed latency, no window slot
K_STORE = 3
K_EXIT = 4
K_JMP = 5
K_BRA = 6
K_BARRIER = 7
K_ACQUIRE = 8
K_RELEASE = 9


def _kind_code(inst: Instruction) -> int:
    op_class = inst.op_class
    if op_class in (OpClass.IALU, OpClass.FALU, OpClass.SFU, OpClass.NOP):
        return K_ALU
    if op_class is OpClass.LOAD:
        return K_SHARED_LOAD if inst.opcode is Opcode.LD_SHARED else K_LOAD
    if op_class is OpClass.STORE:
        return K_STORE
    if op_class is OpClass.BRANCH:
        if inst.is_exit:
            return K_EXIT
        return K_BRA if inst.is_conditional_branch else K_JMP
    if op_class is OpClass.BARRIER:
        return K_BARRIER
    if op_class is OpClass.REGMUTEX:
        return K_ACQUIRE if inst.opcode is Opcode.ACQUIRE else K_RELEASE
    raise AssertionError(f"unhandled op class {op_class}")


class KernelColumns:
    """Per-kernel instruction pre-decode: parallel arrays indexed by pc.

    Everything the issue loop would otherwise fetch through
    ``Instruction`` properties (enum dict hashes per access) is decoded
    once per kernel: kind codes, latencies, operand tuples, label
    targets resolved to pcs, and branch annotations.  ``insts`` keeps
    the original objects for the cold paths that want them (technique
    hooks, sanitizer, observers).
    """

    __slots__ = (
        "kind", "lat", "dsts", "srcs", "regs", "insts",
        "tgt", "trip", "prob", "nregs",
    )

    def __init__(self, kernel: Kernel) -> None:
        insts = tuple(kernel.instructions)
        self.insts = insts
        self.kind = [_kind_code(inst) for inst in insts]
        self.lat = [inst.latency for inst in insts]
        self.dsts = [inst.dsts for inst in insts]
        self.srcs = [inst.srcs for inst in insts]
        # Qualification order matches Scoreboard.ready_cycle: srcs, dsts.
        self.regs = [(*inst.srcs, *inst.dsts) for inst in insts]
        self.tgt = [
            kernel.label_pc(inst.target) if inst.is_branch else -1
            for inst in insts
        ]
        self.trip = [inst.trip_count for inst in insts]
        self.prob = [
            inst.taken_probability if inst.taken_probability is not None else 0.0
            for inst in insts
        ]
        max_reg = max(
            (reg for regs in self.regs for reg in regs),
            default=-1,
        )
        self.nregs = max(max_reg + 1, kernel.metadata.regs_per_thread, 1)


# Raw (base-class slot) descriptors: the view's properties shadow these
# names, so detached/unbound access goes through the descriptors directly.
_RAW_PC = Warp.__dict__["pc"]
_RAW_STATUS = Warp.__dict__["status"]
_RAW_STALLED_ON = Warp.__dict__["stalled_on"]
_RAW_WAKE = Warp.__dict__["wake_cycle"]
_RAW_DYN = Warp.__dict__["dynamic_instructions"]
_RAW_QSTATE = Warp.__dict__["qstate"]
_RAW_HOLDS = Warp.__dict__["holds_extended_set"]


class ColumnarWarpView(Warp):
    """A ``Warp`` whose hot attributes live in the columnar store.

    Everything outside the stepper — techniques, the CTA barrier
    protocol, probes, the sanitizer, diagnostics, tests — keeps using
    the ``Warp`` API; these properties forward to the columns while the
    view is *bound*.  On CTA retirement the view is detached: the final
    column values are copied back into the base-class slots so the slot
    can be recycled without stale views aliasing its next tenant.

    Cold attributes (``rng``, ``_trips_remaining``, ``srp_section``,
    ``acquire_block_since``, ``owns_pair_lock``) stay plain slots — they
    are technique state, not issue-loop state.
    """

    __slots__ = ("_cols", "_bound")

    def __init__(
        self,
        cols: "ColumnarCore",
        warp_id: int,
        cta_id: int,
        kernel: Kernel,
        rng: DeterministicRng,
        slot: int,
    ) -> None:
        # Must precede super().__init__: the base constructor assigns
        # through the properties below, which route on ``_bound``.
        self._cols = cols
        self._bound = False
        super().__init__(warp_id, cta_id, kernel, rng, slot=slot)

    # -- hot attributes proxied into the columns -------------------------------
    @property
    def pc(self) -> int:
        if self._bound:
            return self._cols.pc[self.slot]
        return _RAW_PC.__get__(self)

    @pc.setter
    def pc(self, value: int) -> None:
        if self._bound:
            self._cols.pc[self.slot] = value
        else:
            _RAW_PC.__set__(self, value)

    @property
    def status(self) -> WarpStatus:
        if self._bound:
            return STATUS_ENUM[self._cols.status[self.slot]]
        return _RAW_STATUS.__get__(self)

    @status.setter
    def status(self, value: WarpStatus) -> None:
        if self._bound:
            self._cols.status[self.slot] = STATUS_CODE[value]
        else:
            _RAW_STATUS.__set__(self, value)

    @property
    def stalled_on(self):
        if self._bound:
            return STALL_STR[self._cols.stall[self.slot]]
        return _RAW_STALLED_ON.__get__(self)

    @stalled_on.setter
    def stalled_on(self, value) -> None:
        if self._bound:
            self._cols.stall[self.slot] = STALL_CODE[value]
        else:
            _RAW_STALLED_ON.__set__(self, value)

    @property
    def wake_cycle(self) -> int:
        if self._bound:
            return self._cols.wake[self.slot]
        return _RAW_WAKE.__get__(self)

    @wake_cycle.setter
    def wake_cycle(self, value: int) -> None:
        if self._bound:
            self._cols.wake[self.slot] = value
        else:
            _RAW_WAKE.__set__(self, value)

    @property
    def dynamic_instructions(self) -> int:
        if self._bound:
            return self._cols.dyn[self.slot]
        return _RAW_DYN.__get__(self)

    @dynamic_instructions.setter
    def dynamic_instructions(self, value: int) -> None:
        if self._bound:
            self._cols.dyn[self.slot] = value
        else:
            _RAW_DYN.__set__(self, value)

    @property
    def qstate(self) -> int:
        if self._bound:
            return self._cols.qstate[self.slot]
        return _RAW_QSTATE.__get__(self)

    @qstate.setter
    def qstate(self, value: int) -> None:
        if self._bound:
            self._cols.qstate[self.slot] = value
        else:
            _RAW_QSTATE.__set__(self, value)

    @property
    def holds_extended_set(self) -> bool:
        if self._bound:
            return self._cols.holds[self.slot]
        return _RAW_HOLDS.__get__(self)

    @holds_extended_set.setter
    def holds_extended_set(self, value: bool) -> None:
        if self._bound:
            self._cols.holds[self.slot] = value
        else:
            _RAW_HOLDS.__set__(self, value)


class ColumnarUnit:
    """Per-scheduler ready/sleeper/blocked state over ``(warp_id, slot)``
    tuples — the columnar twin of
    :class:`repro.sim.wakequeue.SchedulerWakeQueue`, with the same
    attribution bookkeeping (class counts + far-threshold heap) but no
    warp objects on the hot path.

    ``kind`` encodes the scheduler pick fast path: 0 = GTO with the
    default priority (greedy id match, else lowest id), 1 = LRR (first
    id past the last issued), 2 = priority hook installed — fall back to
    ``sched.pick`` over the view objects so user hooks see real warps.
    """

    __slots__ = (
        "sched", "kind", "ready", "candidates", "keep", "issued",
        "sleepers", "far", "mem_sleepers", "nonmem_sleepers",
        "barrier_count", "acquire_count",
    )

    def __init__(self, sched) -> None:
        self.sched = sched
        if isinstance(sched, GtoScheduler) and sched._default_priority:
            self.kind = 0
        elif isinstance(sched, LrrScheduler):
            self.kind = 1
        else:
            self.kind = 2
        self.ready: list[tuple[int, int]] = []
        self.candidates: list[tuple[int, int]] = []
        self.keep: list[tuple[int, int]] = []
        self.issued: list[tuple[int, int]] = []
        # (wake_cycle, warp_id, slot, is_memory_stall)
        self.sleepers: list[tuple[int, int, int, bool]] = []
        self.far: list[int] = []
        self.mem_sleepers = 0
        self.nonmem_sleepers = 0
        self.barrier_count = 0
        self.acquire_count = 0

    def sleeping_warps(self) -> int:
        return self.mem_sleepers + self.nonmem_sleepers

    # -- checkpointing (repro.sim.checkpoint) -------------------------------------
    def queue_snapshot(self) -> dict:
        """Queue membership as plain JSON-safe values.  The sleeper heap
        is serialized verbatim (sans nothing — entries are already bare
        scalars); ``(wake, warp_id)`` keys are unique, so any valid heap
        arrangement pops in the same order.  Scratch lists
        (``candidates``/``keep``/``issued``) are empty at every cycle
        boundary and are not captured."""
        return {
            "ready": [list(t) for t in self.ready],
            "sleepers": [list(t) for t in self.sleepers],
            "far": list(self.far),
            "mem_sleepers": self.mem_sleepers,
            "nonmem_sleepers": self.nonmem_sleepers,
            "barrier_count": self.barrier_count,
            "acquire_count": self.acquire_count,
        }

    def queue_restore(self, payload: dict) -> None:
        from heapq import heapify

        # Entries must be tuples, not lists: ``ready.remove((wid, slot))``
        # compares by equality and list != tuple.
        self.ready = [(wid, slot) for wid, slot in payload["ready"]]
        self.candidates = []
        self.keep = []
        self.issued = []
        self.sleepers = [
            (wake, wid, slot, bool(mem))
            for wake, wid, slot, mem in payload["sleepers"]
        ]
        heapify(self.sleepers)
        self.far = list(payload["far"])
        heapify(self.far)
        self.mem_sleepers = payload["mem_sleepers"]
        self.nonmem_sleepers = payload["nonmem_sleepers"]
        self.barrier_count = payload["barrier_count"]
        self.acquire_count = payload["acquire_count"]


class ColumnarCore:
    """The per-SM columnar store plus its event bookkeeping.

    Columns are parallel lists indexed by warp slot; ``wid[slot] == -1``
    marks a free slot.  ``hot`` is a prebuilt tuple of the stepper's
    column references so ``_step_columnar`` aliases them all with a
    single attribute read + unpack per cycle.
    """

    __slots__ = (
        "units", "num_schedulers", "issue_width", "capacity",
        "pc", "wake", "status", "stall", "qstate", "dyn",
        "views", "kcs", "rngs", "trips",
        "sb_rows", "sb_max", "sb_heap",
        "wid", "holds", "base_regs", "ext_regs",
        "wid2slot", "_kc_cache", "hot",
    )

    def __init__(self, schedulers, config) -> None:
        self.units = [ColumnarUnit(s) for s in schedulers]
        self.num_schedulers = len(schedulers)
        self.issue_width = config.issue_width_per_scheduler
        self.capacity = 0
        self.pc: list[int] = []
        self.wake: list[int] = []
        self.status: list[int] = []
        self.stall: list[int] = []
        self.qstate: list[int] = []
        self.dyn: list[int] = []
        self.views: list[ColumnarWarpView | None] = []
        self.kcs: list[KernelColumns | None] = []
        self.rngs: list[DeterministicRng | None] = []
        self.trips: list[dict | None] = []
        self.sb_rows: list[list[int] | None] = []
        self.sb_max: list[int] = []
        # Scoreboard completion min-heap of (ready_cycle, warp_id, reg);
        # lazily validated against the rows (see ColumnarScoreboard).
        self.sb_heap: list[tuple[int, int, int]] = []
        self.wid: list[int] = []
        self.holds: list[bool] = []
        self.base_regs: list[int] = []
        self.ext_regs: list[int] = []
        self.wid2slot: dict[int, int] = {}
        # Keyed by id(kernel); the kernel ref in the value keeps the id
        # stable for the SM's lifetime (Kernel defines __eq__ and is
        # therefore unhashable).
        self._kc_cache: dict[int, tuple[Kernel, KernelColumns]] = {}
        self._ensure(config.max_warps_per_sm - 1)
        self.hot = (
            self.pc, self.wake, self.status, self.stall, self.qstate,
            self.dyn, self.views, self.kcs, self.rngs, self.trips,
            self.sb_rows, self.sb_max, self.sb_heap,
        )

    def _ensure(self, slot: int) -> None:
        """Grow every column to cover ``slot`` (lists mutate in place, so
        the prebuilt ``hot`` tuple stays valid)."""
        while self.capacity <= slot:
            self.pc.append(0)
            self.wake.append(0)
            self.status.append(ST_FINISHED)
            self.stall.append(SL_NONE)
            self.qstate.append(QS_OUT)
            self.dyn.append(0)
            self.views.append(None)
            self.kcs.append(None)
            self.rngs.append(None)
            self.trips.append(None)
            self.sb_rows.append(None)
            self.sb_max.append(0)
            self.wid.append(-1)
            self.holds.append(False)
            self.base_regs.append(0)
            self.ext_regs.append(0)
            self.capacity += 1

    def kernel_columns(self, kernel: Kernel) -> KernelColumns:
        key = id(kernel)
        entry = self._kc_cache.get(key)
        if entry is None:
            entry = (kernel, KernelColumns(kernel))
            self._kc_cache[key] = entry
        return entry[1]

    # -- warp lifecycle ---------------------------------------------------------
    def new_warp(
        self,
        warp_id: int,
        cta_id: int,
        kernel: Kernel,
        rng: DeterministicRng,
        slot: int,
    ) -> ColumnarWarpView:
        """Create a view bound to ``slot`` and initialize its columns
        (fresh scoreboard row included — slot recycling must not leak
        the previous tenant's pending writes)."""
        self._ensure(slot)
        kc = self.kernel_columns(kernel)
        view = ColumnarWarpView(self, warp_id, cta_id, kernel, rng, slot)
        self.pc[slot] = 0
        self.wake[slot] = 0
        self.status[slot] = ST_READY
        self.stall[slot] = SL_NONE
        self.qstate[slot] = QS_OUT
        self.dyn[slot] = 0
        self.views[slot] = view
        self.kcs[slot] = kc
        self.rngs[slot] = rng
        self.trips[slot] = view._trips_remaining
        self.sb_rows[slot] = [0] * kc.nregs
        self.sb_max[slot] = 0
        self.wid[slot] = warp_id
        self.holds[slot] = False
        metadata = kernel.metadata
        self.base_regs[slot] = metadata.base_set_size or metadata.regs_per_thread
        self.ext_regs[slot] = metadata.extended_set_size or 0
        self.wid2slot[warp_id] = slot
        view._bound = True
        return view

    def add_warp(self, view: ColumnarWarpView) -> None:
        """CTA launch made the warp resident: append to its scheduler's
        ready list (warp ids are monotonic, so append keeps id order)."""
        slot = view.slot
        self.qstate[slot] = QS_READY
        self.units[view.warp_id % self.num_schedulers].ready.append(
            (view.warp_id, slot)
        )

    def release_warp(self, view: ColumnarWarpView) -> None:
        """CTA retirement: detach the view (column values copied back to
        its own slots) and free the column slot for recycling."""
        slot = view.slot
        if view._bound:
            view._bound = False
            _RAW_PC.__set__(view, self.pc[slot])
            _RAW_STATUS.__set__(view, STATUS_ENUM[self.status[slot]])
            _RAW_STALLED_ON.__set__(view, STALL_STR[self.stall[slot]])
            _RAW_WAKE.__set__(view, self.wake[slot])
            _RAW_DYN.__set__(view, self.dyn[slot])
            _RAW_QSTATE.__set__(view, self.qstate[slot])
            _RAW_HOLDS.__set__(view, self.holds[slot])
        self.wid2slot.pop(view.warp_id, None)
        self.wid[slot] = -1
        self.views[slot] = None
        self.kcs[slot] = None
        self.rngs[slot] = None
        self.trips[slot] = None
        self.qstate[slot] = QS_OUT
        self.status[slot] = ST_FINISHED
        self.holds[slot] = False

    # -- event hooks (cold paths; the stepper inlines the hot ones) -------------
    def on_finish(self, warp_id: int, slot: int) -> None:
        """Mirror of ``SchedulerWakeQueue.on_finish`` over tuples."""
        unit = self.units[warp_id % self.num_schedulers]
        qs = self.qstate[slot]
        if qs == QS_READY:
            unit.ready.remove((warp_id, slot))
        elif qs == QS_BARRIER:
            unit.barrier_count -= 1
        elif qs == QS_ACQUIRE:
            unit.acquire_count -= 1
        self.qstate[slot] = QS_OUT

    def on_barrier_release(self, cta) -> None:
        from bisect import insort

        qstate = self.qstate
        for warp in cta.warps:
            slot = warp.slot
            if qstate[slot] == QS_BARRIER:
                unit = self.units[warp.warp_id % self.num_schedulers]
                unit.barrier_count -= 1
                qstate[slot] = QS_READY
                insort(unit.ready, (warp.warp_id, slot))

    def on_acquire_wake(self, warp_id: int, slot: int) -> None:
        from bisect import insort

        if self.qstate[slot] == QS_ACQUIRE:
            unit = self.units[warp_id % self.num_schedulers]
            unit.acquire_count -= 1
            self.qstate[slot] = QS_READY
            insort(unit.ready, (warp_id, slot))

    def earliest_wake(self) -> int | None:
        """Soonest sleeper wake cycle across schedulers (fast-forward)."""
        best: int | None = None
        for unit in self.units:
            heap = unit.sleepers
            if heap and (best is None or heap[0][0] < best):
                best = heap[0][0]
        return best

    # -- checkpointing (repro.sim.checkpoint) -------------------------------------
    def checkpoint_state(self) -> dict:
        """Engine-specific state beyond the per-warp columns (which the
        checkpoint layer reads through the view properties): scoreboard
        rows/maxima keyed by warp id, and the per-unit queues."""
        rows = {}
        maxima = {}
        for wid, slot in self.wid2slot.items():
            rows[str(wid)] = list(self.sb_rows[slot])
            maxima[str(wid)] = self.sb_max[slot]
        return {
            "sb_rows": rows,
            "sb_max": maxima,
            "units": [unit.queue_snapshot() for unit in self.units],
        }

    def checkpoint_restore(self, payload: dict, cycle: int) -> None:
        """Restore rows/maxima/queues after the warps have been re-adopted
        via :meth:`new_warp` (which sized fresh rows and populated
        ``wid2slot``).  The completion heap is derived state: rebuilt from
        row values still in the future — stale-but-future heap entries in
        the original are discarded at peek time anyway, so omitting them
        is behavior-identical."""
        from heapq import heapify

        units = payload["units"]
        if len(units) != len(self.units):
            raise ValueError(
                f"checkpoint has {len(units)} scheduler units, "
                f"core has {len(self.units)}"
            )
        heap = []
        for wid_s, row in payload["sb_rows"].items():
            wid = int(wid_s)
            slot = self.wid2slot[wid]
            self.sb_rows[slot][:] = row
            self.sb_max[slot] = payload["sb_max"][wid_s]
            for reg, ready in enumerate(row):
                if ready > cycle:
                    heap.append((ready, wid, reg))
        heapify(heap)
        self.sb_heap[:] = heap
        for unit, unit_payload in zip(self.units, units):
            unit.queue_restore(unit_payload)

    # -- bulk reads (numpy when available) --------------------------------------
    def snapshot(self) -> dict:
        """Columns as arrays (ndarray with numpy, lists without) for the
        masked consumers: sanitizer sweeps, probes, tests, exporters."""
        cols = {
            "wid": self.wid, "pc": self.pc, "wake": self.wake,
            "status": self.status, "stall": self.stall,
            "qstate": self.qstate, "dyn": self.dyn, "sb_max": self.sb_max,
            "holds": self.holds, "base_regs": self.base_regs,
            "ext_regs": self.ext_regs,
        }
        if _np is None:
            return {name: list(col) for name, col in cols.items()}
        return {name: _np.asarray(col) for name, col in cols.items()}

    def probe_counts(self) -> tuple[int, int, int, int, int, int]:
        """(ready, at_barrier, waiting_acquire, resident, holders, live)
        over the active slots — the probes' per-sample histogram, as one
        vectorized pass when numpy is present."""
        if _np is not None:
            snap = self.snapshot()
            alive = (snap["wid"] >= 0) & (snap["status"] != ST_FINISHED)
            status = snap["status"][alive]
            holds = snap["holds"][alive]
            counts = _np.bincount(status, minlength=4)
            live = int(snap["base_regs"][alive].sum()) + int(
                snap["ext_regs"][alive][holds].sum()
            )
            return (
                int(counts[ST_READY]), int(counts[ST_BARRIER]),
                int(counts[ST_ACQUIRE]), int(alive.sum()),
                int(holds.sum()), live,
            )
        ready = barrier = waiting = resident = holders = live = 0
        for slot in range(self.capacity):
            if self.wid[slot] < 0:
                continue
            st = self.status[slot]
            if st == ST_FINISHED:
                continue
            resident += 1
            if st == ST_READY:
                ready += 1
            elif st == ST_BARRIER:
                barrier += 1
            elif st == ST_ACQUIRE:
                waiting += 1
            live += self.base_regs[slot]
            if self.holds[slot]:
                holders += 1
                live += self.ext_regs[slot]
        return ready, barrier, waiting, resident, holders, live

    def check_hygiene(self) -> None:
        """Structural + mask invariants, for tests and the sanitizer.

        Per unit this mirrors ``SchedulerWakeQueue.check_hygiene``; on
        top, the column-level invariants are checked as masked array
        ops when numpy is available (pure-Python equivalent otherwise):
        every active slot's codes must be in range, a finished warp must
        be out of every queue structure, and the qstate histogram must
        reconcile with the queues' own counts.
        """
        status = self.status
        qstate = self.qstate
        total_sleeping = total_barrier = total_acquire = 0
        for unit in self.units:
            assert len(unit.sleepers) == unit.mem_sleepers + unit.nonmem_sleepers, (
                f"sleeper heap {len(unit.sleepers)} != class counts "
                f"{unit.mem_sleepers}+{unit.nonmem_sleepers}"
            )
            assert unit.barrier_count >= 0 and unit.acquire_count >= 0
            ids = [wid for wid, _ in unit.ready]
            assert ids == sorted(ids), f"ready list out of order: {ids}"
            for wid, slot in unit.ready:
                assert qstate[slot] == QS_READY and status[slot] == ST_READY, (
                    f"warp {wid} in ready with qstate={qstate[slot]} "
                    f"status={status[slot]}"
                )
                assert self.wid[slot] == wid, (
                    f"ready entry ({wid}, {slot}) aliases slot tenant "
                    f"{self.wid[slot]}"
                )
            for _, wid, slot, _ in unit.sleepers:
                assert qstate[slot] == QS_SLEEPING and status[slot] == ST_READY, (
                    f"warp {wid} asleep with qstate={qstate[slot]} "
                    f"status={status[slot]}"
                )
            total_sleeping += len(unit.sleepers)
            total_barrier += unit.barrier_count
            total_acquire += unit.acquire_count

        if _np is not None:
            wid = _np.asarray(self.wid)
            st = _np.asarray(status)
            qs = _np.asarray(qstate)
            active = wid >= 0
            assert bool(((st >= ST_READY) & (st <= ST_FINISHED))[active].all()), (
                "status code out of range on an active slot"
            )
            assert bool(((qs >= QS_OUT) & (qs <= QS_ACQUIRE))[active].all()), (
                "qstate code out of range on an active slot"
            )
            finished = active & (st == ST_FINISHED)
            assert bool((qs[finished] == QS_OUT).all()), (
                "finished warp still owned by a queue structure"
            )
            assert int((qs[active] == QS_SLEEPING).sum()) == total_sleeping
            assert int((qs[active] == QS_BARRIER).sum()) == total_barrier
            assert int((qs[active] == QS_ACQUIRE).sum()) == total_acquire
            inactive = ~active
            assert bool((qs[inactive] == QS_OUT).all()), (
                "free slot still owned by a queue structure"
            )
        else:  # pragma: no cover - minimal installs
            sleeping = barrier = acquire = 0
            for slot in range(self.capacity):
                if self.wid[slot] < 0:
                    assert qstate[slot] == QS_OUT
                    continue
                assert ST_READY <= status[slot] <= ST_FINISHED
                assert QS_OUT <= qstate[slot] <= QS_ACQUIRE
                if status[slot] == ST_FINISHED:
                    assert qstate[slot] == QS_OUT
                if qstate[slot] == QS_SLEEPING:
                    sleeping += 1
                elif qstate[slot] == QS_BARRIER:
                    barrier += 1
                elif qstate[slot] == QS_ACQUIRE:
                    acquire += 1
            assert sleeping == total_sleeping
            assert barrier == total_barrier
            assert acquire == total_acquire


class ColumnarScoreboard:
    """API-compatible scoreboard facade over the columnar rows.

    Rows are per-slot lists indexed by architected register, sized from
    the kernel's pre-decode; ``sb_max`` caches each slot's maximum
    pending completion so the clean-slot common case is one comparison.
    Entries are never deleted — values only grow, stale ones are
    ``<= cycle`` and invisible to every ``> cycle`` predicate — which is
    what makes ``has_pending_memory`` exact in O(1) (see module
    docstring).
    """

    __slots__ = ("_core",)

    def __init__(self, core: ColumnarCore) -> None:
        self._core = core

    def register_warp(self, warp_id: int) -> None:
        """Row allocation happens in ``ColumnarCore.new_warp`` (it needs
        the slot and the kernel pre-decode); this is a membership assert
        for API compatibility."""
        assert warp_id in self._core.wid2slot, (
            f"warp {warp_id} not adopted by the columnar core"
        )

    def remove_warp(self, warp_id: int) -> None:
        self._core.wid2slot.pop(warp_id, None)

    def can_issue(self, warp_id: int, inst: Instruction, cycle: int) -> bool:
        core = self._core
        slot = core.wid2slot[warp_id]
        if core.sb_max[slot] <= cycle:
            return True
        row = core.sb_rows[slot]
        for reg in inst.srcs:
            if row[reg] > cycle:
                return False
        for reg in inst.dsts:
            if row[reg] > cycle:
                return False
        return True

    def blocking_registers(
        self, warp_id: int, inst: Instruction, cycle: int
    ) -> list[int]:
        core = self._core
        row = core.sb_rows[core.wid2slot[warp_id]]
        return [
            reg for reg in (*inst.srcs, *inst.dsts) if row[reg] > cycle
        ]

    def ready_cycle(self, warp_id: int, inst: Instruction, cycle: int) -> int:
        core = self._core
        row = core.sb_rows[core.wid2slot[warp_id]]
        latest = cycle
        for reg in (*inst.srcs, *inst.dsts):
            ready = row[reg]
            if ready > latest:
                latest = ready
        return latest

    def record_write(self, warp_id: int, reg: int, ready_cycle: int) -> None:
        core = self._core
        slot = core.wid2slot[warp_id]
        row = core.sb_rows[slot]
        if ready_cycle > row[reg]:
            row[reg] = ready_cycle
            heappush(core.sb_heap, (ready_cycle, warp_id, reg))
            if ready_cycle > core.sb_max[slot]:
                core.sb_max[slot] = ready_cycle

    def expire(self, cycle: int) -> None:
        """Rows never expire (see class docstring); only the completion
        heap's settled prefix is pruned to bound its size."""
        from heapq import heappop

        heap = self._core.sb_heap
        while heap and heap[0][0] <= cycle:
            heappop(heap)

    def pending_count(self, warp_id: int, cycle: int) -> int:
        core = self._core
        slot = core.wid2slot.get(warp_id)
        if slot is None:
            return 0
        row = core.sb_rows[slot]
        return sum(1 for ready in row if ready > cycle)

    def earliest_ready(self, cycle: int) -> int | None:
        """Heap peek with lazy discard, exactly like the dict engine: an
        entry is live iff its warp is still resident and its row still
        holds that completion cycle (superseding writes only grow row
        values, so a mismatch means the entry was overwritten)."""
        core = self._core
        heap = core.sb_heap
        wid2slot = core.wid2slot
        rows = core.sb_rows
        while heap:
            ready, warp_id, reg = heap[0]
            if ready > cycle:
                slot = wid2slot.get(warp_id)
                if slot is not None and rows[slot][reg] == ready:
                    return ready
            heappop(heap)
        return None

    def _earliest_ready_scan(self, cycle: int) -> int | None:
        """Reference implementation (full row scan) for identity tests."""
        core = self._core
        earliest: int | None = None
        for slot in core.wid2slot.values():
            for ready in core.sb_rows[slot]:
                if ready > cycle and (earliest is None or ready < earliest):
                    earliest = ready
        return earliest

    def has_pending_memory(self, warp_id: int, cycle: int, horizon: int) -> bool:
        """O(1) and exact: row values only grow and are never deleted,
        so ``sb_max`` is the true maximum pending completion — "any
        write further than ``horizon`` out" is one comparison."""
        core = self._core
        slot = core.wid2slot.get(warp_id)
        if slot is None:
            return False
        return core.sb_max[slot] - cycle > horizon


# Re-exported so the stepper and tests share one constant with the
# event engine's attribution logic.
HORIZON = MEMORY_STALL_HORIZON
