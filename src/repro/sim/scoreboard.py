"""Per-warp register scoreboard.

Tracks, for each (warp, architected register), the cycle at which a
pending write completes.  An instruction may issue only when none of its
source or destination registers has an outstanding write (RAW and WAW
hazards), which is how in-order GPU pipelines behave at issue.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.isa.instructions import Instruction


class Scoreboard:
    """Pending-write tracking for all warps of one SM."""

    __slots__ = ("_pending", "_completions")

    def __init__(self) -> None:
        # warp_id -> {reg_index: ready_cycle}
        self._pending: dict[int, dict[int, int]] = {}
        # Completion min-heap of (ready_cycle, warp_id, reg), pushed on
        # every dict update so ``earliest_ready`` is a heap peek instead
        # of a scan of all pending writes.  Entries go stale when an
        # entry is superseded by a later write, expired, or its warp
        # removed; they are lazily discarded at read time by validating
        # against the dict.  Warp ids are never reused (globally
        # monotonic), so a (warp, reg) match is never a false positive.
        self._completions: list[tuple[int, int, int]] = []

    def register_warp(self, warp_id: int) -> None:
        self._pending[warp_id] = {}

    def remove_warp(self, warp_id: int) -> None:
        self._pending.pop(warp_id, None)

    def can_issue(self, warp_id: int, inst: Instruction, cycle: int) -> bool:
        """No outstanding write on any register the instruction touches."""
        pending = self._pending[warp_id]
        if not pending:
            return True
        for reg in inst.srcs:
            ready = pending.get(reg)
            if ready is not None and ready > cycle:
                return False
        for reg in inst.dsts:
            ready = pending.get(reg)
            if ready is not None and ready > cycle:
                return False
        return True

    def blocking_registers(self, warp_id: int, inst: Instruction, cycle: int) -> list[int]:
        """Registers preventing issue (diagnostics)."""
        pending = self._pending[warp_id]
        return [
            reg
            for reg in (*inst.srcs, *inst.dsts)
            if pending.get(reg, 0) > cycle
        ]

    def ready_cycle(self, warp_id: int, inst: Instruction, cycle: int) -> int:
        """The cycle at which all of the instruction's registers clear —
        the warp's scheduler skip hint after a scoreboard stall."""
        pending = self._pending[warp_id]
        latest = cycle
        for reg in (*inst.srcs, *inst.dsts):
            ready = pending.get(reg)
            if ready is not None and ready > latest:
                latest = ready
        return latest

    def record_write(self, warp_id: int, reg: int, ready_cycle: int) -> None:
        pending = self._pending[warp_id]
        current = pending.get(reg, 0)
        if ready_cycle > current:
            pending[reg] = ready_cycle
            heappush(self._completions, (ready_cycle, warp_id, reg))

    def expire(self, cycle: int) -> None:
        """Drop entries that have completed (keeps dicts small)."""
        for pending in self._pending.values():
            done = [reg for reg, ready in pending.items() if ready <= cycle]
            for reg in done:
                del pending[reg]
        # Prune the matching heap prefix so the heap's size stays
        # bounded by live entries too (the lazy discard in
        # ``earliest_ready`` alone would keep stale tails around).
        heap = self._completions
        while heap and heap[0][0] <= cycle:
            heappop(heap)

    def pending_count(self, warp_id: int, cycle: int) -> int:
        pending = self._pending.get(warp_id, {})
        return sum(1 for ready in pending.values() if ready > cycle)

    def earliest_ready(self, cycle: int) -> int | None:
        """The soonest future completion across all warps (None if no
        pending writes) — the fast-forward target when every scheduler
        is idle.

        Heap peek with lazy discard: an entry is live only if the dict
        still holds exactly that (warp, reg, cycle) triple.  Every
        future dict value has a heap entry (``record_write`` pushes on
        every update), so the first live entry is the true minimum.
        """
        heap = self._completions
        pending = self._pending
        while heap:
            ready, warp_id, reg = heap[0]
            if ready > cycle:
                warp_pending = pending.get(warp_id)
                if warp_pending is not None and warp_pending.get(reg) == ready:
                    return ready
            heappop(heap)
        return None

    def _earliest_ready_scan(self, cycle: int) -> int | None:
        """Reference implementation of :meth:`earliest_ready` (full scan),
        kept for the identity-pinning test."""
        earliest: int | None = None
        for pending in self._pending.values():
            for ready in pending.values():
                if ready > cycle and (earliest is None or ready < earliest):
                    earliest = ready
        return earliest

    def has_pending_memory(self, warp_id: int, cycle: int, horizon: int) -> bool:
        """Heuristic: any write completing further than ``horizon`` cycles
        out is (almost certainly) a memory access — used for the stall
        attribution breakdown only, never for correctness."""
        pending = self._pending.get(warp_id, {})
        return any(ready - cycle > horizon for ready in pending.values())

    # -- checkpointing (repro.sim.checkpoint) -------------------------------------
    def snapshot(self) -> dict:
        """The pending-write dicts; the completion heap is derived state.

        Stale heap entries never influence results (``earliest_ready``
        validates each peek against the dict), so they are not captured:
        restore rebuilds the heap from live entries only.
        """
        return {
            "pending": {
                str(wid): {str(r): c for r, c in regs.items()}
                for wid, regs in self._pending.items()
            },
        }

    def restore(self, payload: dict) -> None:
        from heapq import heapify

        self._pending = {
            int(wid): {int(r): c for r, c in regs.items()}
            for wid, regs in payload["pending"].items()
        }
        self._completions = [
            (ready, wid, reg)
            for wid, regs in self._pending.items()
            for reg, ready in regs.items()
        ]
        heapify(self._completions)
