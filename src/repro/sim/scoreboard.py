"""Per-warp register scoreboard.

Tracks, for each (warp, architected register), the cycle at which a
pending write completes.  An instruction may issue only when none of its
source or destination registers has an outstanding write (RAW and WAW
hazards), which is how in-order GPU pipelines behave at issue.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction


class Scoreboard:
    """Pending-write tracking for all warps of one SM."""

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        # warp_id -> {reg_index: ready_cycle}
        self._pending: dict[int, dict[int, int]] = {}

    def register_warp(self, warp_id: int) -> None:
        self._pending[warp_id] = {}

    def remove_warp(self, warp_id: int) -> None:
        self._pending.pop(warp_id, None)

    def can_issue(self, warp_id: int, inst: Instruction, cycle: int) -> bool:
        """No outstanding write on any register the instruction touches."""
        pending = self._pending[warp_id]
        if not pending:
            return True
        for reg in inst.srcs:
            ready = pending.get(reg)
            if ready is not None and ready > cycle:
                return False
        for reg in inst.dsts:
            ready = pending.get(reg)
            if ready is not None and ready > cycle:
                return False
        return True

    def blocking_registers(self, warp_id: int, inst: Instruction, cycle: int) -> list[int]:
        """Registers preventing issue (diagnostics)."""
        pending = self._pending[warp_id]
        return [
            reg
            for reg in (*inst.srcs, *inst.dsts)
            if pending.get(reg, 0) > cycle
        ]

    def ready_cycle(self, warp_id: int, inst: Instruction, cycle: int) -> int:
        """The cycle at which all of the instruction's registers clear —
        the warp's scheduler skip hint after a scoreboard stall."""
        pending = self._pending[warp_id]
        latest = cycle
        for reg in (*inst.srcs, *inst.dsts):
            ready = pending.get(reg)
            if ready is not None and ready > latest:
                latest = ready
        return latest

    def record_write(self, warp_id: int, reg: int, ready_cycle: int) -> None:
        pending = self._pending[warp_id]
        current = pending.get(reg, 0)
        if ready_cycle > current:
            pending[reg] = ready_cycle

    def expire(self, cycle: int) -> None:
        """Drop entries that have completed (keeps dicts small)."""
        for pending in self._pending.values():
            done = [reg for reg, ready in pending.items() if ready <= cycle]
            for reg in done:
                del pending[reg]

    def pending_count(self, warp_id: int, cycle: int) -> int:
        pending = self._pending.get(warp_id, {})
        return sum(1 for ready in pending.values() if ready > cycle)

    def earliest_ready(self, cycle: int) -> int | None:
        """The soonest future completion across all warps (None if no
        pending writes) — the fast-forward target when every scheduler
        is idle."""
        earliest: int | None = None
        for pending in self._pending.values():
            for ready in pending.values():
                if ready > cycle and (earliest is None or ready < earliest):
                    earliest = ready
        return earliest

    def has_pending_memory(self, warp_id: int, cycle: int, horizon: int) -> bool:
        """Heuristic: any write completing further than ``horizon`` cycles
        out is (almost certainly) a memory access — used for the stall
        attribution breakdown only, never for correctness."""
        pending = self._pending.get(warp_id, {})
        return any(ready - cycle > horizon for ready in pending.values())
