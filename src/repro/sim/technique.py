"""Register-sharing technique interface.

The SM pipeline is technique-agnostic: a :class:`SharingTechnique`
decides (a) how many CTAs fit on an SM (the occupancy side) and (b) what
happens at issue time for each instruction (the arbitration side).  The
stock GPU, RegMutex (default and paired-warps), OWF, and RFV all
implement this interface, which is what makes the Figure 9 comparison an
apples-to-apples swap.
"""

from __future__ import annotations

from typing import Sequence

from repro.arch.config import GpuConfig
from repro.arch.occupancy import OccupancyResult, theoretical_occupancy
from repro.isa.instructions import Instruction
from repro.isa.kernel import Kernel
from repro.sim.stats import SmStats
from repro.sim.warp import Warp


class SmTechniqueState:
    """Per-SM runtime state of a sharing technique.

    The default implementation is the stock GPU: every instruction may
    issue, acquire/release primitives are no-ops (they should not exist
    in uninstrumented kernels, but tolerating them keeps fault-injection
    tests simple).
    """

    def __init__(self, kernel: Kernel, config: GpuConfig, stats: SmStats) -> None:
        self.kernel = kernel
        self.config = config
        self.stats = stats

    def can_issue(self, warp: Warp, inst: Instruction, cycle: int) -> bool:
        """Technique-specific issue gate (beyond scoreboard/memory)."""
        return True

    def on_issue(self, warp: Warp, inst: Instruction, cycle: int) -> None:
        """Bookkeeping after an instruction issues."""

    def try_acquire(self, warp: Warp, cycle: int) -> bool:
        """Handle an ACQUIRE primitive; True = granted, warp proceeds."""
        return True

    def release(self, warp: Warp, cycle: int) -> None:
        """Handle a RELEASE primitive."""

    def on_warp_finish(self, warp: Warp, cycle: int) -> None:
        """Warp executed EXIT; reclaim any held resources."""

    def wakeup_pending(self) -> "Sequence[Warp]":
        """Warps whose blocked acquire may now succeed (drained each cycle).

        Returns the empty tuple when nothing is pending — the SM calls
        this every cycle, and techniques without wakeups (baseline, OWF,
        RFV) must not allocate a fresh list per cycle for nothing.

        This drain is the *only* event that re-arms an acquire-parked
        warp under the event-driven issue engine: a warp this method
        returns is moved from its scheduler's blocked set back into the
        ready list (``IssueEngine.on_acquire_wake``).  A technique that
        unparks a warp any other way — mutating ``warp.status`` without
        reporting it here — would strand the warp under the event
        engine while the scan stepper silently picked it up; the
        engine-identity property tests exist to catch exactly that.
        """
        return ()

    def check_invariants(self, cycle: int) -> None:
        """Raise ``InvariantViolationError`` if the technique's hardware
        structures are inconsistent.  Called every cycle when the config
        sets ``debug_invariants``; the default state has none."""

    def debug_snapshot(self) -> dict:
        """Technique-internal state for deadlock diagnostics (plain
        JSON-able values only — this crosses process boundaries inside
        error messages)."""
        return {}

    def srp_view(self) -> "tuple[int, int] | None":
        """(sections in use, total sections) for the observability probes.

        None means the technique has no shared pool (stock GPU); the
        probes then record a zero-width SRP track.
        """
        return None

    def resolve_physical(self, warp: Warp, arch_reg: int) -> int:
        """Architected-to-physical mapping for the bank-conflict model.

        Default: the stock ``Y = X + Coeff * Widx`` with the kernel's
        declared per-thread register count as the coefficient (paper
        Figure 6a).  RegMutex overrides this with the base/extended mux.
        """
        coeff = max(1, self.kernel.metadata.regs_per_thread)
        return arch_reg + coeff * warp.slot

    # -- checkpoint hooks (repro.sim.checkpoint) ----------------------------------
    # Distinct names from the issue-path hooks on purpose: the columnar
    # stepper detects overridden can_issue/on_issue/wakeup_pending by
    # class identity to pick its fast path, and a checkpoint mixin must
    # never perturb that detection.

    def state_snapshot(self) -> dict:
        """JSON-able snapshot of the technique's mutable per-SM state.

        The base state is stateless (``kernel``/``config``/``stats``
        are restored by the SM itself), so the default is empty.
        Techniques with wait queues, pools, or counters override both
        hooks; orderings (FIFO queues, insertion-ordered dicts) must be
        preserved exactly — resume is a *bit-identity* contract.
        """
        return {}

    def state_restore(self, payload: dict, warps_by_id: dict[int, Warp]) -> None:
        """Rebuild mutable state from :meth:`state_snapshot` output.

        ``warps_by_id`` maps warp ids to the *restored* warp objects —
        any serialized warp reference must be resolved through it, never
        kept as an id, so identity checks (e.g. ``warp in queue``) keep
        working after resume.
        """


class SharingTechnique:
    """A register-management scheme: occupancy math + per-SM state factory."""

    name = "baseline"

    def prepare_kernel(self, kernel: Kernel, config: GpuConfig) -> Kernel:
        """Hook for techniques that rewrite the kernel (RegMutex compiles
        acquire/release in here).  Default: unchanged."""
        return kernel

    def occupancy(self, kernel: Kernel, config: GpuConfig) -> OccupancyResult:
        """CTAs resident per SM under this technique."""
        return theoretical_occupancy(config, kernel.metadata)

    def make_sm_state(
        self, kernel: Kernel, config: GpuConfig, stats: SmStats
    ) -> SmTechniqueState:
        return SmTechniqueState(kernel, config, stats)


class BaselineTechnique(SharingTechnique):
    """The stock GPU: static, exclusive register allocation."""

    name = "baseline"
