"""Wake-ordered ready queues: the event-driven issue engine's state.

The per-cycle all-warp scan in the original stepper visits every
resident warp of every scheduler — up to 48 per SM — even though on a
typical cycle most of them sit inside a known stall window
(``wake_cycle > cycle``) and contribute nothing but a status check.
This module holds the replacement bookkeeping: each scheduler keeps

* a **ready list** — warps eligible for qualification *now*, kept
  sorted by warp id so qualification walks them in exactly the order
  the scan-based stepper would (launch order; technique ``can_issue``
  hooks have side effects, so order is part of the semantics),
* a **sleeper min-heap** keyed ``(wake_cycle, warp_id)`` — warps inside
  a self-timed stall window (scoreboard hazard, saturated memory
  window, eager acquire backoff); due sleepers are popped into the
  ready list at the start of the owning scheduler's pass,
* explicit **blocked counts** for warps with no self-timer (parked at a
  barrier or on a failed acquire), re-armed by the events that can
  unblock them: barrier release (:meth:`IssueEngine.on_barrier_release`)
  and the technique's ``wakeup_pending`` drain
  (:meth:`SchedulerWakeQueue.unblock_acquire`).

Per cycle the engine's cost is proportional to warps that can actually
act, not to residents.

Bit-identity with the scan stepper
----------------------------------

The stall-attribution counters in :class:`~repro.sim.stats.SmStats`
must match the scan stepper bit for bit, and the scan classifies a
*sleeping* warp per cycle as::

    memory     if stalled_on == "memory" or wake_cycle - cycle > HORIZON
    scoreboard otherwise

The first disjunct is frozen at sleep time (a sleeping warp is never
re-qualified, so ``stalled_on`` cannot change), but the second is
*time-varying*: a non-memory sleeper counts as a memory stall while its
wake cycle is more than ``HORIZON`` cycles out, then flips to a
scoreboard stall for the final ``HORIZON`` cycles of its window.  The
queue tracks this without scanning:

* ``_mem_sleepers`` — count of sleepers frozen as memory stalls,
* ``_nonmem_sleepers`` — count of the rest,
* ``_far`` — a min-heap of ``wake_cycle - HORIZON`` thresholds, one per
  non-memory sleeper whose window was longer than ``HORIZON`` at sleep
  time.  An entry is stale once its threshold has passed; pruning at
  read time keeps ``len(_far)`` equal to the number of non-memory
  sleepers still classified as memory stalls.  Entries are plain ints
  (no warp identity needed — a woken warp's entry has necessarily
  expired, because ``wake - HORIZON < wake <= cycle``).

A sleeping warp can never leave its window early: its status only
changes by issuing or being qualified, both of which require it to be
due, and a CTA only retires when every warp has finished.  So heap
entries are exact — no lazy deletion or staleness checks are needed on
the sleeper heap itself.

Every warp carries a ``qstate`` marker (which structure currently owns
it) so the unblock hooks are idempotent and cheap to guard.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush

from repro.sim.warp import Warp, WarpStatus

# Stall-attribution horizon (cycles): a pending completion further out
# than this is attributed to memory, nearer to the scoreboard.  Shared
# with the scan stepper's classification and with
# ``Scoreboard.has_pending_memory`` — attribution only, never
# correctness.
MEMORY_STALL_HORIZON = 20

# Warp.qstate values: which engine structure currently owns the warp.
QS_OUT = 0        # not resident / finished (scan mode leaves warps here)
QS_READY = 1      # in its scheduler's ready list
QS_SLEEPING = 2   # in the sleeper heap
QS_BARRIER = 3    # parked at a barrier (blocked set)
QS_ACQUIRE = 4    # parked on a failed acquire (blocked set)


def _by_warp_id(warp: Warp) -> int:
    """Module-level insort key (no per-call closure on the hot path)."""
    return warp.warp_id


class SchedulerWakeQueue:
    """Ready/sleeper/blocked bookkeeping for one warp scheduler."""

    __slots__ = (
        "sched", "ready", "candidates", "keep", "issued", "sleepers",
        "_far", "_mem_sleepers", "_nonmem_sleepers",
        "barrier_count", "acquire_count",
    )

    def __init__(self, sched) -> None:
        self.sched = sched
        # Sorted by warp id == launch order (ids are monotonic).
        self.ready: list[Warp] = []
        # Persistent per-cycle scratch (no per-cycle allocation).
        self.candidates: list[Warp] = []
        self.keep: list[Warp] = []
        self.issued: list[Warp] = []
        # (wake_cycle, warp_id, warp, is_memory_stall)
        self.sleepers: list[tuple[int, int, Warp, bool]] = []
        self._far: list[int] = []
        self._mem_sleepers = 0
        self._nonmem_sleepers = 0
        self.barrier_count = 0
        self.acquire_count = 0

    # -- transitions into the ready list ----------------------------------------
    def add_ready(self, warp: Warp) -> None:
        """A freshly launched warp: ids are monotonic, so append keeps
        the ready list sorted."""
        warp.qstate = QS_READY
        self.ready.append(warp)

    def insert_ready(self, warp: Warp) -> None:
        """A warp re-entering mid-list (woken sleeper, released blocker)."""
        warp.qstate = QS_READY
        insort(self.ready, warp, key=_by_warp_id)

    def wake_due(self, cycle: int) -> None:
        """Pop sleepers whose window has closed into the ready list."""
        heap = self.sleepers
        while heap and heap[0][0] <= cycle:
            _, _, warp, is_mem = heappop(heap)
            if is_mem:
                self._mem_sleepers -= 1
            else:
                self._nonmem_sleepers -= 1
            warp.qstate = QS_READY
            insort(self.ready, warp, key=_by_warp_id)

    # -- transitions out of the ready list --------------------------------------
    def push_sleeper(self, warp: Warp, cycle: int) -> None:
        """Start a stall window (caller has already detached the warp
        from the ready list)."""
        warp.qstate = QS_SLEEPING
        wake = warp.wake_cycle
        is_mem = warp.stalled_on == "memory"
        if is_mem:
            self._mem_sleepers += 1
        else:
            self._nonmem_sleepers += 1
            if wake - cycle > MEMORY_STALL_HORIZON:
                heappush(self._far, wake - MEMORY_STALL_HORIZON)
        heappush(self.sleepers, (wake, warp.warp_id, warp, is_mem))

    def park_acquire(self, warp: Warp) -> None:
        """Acquire park detected at qualification time (caller detaches)."""
        warp.qstate = QS_ACQUIRE
        self.acquire_count += 1

    def on_finish(self, warp: Warp) -> None:
        """The warp finished: release whichever structure owns it.

        On the issue path the warp is always ``QS_READY`` (EXIT can only
        issue from the ready list), but the technique layer can finish a
        *parked* warp — the acquire-wakeup handoff in
        ``RegMutexSmState.on_warp_finish`` — so the blocked counts are
        released here too.  (A sleeping warp cannot finish; see the
        module docstring.)
        """
        qs = warp.qstate
        if qs == QS_READY:
            self.ready.remove(warp)
        elif qs == QS_BARRIER:
            self.barrier_count -= 1
        elif qs == QS_ACQUIRE:
            self.acquire_count -= 1
        warp.qstate = QS_OUT

    def dispose_issued(self, warp: Warp, cycle: int) -> None:
        """Re-home a warp after it issued this cycle.

        Idempotent (guarded by ``qstate``): with a multi-issue scheduler
        the same warp can appear in the issued scratch twice, and a
        barrier release within the same pass may have re-homed it
        already.
        """
        if warp.qstate != QS_READY:
            return  # finished, or already re-homed by a same-pass event
        status = warp.status
        if status is WarpStatus.READY:
            if warp.wake_cycle > cycle:  # eager acquire backoff
                self.ready.remove(warp)
                self.push_sleeper(warp, cycle)
            return
        if status is WarpStatus.AT_BARRIER:
            self.ready.remove(warp)
            warp.qstate = QS_BARRIER
            self.barrier_count += 1
            return
        if status is WarpStatus.WAITING_ACQUIRE:
            self.ready.remove(warp)
            warp.qstate = QS_ACQUIRE
            self.acquire_count += 1

    # -- event re-arms ----------------------------------------------------------
    def unblock_barrier(self, warp: Warp) -> None:
        if warp.qstate == QS_BARRIER:
            self.barrier_count -= 1
            self.insert_ready(warp)

    def unblock_acquire(self, warp: Warp) -> None:
        if warp.qstate == QS_ACQUIRE:
            self.acquire_count -= 1
            self.insert_ready(warp)

    # -- stall attribution ------------------------------------------------------
    def sleeper_flags(self, cycle: int) -> tuple[bool, bool]:
        """(memory, scoreboard) stall flags contributed by sleepers.

        Reproduces the scan's per-sleeper classification from the
        aggregate counts (see the module docstring).  Lazily prunes the
        far heap; ``cycle`` must be non-decreasing across calls, which
        the stepper guarantees.
        """
        far = self._far
        while far and far[0] <= cycle:
            heappop(far)
        far_n = len(far)
        memory = self._mem_sleepers > 0 or far_n > 0
        scoreboard = self._nonmem_sleepers > far_n
        return memory, scoreboard

    # -- checkpointing (repro.sim.checkpoint) -----------------------------------
    def snapshot(self) -> dict:
        """Queues as warp ids; the sleeper heap keeps its exact tuples
        (minus the object reference).  Heap *keys* are unique per entry
        — ``(wake, warp_id)`` with monotonic ids — so re-heapifying on
        restore reproduces the identical pop order."""
        return {
            "ready": [w.warp_id for w in self.ready],
            "sleepers": [
                (wake, wid, is_mem) for wake, wid, _, is_mem in self.sleepers
            ],
            "far": list(self._far),
            "mem_sleepers": self._mem_sleepers,
            "nonmem_sleepers": self._nonmem_sleepers,
            "barrier_count": self.barrier_count,
            "acquire_count": self.acquire_count,
        }

    def restore(self, payload: dict, warps_by_id: dict[int, Warp]) -> None:
        from heapq import heapify

        self.ready = [warps_by_id[w] for w in payload["ready"]]
        self.sleepers = [
            (wake, wid, warps_by_id[wid], is_mem)
            for wake, wid, is_mem in payload["sleepers"]
        ]
        heapify(self.sleepers)
        self._far = list(payload["far"])
        heapify(self._far)
        self._mem_sleepers = payload["mem_sleepers"]
        self._nonmem_sleepers = payload["nonmem_sleepers"]
        self.barrier_count = payload["barrier_count"]
        self.acquire_count = payload["acquire_count"]
        self.candidates = []
        self.keep = []
        self.issued = []

    # -- introspection (tests, invariant sweeps) --------------------------------
    def sleeping_warps(self) -> int:
        return self._mem_sleepers + self._nonmem_sleepers

    def check_hygiene(self) -> None:
        """Structural invariants, for tests and the sanitizer sweep."""
        assert len(self.sleepers) == self._mem_sleepers + self._nonmem_sleepers, (
            f"sleeper heap {len(self.sleepers)} != class counts "
            f"{self._mem_sleepers}+{self._nonmem_sleepers}"
        )
        assert self.barrier_count >= 0 and self.acquire_count >= 0
        ids = [w.warp_id for w in self.ready]
        assert ids == sorted(ids), f"ready list out of order: {ids}"
        for w in self.ready:
            assert w.qstate == QS_READY and w.status is WarpStatus.READY, (
                f"warp {w.warp_id} in ready with qstate={w.qstate} "
                f"status={w.status}"
            )
        for _, _, w, _ in self.sleepers:
            assert w.qstate == QS_SLEEPING and w.status is WarpStatus.READY, (
                f"warp {w.warp_id} asleep with qstate={w.qstate} "
                f"status={w.status}"
            )


class IssueEngine:
    """Per-SM coordinator: routes warp events to the owning scheduler's
    wake queue (warps are partitioned by ``warp_id % num_schedulers``,
    matching the SM's launch-time partition)."""

    __slots__ = ("units", "_num")

    def __init__(self, schedulers) -> None:
        self.units = [SchedulerWakeQueue(s) for s in schedulers]
        self._num = len(self.units)

    def unit_for(self, warp: Warp) -> SchedulerWakeQueue:
        return self.units[warp.warp_id % self._num]

    def add_warp(self, warp: Warp) -> None:
        """A CTA launch made this warp resident (and ready)."""
        self.unit_for(warp).add_ready(warp)

    def on_finish(self, warp: Warp) -> None:
        self.unit_for(warp).on_finish(warp)

    def on_barrier_release(self, cta) -> None:
        """A barrier released: re-arm every warp it was blocking.

        The arriving warp itself is still ``QS_READY`` (it is re-homed
        by its scheduler's issued-warp disposition), so the qstate guard
        skips it here.
        """
        for warp in cta.warps:
            if warp.qstate == QS_BARRIER:
                self.unit_for(warp).unblock_barrier(warp)

    def on_acquire_wake(self, warp: Warp) -> None:
        """The technique handed this parked warp a wakeup."""
        self.unit_for(warp).unblock_acquire(warp)

    def earliest_wake(self) -> int | None:
        """Soonest sleeper wake cycle across all schedulers (the
        fast-forward target; None when no warp has a self-timer)."""
        best: int | None = None
        for unit in self.units:
            heap = unit.sleepers
            if heap and (best is None or heap[0][0] < best):
                best = heap[0][0]
        return best

    def check_hygiene(self) -> None:
        for unit in self.units:
            unit.check_hygiene()

    # -- checkpointing (repro.sim.checkpoint) -----------------------------------
    def snapshot(self) -> list[dict]:
        return [unit.snapshot() for unit in self.units]

    def restore(self, payload: list[dict], warps_by_id: dict[int, Warp]) -> None:
        if len(payload) != len(self.units):
            raise ValueError(
                f"checkpoint has {len(payload)} wake queues, "
                f"engine has {len(self.units)}"
            )
        for unit, unit_payload in zip(self.units, payload):
            unit.restore(unit_payload, warps_by_id)
