"""Whole-device simulation: CTA grid partitioning across SMs.

SMs in this model do not interact (no shared L2 contention), so a launch
partitions the grid's CTAs across ``num_sms`` SMs and simulates each SM
independently; kernel time is the slowest SM.  Since all CTAs run the
same kernel, SMs with equal CTA counts behave identically under a fixed
per-SM seed, so distinct CTA counts are simulated once and reused.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.arch.config import GpuConfig
from repro.errors import CheckpointError, KernelPlacementError
from repro.isa.kernel import Kernel
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import KernelStats, SmStats
from repro.sim.technique import BaselineTechnique, SharingTechnique


@dataclass(frozen=True)
class LaunchResult:
    """The outcome of one kernel launch."""

    stats: KernelStats
    compiled_kernel: Kernel

    @property
    def cycles(self) -> int:
        return self.stats.cycles


class Gpu:
    """A multi-SM device with an installable sharing technique."""

    def __init__(
        self,
        config: GpuConfig,
        technique: SharingTechnique | None = None,
        seed: int = 2018,
    ) -> None:
        self.config = config
        self.technique = technique or BaselineTechnique()
        self.seed = seed

    def launch(
        self,
        kernel: Kernel,
        grid_ctas: int,
        scheduler_priority=None,
        max_cycles: int = 50_000_000,
        observer_factory=None,
        checkpoint_dir: str | None = None,
        checkpoint_interval: int = 0,
        resume_report: dict | None = None,
    ) -> LaunchResult:
        """Run ``grid_ctas`` CTAs of ``kernel`` across the device.

        ``observer_factory`` (``sm_id -> SmObserver | None``) attaches
        observability to individual SMs; any observed launch disables the
        equal-CTA-count memoization below, since observers must see every
        SM actually simulated.

        ``checkpoint_dir`` enables crash-safe resume: each distinct CTA
        count writes periodic checkpoints (every ``checkpoint_interval``
        cycles) to ``sm_<count>.ckpt.json`` in that directory, and a
        fresh launch over the same directory resumes from any surviving
        checkpoint instead of recomputing from cycle 0.  Per-SM state
        depends only on the CTA count (see the seed note below), so one
        file per count covers every SM.  Checkpoint files are removed as
        their SM completes; an unreadable or mismatched checkpoint falls
        back to a fresh run and is recorded in ``resume_report``.

        ``resume_report``, when given a dict, is filled in place:
        ``{"resumed": {count: cycle}, "fallback": {count: reason}}``.
        """
        if grid_ctas <= 0:
            raise ValueError("grid must contain at least one CTA")
        compiled = self.technique.prepare_kernel(kernel, self.config)
        occ = self.technique.occupancy(compiled, self.config)
        if occ.ctas_per_sm <= 0:
            raise KernelPlacementError(
                f"kernel {kernel.name!r} does not fit on {self.config.name}: "
                f"limited by {occ.limiting_resource}"
            )

        num_sms = self.config.num_sms
        base, extra = divmod(grid_ctas, num_sms)
        per_sm_counts = [base + (1 if i < extra else 0) for i in range(num_sms)]

        stats_by_count: dict[int, SmStats] = {}
        per_sm: list[SmStats] = []
        for sm_id, count in enumerate(per_sm_counts):
            if count == 0:
                per_sm.append(SmStats())
                continue
            if observer_factory is not None:
                per_sm.append(self._run_one_sm(
                    sm_id, compiled, occ.ctas_per_sm, count,
                    scheduler_priority, max_cycles,
                    observer=observer_factory(sm_id),
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_interval=checkpoint_interval,
                    resume_report=resume_report,
                ))
                continue
            if count not in stats_by_count:
                stats_by_count[count] = self._run_one_sm(
                    sm_id, compiled, occ.ctas_per_sm, count,
                    scheduler_priority, max_cycles,
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_interval=checkpoint_interval,
                    resume_report=resume_report,
                )
            per_sm.append(stats_by_count[count])

        cycles = max((s.cycles for s in per_sm), default=0)
        kstats = KernelStats(
            kernel_name=kernel.name,
            config_name=self.config.name,
            technique=self.technique.name,
            cycles=cycles,
            theoretical_occupancy=occ.occupancy,
            ctas_per_sm=occ.ctas_per_sm,
            per_sm=per_sm,
        )
        return LaunchResult(stats=kstats, compiled_kernel=compiled)

    def _run_one_sm(
        self,
        sm_id: int,
        compiled: Kernel,
        resident_limit: int,
        total_ctas: int,
        scheduler_priority,
        max_cycles: int = 50_000_000,
        observer=None,
        checkpoint_dir: str | None = None,
        checkpoint_interval: int = 0,
        resume_report: dict | None = None,
    ) -> SmStats:
        stats = SmStats()
        state = self.technique.make_sm_state(compiled, self.config, stats)
        sm = StreamingMultiprocessor(
            sm_id=sm_id,
            config=self.config,
            kernel=compiled,
            technique_state=state,
            ctas_resident_limit=resident_limit,
            total_ctas=total_ctas,
            # Seed depends on CTA count only, so equal-count SMs are
            # bit-identical and the memoization above is sound.
            rng=DeterministicRng(self.seed * 1_000_003 + total_ctas),
            scheduler_priority=scheduler_priority,
            stats=stats,  # shared with the technique state
        )
        if observer is not None:
            observer.attach(sm)
        if checkpoint_dir is None:
            return sm.run(max_cycles=max_cycles)

        from repro.sim.checkpoint import (
            checkpoint_path,
            read_checkpoint,
            write_checkpoint,
        )

        path = checkpoint_path(checkpoint_dir, total_ctas)
        if os.path.exists(path):
            # A surviving checkpoint from an interrupted launch: resume
            # from it unless it is corrupt or from a different context —
            # then fall back to a fresh run (resume must never produce a
            # different result than recomputing, so a bad checkpoint is
            # discarded, not guessed at).
            try:
                sm.restore_checkpoint(read_checkpoint(path))
                if resume_report is not None:
                    resume_report.setdefault("resumed", {})[total_ctas] = (
                        sm.cycle
                    )
            except CheckpointError as exc:
                if resume_report is not None:
                    resume_report.setdefault("fallback", {})[total_ctas] = (
                        f"{type(exc).__name__}: {exc}"
                    )
                try:
                    os.remove(path)
                except OSError:
                    pass
        result = sm.run(
            max_cycles=max_cycles,
            checkpoint_interval=checkpoint_interval,
            checkpoint_sink=lambda payload: write_checkpoint(path, payload),
        )
        try:
            os.remove(path)  # complete: the checkpoint is spent
        except FileNotFoundError:
            pass
        return result


def simulate_kernel(
    kernel: Kernel,
    config: GpuConfig,
    technique: SharingTechnique | None = None,
    grid_ctas: int | None = None,
    seed: int = 2018,
) -> LaunchResult:
    """One-call convenience wrapper.

    ``grid_ctas`` defaults to four full waves of CTAs on the *baseline*
    occupancy, so every technique runs the identical amount of work and
    occupancy-boosting techniques finish it in fewer cycles.
    """
    from repro.arch.occupancy import theoretical_occupancy

    if grid_ctas is None:
        base_occ = theoretical_occupancy(config, kernel.metadata)
        waves = 4
        grid_ctas = max(1, base_occ.ctas_per_sm) * config.num_sms * waves
    gpu = Gpu(config, technique, seed=seed)
    return gpu.launch(kernel, grid_ctas)
