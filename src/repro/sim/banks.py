"""Banked register file and operand-collector conflict model.

The baseline operand collector (paper Figure 4) reads an instruction's
source operands from a register file split into banks; two sources
landing in the same bank serialize, adding a cycle each.  The default
simulator configuration folds this into the fixed ALU latency (faithful
to the paper's simplified depiction); enabling
``GpuConfig.model_bank_conflicts`` charges conflicts explicitly, using
the physical indices produced by the active mapper — which makes the
RegMutex mapping mux (Figure 6b) participate in timing, not just in the
safety checks.

Bank assignment follows the common GPGPU-Sim scheme: physical register
``p`` of warp ``w`` lives in bank ``(p + w) % num_banks`` (the warp
offset spreads the same architected index of different warps across
banks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction


@dataclass(frozen=True)
class BankAccessReport:
    """Outcome of collecting one instruction's operands."""

    reads: int
    conflicts: int

    @property
    def extra_cycles(self) -> int:
        """Serialization penalty: one cycle per conflicting read."""
        return self.conflicts


class BankedRegisterFile:
    """Bank-conflict accounting over physical register indices."""

    def __init__(self, num_banks: int = 16) -> None:
        if num_banks <= 0:
            raise ValueError("need at least one bank")
        self.num_banks = num_banks
        self.total_reads = 0
        self.total_conflicts = 0

    def bank_of(self, physical_index: int, warp_index: int) -> int:
        return (physical_index + warp_index) % self.num_banks

    def collect(
        self,
        warp_index: int,
        physical_sources: list[int],
    ) -> BankAccessReport:
        """Charge one instruction's source-operand reads.

        Distinct physical registers mapping to the same bank serialize;
        duplicate reads of the *same* physical register are satisfied by
        one read port (no conflict).
        """
        unique = sorted(set(physical_sources))
        per_bank: dict[int, int] = {}
        for phys in unique:
            bank = self.bank_of(phys, warp_index)
            per_bank[bank] = per_bank.get(bank, 0) + 1
        conflicts = sum(count - 1 for count in per_bank.values())
        self.total_reads += len(unique)
        self.total_conflicts += conflicts
        return BankAccessReport(reads=len(unique), conflicts=conflicts)

    @property
    def conflict_rate(self) -> float:
        if self.total_reads == 0:
            return 0.0
        return self.total_conflicts / self.total_reads


def operand_conflict_penalty(
    banked: BankedRegisterFile,
    warp_index: int,
    inst: Instruction,
    resolve,
) -> int:
    """Extra issue-to-ready cycles for one instruction.

    ``resolve(warp_index, arch_reg) -> physical index`` is the active
    mapper's function (baseline or RegMutex mux).
    """
    if not inst.srcs:
        return 0
    physical = [resolve(warp_index, reg) for reg in inst.srcs]
    return banked.collect(warp_index, physical).extra_cycles
