"""Memory latency model.

Loads complete after either the L1 hit latency or the DRAM latency,
chosen by a per-access hit/miss draw against the configured hit rate
from a deterministic per-SM stream.  Stores are fire-and-forget (write
buffer), consistent with how latency-tolerant GPU pipelines treat them.

This is intentionally a latency model, not a bandwidth model: the
paper's first-order effect — more resident warps hide more memory
latency — needs per-access latencies and warp-level overlap, which the
scoreboard provides.  An optional in-flight cap models MSHR pressure so
extreme occupancy cannot hide latency for free.
"""

from __future__ import annotations

from repro.arch.config import GpuConfig
from repro.sim.rand import DeterministicRng


class MemoryModel:
    """Per-SM memory subsystem."""

    def __init__(
        self,
        config: GpuConfig,
        rng: DeterministicRng,
        max_in_flight: int | None = None,
    ) -> None:
        self._config = config
        self._rng = rng
        self._max_in_flight = (
            max_in_flight if max_in_flight is not None
            else config.max_in_flight_loads
        )
        # Completion cycles of in-flight loads (multiset as sorted list is
        # overkill; dict cycle -> count keeps retire O(1)).
        self._in_flight: dict[int, int] = {}
        self._in_flight_total = 0
        # Earliest in-flight completion cycle (None when idle): lets the
        # per-cycle retire() return without scanning the dict, which is
        # the common case — loads complete every ~20-400 cycles, retire
        # runs every cycle.
        self._next_retire: int | None = None
        self.loads_issued = 0
        self.l1_hits = 0

    @property
    def in_flight(self) -> int:
        return self._in_flight_total

    def can_accept(self) -> bool:
        return self._in_flight_total < self._max_in_flight

    def issue_load(self, cycle: int, shared: bool = False) -> int:
        """Issue a load; returns the cycle its value is ready.

        Shared-memory accesses complete at a fixed short latency and do
        not occupy the in-flight window.
        """
        if shared:
            return cycle + self._config.l1_hit_latency // 2 + 1
        if not self.can_accept():
            raise RuntimeError("memory model saturated; call can_accept first")
        self.loads_issued += 1
        if self._rng.uniform() < self._config.l1_hit_rate:
            self.l1_hits += 1
            latency = self._config.l1_hit_latency
        else:
            latency = self._config.dram_latency
        done = cycle + latency
        self._in_flight[done] = self._in_flight.get(done, 0) + 1
        self._in_flight_total += 1
        if self._next_retire is None or done < self._next_retire:
            self._next_retire = done
        return done

    def earliest_completion(self, cycle: int) -> int | None:
        """Soonest in-flight load completion after ``cycle`` (None if idle).

        ``_next_retire`` already holds the answer on the hot path (the
        SM retires due loads at cycle start, so the cached minimum is
        strictly in the future by the time anyone asks); only a caller
        that skipped ``retire`` can observe a stale ``<= cycle`` value,
        which falls back to the scan.
        """
        nxt = self._next_retire
        if nxt is None or nxt > cycle:
            return nxt
        return self._earliest_completion_scan(cycle)

    def _earliest_completion_scan(self, cycle: int) -> int | None:
        """Reference implementation (full scan of the in-flight multiset),
        kept for the identity-pinning test and the stale-cache fallback."""
        future = [c for c in self._in_flight if c > cycle]
        return min(future) if future else None

    def retire(self, cycle: int) -> None:
        """Retire loads whose completion cycle has passed."""
        nxt = self._next_retire
        if nxt is None or nxt > cycle:
            return
        done = [c for c in self._in_flight if c <= cycle]
        for c in done:
            self._in_flight_total -= self._in_flight.pop(c)
        self._next_retire = min(self._in_flight) if self._in_flight else None

    @property
    def l1_hit_rate_observed(self) -> float:
        if self.loads_issued == 0:
            return 0.0
        return self.l1_hits / self.loads_issued

    # -- checkpointing (repro.sim.checkpoint) -------------------------------------
    def snapshot(self) -> dict:
        """All mutable state, including the hit/miss RNG stream position."""
        return {
            "in_flight": {str(c): n for c, n in self._in_flight.items()},
            "in_flight_total": self._in_flight_total,
            "next_retire": self._next_retire,
            "loads_issued": self.loads_issued,
            "l1_hits": self.l1_hits,
            "rng_state": self._rng._state,
        }

    def restore(self, payload: dict) -> None:
        self._in_flight = {int(c): n for c, n in payload["in_flight"].items()}
        self._in_flight_total = payload["in_flight_total"]
        self._next_retire = payload["next_retire"]
        self.loads_issued = payload["loads_issued"]
        self.l1_hits = payload["l1_hits"]
        self._rng._state = payload["rng_state"]
