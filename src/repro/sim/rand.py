"""Deterministic pseudo-random number generator for simulation.

A tiny xorshift64* PRNG so simulation runs are exactly reproducible
across platforms and Python versions (``random.Random`` is stable too,
but an explicit, inspectable generator keeps the simulator's determinism
self-contained and makes seeding semantics obvious in tests).
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_MULT = 0x2545F4914F6CDD1D


class DeterministicRng:
    """xorshift64* generator with helpers the simulator needs."""

    __slots__ = ("_state",)

    def __init__(self, seed: int = 0) -> None:
        # Zero state would lock xorshift at zero; mix the seed away from it.
        self._state = (seed * 0x9E3779B97F4A7C15 + 0x1234567887654321) & _MASK64 or 1

    def next_u64(self) -> int:
        x = self._state
        x ^= (x >> 12) & _MASK64
        x = (x ^ (x << 25)) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._state = x
        return (x * _MULT) & _MASK64

    def uniform(self) -> float:
        """A float in [0, 1)."""
        return self.next_u64() / float(1 << 64)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        return lo + self.next_u64() % (hi - lo + 1)

    def choice(self, seq):
        if not seq:
            raise ValueError("cannot choose from empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def fork(self, salt: int) -> "DeterministicRng":
        """An independent child stream; used to give each warp its own RNG."""
        return DeterministicRng(self.next_u64() ^ (salt * 0x9E3779B97F4A7C15))
