"""The 16-application workload suite (paper Table I).

Each :class:`AppSpec` carries the per-thread register demand from
Table I, the |Bs| the paper's heuristic computed (used as a
cross-check: our heuristic must reproduce it), launch geometry chosen so
the occupancy math matches the app's group —

* ``OCCUPANCY_LIMITED_APPS`` (Fig 7/9a/10/11/12a): register demand is the
  binding occupancy constraint on the full-register-file baseline;
* ``REGISTER_RELAXED_APPS`` (Fig 8/9b/12b): not register-limited on the
  full file, but register-limited once the file is halved —

and a synthetic program shape approximating the app's dynamic pressure
profile (Figure 1) and instruction mix.

Launch geometry (threads/CTA, shared memory) is *not* given in the
paper; the values here were selected by a parameter search
(``examples/tune_suite.py`` documents the procedure) so that the
theoretical-occupancy pipeline reproduces Table I's |Bs| for every app.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.kernel import Kernel
from repro.workloads.generator import KernelShape, PressurePhase, generate_kernel


@dataclass(frozen=True)
class AppSpec:
    """One benchmark application."""

    name: str
    suite: str                 # rodinia | parboil | cuda-sdk
    regs: int                  # per-thread architected registers (Table I)
    expected_bs: int           # |Bs| from Table I
    threads_per_cta: int
    shared_mem_per_cta: int
    group: str                 # "occupancy-limited" | "register-relaxed"
    # Program shape knobs.
    low_pressure: int
    high_pressure: int
    prologue_len: int
    inner_len: int
    inner_trips: int
    epilogue_len: int
    outer_trips: int = 0
    mem_ratio: float = 0.15
    sfu_ratio: float = 0.0
    has_barrier: bool = False
    # Memory intensity of the high-pressure burst.  Register-pressure
    # spikes in real kernels come from unrolled compute (FMA chains,
    # difference accumulation), so the burst is compute-heavy by default
    # while the low-pressure phases carry the memory traffic.
    inner_mem_ratio: float = 0.03
    seed: int = 7
    # Whether our |Es| heuristic reproduces Table I's split for this app.
    # For three applications (DWT2D, RadixSort, LavaMD) no launch
    # geometry can make any reading of the paper's tie-break rule select
    # the published |Bs| under the standard Fermi occupancy model (the
    # required SRP-section inequalities are mutually exclusive — see
    # DESIGN.md); experiments force Table I's split for every app, so
    # figures never depend on this flag.
    heuristic_matches: bool = True

    @property
    def rounded_regs(self) -> int:
        return ((self.regs + 3) // 4) * 4

    @property
    def expected_es(self) -> int:
        return self.rounded_regs - self.expected_bs


def _shape(spec: AppSpec) -> KernelShape:
    """Translate an AppSpec into a generator shape.

    Three-act structure shared by all apps: a low-pressure prologue
    (address math, data staging), a high-pressure inner loop (the
    Figure 1 spikes), and a low-pressure epilogue (reduction and
    write-back).  Barriers, when present, sit at low-pressure points so
    |Bs| always covers the live set at synchronization (deadlock rule 2).
    """
    phases = (
        PressurePhase(
            live_regs=spec.low_pressure,
            length=spec.prologue_len,
            mem_ratio=spec.mem_ratio,
            barrier_after=spec.has_barrier,
        ),
        PressurePhase(
            live_regs=spec.high_pressure,
            length=spec.inner_len,
            loop_trips=spec.inner_trips,
            mem_ratio=spec.inner_mem_ratio,
            sfu_ratio=spec.sfu_ratio,
        ),
        PressurePhase(
            live_regs=spec.low_pressure,
            length=spec.epilogue_len,
            mem_ratio=spec.mem_ratio,
        ),
    )
    return KernelShape(
        name=spec.name,
        phases=phases,
        regs_per_thread=spec.regs,
        threads_per_cta=spec.threads_per_cta,
        shared_mem_per_cta=spec.shared_mem_per_cta,
        outer_trips=spec.outer_trips,
        seed=spec.seed,
    )


def build_app_kernel(spec: AppSpec) -> Kernel:
    """Generate the synthetic kernel for an application."""
    return generate_kernel(_shape(spec))


def _occ(name: str, suite: str, regs: int, bs: int, threads: int, smem: int,
         **shape) -> AppSpec:
    return AppSpec(
        name=name, suite=suite, regs=regs, expected_bs=bs,
        threads_per_cta=threads, shared_mem_per_cta=smem,
        group="occupancy-limited", **shape,
    )


def _rel(name: str, suite: str, regs: int, bs: int, threads: int, smem: int,
         **shape) -> AppSpec:
    return AppSpec(
        name=name, suite=suite, regs=regs, expected_bs=bs,
        threads_per_cta=threads, shared_mem_per_cta=smem,
        group="register-relaxed", **shape,
    )


# ---------------------------------------------------------------------------
# Table I.  Launch geometry tuned so the heuristic reproduces |Bs|
# (verified by tests/workloads/test_suite_table1.py).
# ---------------------------------------------------------------------------
APPLICATIONS: dict[str, AppSpec] = {
    spec.name: spec
    for spec in [
        # -- occupancy-limited group (Figures 7, 9a, 10, 11, 12a, 13-left) --
        _occ("BFS", "rodinia", regs=21, bs=18, threads=384, smem=0,
             low_pressure=12, high_pressure=21,
             prologue_len=50, inner_len=30, inner_trips=0, epilogue_len=45,
             outer_trips=6, mem_ratio=0.40, seed=11),
        _occ("CUTCP", "parboil", regs=25, bs=20, threads=224, smem=0,
             low_pressure=13, high_pressure=25,
             prologue_len=55, inner_len=40, inner_trips=0, epilogue_len=35,
             outer_trips=8, mem_ratio=0.20, sfu_ratio=0.10, seed=12),
        _occ("DWT2D", "rodinia", regs=44, bs=38, threads=192, smem=0,
             low_pressure=24, high_pressure=44,
             prologue_len=45, inner_len=45, inner_trips=0, epilogue_len=35,
             outer_trips=6, mem_ratio=0.008, seed=13, heuristic_matches=False),
        _occ("HotSpot3D", "rodinia", regs=32, bs=24, threads=192, smem=8192,
             low_pressure=15, high_pressure=32,
             prologue_len=40, inner_len=35, inner_trips=0, epilogue_len=35,
             outer_trips=5, mem_ratio=0.25, has_barrier=True, seed=14),
        _occ("MRI-Q", "parboil", regs=21, bs=18, threads=256, smem=0,
             low_pressure=12, high_pressure=21,
             prologue_len=45, inner_len=35, inner_trips=0, epilogue_len=40,
             outer_trips=8, mem_ratio=0.16, sfu_ratio=0.15, seed=15),
        _occ("ParticleFilter", "rodinia", regs=32, bs=20, threads=512, smem=0,
             low_pressure=14, high_pressure=32,
             prologue_len=55, inner_len=38, inner_trips=0, epilogue_len=45,
             outer_trips=10, mem_ratio=0.20, inner_mem_ratio=0.08, seed=16),
        _occ("RadixSort", "cuda-sdk", regs=33, bs=30, threads=192, smem=0,
             low_pressure=18, high_pressure=33,
             prologue_len=50, inner_len=35, inner_trips=0, epilogue_len=40,
             outer_trips=6, mem_ratio=0.12, seed=17, heuristic_matches=False),
        _occ("SAD", "parboil", regs=30, bs=20, threads=512, smem=0,
             low_pressure=14, high_pressure=30,
             prologue_len=50, inner_len=55, inner_trips=0, epilogue_len=45,
             outer_trips=8, mem_ratio=0.25, inner_mem_ratio=0.055, seed=18),
        # -- register-relaxed group (Figures 8, 9b, 12b, 13-right) --
        _rel("Gaussian", "rodinia", regs=12, bs=8, threads=256, smem=0,
             low_pressure=6, high_pressure=12,
             prologue_len=35, inner_len=25, inner_trips=0, epilogue_len=30,
             outer_trips=6, mem_ratio=0.30, seed=21),
        _rel("HeartWall", "rodinia", regs=28, bs=20, threads=128, smem=0,
             low_pressure=14, high_pressure=28,
             prologue_len=55, inner_len=40, inner_trips=0, epilogue_len=45,
             outer_trips=8, mem_ratio=0.07, seed=22),
        _rel("LavaMD", "rodinia", regs=37, bs=28, threads=128, smem=8192,
             low_pressure=18, high_pressure=37,
             prologue_len=50, inner_len=40, inner_trips=0, epilogue_len=40,
             outer_trips=8, mem_ratio=0.05, sfu_ratio=0.10, seed=23,
             heuristic_matches=False),
        _rel("MergeSort", "cuda-sdk", regs=15, bs=12, threads=512, smem=0,
             low_pressure=8, high_pressure=15,
             prologue_len=35, inner_len=30, inner_trips=0, epilogue_len=30,
             outer_trips=6, mem_ratio=0.35, seed=24, heuristic_matches=False),
        _rel("MonteCarlo", "cuda-sdk", regs=13, bs=12, threads=192, smem=8192,
             low_pressure=7, high_pressure=13,
             prologue_len=40, inner_len=30, inner_trips=0, epilogue_len=35,
             outer_trips=8, mem_ratio=0.10, sfu_ratio=0.20, seed=25),
        _rel("SPMV", "parboil", regs=16, bs=12, threads=192, smem=8192,
             low_pressure=8, high_pressure=16,
             prologue_len=35, inner_len=30, inner_trips=0, epilogue_len=30,
             outer_trips=6, mem_ratio=0.40, seed=26),
        _rel("SRAD", "rodinia", regs=18, bs=12, threads=256, smem=0,
             low_pressure=9, high_pressure=18,
             prologue_len=40, inner_len=22, inner_trips=0, epilogue_len=35,
             outer_trips=6, mem_ratio=0.08, inner_mem_ratio=0.0,
             has_barrier=True, seed=27),
        _rel("TPACF", "parboil", regs=28, bs=20, threads=128, smem=0,
             low_pressure=14, high_pressure=28,
             prologue_len=50, inner_len=40, inner_trips=0, epilogue_len=40,
             outer_trips=8, mem_ratio=0.05, seed=28),
    ]
}

OCCUPANCY_LIMITED_APPS: tuple[str, ...] = tuple(
    s.name for s in APPLICATIONS.values() if s.group == "occupancy-limited"
)
REGISTER_RELAXED_APPS: tuple[str, ...] = tuple(
    s.name for s in APPLICATIONS.values() if s.group == "register-relaxed"
)
# The six applications whose single-thread liveness traces appear in Fig 1.
FIGURE1_APPS: tuple[str, ...] = (
    "CUTCP", "DWT2D", "HeartWall", "HotSpot3D", "ParticleFilter", "SAD",
)


def get_app(name: str) -> AppSpec:
    try:
        return APPLICATIONS[name]
    except KeyError:
        known = ", ".join(sorted(APPLICATIONS))
        raise KeyError(f"unknown application {name!r}; known: {known}") from None
