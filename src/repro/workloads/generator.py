"""Parametric synthetic-kernel generator.

A kernel is described by a :class:`KernelShape`: an ordered list of
:class:`PressurePhase` segments, optionally wrapped in an outer loop,
with optional barriers between phases.  Each phase sustains a target
live-register count for a given instruction length, which is how the
generator reproduces the liveness fluctuation the paper motivates with
Figure 1 (low-pressure stretches punctuated by high-pressure inner
loops).

Pressure control works by construction:

* entering a phase, registers ``0 .. P-1`` are made live (definitions
  for the ones not yet live),
* the phase body reads live registers and rewrites a rotating subset of
  them — every write is read later, so all ``P`` stay live,
* leaving a phase with a lower-pressure successor, the retiring
  registers are *reduced* into a low accumulator (their last use) so
  they die exactly at the phase boundary.

Long-lived values get low indices and phase-local temporaries get high
indices, matching how real register allocators order by live-range
length; the ``scramble_indices`` knob inverts that for compaction
stress-testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Opcode
from repro.isa.kernel import Kernel
from repro.sim.rand import DeterministicRng

_ALU_OPS = (Opcode.FFMA, Opcode.IADD, Opcode.FMUL, Opcode.IMAD, Opcode.FADD)


@dataclass(frozen=True)
class PressurePhase:
    """One pressure plateau.

    ``live_regs`` — registers simultaneously live through the phase.
    ``length`` — body instructions (excluding setup/teardown).
    ``mem_ratio`` — fraction of body instructions that are global loads.
    ``loop_trips`` — if > 0, the body loops this many times.
    ``barrier_after`` — emit a CTA barrier at the end of the phase.
    ``sfu_ratio`` — fraction of ALU ops sent to the SFU pipe.
    """

    live_regs: int
    length: int
    mem_ratio: float = 0.15
    loop_trips: int = 0
    barrier_after: bool = False
    sfu_ratio: float = 0.0
    # Wrap the body in an if/else diamond taken with this probability
    # (0 = straight-line).  The arms run different halves of the body,
    # exercising the divergence-conservative liveness rules (paper
    # Figure 3) on generated workloads.
    divergent: float = 0.0

    def __post_init__(self) -> None:
        if self.live_regs < 2:
            raise ValueError("a phase needs at least 2 live registers")
        if self.length < 1:
            raise ValueError("phase length must be positive")
        if not 0.0 <= self.mem_ratio <= 1.0:
            raise ValueError("mem_ratio must lie in [0, 1]")
        if not 0.0 <= self.sfu_ratio <= 1.0:
            raise ValueError("sfu_ratio must lie in [0, 1]")
        if not 0.0 <= self.divergent <= 1.0:
            raise ValueError("divergent must lie in [0, 1]")
        if self.divergent and self.length < 4:
            raise ValueError("a divergent phase needs length >= 4")
        if self.loop_trips < 0:
            raise ValueError("loop_trips must be non-negative")


@dataclass(frozen=True)
class KernelShape:
    """Full kernel description for the generator."""

    name: str
    phases: tuple[PressurePhase, ...]
    regs_per_thread: int
    threads_per_cta: int = 256
    shared_mem_per_cta: int = 0
    outer_trips: int = 0        # if > 0, all phases loop this many times
    scramble_indices: bool = False
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("kernel shape needs at least one phase")
        peak = max(p.live_regs for p in self.phases)
        if peak > self.regs_per_thread:
            raise ValueError(
                f"peak phase pressure {peak} exceeds declared "
                f"regs_per_thread {self.regs_per_thread}"
            )


class _Emitter:
    """Stateful code emitter tracking the live register set."""

    def __init__(self, shape: KernelShape, builder: KernelBuilder) -> None:
        self.shape = shape
        self.b = builder
        self.rng = DeterministicRng(shape.seed)
        self.live: list[int] = []
        self._label_counter = 0
        self._index_map = self._build_index_map()

    def _build_index_map(self) -> list[int]:
        n = self.shape.regs_per_thread
        if not self.shape.scramble_indices:
            return list(range(n))
        # Deterministic shuffle so compaction has real work to do.
        order = list(range(n))
        rng = DeterministicRng(self.shape.seed ^ 0x5CAB)
        for i in range(n - 1, 0, -1):
            j = rng.randint(0, i)
            order[i], order[j] = order[j], order[i]
        return order

    def reg(self, logical: int) -> int:
        return self._index_map[logical]

    def fresh_label(self, stem: str) -> str:
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    # -- pressure management -------------------------------------------------
    def raise_pressure(self, target: int) -> None:
        """Define registers until ``target`` are live."""
        for logical in range(target):
            if logical not in self.live:
                reg = self.reg(logical)
                # Mix constant loads and memory loads for definitions.
                if self.live and self.rng.uniform() < 0.3:
                    self.b.load(reg, self.reg(self.live[0]))
                else:
                    self.b.ldc(reg)
                self.live.append(logical)
        self.live.sort()

    def lower_pressure(self, target: int) -> None:
        """Retire live registers above ``target`` by reducing them into
        the lowest live register (their final use)."""
        if target < 1:
            target = 1
        retiring = [l for l in self.live if l >= target]
        if not retiring:
            return
        acc = self.reg(self.live[0])
        for logical in retiring:
            self.b.alu(acc, acc, self.reg(logical), opcode=Opcode.FADD)
        self.live = [l for l in self.live if l < target]

    # -- phase body -----------------------------------------------------------
    def body(self, phase: PressurePhase) -> None:
        """Emit ``phase.length`` instructions at constant pressure."""
        assert len(self.live) >= phase.live_regs
        pool = self.live[: phase.live_regs]
        n = len(pool)
        # Deterministic placement: exactly round(ratio * length) loads and
        # SFU ops, evenly spaced.  Per-instruction random thresholds make
        # tiny ratios all-or-nothing (0.01 over a 50-instruction phase is
        # half a load in expectation), and contention calibration needs
        # the load count to respond to small ratio changes.
        n_loads = round(phase.mem_ratio * phase.length)
        n_sfu = round(phase.sfu_ratio * phase.length)
        load_slots = {
            int((j + 0.5) * phase.length / n_loads) for j in range(n_loads)
        }
        sfu_slots = {
            int((j + 0.25) * phase.length / n_sfu) for j in range(n_sfu)
        } - load_slots
        for step in range(phase.length):
            # Short dependence distance, as in real GPU inner loops: each
            # instruction reads the previous instruction's destination
            # (pool[step-1]), so a load's consumer sits right behind it
            # and per-warp stalls expose memory latency — the property
            # occupancy-based latency hiding (and hence RegMutex's
            # occupancy boost) lives on.
            prev = pool[(step - 1) % n]
            dst = pool[step % n]
            if step in load_slots:
                # Load overwrites a rotating pool member (keeps it live:
                # the new value is read by the following instruction).
                self.b.load(self.reg(dst), self.reg(prev))
            elif step in sfu_slots:
                self.b.alu(self.reg(dst), self.reg(prev), opcode=Opcode.RSQRT)
            else:
                far = pool[(step + 2) % n]
                op = _ALU_OPS[self.rng.randint(0, len(_ALU_OPS) - 1)]
                if op in (Opcode.FFMA, Opcode.IMAD):
                    self.b.op(op, (self.reg(dst),),
                              (self.reg(prev), self.reg(far), self.reg(dst)))
                else:
                    self.b.op(op, (self.reg(dst),), (self.reg(prev), self.reg(far)))
        # Keep every pool member live past the body: the reduction at
        # lower_pressure provides last uses; for pool members that stay
        # live into the next phase, later phases read them.

    def _emit_body(self, phase: PressurePhase) -> None:
        """The body, optionally wrapped in an if/else diamond."""
        if phase.divergent <= 0.0:
            self.body(phase)
            return
        import dataclasses

        half = dataclasses.replace(
            phase,
            length=max(2, phase.length // 2),
            divergent=0.0,
            loop_trips=0,
            barrier_after=False,
        )
        pred = self.reg(self.live[1])
        else_label = self.fresh_label("else")
        join_label = self.fresh_label("join")
        self.b.branch(else_label, pred, taken_probability=phase.divergent)
        self.body(half)                  # then-arm
        self.b.jump(join_label)
        self.b.label(else_label)
        self.body(half)                  # else-arm (different random mix)
        self.b.label(join_label)
        self.b.nop()

    def phase(self, phase: PressurePhase) -> None:
        self.raise_pressure(phase.live_regs)
        if phase.loop_trips > 0:
            head = self.fresh_label("loop")
            # Loop-carried predicate register: logical 0 is always live.
            pred = self.reg(self.live[0])
            self.b.label(head)
            self._emit_body(phase)
            self.b.setp(pred, pred, self.reg(self.live[1]))
            self.b.branch(head, pred, trip_count=phase.loop_trips)
        else:
            self._emit_body(phase)
        if phase.barrier_after:
            self.b.barrier()


def generate_kernel(shape: KernelShape) -> Kernel:
    """Produce a kernel from a shape description."""
    builder = KernelBuilder(
        name=shape.name,
        regs_per_thread=shape.regs_per_thread,
        threads_per_cta=shape.threads_per_cta,
        shared_mem_per_cta=shape.shared_mem_per_cta,
    )
    em = _Emitter(shape, builder)

    outer_label = None
    em.raise_pressure(2)  # accumulator + predicate always live
    if shape.outer_trips > 0:
        outer_label = em.fresh_label("outer")
        builder.label(outer_label)
        builder.nop()

    for i, phase in enumerate(shape.phases):
        em.phase(phase)
        next_pressure = (
            shape.phases[i + 1].live_regs if i + 1 < len(shape.phases) else 2
        )
        em.lower_pressure(min(next_pressure, phase.live_regs)
                          if i + 1 < len(shape.phases) else 2)

    if shape.outer_trips > 0:
        pred = em.reg(em.live[0])
        builder.setp(pred, pred, em.reg(em.live[-1] if len(em.live) > 1 else em.live[0]))
        builder.branch(outer_label, pred, trip_count=shape.outer_trips)

    # Final store makes the accumulator's last value observable.
    builder.store(em.reg(em.live[0]), em.reg(em.live[0]))
    builder.exit()
    return builder.build(regs_per_thread=shape.regs_per_thread)
