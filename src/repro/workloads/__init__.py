"""Synthetic GPU workloads.

Real CUDA binaries are unavailable offline, so the suite substitutes a
parametric kernel generator whose output matches the knobs RegMutex's
behaviour actually depends on (see DESIGN.md §2): total register demand
(Table I), the dynamic fraction of instructions executed above |Bs| live
registers (Figure 1's shape), loop nesting, memory intensity, and
barrier placement.
"""

from repro.workloads.generator import (
    KernelShape,
    PressurePhase,
    generate_kernel,
)
from repro.workloads.suite import (
    AppSpec,
    APPLICATIONS,
    OCCUPANCY_LIMITED_APPS,
    REGISTER_RELAXED_APPS,
    FIGURE1_APPS,
    get_app,
    build_app_kernel,
)

__all__ = [
    "KernelShape",
    "PressurePhase",
    "generate_kernel",
    "AppSpec",
    "APPLICATIONS",
    "OCCUPANCY_LIMITED_APPS",
    "REGISTER_RELAXED_APPS",
    "FIGURE1_APPS",
    "get_app",
    "build_app_kernel",
]
