"""Run telemetry for the orchestration layer.

The orchestrator records one :class:`JobTiming` per job — how long it
took, whether it came from cache, and where it executed — plus the
session's wall time.  :class:`SessionTelemetry` aggregates those into
the numbers ``repro bench`` reports: cache hit/miss counts, total
simulation time, and worker utilization (simulated seconds divided by
``workers x wall seconds``, i.e. how full the pool's issue slots were).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

# Where a job's result came from.
MODE_CACHED = "cached"    # found in the runner's memo/disk cache
MODE_INLINE = "inline"    # simulated in the orchestrating process
MODE_POOL = "pool"        # simulated in a worker process


@dataclass(frozen=True)
class JobTiming:
    """One job's execution record.

    ``failure_kind`` carries the :mod:`repro.errors` taxonomy label when
    the job failed; ``attempts`` counts dispatches (>1 after retries of
    transient worker crashes).
    """

    label: str
    seconds: float
    mode: str
    failed: bool = False
    failure_kind: str | None = None
    attempts: int = 1
    # Simulated cycles the job produced (None when the job failed before
    # producing a record); cycles/seconds is the perf-artifact metric.
    cycles: int | None = None
    # Cycle the job's slowest SM resumed from when a surviving
    # checkpoint was reloaded (None for runs computed from cycle 0).
    resumed_from_cycle: int | None = None

    @property
    def cached(self) -> bool:
        return self.mode == MODE_CACHED

    @property
    def cycles_per_sec(self) -> float | None:
        """Simulation throughput; None for cached, failed, or zero-time jobs."""
        if self.cycles is None or self.cached or self.seconds <= 0:
            return None
        return self.cycles / self.seconds


@dataclass
class SessionTelemetry:
    """Aggregated timings for one orchestration session."""

    workers: int = 1
    timings: list[JobTiming] = field(default_factory=list)
    wall_seconds: float = 0.0
    _started_at: float | None = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        self._started_at = time.perf_counter()

    def finish(self) -> None:
        if self._started_at is not None:
            self.wall_seconds += time.perf_counter() - self._started_at
            self._started_at = None

    def record(self, label: str, seconds: float, mode: str,
               failed: bool = False, failure_kind: str | None = None,
               attempts: int = 1, cycles: int | None = None,
               resumed_from_cycle: int | None = None) -> None:
        self.timings.append(
            JobTiming(label, seconds, mode, failed, failure_kind, attempts,
                      cycles, resumed_from_cycle)
        )

    # -- aggregates -----------------------------------------------------------
    @property
    def jobs_total(self) -> int:
        return len(self.timings)

    @property
    def cache_hits(self) -> int:
        return sum(1 for t in self.timings if t.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for t in self.timings if not t.cached)

    @property
    def failures(self) -> int:
        return sum(1 for t in self.timings if t.failed)

    @property
    def retries(self) -> int:
        """Extra dispatches beyond each job's first attempt."""
        return sum(t.attempts - 1 for t in self.timings)

    @property
    def resumed_jobs(self) -> int:
        """Jobs that restarted from a surviving checkpoint."""
        return sum(1 for t in self.timings if t.resumed_from_cycle is not None)

    def failures_by_kind(self) -> dict[str, int]:
        """Failure counts grouped by taxonomy kind (empty if all passed)."""
        kinds: dict[str, int] = {}
        for t in self.timings:
            if t.failed:
                kind = t.failure_kind or "error"
                kinds[kind] = kinds.get(kind, 0) + 1
        return dict(sorted(kinds.items()))

    @property
    def sim_seconds(self) -> float:
        """Summed per-job simulation time (cache hits contribute ~0)."""
        return sum(t.seconds for t in self.timings if not t.cached)

    def utilization(self) -> float:
        """Fraction of the pool's capacity spent simulating."""
        if self.wall_seconds <= 0.0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.sim_seconds / (self.workers * self.wall_seconds))

    def slowest(self, n: int = 10) -> list[JobTiming]:
        """The ``n`` slowest simulated (non-cached) jobs."""
        simulated = [t for t in self.timings if not t.cached]
        return sorted(simulated, key=lambda t: -t.seconds)[:n]
