"""Run telemetry for the orchestration layer.

The orchestrator records one :class:`JobTiming` per job — how long it
took, whether it came from cache, and where it executed — plus the
session's wall time.  :class:`SessionTelemetry` aggregates those into
the numbers ``repro bench`` reports: cache hit/miss counts, total
simulation time, and worker utilization (simulated seconds divided by
``workers x wall seconds``, i.e. how full the pool's issue slots were).

Both classes round-trip through plain dicts (:meth:`JobTiming.to_dict`
/ :meth:`JobTiming.from_dict`, and the session-level equivalents with a
``schema`` marker): the service wire protocol streams per-job timings
to clients and the ``BENCH_<label>.json`` perf artifacts embed them,
and both deliberately share this one codepath instead of leaning on
dataclass internals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

# Version of the serialized JobTiming/SessionTelemetry dict layout.
# Bump when a field is renamed or its meaning changes; adding optional
# fields is backward-compatible and does not require a bump.
TELEMETRY_SCHEMA_VERSION = 1

# Where a job's result came from.
MODE_CACHED = "cached"    # found in the runner's memo/disk cache
MODE_INLINE = "inline"    # simulated in the orchestrating process
MODE_POOL = "pool"        # simulated in a worker process


@dataclass(frozen=True)
class JobTiming:
    """One job's execution record.

    ``failure_kind`` carries the :mod:`repro.errors` taxonomy label when
    the job failed; ``attempts`` counts dispatches (>1 after retries of
    transient worker crashes).
    """

    label: str
    seconds: float
    mode: str
    failed: bool = False
    failure_kind: str | None = None
    attempts: int = 1
    # Simulated cycles the job produced (None when the job failed before
    # producing a record); cycles/seconds is the perf-artifact metric.
    cycles: int | None = None
    # Cycle the job's slowest SM resumed from when a surviving
    # checkpoint was reloaded (None for runs computed from cycle 0).
    resumed_from_cycle: int | None = None

    @property
    def cached(self) -> bool:
        return self.mode == MODE_CACHED

    @property
    def cycles_per_sec(self) -> float | None:
        """Simulation throughput; None for cached, failed, or zero-time jobs."""
        if self.cycles is None or self.cached or self.seconds <= 0:
            return None
        return self.cycles / self.seconds

    # -- wire/artifact serialization ------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict: every field plus the derived ``cycles_per_sec``.

        This exact layout is both the perf artifact's per-job entry and
        the service protocol's ``timing`` payload.
        """
        cps = self.cycles_per_sec
        return {
            "label": self.label,
            "mode": self.mode,
            "seconds": round(self.seconds, 6),
            "cycles": self.cycles,
            "cycles_per_sec": round(cps, 1) if cps is not None else None,
            "failed": self.failed,
            "failure_kind": self.failure_kind,
            "attempts": self.attempts,
            "resumed_from_cycle": self.resumed_from_cycle,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobTiming":
        """Rebuild a timing from :meth:`to_dict` output.

        Derived fields (``cycles_per_sec``) and unknown keys are
        ignored so newer producers interoperate with older consumers;
        missing required keys raise ``ValueError``.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"JobTiming payload is {type(data).__name__}, not dict"
            )
        try:
            label, mode = data["label"], data["mode"]
            seconds = float(data["seconds"])
        except (KeyError, TypeError) as exc:
            raise ValueError(f"JobTiming payload missing/invalid: {exc}")
        if not isinstance(label, str) or not isinstance(mode, str):
            raise ValueError("JobTiming label/mode must be strings")
        return cls(
            label=label,
            seconds=seconds,
            mode=mode,
            failed=bool(data.get("failed", False)),
            failure_kind=data.get("failure_kind"),
            attempts=int(data.get("attempts", 1)),
            cycles=data.get("cycles"),
            resumed_from_cycle=data.get("resumed_from_cycle"),
        )


@dataclass
class SessionTelemetry:
    """Aggregated timings for one orchestration session."""

    workers: int = 1
    timings: list[JobTiming] = field(default_factory=list)
    wall_seconds: float = 0.0
    _started_at: float | None = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        self._started_at = time.perf_counter()

    def finish(self) -> None:
        if self._started_at is not None:
            self.wall_seconds += time.perf_counter() - self._started_at
            self._started_at = None

    def record(self, label: str, seconds: float, mode: str,
               failed: bool = False, failure_kind: str | None = None,
               attempts: int = 1, cycles: int | None = None,
               resumed_from_cycle: int | None = None) -> None:
        self.timings.append(
            JobTiming(label, seconds, mode, failed, failure_kind, attempts,
                      cycles, resumed_from_cycle)
        )

    # -- aggregates -----------------------------------------------------------
    @property
    def jobs_total(self) -> int:
        return len(self.timings)

    @property
    def cache_hits(self) -> int:
        return sum(1 for t in self.timings if t.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for t in self.timings if not t.cached)

    @property
    def failures(self) -> int:
        return sum(1 for t in self.timings if t.failed)

    @property
    def retries(self) -> int:
        """Extra dispatches beyond each job's first attempt."""
        return sum(t.attempts - 1 for t in self.timings)

    @property
    def resumed_jobs(self) -> int:
        """Jobs that restarted from a surviving checkpoint."""
        return sum(1 for t in self.timings if t.resumed_from_cycle is not None)

    def failures_by_kind(self) -> dict[str, int]:
        """Failure counts grouped by taxonomy kind (empty if all passed)."""
        kinds: dict[str, int] = {}
        for t in self.timings:
            if t.failed:
                kind = t.failure_kind or "error"
                kinds[kind] = kinds.get(kind, 0) + 1
        return dict(sorted(kinds.items()))

    @property
    def sim_seconds(self) -> float:
        """Summed per-job simulation time (cache hits contribute ~0)."""
        return sum(t.seconds for t in self.timings if not t.cached)

    @property
    def computed_cycles(self) -> int:
        """Cycles simulated *this session* (cache hits excluded).

        The perf-artifact throughput numerator: it must match the
        population ``sim_seconds`` measures, or a partially-cached
        session reports cycles that cost no time and the cycles/sec
        headline inflates past any real machine's ability — masking
        regressions exactly when the cache is warm.
        """
        return sum(t.cycles or 0 for t in self.timings if not t.cached)

    @property
    def cached_cycles(self) -> int:
        """Cycles replayed from the run store (no simulation time spent)."""
        return sum(t.cycles or 0 for t in self.timings if t.cached)

    def utilization(self) -> float:
        """Fraction of the pool's capacity spent simulating."""
        if self.wall_seconds <= 0.0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.sim_seconds / (self.workers * self.wall_seconds))

    def slowest(self, n: int = 10) -> list[JobTiming]:
        """The ``n`` slowest simulated (non-cached) jobs."""
        simulated = [t for t in self.timings if not t.cached]
        return sorted(simulated, key=lambda t: -t.seconds)[:n]

    # -- wire/artifact serialization ------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe session dump with a ``schema`` marker."""
        return {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
            "timings": [t.to_dict() for t in self.timings],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionTelemetry":
        """Rebuild a session from :meth:`to_dict` output (schema-checked)."""
        if not isinstance(data, dict):
            raise ValueError(
                f"telemetry payload is {type(data).__name__}, not dict"
            )
        schema = data.get("schema")
        if schema != TELEMETRY_SCHEMA_VERSION:
            raise ValueError(
                f"telemetry schema {schema!r} != "
                f"expected {TELEMETRY_SCHEMA_VERSION}"
            )
        return cls(
            workers=int(data.get("workers", 1)),
            timings=[JobTiming.from_dict(t) for t in data.get("timings", ())],
            wall_seconds=float(data.get("wall_seconds", 0.0)),
        )
