"""Cached, tail-free kernel runs.

Two problems a naive ``simulate_kernel`` comparison has:

1. **CTA tails.** With a fixed grid, a technique with 6 resident CTAs
   per SM can end on a nearly-empty last wave while one with 5 ends on a
   full wave, polluting the comparison with an artifact of small grids
   (the paper's grids are thousands of CTAs, so its tails are
   negligible).  The runner sizes each technique's grid to whole waves
   (per-SM CTA count a multiple of the technique's residency, targeting
   a constant amount of work) and reports **cycles per CTA** — the
   steady-state throughput both techniques would show on a huge grid.

2. **Repeated work.** The figure suite re-runs many (app, config,
   technique) combinations; the runner memoizes records in memory and,
   optionally, in a JSON file keyed by a content hash of everything that
   affects the result (kernel text, config, technique parameters, seed).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from dataclasses import asdict, dataclass
from typing import Optional

from repro.arch.config import GpuConfig
from repro.isa.kernel import Kernel
from repro.isa.printer import format_kernel
from repro.sim.gpu import Gpu
from repro.sim.stats import SmStats
from repro.sim.technique import BaselineTechnique, SharingTechnique


@dataclass(frozen=True)
class RunRecord:
    """Normalized outcome of one (kernel, config, technique) run."""

    kernel_name: str
    config_name: str
    technique: str
    cycles: int
    ctas_total: int
    ctas_per_sm_resident: int
    cycles_per_cta: float
    theoretical_occupancy: float
    acquire_attempts: int
    acquire_successes: int
    release_count: int
    instructions_issued: int
    stall_acquire: int
    stall_memory: int

    @property
    def acquire_success_rate(self) -> float:
        """Granted acquires over attempts (1.0 when nothing was attempted)."""
        if self.acquire_attempts == 0:
            return 1.0
        return self.acquire_successes / self.acquire_attempts

    def reduction_vs(self, baseline: "RunRecord") -> float:
        """Cycle-per-CTA reduction relative to ``baseline`` (positive =
        faster), the paper's Figures 7/9a/10/12a metric."""
        if baseline.cycles_per_cta == 0:
            return 0.0
        return (
            baseline.cycles_per_cta - self.cycles_per_cta
        ) / baseline.cycles_per_cta

    def increase_vs(self, baseline: "RunRecord") -> float:
        """Cycle-per-CTA increase relative to ``baseline`` (positive =
        slower), the paper's Figures 8/9b/12b metric."""
        return -self.reduction_vs(baseline)


# On-disk cache layout version.  v2 wraps every record with a content
# checksum so bit-rot / torn writes are caught per entry (and quarantined)
# instead of silently trusted or fatally wiping the whole cache.
CACHE_FORMAT_VERSION = 2

# Simulator-semantics version folded into every cache key.  Bump ONLY
# when a change alters simulated cycle counts — a bump invalidates every
# cached run everywhere.  Checkers, observers, and other timing-neutral
# additions must leave it alone (the differential oracle in repro.check
# exists to prove that neutrality).
CACHE_KEY_VERSION = "v6"


def _record_checksum(fields: dict) -> str:
    """Content hash of a serialized RunRecord (sorted-key canonical JSON)."""
    canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# Config fields that cannot affect simulated timing: they select
# between bit-identical implementations (the wake-queue property tests
# and the repro.check oracle enforce that identity) or arm pure
# checkers whose hooks observe without perturbing the schedule.
# Excluded from fingerprints so flipping them does not orphan cached
# records — and so adding them did not invalidate every pre-existing
# key (v6 stays v6).
_TIMING_NEUTRAL_CONFIG_FIELDS = frozenset({
    "issue_engine",   # scan / event / columnar: same schedule by contract
    "sanitizer",      # observer-only runtime checks (raise, never steer)
    "sanitizer_stride",
})


def _config_fingerprint(config: GpuConfig) -> str:
    """Field-sorted serialization of a config for cache keys.

    ``repr(config)`` depends on field declaration order and on the
    dataclass repr implementation; sorting the asdict items makes the
    key stable across field reordering and unaffected by cosmetic repr
    changes, while still covering every timing-relevant field's value.
    """
    items = sorted(
        (k, v)
        for k, v in dataclasses.asdict(config).items()
        if k not in _TIMING_NEUTRAL_CONFIG_FIELDS
    )
    return ";".join(f"{k}={v!r}" for k, v in items)


def _technique_fingerprint(technique: SharingTechnique) -> str:
    """A stable description of a technique instance for cache keys.

    Enumerates the technique's *declared* parameters — every instance
    attribute its constructor set — instead of probing a hard-coded
    attribute list, so a new technique (or a new parameter on an
    existing one) participates in the key without touching this module.
    Class-level ``model_version`` markers (RFV bumps one on semantic
    changes) are included as well.
    """
    params = dict(vars(technique))
    version = getattr(type(technique), "model_version", None)
    if version is not None:
        params.setdefault("model_version", version)
    parts = [technique.name]
    parts.extend(f"{k}={params[k]!r}" for k in sorted(params))
    return ";".join(parts)


class ExperimentRunner:
    """Runs kernels under techniques with memoization."""

    def __init__(
        self,
        target_ctas_per_sm: int = 24,
        seed: int = 2018,
        cache_path: Optional[str] = None,
    ) -> None:
        self.target_ctas_per_sm = target_ctas_per_sm
        self.seed = seed
        self.cache_hits = 0
        self.cache_misses = 0
        self._memo: dict[str, RunRecord] = {}
        self._dirty = False
        self._cache_path = cache_path
        self.quarantined_entries = 0
        if cache_path and os.path.exists(cache_path):
            self._load_cache(cache_path)

    # -- cache plumbing ---------------------------------------------------------
    def _load_cache(self, cache_path: str) -> None:
        """Load the disk cache, validating every entry.

        An unparseable file is preserved (not destroyed) at
        ``<path>.corrupt`` so the evidence survives for diagnosis, and
        the session starts fresh.  A parseable file with individually
        bad entries — checksum mismatch, schema drift — loses only
        those entries: each is appended to ``<path>.quarantine.json``
        and the rest of the cache is kept, instead of the old behaviour
        of silently wiping the whole memo.
        """
        try:
            with open(cache_path) as fh:
                raw = json.load(fh)
            if not isinstance(raw, dict):
                raise TypeError(f"cache root is {type(raw).__name__}, not dict")
        except (json.JSONDecodeError, TypeError, OSError) as exc:
            backup = cache_path + ".corrupt"
            try:
                os.replace(cache_path, backup)
            except OSError:
                backup = "<unmovable>"
            warnings.warn(
                f"result cache {cache_path!r} is unreadable ({exc}); "
                f"preserved at {backup!r}, starting with an empty cache",
                stacklevel=2,
            )
            return

        if raw.get("__cache_format__") == CACHE_FORMAT_VERSION:
            entries = raw.get("entries", {})
            checked = True
        else:
            # Legacy v1 layout: a bare {key: record-dict} mapping with
            # no checksums.  Load best-effort and mark dirty so the
            # next flush rewrites it in the checksummed format.
            entries = {k: {"record": v} for k, v in raw.items()}
            checked = False
            self._dirty = True

        bad: dict[str, object] = {}
        for key, entry in entries.items():
            try:
                fields = entry["record"]
                if checked and entry.get("checksum") != _record_checksum(fields):
                    raise ValueError("checksum mismatch")
                self._memo[key] = RunRecord(**fields)
            except (KeyError, TypeError, ValueError) as exc:
                bad[key] = {"entry": entry, "reason": str(exc)}
        if bad:
            self._quarantine(cache_path, bad)
            self._dirty = True

    def _quarantine(self, cache_path: str, bad: dict[str, object]) -> None:
        """Append invalid entries to ``<path>.quarantine.json`` and warn."""
        self.quarantined_entries += len(bad)
        quarantine_path = cache_path + ".quarantine.json"
        existing: dict[str, object] = {}
        try:
            with open(quarantine_path) as fh:
                existing = json.load(fh)
        except (OSError, json.JSONDecodeError):
            pass
        existing.update(bad)
        with open(quarantine_path, "w") as fh:
            json.dump(existing, fh, indent=2)
        warnings.warn(
            f"result cache {cache_path!r}: {len(bad)} invalid "
            f"entr{'y' if len(bad) == 1 else 'ies'} quarantined to "
            f"{quarantine_path!r}; they will be recomputed",
            stacklevel=3,
        )

    def _key(
        self, kernel: Kernel, config: GpuConfig, technique: SharingTechnique
    ) -> str:
        payload = "|".join(
            [
                format_kernel(kernel),
                _config_fingerprint(config),
                _technique_fingerprint(technique),
                str(self.seed),
                str(self.target_ctas_per_sm),
                CACHE_KEY_VERSION,
            ]
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def key_for(
        self, kernel: Kernel, config: GpuConfig, technique: SharingTechnique
    ) -> str:
        """Public cache key (the orchestrator's dedup/install handle)."""
        return self._key(kernel, config, technique)

    def cached(self, key: str) -> Optional[RunRecord]:
        """The memoized record for ``key``, if any (no hit accounting)."""
        return self._memo.get(key)

    def install(self, key: str, record: RunRecord) -> None:
        """Merge an externally computed record (a worker's result)."""
        self._memo[key] = record
        self._dirty = True

    def flush(self) -> None:
        """Atomically persist the memo to disk, once, if anything changed.

        Persisting used to happen after *every* run — an O(cache) JSON
        rewrite per simulation.  Callers (CLI, orchestrator, benchmark
        session, examples) now flush once when their session ends.
        """
        if not self._cache_path or not self._dirty:
            return
        payload = {
            "__cache_format__": CACHE_FORMAT_VERSION,
            "entries": {
                k: {"record": asdict(v), "checksum": _record_checksum(asdict(v))}
                for k, v in self._memo.items()
            },
        }
        tmp = self._cache_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, self._cache_path)
        self._dirty = False

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush()

    # -- the run -------------------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        config: GpuConfig,
        technique: SharingTechnique | None = None,
        scheduler_priority=None,
    ) -> RunRecord:
        """Run (or recall) one (kernel, config, technique) combination."""
        technique = technique or BaselineTechnique()
        key = self._key(kernel, config, technique)
        cached = self._memo.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1

        gpu = Gpu(config, technique, seed=self.seed)
        compiled = technique.prepare_kernel(kernel, config)
        occ = technique.occupancy(compiled, config)
        resident = max(1, occ.ctas_per_sm)
        waves = max(2, round(self.target_ctas_per_sm / resident))
        grid = resident * waves * config.num_sms

        result = gpu.launch(kernel, grid, scheduler_priority=scheduler_priority)
        total = result.stats.total
        record = RunRecord(
            kernel_name=kernel.name,
            config_name=config.name,
            technique=technique.name,
            cycles=result.cycles,
            ctas_total=grid,
            ctas_per_sm_resident=resident,
            cycles_per_cta=result.cycles / (resident * waves),
            theoretical_occupancy=result.stats.theoretical_occupancy,
            acquire_attempts=total.acquire_attempts,
            acquire_successes=total.acquire_successes,
            release_count=total.release_count,
            instructions_issued=total.instructions_issued,
            stall_acquire=total.stall_acquire,
            stall_memory=total.stall_memory,
        )
        self._memo[key] = record
        self._dirty = True
        return record
