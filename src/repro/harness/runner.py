"""Cached, tail-free kernel runs.

Two problems a naive ``simulate_kernel`` comparison has:

1. **CTA tails.** With a fixed grid, a technique with 6 resident CTAs
   per SM can end on a nearly-empty last wave while one with 5 ends on a
   full wave, polluting the comparison with an artifact of small grids
   (the paper's grids are thousands of CTAs, so its tails are
   negligible).  The runner sizes each technique's grid to whole waves
   (per-SM CTA count a multiple of the technique's residency, targeting
   a constant amount of work) and reports **cycles per CTA** — the
   steady-state throughput both techniques would show on a huge grid.

2. **Repeated work.** The figure suite re-runs many (app, config,
   technique) combinations; the runner memoizes records in memory and,
   optionally, in a JSON file keyed by a content hash of everything that
   affects the result (kernel text, config, technique parameters, seed).

Crash-safety of the disk cache (see ARCHITECTURE.md, "crash-safety &
resume"): every computed record is first appended to a write-ahead
journal (``<path>.journal``) as one fsync'd JSON line under an advisory
file lock, so a simulation result survives a crash that lands before the
session's single ``flush()``.  ``flush()`` itself merges the on-disk
cache, the journal, and the in-memory memo under the same lock before an
fsync'd atomic replace — concurrent processes sharing a cache directory
can interleave freely without torn writes or lost entries, and a torn
journal tail (a writer killed mid-append) is detected and dropped.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

from repro.arch.config import GpuConfig
from repro.isa.kernel import Kernel
from repro.isa.printer import format_kernel
from repro.sim.gpu import Gpu
from repro.sim.stats import SmStats
from repro.sim.technique import BaselineTechnique, SharingTechnique


@dataclass(frozen=True)
class RunRecord:
    """Normalized outcome of one (kernel, config, technique) run."""

    kernel_name: str
    config_name: str
    technique: str
    cycles: int
    ctas_total: int
    ctas_per_sm_resident: int
    cycles_per_cta: float
    theoretical_occupancy: float
    acquire_attempts: int
    acquire_successes: int
    release_count: int
    instructions_issued: int
    stall_acquire: int
    stall_memory: int

    @property
    def acquire_success_rate(self) -> float:
        """Granted acquires over attempts (1.0 when nothing was attempted)."""
        if self.acquire_attempts == 0:
            return 1.0
        return self.acquire_successes / self.acquire_attempts

    def reduction_vs(self, baseline: "RunRecord") -> float:
        """Cycle-per-CTA reduction relative to ``baseline`` (positive =
        faster), the paper's Figures 7/9a/10/12a metric."""
        if baseline.cycles_per_cta == 0:
            return 0.0
        return (
            baseline.cycles_per_cta - self.cycles_per_cta
        ) / baseline.cycles_per_cta

    def increase_vs(self, baseline: "RunRecord") -> float:
        """Cycle-per-CTA increase relative to ``baseline`` (positive =
        slower), the paper's Figures 8/9b/12b metric."""
        return -self.reduction_vs(baseline)


# On-disk cache layout version.  v2 wraps every record with a content
# checksum so bit-rot / torn writes are caught per entry (and quarantined)
# instead of silently trusted or fatally wiping the whole cache.
CACHE_FORMAT_VERSION = 2

# Simulator-semantics version folded into every cache key.  Bump ONLY
# when a change alters simulated cycle counts — a bump invalidates every
# cached run everywhere.  Checkers, observers, and other timing-neutral
# additions must leave it alone (the differential oracle in repro.check
# exists to prove that neutrality).
CACHE_KEY_VERSION = "v6"


def _record_checksum(fields: dict) -> str:
    """Content hash of a serialized RunRecord (sorted-key canonical JSON)."""
    canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@contextmanager
def _file_lock(lock_path: str):
    """Advisory exclusive lock scoped to the ``with`` body.

    Serializes journal appends and cache flushes across *processes*
    sharing one cache path.  Degrades to a no-op where ``fcntl`` is
    unavailable — single-process use stays correct, only cross-process
    exclusion is lost.
    """
    if fcntl is None:
        yield
        return
    fh = open(lock_path, "a+")
    try:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        yield
    finally:
        fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        fh.close()


def _fsync_dir(path: str) -> None:
    """Make a rename in ``path``'s directory durable (best-effort)."""
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystem
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


# Config fields that cannot affect simulated timing: they select
# between bit-identical implementations (the wake-queue property tests
# and the repro.check oracle enforce that identity) or arm pure
# checkers whose hooks observe without perturbing the schedule.
# Excluded from fingerprints so flipping them does not orphan cached
# records — and so adding them did not invalidate every pre-existing
# key (v6 stays v6).
_TIMING_NEUTRAL_CONFIG_FIELDS = frozenset({
    "issue_engine",   # scan / event / columnar: same schedule by contract
    "sanitizer",      # observer-only runtime checks (raise, never steer)
    "sanitizer_stride",
})


def _config_fingerprint(config: GpuConfig) -> str:
    """Field-sorted serialization of a config for cache keys.

    ``repr(config)`` depends on field declaration order and on the
    dataclass repr implementation; sorting the asdict items makes the
    key stable across field reordering and unaffected by cosmetic repr
    changes, while still covering every timing-relevant field's value.
    """
    items = sorted(
        (k, v)
        for k, v in dataclasses.asdict(config).items()
        if k not in _TIMING_NEUTRAL_CONFIG_FIELDS
    )
    return ";".join(f"{k}={v!r}" for k, v in items)


def _technique_fingerprint(technique: SharingTechnique) -> str:
    """A stable description of a technique instance for cache keys.

    Enumerates the technique's *declared* parameters — every instance
    attribute its constructor set — instead of probing a hard-coded
    attribute list, so a new technique (or a new parameter on an
    existing one) participates in the key without touching this module.
    Class-level ``model_version`` markers (RFV bumps one on semantic
    changes) are included as well.
    """
    params = dict(vars(technique))
    version = getattr(type(technique), "model_version", None)
    if version is not None:
        params.setdefault("model_version", version)
    parts = [technique.name]
    parts.extend(f"{k}={params[k]!r}" for k in sorted(params))
    return ";".join(parts)


class ExperimentRunner:
    """Runs kernels under techniques with memoization."""

    def __init__(
        self,
        target_ctas_per_sm: int = 24,
        seed: int = 2018,
        cache_path: Optional[str] = None,
    ) -> None:
        self.target_ctas_per_sm = target_ctas_per_sm
        self.seed = seed
        self.cache_hits = 0
        self.cache_misses = 0
        self._memo: dict[str, RunRecord] = {}
        self._dirty = False
        self._cache_path = cache_path
        self.quarantined_entries = 0
        # Byte offset of the first unread journal line; reset whenever
        # the journal is truncated (by our flush or a peer's).
        self._journal_offset = 0
        if cache_path and os.path.exists(cache_path):
            self._load_cache(cache_path)
        if cache_path:
            self._replay_journal()

    @property
    def _journal_path(self) -> str:
        return self._cache_path + ".journal"

    @property
    def _lock_path(self) -> str:
        return self._cache_path + ".lock"

    # -- cache plumbing ---------------------------------------------------------
    def _load_cache(self, cache_path: str) -> None:
        """Load the disk cache, validating every entry.

        An unparseable file is preserved (not destroyed) at
        ``<path>.corrupt`` so the evidence survives for diagnosis, and
        the session starts fresh.  A parseable file with individually
        bad entries — checksum mismatch, schema drift — loses only
        those entries: each is appended to ``<path>.quarantine.json``
        and the rest of the cache is kept, instead of the old behaviour
        of silently wiping the whole memo.
        """
        try:
            with open(cache_path) as fh:
                raw = json.load(fh)
            if not isinstance(raw, dict):
                raise TypeError(f"cache root is {type(raw).__name__}, not dict")
        except (json.JSONDecodeError, TypeError, OSError) as exc:
            backup = cache_path + ".corrupt"
            try:
                os.replace(cache_path, backup)
                _fsync_dir(backup)
            except OSError:
                backup = "<unmovable>"
            warnings.warn(
                f"result cache {cache_path!r} is unreadable ({exc}); "
                f"preserved at {backup!r}, starting with an empty cache",
                stacklevel=2,
            )
            return

        if raw.get("__cache_format__") == CACHE_FORMAT_VERSION:
            entries = raw.get("entries", {})
            checked = True
        else:
            # Legacy v1 layout: a bare {key: record-dict} mapping with
            # no checksums.  Load best-effort and mark dirty so the
            # next flush rewrites it in the checksummed format.
            entries = {k: {"record": v} for k, v in raw.items()}
            checked = False
            self._dirty = True

        bad: dict[str, object] = {}
        for key, entry in entries.items():
            try:
                fields = entry["record"]
                if checked and entry.get("checksum") != _record_checksum(fields):
                    raise ValueError("checksum mismatch")
                self._memo[key] = RunRecord(**fields)
            except (KeyError, TypeError, ValueError) as exc:
                bad[key] = {"entry": entry, "reason": str(exc)}
        if bad:
            self._quarantine(cache_path, bad)
            self._dirty = True

    # -- write-ahead journal -----------------------------------------------------
    def _journal_append(self, key: str, record: RunRecord) -> None:
        """Durably log one computed record before the session flush.

        One fsync'd JSON line per record, appended under the advisory
        lock: a crash between compute and ``flush()`` loses nothing, and
        two processes appending concurrently cannot interleave bytes.
        """
        if not self._cache_path:
            return
        fields = asdict(record)
        line = json.dumps(
            {"key": key, "record": fields,
             "checksum": _record_checksum(fields)},
            separators=(",", ":"),
        ) + "\n"
        with _file_lock(self._lock_path):
            with open(self._journal_path, "a") as fh:
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())

    def _replay_journal(self, into: dict[str, RunRecord] | None = None) -> int:
        """Merge journal entries written since the last replay.

        With ``into`` given, reads the whole journal into that dict
        (flush-time merge); otherwise reads incrementally from the
        remembered offset into the memo.  A torn final line (no
        terminating newline: the writer died mid-append) is left in
        place unconsumed — the writer's lock-protected retry or the next
        flush resolves it.  Corrupt complete lines are skipped.
        """
        if not self._cache_path:
            return 0
        target = self._memo if into is None else into
        adopted = 0
        try:
            size = os.path.getsize(self._journal_path)
        except OSError:
            if into is None:
                self._journal_offset = 0
            return 0
        offset = 0 if into is not None else self._journal_offset
        if size < offset:
            # The journal was truncated by a peer's flush: our offset
            # points into a file that no longer has those bytes.
            offset = 0
        try:
            with open(self._journal_path) as fh:
                fh.seek(offset)
                for line in fh:
                    if not line.endswith("\n"):
                        break  # torn tail from an interrupted append
                    offset += len(line.encode())
                    stripped = line.strip()
                    if not stripped:
                        continue
                    try:
                        entry = json.loads(stripped)
                        fields = entry["record"]
                        if entry.get("checksum") != _record_checksum(fields):
                            raise ValueError("checksum mismatch")
                        record = RunRecord(**fields)
                        key = entry["key"]
                    except (KeyError, TypeError, ValueError):
                        continue  # corrupt line: dropped at next flush
                    if key not in target:
                        target[key] = record
                        adopted += 1
                        if into is None:
                            self._dirty = True
        except OSError:
            return adopted
        if into is None:
            self._journal_offset = offset
        return adopted

    def _quarantine(self, cache_path: str, bad: dict[str, object]) -> None:
        """Append invalid entries to ``<path>.quarantine.json`` and warn."""
        self.quarantined_entries += len(bad)
        quarantine_path = cache_path + ".quarantine.json"
        existing: dict[str, object] = {}
        try:
            with open(quarantine_path) as fh:
                existing = json.load(fh)
        except (OSError, json.JSONDecodeError):
            pass
        existing.update(bad)
        tmp = f"{quarantine_path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(existing, fh, indent=2)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, quarantine_path)
        _fsync_dir(quarantine_path)
        warnings.warn(
            f"result cache {cache_path!r}: {len(bad)} invalid "
            f"entr{'y' if len(bad) == 1 else 'ies'} quarantined to "
            f"{quarantine_path!r}; they will be recomputed",
            stacklevel=3,
        )

    def _key(
        self, kernel: Kernel, config: GpuConfig, technique: SharingTechnique
    ) -> str:
        payload = "|".join(
            [
                format_kernel(kernel),
                _config_fingerprint(config),
                _technique_fingerprint(technique),
                str(self.seed),
                str(self.target_ctas_per_sm),
                CACHE_KEY_VERSION,
            ]
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def key_for(
        self, kernel: Kernel, config: GpuConfig, technique: SharingTechnique
    ) -> str:
        """Public cache key (the orchestrator's dedup/install handle)."""
        return self._key(kernel, config, technique)

    def cached(self, key: str) -> Optional[RunRecord]:
        """The memoized record for ``key``, if any (no hit accounting)."""
        return self._memo.get(key)

    def install(self, key: str, record: RunRecord) -> None:
        """Merge an externally computed record (a worker's result)."""
        self._memo[key] = record
        self._dirty = True
        self._journal_append(key, record)

    def flush(self) -> None:
        """Atomically persist the memo to disk, once, if anything changed.

        Persisting used to happen after *every* run — an O(cache) JSON
        rewrite per simulation.  Callers (CLI, orchestrator, benchmark
        session, examples) now flush once when their session ends.

        The whole merge-write-truncate sequence holds the advisory lock:
        the on-disk cache and the journal are re-read first so entries
        flushed or journaled by a concurrent process survive this
        process's rewrite, then the journal (now folded in) is removed.
        The temp file is fsync'd before the atomic replace so a crash at
        any point leaves either the old complete cache or the new one.
        """
        if not self._cache_path or not self._dirty:
            return
        with _file_lock(self._lock_path):
            merged: dict[str, RunRecord] = {}
            try:
                with open(self._cache_path) as fh:
                    raw = json.load(fh)
                if (
                    isinstance(raw, dict)
                    and raw.get("__cache_format__") == CACHE_FORMAT_VERSION
                ):
                    for key, entry in raw.get("entries", {}).items():
                        try:
                            fields = entry["record"]
                            if entry.get("checksum") != _record_checksum(fields):
                                continue
                            merged[key] = RunRecord(**fields)
                        except (KeyError, TypeError, ValueError):
                            continue
            except (OSError, json.JSONDecodeError, TypeError):
                pass
            self._replay_journal(into=merged)
            merged.update(self._memo)
            self._memo = merged
            payload = {
                "__cache_format__": CACHE_FORMAT_VERSION,
                "entries": {
                    k: {
                        "record": asdict(v),
                        "checksum": _record_checksum(asdict(v)),
                    }
                    for k, v in merged.items()
                },
            }
            tmp = f"{self._cache_path}.tmp.{os.getpid()}"
            with open(tmp, "w") as fh:
                json.dump(payload, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self._cache_path)
            _fsync_dir(self._cache_path)
            try:
                os.remove(self._journal_path)
            except FileNotFoundError:
                pass
            self._journal_offset = 0
        self._dirty = False

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush()

    # -- the run -------------------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        config: GpuConfig,
        technique: SharingTechnique | None = None,
        scheduler_priority=None,
        checkpoint_dir: str | None = None,
        checkpoint_interval: int = 0,
        resume_report: dict | None = None,
    ) -> RunRecord:
        """Run (or recall) one (kernel, config, technique) combination.

        The checkpoint knobs are deliberately keyword arguments rather
        than config or technique fields: a resumed run is bit-identical
        to a fresh one, so it must (and does) share the same cache key.
        """
        technique = technique or BaselineTechnique()
        key = self._key(kernel, config, technique)
        cached = self._memo.get(key)
        if cached is None and self._cache_path:
            # A concurrent process sharing this cache may have computed
            # and journaled this key since we loaded: adopt its result
            # instead of recomputing.
            self._replay_journal()
            cached = self._memo.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1

        gpu = Gpu(config, technique, seed=self.seed)
        compiled = technique.prepare_kernel(kernel, config)
        occ = technique.occupancy(compiled, config)
        resident = max(1, occ.ctas_per_sm)
        waves = max(2, round(self.target_ctas_per_sm / resident))
        grid = resident * waves * config.num_sms

        result = gpu.launch(
            kernel,
            grid,
            scheduler_priority=scheduler_priority,
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=checkpoint_interval,
            resume_report=resume_report,
        )
        total = result.stats.total
        record = RunRecord(
            kernel_name=kernel.name,
            config_name=config.name,
            technique=technique.name,
            cycles=result.cycles,
            ctas_total=grid,
            ctas_per_sm_resident=resident,
            cycles_per_cta=result.cycles / (resident * waves),
            theoretical_occupancy=result.stats.theoretical_occupancy,
            acquire_attempts=total.acquire_attempts,
            acquire_successes=total.acquire_successes,
            release_count=total.release_count,
            instructions_issued=total.instructions_issued,
            stall_acquire=total.stall_acquire,
            stall_memory=total.stall_memory,
        )
        self._memo[key] = record
        self._dirty = True
        self._journal_append(key, record)
        return record
