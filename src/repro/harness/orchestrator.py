"""Experiment orchestration: dedup, parallel dispatch, cache merge.

The orchestrator sits between declarative :class:`ExperimentSpec`s and
the :class:`ExperimentRunner`:

1. **Deduplicate.**  The figure suite re-requests many jobs (every
   figure needs its apps' baselines); the union of all specs' jobs is
   collected once, in first-declared order.
2. **Dispatch.**  Jobs missing from the runner's cache are simulated —
   in-process when ``workers=1``, otherwise fanned out to a
   ``ProcessPoolExecutor``.  Each (kernel, config, technique) run is
   independent and CPU-bound, so the suite's wall clock scales with the
   worker count; results are bit-identical to serial execution because
   a worker rebuilds the exact same (kernel, technique, seed) triple
   and runs the same deterministic simulator.
3. **Merge.**  Worker records are installed into the runner's memo
   under the same content-hash keys ``runner.run`` would use, then the
   cache is persisted once (atomic write) for the whole session.

Per-job wall time, cache hits/misses, and worker utilization are
recorded in a :class:`SessionTelemetry` (``repro bench`` prints it).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Iterable, Sequence

from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.spec import (
    ExperimentSpec,
    JobFailure,
    JobResults,
    JobSpec,
    materialize_job,
)
from repro.harness.telemetry import (
    MODE_CACHED,
    MODE_INLINE,
    MODE_POOL,
    SessionTelemetry,
)


def _simulate(job: JobSpec, seed: int, target_ctas_per_sm: int):
    """Worker-process entry point: run one job from scratch.

    Builds a throwaway cache-less runner so the grid sizing, seeding,
    and record normalization are exactly the serial path's; returns
    ``(record | None, error | None, seconds)``.
    """
    start = time.perf_counter()
    runner = ExperimentRunner(
        target_ctas_per_sm=target_ctas_per_sm, seed=seed
    )
    kernel, technique, priority = materialize_job(job)
    try:
        record = runner.run(
            kernel, job.config, technique, scheduler_priority=priority
        )
        error = None
    except RuntimeError as exc:
        record, error = None, str(exc)
    return record, error, time.perf_counter() - start


class Orchestrator:
    """Executes experiment specs against one shared runner."""

    def __init__(
        self,
        runner: ExperimentRunner,
        workers: int = 1,
        telemetry: SessionTelemetry | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.runner = runner
        self.workers = workers
        self.telemetry = telemetry or SessionTelemetry(workers=workers)

    # -- public API -----------------------------------------------------------
    def run_specs(
        self, specs: Sequence[ExperimentSpec]
    ) -> dict[str, list]:
        """Run every spec's jobs (deduplicated) and build all rows."""
        outcomes = self.run_jobs(
            job for spec in specs for job in spec.jobs
        )
        return {
            spec.name: spec.build_rows(
                JobResults({job: outcomes[job] for job in spec.jobs})
            )
            for spec in specs
        }

    def run_jobs(self, jobs: Iterable[JobSpec]) -> dict[JobSpec, object]:
        """Execute a job set; returns JobSpec -> RunRecord | JobFailure."""
        ordered: dict[JobSpec, None] = {}
        for job in jobs:
            ordered.setdefault(job)

        self.telemetry.start()
        outcomes: dict[JobSpec, object] = {}
        pending: list[tuple[JobSpec, str]] = []
        for job in ordered:
            kernel, technique, _ = materialize_job(job)
            key = self.runner.key_for(kernel, job.config, technique)
            record = self.runner.cached(key)
            if record is not None:
                self.runner.cache_hits += 1
                outcomes[job] = record
                self.telemetry.record(job.label, 0.0, MODE_CACHED)
            else:
                self.runner.cache_misses += 1
                pending.append((job, key))

        if self.workers == 1 or len(pending) <= 1:
            self._run_inline(pending, outcomes)
        else:
            self._run_pool(pending, outcomes)

        self.runner.flush()
        self.telemetry.finish()
        return outcomes

    # -- execution backends ---------------------------------------------------
    def _run_inline(
        self,
        pending: Sequence[tuple[JobSpec, str]],
        outcomes: dict[JobSpec, object],
    ) -> None:
        for job, key in pending:
            record, error, seconds = _simulate(
                job, self.runner.seed, self.runner.target_ctas_per_sm
            )
            self._finish_job(job, key, record, error, seconds, MODE_INLINE,
                             outcomes)

    def _run_pool(
        self,
        pending: Sequence[tuple[JobSpec, str]],
        outcomes: dict[JobSpec, object],
    ) -> None:
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    _simulate, job, self.runner.seed,
                    self.runner.target_ctas_per_sm,
                ): (job, key)
                for job, key in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    job, key = futures[future]
                    record, error, seconds = future.result()
                    self._finish_job(job, key, record, error, seconds,
                                     MODE_POOL, outcomes)

    def _finish_job(
        self,
        job: JobSpec,
        key: str,
        record: RunRecord | None,
        error: str | None,
        seconds: float,
        mode: str,
        outcomes: dict[JobSpec, object],
    ) -> None:
        if error is not None:
            outcomes[job] = JobFailure(error)
        else:
            self.runner.install(key, record)
            outcomes[job] = record
        self.telemetry.record(job.label, seconds, mode, failed=error is not None)
