"""Experiment orchestration: dedup, parallel dispatch, cache merge.

The orchestrator sits between declarative :class:`ExperimentSpec`s and
the :class:`ExperimentRunner`:

1. **Deduplicate.**  The figure suite re-requests many jobs (every
   figure needs its apps' baselines); the union of all specs' jobs is
   collected once, in first-declared order.
2. **Dispatch.**  Jobs missing from the runner's cache are simulated —
   in-process when ``workers=1``, otherwise fanned out to a
   ``ProcessPoolExecutor``.  Each (kernel, config, technique) run is
   independent and CPU-bound, so the suite's wall clock scales with the
   worker count; results are bit-identical to serial execution because
   a worker rebuilds the exact same (kernel, technique, seed) triple
   and runs the same deterministic simulator.
3. **Merge.**  Worker records are installed into the runner's memo
   under the same content-hash keys ``runner.run`` would use, then the
   cache is persisted once (atomic write) for the whole session.

Failure handling distinguishes three regimes:

* **Deterministic simulator errors** (deadlock, cycle limit, invariant
  violation, placement — any :class:`SimulationError`): re-running the
  same deterministic job reproduces them bit-for-bit, so they are
  *never* retried.  They surface as a typed :class:`JobFailure` whose
  ``kind`` comes from the exception taxonomy.
* **Worker crashes** (a pool process dies — OOM kill, preemption,
  hard fault): transient and environmental.  The broken pool poisons
  every unfinished future without attributing the crash, so all
  unfinished jobs are resubmitted to a fresh pool, with exponential
  backoff, up to ``max_retries`` extra attempts each.  With
  checkpointing on (``checkpoint_interval > 0``), a resubmitted job
  *resumes* from whatever checkpoints the dead worker flushed rather
  than restarting at cycle 0 — bit-identical either way, so retries
  and cold runs share one cache key.
* **Operator interrupts** (SIGINT / Ctrl-C): in-flight futures are
  cancelled, workers terminated, everything already computed is
  flushed to the cache along with partial telemetry, and a typed
  :class:`repro.errors.InterruptedRun` carrying the completed/total
  counts replaces the raw traceback.
* **Timeouts**: each job carries its own wall-clock deadline — a
  per-job override (``run_jobs(..., timeouts=...)``, the path a service
  client's per-submit timeout rides) or the session ``job_timeout``
  default.  An overdue job fails with kind ``timeout`` while on-time
  siblings keep running; if its worker is still wedged when everything
  else finishes, the pool is abandoned (not joined — a hung worker
  would block shutdown forever).  Not retried: a hang long enough to
  trip the watchdog would cost another full timeout to re-confirm.

Per-job wall time, attempts, cache hits/misses, failure kinds, and
worker utilization are recorded in a :class:`SessionTelemetry`
(``repro bench`` prints it).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from typing import Iterable, Mapping, Sequence

from repro.errors import (
    FAILURE_RUNTIME,
    FAILURE_TIMEOUT,
    FAILURE_WORKER_CRASH,
    InterruptedRun,
    SimulationError,
)
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.spec import (
    ExperimentSpec,
    JobFailure,
    JobResults,
    JobSpec,
    materialize_job,
)
from repro.harness.telemetry import (
    MODE_CACHED,
    MODE_INLINE,
    MODE_POOL,
    SessionTelemetry,
)


def ordered_unique_jobs(jobs: Iterable[JobSpec]) -> tuple[JobSpec, ...]:
    """Deduplicate a job stream, keeping first-declared order.

    The batch-level dedup both the orchestrator and the service daemon
    apply before touching the run store: a figure suite (or a client
    submission spanning several figures) re-requests many jobs, and the
    union is computed once, in the order jobs first appeared.
    """
    seen: dict[JobSpec, None] = {}
    for job in jobs:
        seen.setdefault(job)
    return tuple(seen)


def _simulate(
    job: JobSpec,
    seed: int,
    target_ctas_per_sm: int,
    checkpoint_dir: str | None = None,
    checkpoint_interval: int = 0,
):
    """Worker-process entry point: run one job from scratch or resume it.

    Builds a throwaway cache-less runner so the grid sizing, seeding,
    and record normalization are exactly the serial path's; returns
    ``(record | None, (kind, message) | None, seconds, resumed_cycle)``.
    Failures are returned (not raised) so the parent can distinguish a
    deterministic simulation error from the worker process itself dying.

    With ``checkpoint_dir`` set, the simulation writes periodic
    checkpoints there and — after a crashed or timed-out predecessor —
    resumes from any surviving ones; ``resumed_cycle`` reports the
    deepest such resume point (None for a cold start).  Resume is
    bit-identical to recomputation, so the record is cache-equivalent
    either way.
    """
    start = time.perf_counter()
    runner = ExperimentRunner(
        target_ctas_per_sm=target_ctas_per_sm, seed=seed
    )
    kernel, technique, priority = materialize_job(job)
    resume_report: dict = {}
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
    try:
        record = runner.run(
            kernel, job.config, technique, scheduler_priority=priority,
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=checkpoint_interval,
            resume_report=resume_report,
        )
        failure = None
    except SimulationError as exc:
        record, failure = None, (exc.kind, str(exc))
    except RuntimeError as exc:
        record, failure = None, (FAILURE_RUNTIME, str(exc))
    resumed = max(resume_report.get("resumed", {}).values(), default=None)
    return record, failure, time.perf_counter() - start, resumed


class Orchestrator:
    """Executes experiment specs against one shared runner."""

    def __init__(
        self,
        runner: ExperimentRunner,
        workers: int = 1,
        telemetry: SessionTelemetry | None = None,
        job_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        checkpoint_dir: str | None = None,
        checkpoint_interval: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        self.runner = runner
        self.workers = workers
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        # Checkpointing turns the retry path into a *resume* path: a job
        # re-dispatched after a worker crash or timeout reloads whatever
        # checkpoints its predecessor flushed instead of restarting at
        # cycle 0.  An explicit dir also survives across sessions (kill
        # the whole process, rerun, resume); the auto-created tempdir
        # only covers within-session retries and is removed at the end.
        self.checkpoint_interval = checkpoint_interval
        self._owns_checkpoint_dir = False
        if checkpoint_dir is None and checkpoint_interval > 0:
            checkpoint_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
            self._owns_checkpoint_dir = True
        self.checkpoint_dir = checkpoint_dir
        self.telemetry = telemetry or SessionTelemetry(workers=workers)

    def _job_checkpoint_dir(self, key: str) -> str | None:
        """Per-job checkpoint subdirectory (keyed like the run cache)."""
        if self.checkpoint_dir is None or self.checkpoint_interval <= 0:
            return None
        return os.path.join(self.checkpoint_dir, key[:16])

    # -- public API -----------------------------------------------------------
    def run_specs(
        self, specs: Sequence[ExperimentSpec]
    ) -> dict[str, list]:
        """Run every spec's jobs (deduplicated) and build all rows."""
        outcomes = self.run_jobs(
            job for spec in specs for job in spec.jobs
        )
        return {
            spec.name: spec.build_rows(
                JobResults({job: outcomes[job] for job in spec.jobs})
            )
            for spec in specs
        }

    def run_jobs(
        self,
        jobs: Iterable[JobSpec],
        timeouts: Mapping[JobSpec, float] | None = None,
    ) -> dict[JobSpec, object]:
        """Execute a job set; returns JobSpec -> RunRecord | JobFailure.

        ``timeouts`` maps individual jobs to a wall-clock budget that
        *overrides* the session-wide ``job_timeout`` for that job only —
        the end-to-end propagation path a service client's per-submit
        timeout rides (spec → daemon → worker).  Timeouts apply to
        pool dispatch (``workers > 1``); the inline path cannot preempt
        a simulation it is itself running.
        """
        ordered = ordered_unique_jobs(jobs)

        self.telemetry.start()
        outcomes: dict[JobSpec, object] = {}
        pending: list[tuple[JobSpec, str]] = []
        for job in ordered:
            kernel, technique, _ = materialize_job(job)
            key = self.runner.key_for(kernel, job.config, technique)
            record = self.runner.cached(key)
            if record is not None:
                self.runner.cache_hits += 1
                outcomes[job] = record
                self.telemetry.record(job.label, 0.0, MODE_CACHED,
                                      cycles=record.cycles)
            else:
                self.runner.cache_misses += 1
                pending.append((job, key))

        # workers > 1 always uses the pool, even for one job: process
        # isolation is what contains a crashing or hanging worker.
        try:
            if self.workers == 1 or not pending:
                self._run_inline(pending, outcomes)
            else:
                self._run_pool(pending, outcomes, timeouts or {})
        except KeyboardInterrupt as exc:
            # Ctrl-C mid-batch: keep everything already computed.  The
            # journaled runner has each finished record on disk already;
            # the flush folds them into the main cache file, and the
            # telemetry covers the partial session.  Surviving worker
            # checkpoints stay in an operator-provided checkpoint_dir,
            # so rerunning the same batch resumes rather than restarts.
            self.runner.flush()
            self.telemetry.finish()
            raise InterruptedRun(
                f"interrupted after {len(outcomes)} of {len(ordered)} jobs",
                completed=len(outcomes),
                total=len(ordered),
                flushed=True,
            ) from exc

        self.runner.flush()
        self.telemetry.finish()
        if self._owns_checkpoint_dir and self.checkpoint_dir is not None:
            shutil.rmtree(self.checkpoint_dir, ignore_errors=True)
        return outcomes

    # -- execution backends ---------------------------------------------------
    def _run_inline(
        self,
        pending: Sequence[tuple[JobSpec, str]],
        outcomes: dict[JobSpec, object],
    ) -> None:
        for job, key in pending:
            record, failure, seconds, resumed = _simulate(
                job, self.runner.seed, self.runner.target_ctas_per_sm,
                self._job_checkpoint_dir(key), self.checkpoint_interval,
            )
            self._finish_job(job, key, record, failure, seconds, MODE_INLINE,
                             outcomes, resumed_from_cycle=resumed)

    def _run_pool(
        self,
        pending: Sequence[tuple[JobSpec, str]],
        outcomes: dict[JobSpec, object],
        timeouts: Mapping[JobSpec, float],
    ) -> None:
        queue = [(job, key, 1) for job, key in pending]
        round_no = 0
        while queue:
            if round_no > 0:
                # Exponential backoff before re-dispatching crashed work.
                time.sleep(self.retry_backoff * (2 ** (round_no - 1)))
            queue = self._run_pool_round(queue, outcomes, timeouts)
            round_no += 1

    def _effective_timeout(
        self, job: JobSpec, timeouts: Mapping[JobSpec, float]
    ) -> float | None:
        """Per-job override first, session default second, else none."""
        timeout = timeouts.get(job, self.job_timeout)
        if timeout is not None and timeout <= 0:
            raise ValueError(f"per-job timeout must be positive: {job.label}")
        return timeout

    def _run_pool_round(
        self,
        batch: Sequence[tuple[JobSpec, str, int]],
        outcomes: dict[JobSpec, object],
        timeouts: Mapping[JobSpec, float],
    ) -> list[tuple[JobSpec, str, int]]:
        """One dispatch round on a fresh pool; returns jobs to retry.

        A fresh pool per round is mandatory, not a convenience: a crash
        breaks the executor permanently (every later submit raises),
        and a timed-out round leaves workers possibly wedged — the old
        pool is abandoned with ``shutdown(wait=False)`` rather than
        joined.

        Each job carries its *own* deadline (dispatch time + its
        effective timeout); an overdue job fails with kind ``timeout``
        while on-time siblings keep running.  The pool is only
        abandoned (workers terminated) when an expired job's worker is
        still wedged after everything else finished — an expired job's
        late result is discarded either way.
        """
        pool = ProcessPoolExecutor(max_workers=min(self.workers, len(batch)))
        start = time.monotonic()
        futures = {}
        deadlines: dict[object, float] = {}
        for job, key, attempt in batch:
            future = pool.submit(
                _simulate, job, self.runner.seed,
                self.runner.target_ctas_per_sm,
                self._job_checkpoint_dir(key), self.checkpoint_interval,
            )
            futures[future] = (job, key, attempt)
            timeout = self._effective_timeout(job, timeouts)
            if timeout is not None:
                deadlines[future] = start + timeout
        remaining = set(futures)
        expired: set = set()
        retry: list[tuple[JobSpec, str, int]] = []
        abandoned = False
        try:
            while remaining:
                next_deadline = min(
                    (deadlines[f] for f in remaining if f in deadlines),
                    default=None,
                )
                timeout = (
                    None if next_deadline is None
                    else max(0.0, next_deadline - time.monotonic())
                )
                done, remaining = wait(
                    remaining, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    # A deadline elapsed with its job still in flight:
                    # declare exactly the overdue jobs timed out; their
                    # siblings keep their own clocks.
                    now = time.monotonic()
                    overdue = {
                        f for f in remaining
                        if f in deadlines and deadlines[f] <= now
                    }
                    for future in overdue:
                        job, key, attempt = futures[future]
                        budget = deadlines[future] - start
                        self._finish_job(
                            job, key, None,
                            (FAILURE_TIMEOUT,
                             f"job still running after {budget:.1f}s "
                             "timeout; worker abandoned"),
                            budget, MODE_POOL, outcomes,
                            attempts=attempt,
                        )
                    remaining -= overdue
                    expired |= overdue
                    continue
                for future in done:
                    job, key, attempt = futures[future]
                    try:
                        record, failure, seconds, resumed = future.result()
                    except BrokenExecutor as exc:
                        # The worker process died.  The pool cannot say
                        # *which* job killed it — every unfinished
                        # future is poisoned — so each poisoned job is
                        # retried as potentially innocent.
                        if attempt <= self.max_retries:
                            retry.append((job, key, attempt + 1))
                        else:
                            self._finish_job(
                                job, key, None,
                                (FAILURE_WORKER_CRASH,
                                 f"worker process died ({exc}); "
                                 f"gave up after {attempt} attempts"),
                                0.0, MODE_POOL, outcomes, attempts=attempt,
                            )
                        continue
                    self._finish_job(job, key, record, failure, seconds,
                                     MODE_POOL, outcomes, attempts=attempt,
                                     resumed_from_cycle=resumed)
            if any(not f.done() for f in expired):
                # An expired job's worker is still wedged after all
                # on-time work finished — abandon the pool rather than
                # join it (a hung worker would block shutdown forever).
                abandoned = True
        except KeyboardInterrupt:
            # Operator interrupt: cancel what never started, kill the
            # workers (their checkpoints, if any, survive on disk), and
            # let run_jobs() flush and summarize the partial session.
            for future in remaining:
                future.cancel()
            for proc in getattr(pool, "_processes", {}).values():
                proc.terminate()
            abandoned = True
            raise
        finally:
            if abandoned:
                # Every abandoned job was already declared timed out
                # (or interrupted), so the workers have no results
                # anyone will read — kill them.  Without this, the
                # executor's atexit hook would join the hung processes
                # and block interpreter shutdown as long as they stay
                # wedged.
                for proc in getattr(pool, "_processes", {}).values():
                    proc.terminate()
            pool.shutdown(wait=not abandoned, cancel_futures=True)
        return retry

    def _finish_job(
        self,
        job: JobSpec,
        key: str,
        record: RunRecord | None,
        failure: tuple[str, str] | None,
        seconds: float,
        mode: str,
        outcomes: dict[JobSpec, object],
        attempts: int = 1,
        resumed_from_cycle: int | None = None,
    ) -> None:
        if failure is not None:
            kind, message = failure
            outcomes[job] = JobFailure(message, kind=kind, attempts=attempts)
        else:
            self.runner.install(key, record)
            outcomes[job] = record
        self.telemetry.record(
            job.label, seconds, mode,
            failed=failure is not None,
            failure_kind=failure[0] if failure else None,
            attempts=attempts,
            cycles=record.cycles if failure is None and record else None,
            resumed_from_cycle=resumed_from_cycle,
        )
