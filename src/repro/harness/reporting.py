"""ASCII rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width ASCII table."""
    materialized = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_percent_series(
    label: str, values: Sequence[float], width: int = 40
) -> str:
    """A one-line sparkline-style bar chart for a [0, 1] series."""
    if not values:
        return f"{label}: (empty)"
    blocks = " .:-=+*#%@"
    chars = []
    stride = max(1, len(values) // width)
    for v in values[::stride]:
        clamped = min(max(v, 0.0), 1.0)
        chars.append(blocks[min(int(clamped * (len(blocks) - 1)), len(blocks) - 1)])
    return f"{label:<16} |{''.join(chars)}| min={min(values):.2f} max={max(values):.2f}"


def percent(value: float) -> str:
    """Format a fraction as a signed percentage."""
    return f"{value * 100:+.1f}%"


def format_telemetry(telemetry, slowest: int = 10) -> str:
    """Render a :class:`~repro.harness.telemetry.SessionTelemetry` report.

    One summary table (job counts, cache hits/misses, wall vs simulated
    seconds, worker utilization) followed by the slowest simulated jobs.
    """
    summary = format_table(
        ["metric", "value"],
        [
            ["jobs", telemetry.jobs_total],
            ["cache hits", telemetry.cache_hits],
            ["cache misses", telemetry.cache_misses],
            ["failures", telemetry.failures],
            ["retries", telemetry.retries],
            ["workers", telemetry.workers],
            ["wall seconds", f"{telemetry.wall_seconds:.2f}"],
            ["simulated seconds", f"{telemetry.sim_seconds:.2f}"],
            ["computed cycles", f"{telemetry.computed_cycles:,}"],
            ["cached cycles", f"{telemetry.cached_cycles:,}"],
            ["worker utilization", f"{telemetry.utilization():.0%}"],
        ],
        title="orchestration telemetry",
    )
    by_kind = telemetry.failures_by_kind()
    if by_kind:
        summary += "\n\n" + format_table(
            ["failure kind", "count"],
            [[kind, count] for kind, count in by_kind.items()],
            title="failures by kind",
        )
    jobs = telemetry.slowest(slowest)
    if not jobs:
        return summary
    detail = format_table(
        ["job", "seconds", "mode"],
        [[t.label, f"{t.seconds:.2f}", t.mode] for t in jobs],
        title=f"slowest {len(jobs)} jobs",
    )
    return summary + "\n\n" + detail
