"""Experiment harness: one driver per paper table/figure.

:mod:`repro.harness.runner` provides cached, tail-free kernel runs;
:mod:`repro.harness.experiments` implements every experiment of §IV;
:mod:`repro.harness.reporting` renders the same rows/series the paper
plots as ASCII tables.
"""

from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.experiments import (
    fig1_liveness_traces,
    table1_workloads,
    fig7_occupancy_boost,
    fig8_half_register_file,
    fig9a_comparison_baseline,
    fig9b_comparison_half_rf,
    fig10_es_sensitivity,
    fig11_occupancy_and_acquires,
    fig12_paired_warps,
    fig13_acquire_success,
    storage_overhead_comparison,
)
from repro.harness.reporting import format_table, format_percent_series
from repro.harness.export import rows_to_csv, read_csv_rows

__all__ = [
    "ExperimentRunner",
    "RunRecord",
    "fig1_liveness_traces",
    "table1_workloads",
    "fig7_occupancy_boost",
    "fig8_half_register_file",
    "fig9a_comparison_baseline",
    "fig9b_comparison_half_rf",
    "fig10_es_sensitivity",
    "fig11_occupancy_and_acquires",
    "fig12_paired_warps",
    "fig13_acquire_success",
    "storage_overhead_comparison",
    "format_table",
    "format_percent_series",
    "rows_to_csv",
    "read_csv_rows",
]
