"""Experiment harness: declarative specs, orchestration, telemetry.

:mod:`repro.harness.runner` provides cached, tail-free kernel runs;
:mod:`repro.harness.spec` declares experiments as (app, config,
technique) job sets plus row builders; :mod:`repro.harness.experiments`
declares every experiment of §IV that way;
:mod:`repro.harness.orchestrator` deduplicates jobs across experiments
and dispatches them to a process pool;
:mod:`repro.harness.telemetry` records per-job wall time, cache
hit/miss counts, and worker utilization;
:mod:`repro.harness.reporting` renders the same rows/series the paper
plots as ASCII tables.
"""

from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.spec import (
    ExperimentSpec,
    JobFailure,
    JobResults,
    JobSpec,
    TechniqueSpec,
    run_experiment,
)
from repro.harness.orchestrator import Orchestrator
from repro.harness.telemetry import JobTiming, SessionTelemetry
from repro.harness.experiments import (
    FIGURE_SPECS,
    fig1_liveness_traces,
    table1_workloads,
    fig7_occupancy_boost,
    fig8_half_register_file,
    fig9a_comparison_baseline,
    fig9b_comparison_half_rf,
    fig10_es_sensitivity,
    fig11_occupancy_and_acquires,
    fig12_paired_warps,
    fig13_acquire_success,
    storage_overhead_comparison,
)
from repro.harness.reporting import (
    format_table,
    format_percent_series,
    format_telemetry,
)
from repro.harness.export import rows_to_csv, read_csv_rows

__all__ = [
    "ExperimentRunner",
    "RunRecord",
    "ExperimentSpec",
    "JobSpec",
    "JobResults",
    "JobFailure",
    "TechniqueSpec",
    "run_experiment",
    "Orchestrator",
    "JobTiming",
    "SessionTelemetry",
    "FIGURE_SPECS",
    "fig1_liveness_traces",
    "table1_workloads",
    "fig7_occupancy_boost",
    "fig8_half_register_file",
    "fig9a_comparison_baseline",
    "fig9b_comparison_half_rf",
    "fig10_es_sensitivity",
    "fig11_occupancy_and_acquires",
    "fig12_paired_warps",
    "fig13_acquire_success",
    "storage_overhead_comparison",
    "format_table",
    "format_percent_series",
    "format_telemetry",
    "rows_to_csv",
    "read_csv_rows",
]
