"""Declarative experiment specs.

An experiment used to be an imperative driver: a function that called
:meth:`ExperimentRunner.run` in a loop and assembled rows.  That shape
hides the experiment's *job set* — which (app, config, technique)
combinations it needs — so nothing above it can deduplicate work across
experiments or run independent jobs in parallel.

This module makes the job set first-class:

* :class:`TechniqueSpec` — a picklable, hashable description of a
  sharing technique (registry kind + constructor parameters), so a job
  can cross a process boundary without shipping live objects.
* :class:`JobSpec` — one (app, config, technique) simulation, the unit
  of deduplication, caching, and parallel dispatch.
* :class:`ExperimentSpec` — an ordered tuple of jobs plus a row builder
  that turns the finished :class:`JobResults` into the figure's rows.

:func:`run_experiment` executes a spec serially through a runner (the
memoized one-process path every driver wrapper uses);
:class:`repro.harness.orchestrator.Orchestrator` executes many specs at
once, deduplicating jobs across them and fanning out to worker
processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.arch.config import GpuConfig
from repro.baselines.owf import OwfTechnique, owf_priority
from repro.baselines.rfv import RfvTechnique
from repro.errors import FAILURE_RUNTIME, SimulationError
from repro.faults.injector import FaultyWorkerTechnique, KillMidRunTechnique
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.regmutex.paired import PairedWarpsTechnique
from repro.sim.technique import BaselineTechnique, SharingTechnique
from repro.workloads.suite import build_app_kernel, get_app

# kind -> (factory, scheduler priority hook). The factory is called with
# the spec's params; the priority hook is what the driver used to thread
# through ``runner.run(..., scheduler_priority=...)``.
# "faulty-worker" is baseline behaviour plus an injected harness fault
# (crash / deterministic error / hang) — the fault campaign's probe for
# the orchestrator's retry, attribution, and timeout machinery.
# "kill-mid-run" is baseline behaviour until a deterministic cycle,
# then SIGKILLs its worker — the checkpoint/resume campaign's probe.
_TECHNIQUES: dict[str, tuple[type, object]] = {
    "baseline": (BaselineTechnique, None),
    "regmutex": (RegMutexTechnique, None),
    "regmutex-paired": (PairedWarpsTechnique, None),
    "owf": (OwfTechnique, owf_priority),
    "rfv": (RfvTechnique, None),
    "faulty-worker": (FaultyWorkerTechnique, None),
    "kill-mid-run": (KillMidRunTechnique, None),
}


@dataclass(frozen=True)
class TechniqueSpec:
    """Declarative technique: registry kind + sorted constructor params."""

    kind: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _TECHNIQUES:
            known = ", ".join(sorted(_TECHNIQUES))
            raise KeyError(f"unknown technique {self.kind!r} (known: {known})")

    @staticmethod
    def of(kind: str, **params: object) -> "TechniqueSpec":
        return TechniqueSpec(kind, tuple(sorted(params.items())))

    def build(self) -> SharingTechnique:
        factory, _ = _TECHNIQUES[self.kind]
        return factory(**dict(self.params))

    def scheduler_priority(self):
        return _TECHNIQUES[self.kind][1]

    def __str__(self) -> str:
        if not self.params:
            return self.kind
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({inner})"


def technique_kinds() -> tuple[str, ...]:
    """Registered technique kinds (the CLI's choices)."""
    return tuple(sorted(_TECHNIQUES))


@dataclass(frozen=True)
class JobSpec:
    """One (app, config, technique) simulation.

    ``app`` names a workload from :mod:`repro.workloads.suite`; keeping
    it a name (rather than a built kernel) is what makes the job cheap
    to hash, compare, and pickle to a worker process.
    """

    app: str
    config: GpuConfig
    technique: TechniqueSpec

    @property
    def label(self) -> str:
        return f"{self.app}/{self.config.name}/{self.technique}"


@dataclass(frozen=True)
class JobFailure:
    """A job that raised instead of producing a record.

    ``kind`` classifies the failure (the :mod:`repro.errors` taxonomy:
    ``deadlock``, ``cycle-limit``, ``invariant-violation``,
    ``placement``, ``runtime-error``, ``worker-crash``, ``timeout``);
    ``attempts`` counts how many times the job was dispatched before
    the orchestrator gave up (>1 only for transient worker crashes).
    """

    message: str
    kind: str = "error"
    attempts: int = 1


def materialize_job(job: JobSpec):
    """Build the live (kernel, technique, scheduler_priority) triple."""
    kernel = build_app_kernel(get_app(job.app))
    technique = job.technique.build()
    return kernel, technique, job.technique.scheduler_priority()


def execute_job(job: JobSpec, runner) -> "RunRecord":
    """Run one job through a runner (memoized, in-process)."""
    kernel, technique, priority = materialize_job(job)
    return runner.run(kernel, job.config, technique,
                      scheduler_priority=priority)


class JobResults:
    """Finished outcomes, indexed by :class:`JobSpec`.

    Indexing a failed job re-raises its error as a ``RuntimeError`` so
    row builders that never expect failures keep the old driver
    semantics; failure-tolerant builders (the register-file sweep) check
    :meth:`failed` first.
    """

    def __init__(self, outcomes: Mapping[JobSpec, object]) -> None:
        self._outcomes = dict(outcomes)

    def __getitem__(self, job: JobSpec):
        outcome = self._outcomes[job]
        if isinstance(outcome, JobFailure):
            raise RuntimeError(outcome.message)
        return outcome

    def __len__(self) -> int:
        return len(self._outcomes)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self._outcomes)

    def __contains__(self, job: JobSpec) -> bool:
        return job in self._outcomes

    def failed(self, job: JobSpec) -> bool:
        return isinstance(self._outcomes[job], JobFailure)

    def error(self, job: JobSpec) -> str | None:
        outcome = self._outcomes[job]
        return outcome.message if isinstance(outcome, JobFailure) else None


@dataclass(frozen=True)
class ExperimentSpec:
    """A named experiment: ordered jobs + a row builder."""

    name: str
    jobs: tuple[JobSpec, ...]
    build_rows: Callable[[JobResults], list] = field(compare=False)

    def unique_jobs(self) -> tuple[JobSpec, ...]:
        seen: dict[JobSpec, None] = {}
        for job in self.jobs:
            seen.setdefault(job)
        return tuple(seen)


def run_experiment(spec: ExperimentSpec, runner) -> list:
    """Execute a spec serially (declared job order) and build its rows.

    Jobs run through ``runner.run`` so the runner's memo/disk cache is
    shared with every other execution path; failures are captured per
    job and surface when (and only when) the row builder touches them.
    """
    outcomes: dict[JobSpec, object] = {}
    for job in spec.jobs:
        if job in outcomes:
            continue
        try:
            outcomes[job] = execute_job(job, runner)
        except SimulationError as exc:
            outcomes[job] = JobFailure(str(exc), kind=exc.kind)
        except RuntimeError as exc:
            outcomes[job] = JobFailure(str(exc), kind=FAILURE_RUNTIME)
    return spec.build_rows(JobResults(outcomes))
