"""CSV export of experiment rows.

Every experiment driver returns a list of flat dataclass rows;
:func:`rows_to_csv` serializes any of them to a CSV file so the figures
can be re-plotted outside Python (gnuplot, spreadsheets, the paper's own
plotting scripts).  The CLI exposes this via ``--csv``.
"""

from __future__ import annotations

import csv
import dataclasses
from typing import Iterable, Sequence


def _flatten(value: object) -> object:
    """Make a dataclass field CSV-friendly."""
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (list, tuple)):
        return ";".join(str(_flatten(v)) for v in value)
    return value


def rows_to_csv(rows: Sequence[object], path: str) -> list[str]:
    """Write experiment rows to ``path``; returns the header columns.

    Rows must be dataclass instances of one type.  Tuple-valued fields
    (e.g. Figure 1's utilization series) are semicolon-joined.
    """
    if not rows:
        raise ValueError("no rows to export")
    first = rows[0]
    if not dataclasses.is_dataclass(first):
        raise TypeError(f"rows must be dataclasses, got {type(first).__name__}")
    fields = [f.name for f in dataclasses.fields(first)]
    for row in rows:
        if type(row) is not type(first):
            raise TypeError(
                f"mixed row types: {type(first).__name__} and "
                f"{type(row).__name__}"
            )
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(fields)
        for row in rows:
            writer.writerow(
                [_flatten(getattr(row, name)) for name in fields]
            )
    return fields


def read_csv_rows(path: str) -> list[dict[str, str]]:
    """Read an exported CSV back as dictionaries (round-trip checks)."""
    with open(path, newline="") as fh:
        return list(csv.DictReader(fh))
