"""One driver per paper experiment (§IV and motivation §II).

Every function takes an :class:`~repro.harness.runner.ExperimentRunner`
(sharing its cache across experiments) and returns plain row dataclasses
that the reporting module renders and the benchmark suite asserts on.

RegMutex runs force Table I's |Bs|/|Es| split (``spec.expected_es``) so
every figure uses exactly the paper's configuration; Figure 10/11 sweep
|Es| explicitly and mark the heuristic's own pick.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import GTX480, GpuConfig
from repro.baselines.owf import OwfTechnique, owf_priority
from repro.baselines.rfv import RfvTechnique
from repro.compiler.es_selection import select_extended_set_size
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.liveness.pressure import dynamic_pressure_trace
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.regmutex.paired import PairedWarpsTechnique
from repro.regmutex.storage import (
    StorageBudget,
    owf_storage_bits,
    paired_storage_bits,
    regmutex_storage_bits,
    rfv_storage_bits,
)
from repro.sim.technique import BaselineTechnique
from repro.workloads.suite import (
    APPLICATIONS,
    FIGURE1_APPS,
    OCCUPANCY_LIMITED_APPS,
    REGISTER_RELAXED_APPS,
    build_app_kernel,
    get_app,
)

ES_SWEEP = (2, 4, 6, 8, 10, 12)


def _half(config: GpuConfig) -> GpuConfig:
    return config.with_half_register_file()


# ---------------------------------------------------------------------------
# Figure 1 — register liveness utilization traces
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig1Row:
    """One application's single-thread utilization trace (Figure 1)."""

    app: str
    instructions_executed: int
    mean_utilization: float
    min_utilization: float
    max_utilization: float
    fraction_at_peak: float
    utilization_series: tuple[float, ...]


def fig1_liveness_traces(
    apps: tuple[str, ...] = FIGURE1_APPS, series_points: int = 64
) -> list[Fig1Row]:
    """Single-thread dynamic liveness traces (paper Figure 1)."""
    rows = []
    for name in apps:
        trace = dynamic_pressure_trace(build_app_kernel(get_app(name)))
        util = trace.utilization
        stride = max(1, len(util) // series_points)
        rows.append(
            Fig1Row(
                app=name,
                instructions_executed=trace.instructions_executed,
                mean_utilization=trace.mean_utilization(),
                min_utilization=min(util),
                max_utilization=max(util),
                fraction_at_peak=trace.fraction_fully_utilized(),
                utilization_series=tuple(util[::stride]),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table I — workloads, register demand, |Bs|
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Row:
    """One application row of Table I, plus derived SRP geometry."""

    app: str
    suite: str
    regs: int
    regs_rounded: int
    bs: int
    es: int
    srp_sections: int
    heuristic_agrees: bool


def table1_workloads(config: GpuConfig = GTX480) -> list[Table1Row]:
    """Table I plus the SRP section count our occupancy math implies."""
    rows = []
    for spec in APPLICATIONS.values():
        kernel = build_app_kernel(spec)
        sel_config = config if spec.group == "occupancy-limited" else _half(config)
        selection = select_extended_set_size(kernel, sel_config)
        forced = select_extended_set_size(
            kernel, sel_config, forced_es=spec.expected_es
        )
        rows.append(
            Table1Row(
                app=spec.name,
                suite=spec.suite,
                regs=spec.regs,
                regs_rounded=spec.rounded_regs,
                bs=spec.expected_bs,
                es=spec.expected_es,
                srp_sections=forced.srp_sections,
                heuristic_agrees=(
                    selection.extended_set_size == spec.expected_es
                ),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 7 — occupancy boost on the baseline architecture
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig7Row:
    """Cycle reduction and occupancy for one app (Figure 7)."""

    app: str
    cycle_reduction: float
    occupancy_init: float
    occupancy_regmutex: float
    acquire_success_rate: float


def fig7_occupancy_boost(
    runner: ExperimentRunner,
    apps: tuple[str, ...] = OCCUPANCY_LIMITED_APPS,
    config: GpuConfig = GTX480,
) -> list[Fig7Row]:
    """Figure 7: RegMutex vs baseline on the full register file."""
    rows = []
    for name in apps:
        spec = get_app(name)
        kernel = build_app_kernel(spec)
        base = runner.run(kernel, config, BaselineTechnique())
        rm = runner.run(
            kernel, config, RegMutexTechnique(extended_set_size=spec.expected_es)
        )
        rows.append(
            Fig7Row(
                app=name,
                cycle_reduction=rm.reduction_vs(base),
                occupancy_init=base.theoretical_occupancy,
                occupancy_regmutex=rm.theoretical_occupancy,
                acquire_success_rate=rm.acquire_success_rate,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 8 — half register file resilience
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig8Row:
    """Half-register-file slowdowns for one app (Figure 8)."""

    app: str
    increase_no_technique: float
    increase_regmutex: float
    occupancy_half_no_technique: float
    occupancy_half_regmutex: float


def fig8_half_register_file(
    runner: ExperimentRunner,
    apps: tuple[str, ...] = REGISTER_RELAXED_APPS,
    config: GpuConfig = GTX480,
) -> list[Fig8Row]:
    """Figure 8: slowdown on a halved register file, with/without RegMutex."""
    half = _half(config)
    rows = []
    for name in apps:
        spec = get_app(name)
        kernel = build_app_kernel(spec)
        full = runner.run(kernel, config, BaselineTechnique())
        bare = runner.run(kernel, half, BaselineTechnique())
        rm = runner.run(
            kernel, half, RegMutexTechnique(extended_set_size=spec.expected_es)
        )
        rows.append(
            Fig8Row(
                app=name,
                increase_no_technique=bare.increase_vs(full),
                increase_regmutex=rm.increase_vs(full),
                occupancy_half_no_technique=bare.theoretical_occupancy,
                occupancy_half_regmutex=rm.theoretical_occupancy,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 9 — comparison with OWF and RFV
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig9aRow:
    """Per-technique reductions on the baseline arch (Figure 9a)."""

    app: str
    reduction_owf: float
    reduction_rfv: float
    reduction_regmutex: float


def fig9a_comparison_baseline(
    runner: ExperimentRunner,
    apps: tuple[str, ...] = OCCUPANCY_LIMITED_APPS,
    config: GpuConfig = GTX480,
) -> list[Fig9aRow]:
    """Figure 9a: OWF vs RFV vs RegMutex, baseline architecture."""
    rows = []
    for name in apps:
        spec = get_app(name)
        kernel = build_app_kernel(spec)
        base = runner.run(kernel, config, BaselineTechnique())
        owf = runner.run(
            kernel, config, OwfTechnique(), scheduler_priority=owf_priority
        )
        rfv = runner.run(kernel, config, RfvTechnique())
        rm = runner.run(
            kernel, config, RegMutexTechnique(extended_set_size=spec.expected_es)
        )
        rows.append(
            Fig9aRow(
                app=name,
                reduction_owf=owf.reduction_vs(base),
                reduction_rfv=rfv.reduction_vs(base),
                reduction_regmutex=rm.reduction_vs(base),
            )
        )
    return rows


@dataclass(frozen=True)
class Fig9bRow:
    """Per-technique increases on the half file (Figure 9b)."""

    app: str
    increase_none: float
    increase_owf: float
    increase_rfv: float
    increase_regmutex: float


def fig9b_comparison_half_rf(
    runner: ExperimentRunner,
    apps: tuple[str, ...] = REGISTER_RELAXED_APPS,
    config: GpuConfig = GTX480,
) -> list[Fig9bRow]:
    """Figure 9b: the same comparison on the halved register file."""
    half = _half(config)
    rows = []
    for name in apps:
        spec = get_app(name)
        kernel = build_app_kernel(spec)
        full = runner.run(kernel, config, BaselineTechnique())
        bare = runner.run(kernel, half, BaselineTechnique())
        owf = runner.run(
            kernel, half, OwfTechnique(), scheduler_priority=owf_priority
        )
        rfv = runner.run(kernel, half, RfvTechnique())
        rm = runner.run(
            kernel, half, RegMutexTechnique(extended_set_size=spec.expected_es)
        )
        rows.append(
            Fig9bRow(
                app=name,
                increase_none=bare.increase_vs(full),
                increase_owf=owf.increase_vs(full),
                increase_rfv=rfv.increase_vs(full),
                increase_regmutex=rm.increase_vs(full),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 10 and 11 — |Es| sensitivity
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig10Row:
    """One (app, |Es|) point of the sensitivity sweep (Figure 10)."""

    app: str
    es: int
    cycle_reduction: float
    is_heuristic_pick: bool


def fig10_es_sensitivity(
    runner: ExperimentRunner,
    apps: tuple[str, ...] = OCCUPANCY_LIMITED_APPS,
    config: GpuConfig = GTX480,
    sweep: tuple[int, ...] = ES_SWEEP,
) -> list[Fig10Row]:
    """Figure 10: cycle-reduction sensitivity to the forced |Es|."""
    rows = []
    for name in apps:
        spec = get_app(name)
        kernel = build_app_kernel(spec)
        base = runner.run(kernel, config, BaselineTechnique())
        for es in sweep:
            rm = runner.run(
                kernel, config, RegMutexTechnique(extended_set_size=es)
            )
            rows.append(
                Fig10Row(
                    app=name,
                    es=es,
                    cycle_reduction=rm.reduction_vs(base),
                    is_heuristic_pick=(es == spec.expected_es),
                )
            )
    return rows


@dataclass(frozen=True)
class Fig11Row:
    app: str
    es: int
    theoretical_occupancy: float
    acquire_success_rate: float
    is_heuristic_pick: bool
    # False when the deadlock rules rejected this |Es| and the compiler
    # fell back to the uninstrumented kernel (no acquires executed).
    active: bool = True


def fig11_occupancy_and_acquires(
    runner: ExperimentRunner,
    apps: tuple[str, ...] = OCCUPANCY_LIMITED_APPS,
    config: GpuConfig = GTX480,
    sweep: tuple[int, ...] = ES_SWEEP,
) -> list[Fig11Row]:
    """Figure 11: occupancy and acquire success across the |Es| sweep."""
    rows = []
    for name in apps:
        spec = get_app(name)
        kernel = build_app_kernel(spec)
        for es in sweep:
            rm = runner.run(
                kernel, config, RegMutexTechnique(extended_set_size=es)
            )
            rows.append(
                Fig11Row(
                    app=name,
                    es=es,
                    theoretical_occupancy=rm.theoretical_occupancy,
                    acquire_success_rate=rm.acquire_success_rate,
                    is_heuristic_pick=(es == spec.expected_es),
                    active=rm.acquire_attempts > 0,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 12 — paired-warps specialization
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig12Row:
    app: str
    metric: float          # reduction (12a) or increase (12b)
    occupancy_paired: float
    metric_default: float  # same metric under default RegMutex


def fig12_paired_warps(
    runner: ExperimentRunner,
    config: GpuConfig = GTX480,
    half_rf: bool = False,
) -> list[Fig12Row]:
    """12(a) when ``half_rf`` is False (occupancy-limited apps, baseline
    arch, cycle *reduction*); 12(b) when True (register-relaxed apps,
    half RF, cycle *increase* vs the full-RF baseline)."""
    rows = []
    if not half_rf:
        for name in OCCUPANCY_LIMITED_APPS:
            spec = get_app(name)
            kernel = build_app_kernel(spec)
            base = runner.run(kernel, config, BaselineTechnique())
            paired = runner.run(
                kernel, config,
                PairedWarpsTechnique(extended_set_size=spec.expected_es),
            )
            default = runner.run(
                kernel, config,
                RegMutexTechnique(extended_set_size=spec.expected_es),
            )
            rows.append(
                Fig12Row(
                    app=name,
                    metric=paired.reduction_vs(base),
                    occupancy_paired=paired.theoretical_occupancy,
                    metric_default=default.reduction_vs(base),
                )
            )
        return rows
    half = _half(config)
    for name in REGISTER_RELAXED_APPS:
        spec = get_app(name)
        kernel = build_app_kernel(spec)
        full = runner.run(kernel, config, BaselineTechnique())
        paired = runner.run(
            kernel, half, PairedWarpsTechnique(extended_set_size=spec.expected_es)
        )
        default = runner.run(
            kernel, half, RegMutexTechnique(extended_set_size=spec.expected_es)
        )
        rows.append(
            Fig12Row(
                app=name,
                metric=paired.increase_vs(full),
                occupancy_paired=paired.theoretical_occupancy,
                metric_default=default.increase_vs(full),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 13 — acquire success, default vs paired
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig13Row:
    """Acquire success, default vs paired, for one app (Figure 13)."""

    app: str
    arch: str  # "baseline" | "half-rf"
    success_default: float
    success_paired: float


def fig13_acquire_success(
    runner: ExperimentRunner, config: GpuConfig = GTX480
) -> list[Fig13Row]:
    """Figure 13: acquire success rates, default vs paired, all 16 apps."""
    rows = []
    half = _half(config)
    for name in OCCUPANCY_LIMITED_APPS + REGISTER_RELAXED_APPS:
        spec = get_app(name)
        kernel = build_app_kernel(spec)
        arch = config if spec.group == "occupancy-limited" else half
        default = runner.run(
            kernel, arch, RegMutexTechnique(extended_set_size=spec.expected_es)
        )
        paired = runner.run(
            kernel, arch, PairedWarpsTechnique(extended_set_size=spec.expected_es)
        )
        rows.append(
            Fig13Row(
                app=name,
                arch="baseline" if spec.group == "occupancy-limited" else "half-rf",
                success_default=default.acquire_success_rate,
                success_paired=paired.acquire_success_rate,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# §III-B / §IV-C — hardware storage overhead
# ---------------------------------------------------------------------------

def storage_overhead_comparison(
    config: GpuConfig = GTX480,
) -> dict[str, StorageBudget]:
    """Per-SM added storage of every technique (§III-B1 / §IV-C)."""
    return {
        "regmutex": regmutex_storage_bits(config),
        "regmutex-paired": paired_storage_bits(config),
        "rfv": rfv_storage_bits(config),
        "owf": owf_storage_bits(config),
    }
