"""One declarative spec per paper experiment (§IV and motivation §II).

Every simulation-backed figure is declared as an
:class:`~repro.harness.spec.ExperimentSpec` — the cross-product of
(app, config, technique) jobs it needs plus a row builder — via a
``figN_spec()`` factory.  The ``figN_*()`` driver functions keep their
historical signatures as thin wrappers: they execute the spec serially
through a runner, or through an :class:`Orchestrator` when one is
passed (job dedup across figures, parallel dispatch, telemetry).

RegMutex runs force Table I's |Bs|/|Es| split (``spec.expected_es``) so
every figure uses exactly the paper's configuration; Figure 10/11 sweep
|Es| explicitly and mark the heuristic's own pick.

Figure 1, Table I, and the storage comparison are pure analyses (no
simulation) and stay plain functions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import GTX480, GpuConfig
from repro.compiler.es_selection import select_extended_set_size
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.spec import (
    ExperimentSpec,
    JobResults,
    JobSpec,
    TechniqueSpec,
    run_experiment,
)
from repro.liveness.pressure import dynamic_pressure_trace
from repro.regmutex.storage import (
    StorageBudget,
    owf_storage_bits,
    paired_storage_bits,
    regmutex_storage_bits,
    rfv_storage_bits,
)
from repro.workloads.suite import (
    APPLICATIONS,
    FIGURE1_APPS,
    OCCUPANCY_LIMITED_APPS,
    REGISTER_RELAXED_APPS,
    build_app_kernel,
    get_app,
)

ES_SWEEP = (2, 4, 6, 8, 10, 12)


def _half(config: GpuConfig) -> GpuConfig:
    return config.with_half_register_file()


def _job(app: str, config: GpuConfig, kind: str, **params) -> JobSpec:
    return JobSpec(app, config, TechniqueSpec.of(kind, **params))


def _rm(app: str, config: GpuConfig, es: int) -> JobSpec:
    return _job(app, config, "regmutex", extended_set_size=es)


def _run(spec: ExperimentSpec, runner, orchestrator) -> list:
    """Execute one spec: orchestrated if an orchestrator is given."""
    if orchestrator is not None:
        return orchestrator.run_specs([spec])[spec.name]
    return run_experiment(spec, runner)


# ---------------------------------------------------------------------------
# Figure 1 — register liveness utilization traces
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig1Row:
    """One application's single-thread utilization trace (Figure 1)."""

    app: str
    instructions_executed: int
    mean_utilization: float
    min_utilization: float
    max_utilization: float
    fraction_at_peak: float
    utilization_series: tuple[float, ...]


def fig1_liveness_traces(
    apps: tuple[str, ...] = FIGURE1_APPS, series_points: int = 64
) -> list[Fig1Row]:
    """Single-thread dynamic liveness traces (paper Figure 1)."""
    rows = []
    for name in apps:
        trace = dynamic_pressure_trace(build_app_kernel(get_app(name)))
        util = trace.utilization
        stride = max(1, len(util) // series_points)
        rows.append(
            Fig1Row(
                app=name,
                instructions_executed=trace.instructions_executed,
                mean_utilization=trace.mean_utilization(),
                min_utilization=min(util),
                max_utilization=max(util),
                fraction_at_peak=trace.fraction_fully_utilized(),
                utilization_series=tuple(util[::stride]),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table I — workloads, register demand, |Bs|
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Row:
    """One application row of Table I, plus derived SRP geometry."""

    app: str
    suite: str
    regs: int
    regs_rounded: int
    bs: int
    es: int
    srp_sections: int
    heuristic_agrees: bool


def table1_workloads(config: GpuConfig = GTX480) -> list[Table1Row]:
    """Table I plus the SRP section count our occupancy math implies."""
    rows = []
    for spec in APPLICATIONS.values():
        kernel = build_app_kernel(spec)
        sel_config = config if spec.group == "occupancy-limited" else _half(config)
        selection = select_extended_set_size(kernel, sel_config)
        forced = select_extended_set_size(
            kernel, sel_config, forced_es=spec.expected_es
        )
        rows.append(
            Table1Row(
                app=spec.name,
                suite=spec.suite,
                regs=spec.regs,
                regs_rounded=spec.rounded_regs,
                bs=spec.expected_bs,
                es=spec.expected_es,
                srp_sections=forced.srp_sections,
                heuristic_agrees=(
                    selection.extended_set_size == spec.expected_es
                ),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 7 — occupancy boost on the baseline architecture
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig7Row:
    """Cycle reduction and occupancy for one app (Figure 7)."""

    app: str
    cycle_reduction: float
    occupancy_init: float
    occupancy_regmutex: float
    acquire_success_rate: float


def fig7_spec(
    apps: tuple[str, ...] = OCCUPANCY_LIMITED_APPS,
    config: GpuConfig = GTX480,
) -> ExperimentSpec:
    """Figure 7: RegMutex vs baseline on the full register file."""
    plan = [
        (name, _job(name, config, "baseline"),
         _rm(name, config, get_app(name).expected_es))
        for name in apps
    ]

    def build(results: JobResults) -> list[Fig7Row]:
        rows = []
        for name, base_job, rm_job in plan:
            base, rm = results[base_job], results[rm_job]
            rows.append(
                Fig7Row(
                    app=name,
                    cycle_reduction=rm.reduction_vs(base),
                    occupancy_init=base.theoretical_occupancy,
                    occupancy_regmutex=rm.theoretical_occupancy,
                    acquire_success_rate=rm.acquire_success_rate,
                )
            )
        return rows

    jobs = tuple(j for _, base, rm in plan for j in (base, rm))
    return ExperimentSpec("fig7", jobs, build)


def fig7_occupancy_boost(
    runner: ExperimentRunner,
    apps: tuple[str, ...] = OCCUPANCY_LIMITED_APPS,
    config: GpuConfig = GTX480,
    orchestrator=None,
) -> list[Fig7Row]:
    return _run(fig7_spec(apps, config), runner, orchestrator)


# ---------------------------------------------------------------------------
# Figure 8 — half register file resilience
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig8Row:
    """Half-register-file slowdowns for one app (Figure 8)."""

    app: str
    increase_no_technique: float
    increase_regmutex: float
    occupancy_half_no_technique: float
    occupancy_half_regmutex: float


def fig8_spec(
    apps: tuple[str, ...] = REGISTER_RELAXED_APPS,
    config: GpuConfig = GTX480,
) -> ExperimentSpec:
    """Figure 8: slowdown on a halved register file, with/without RegMutex."""
    half = _half(config)
    plan = [
        (name,
         _job(name, config, "baseline"),
         _job(name, half, "baseline"),
         _rm(name, half, get_app(name).expected_es))
        for name in apps
    ]

    def build(results: JobResults) -> list[Fig8Row]:
        rows = []
        for name, full_job, bare_job, rm_job in plan:
            full, bare, rm = (
                results[full_job], results[bare_job], results[rm_job]
            )
            rows.append(
                Fig8Row(
                    app=name,
                    increase_no_technique=bare.increase_vs(full),
                    increase_regmutex=rm.increase_vs(full),
                    occupancy_half_no_technique=bare.theoretical_occupancy,
                    occupancy_half_regmutex=rm.theoretical_occupancy,
                )
            )
        return rows

    jobs = tuple(j for entry in plan for j in entry[1:])
    return ExperimentSpec("fig8", jobs, build)


def fig8_half_register_file(
    runner: ExperimentRunner,
    apps: tuple[str, ...] = REGISTER_RELAXED_APPS,
    config: GpuConfig = GTX480,
    orchestrator=None,
) -> list[Fig8Row]:
    return _run(fig8_spec(apps, config), runner, orchestrator)


# ---------------------------------------------------------------------------
# Figure 9 — comparison with OWF and RFV
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig9aRow:
    """Per-technique reductions on the baseline arch (Figure 9a)."""

    app: str
    reduction_owf: float
    reduction_rfv: float
    reduction_regmutex: float


def fig9a_spec(
    apps: tuple[str, ...] = OCCUPANCY_LIMITED_APPS,
    config: GpuConfig = GTX480,
) -> ExperimentSpec:
    """Figure 9a: OWF vs RFV vs RegMutex, baseline architecture."""
    plan = [
        (name,
         _job(name, config, "baseline"),
         _job(name, config, "owf"),
         _job(name, config, "rfv"),
         _rm(name, config, get_app(name).expected_es))
        for name in apps
    ]

    def build(results: JobResults) -> list[Fig9aRow]:
        rows = []
        for name, base_job, owf_job, rfv_job, rm_job in plan:
            base = results[base_job]
            rows.append(
                Fig9aRow(
                    app=name,
                    reduction_owf=results[owf_job].reduction_vs(base),
                    reduction_rfv=results[rfv_job].reduction_vs(base),
                    reduction_regmutex=results[rm_job].reduction_vs(base),
                )
            )
        return rows

    jobs = tuple(j for entry in plan for j in entry[1:])
    return ExperimentSpec("fig9a", jobs, build)


def fig9a_comparison_baseline(
    runner: ExperimentRunner,
    apps: tuple[str, ...] = OCCUPANCY_LIMITED_APPS,
    config: GpuConfig = GTX480,
    orchestrator=None,
) -> list[Fig9aRow]:
    return _run(fig9a_spec(apps, config), runner, orchestrator)


@dataclass(frozen=True)
class Fig9bRow:
    """Per-technique increases on the half file (Figure 9b)."""

    app: str
    increase_none: float
    increase_owf: float
    increase_rfv: float
    increase_regmutex: float


def fig9b_spec(
    apps: tuple[str, ...] = REGISTER_RELAXED_APPS,
    config: GpuConfig = GTX480,
) -> ExperimentSpec:
    """Figure 9b: the same comparison on the halved register file."""
    half = _half(config)
    plan = [
        (name,
         _job(name, config, "baseline"),
         _job(name, half, "baseline"),
         _job(name, half, "owf"),
         _job(name, half, "rfv"),
         _rm(name, half, get_app(name).expected_es))
        for name in apps
    ]

    def build(results: JobResults) -> list[Fig9bRow]:
        rows = []
        for name, full_job, bare_job, owf_job, rfv_job, rm_job in plan:
            full = results[full_job]
            rows.append(
                Fig9bRow(
                    app=name,
                    increase_none=results[bare_job].increase_vs(full),
                    increase_owf=results[owf_job].increase_vs(full),
                    increase_rfv=results[rfv_job].increase_vs(full),
                    increase_regmutex=results[rm_job].increase_vs(full),
                )
            )
        return rows

    jobs = tuple(j for entry in plan for j in entry[1:])
    return ExperimentSpec("fig9b", jobs, build)


def fig9b_comparison_half_rf(
    runner: ExperimentRunner,
    apps: tuple[str, ...] = REGISTER_RELAXED_APPS,
    config: GpuConfig = GTX480,
    orchestrator=None,
) -> list[Fig9bRow]:
    return _run(fig9b_spec(apps, config), runner, orchestrator)


# ---------------------------------------------------------------------------
# Figures 10 and 11 — |Es| sensitivity
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig10Row:
    """One (app, |Es|) point of the sensitivity sweep (Figure 10)."""

    app: str
    es: int
    cycle_reduction: float
    is_heuristic_pick: bool


def fig10_spec(
    apps: tuple[str, ...] = OCCUPANCY_LIMITED_APPS,
    config: GpuConfig = GTX480,
    sweep: tuple[int, ...] = ES_SWEEP,
) -> ExperimentSpec:
    """Figure 10: cycle-reduction sensitivity to the forced |Es|."""
    plan = [
        (name, get_app(name).expected_es,
         _job(name, config, "baseline"),
         tuple((es, _rm(name, config, es)) for es in sweep))
        for name in apps
    ]

    def build(results: JobResults) -> list[Fig10Row]:
        rows = []
        for name, expected_es, base_job, sweep_jobs in plan:
            base = results[base_job]
            for es, rm_job in sweep_jobs:
                rows.append(
                    Fig10Row(
                        app=name,
                        es=es,
                        cycle_reduction=results[rm_job].reduction_vs(base),
                        is_heuristic_pick=(es == expected_es),
                    )
                )
        return rows

    jobs = tuple(
        j
        for _, _, base, sweep_jobs in plan
        for j in (base, *(rm for _, rm in sweep_jobs))
    )
    return ExperimentSpec("fig10", jobs, build)


def fig10_es_sensitivity(
    runner: ExperimentRunner,
    apps: tuple[str, ...] = OCCUPANCY_LIMITED_APPS,
    config: GpuConfig = GTX480,
    sweep: tuple[int, ...] = ES_SWEEP,
    orchestrator=None,
) -> list[Fig10Row]:
    return _run(fig10_spec(apps, config, sweep), runner, orchestrator)


@dataclass(frozen=True)
class Fig11Row:
    app: str
    es: int
    theoretical_occupancy: float
    acquire_success_rate: float
    is_heuristic_pick: bool
    # False when the deadlock rules rejected this |Es| and the compiler
    # fell back to the uninstrumented kernel (no acquires executed).
    active: bool = True


def fig11_spec(
    apps: tuple[str, ...] = OCCUPANCY_LIMITED_APPS,
    config: GpuConfig = GTX480,
    sweep: tuple[int, ...] = ES_SWEEP,
) -> ExperimentSpec:
    """Figure 11: occupancy and acquire success across the |Es| sweep."""
    plan = [
        (name, get_app(name).expected_es,
         tuple((es, _rm(name, config, es)) for es in sweep))
        for name in apps
    ]

    def build(results: JobResults) -> list[Fig11Row]:
        rows = []
        for name, expected_es, sweep_jobs in plan:
            for es, rm_job in sweep_jobs:
                rm = results[rm_job]
                rows.append(
                    Fig11Row(
                        app=name,
                        es=es,
                        theoretical_occupancy=rm.theoretical_occupancy,
                        acquire_success_rate=rm.acquire_success_rate,
                        is_heuristic_pick=(es == expected_es),
                        active=rm.acquire_attempts > 0,
                    )
                )
        return rows

    jobs = tuple(
        rm for _, _, sweep_jobs in plan for _, rm in sweep_jobs
    )
    return ExperimentSpec("fig11", jobs, build)


def fig11_occupancy_and_acquires(
    runner: ExperimentRunner,
    apps: tuple[str, ...] = OCCUPANCY_LIMITED_APPS,
    config: GpuConfig = GTX480,
    sweep: tuple[int, ...] = ES_SWEEP,
    orchestrator=None,
) -> list[Fig11Row]:
    return _run(fig11_spec(apps, config, sweep), runner, orchestrator)


# ---------------------------------------------------------------------------
# Figure 12 — paired-warps specialization
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig12Row:
    app: str
    metric: float          # reduction (12a) or increase (12b)
    occupancy_paired: float
    metric_default: float  # same metric under default RegMutex


def fig12_spec(
    config: GpuConfig = GTX480, half_rf: bool = False
) -> ExperimentSpec:
    """12(a) when ``half_rf`` is False (occupancy-limited apps, baseline
    arch, cycle *reduction*); 12(b) when True (register-relaxed apps,
    half RF, cycle *increase* vs the full-RF baseline)."""
    arch = _half(config) if half_rf else config
    apps = REGISTER_RELAXED_APPS if half_rf else OCCUPANCY_LIMITED_APPS
    plan = []
    for name in apps:
        es = get_app(name).expected_es
        plan.append(
            (name,
             _job(name, config, "baseline"),
             _job(name, arch, "regmutex-paired", extended_set_size=es),
             _rm(name, arch, es))
        )

    def build(results: JobResults) -> list[Fig12Row]:
        rows = []
        for name, ref_job, paired_job, default_job in plan:
            ref = results[ref_job]
            paired, default = results[paired_job], results[default_job]
            metric = (
                paired.increase_vs(ref) if half_rf
                else paired.reduction_vs(ref)
            )
            metric_default = (
                default.increase_vs(ref) if half_rf
                else default.reduction_vs(ref)
            )
            rows.append(
                Fig12Row(
                    app=name,
                    metric=metric,
                    occupancy_paired=paired.theoretical_occupancy,
                    metric_default=metric_default,
                )
            )
        return rows

    jobs = tuple(j for entry in plan for j in entry[1:])
    return ExperimentSpec("fig12b" if half_rf else "fig12a", jobs, build)


def fig12_paired_warps(
    runner: ExperimentRunner,
    config: GpuConfig = GTX480,
    half_rf: bool = False,
    orchestrator=None,
) -> list[Fig12Row]:
    return _run(fig12_spec(config, half_rf), runner, orchestrator)


# ---------------------------------------------------------------------------
# Figure 13 — acquire success, default vs paired
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig13Row:
    """Acquire success, default vs paired, for one app (Figure 13)."""

    app: str
    arch: str  # "baseline" | "half-rf"
    success_default: float
    success_paired: float


def fig13_spec(config: GpuConfig = GTX480) -> ExperimentSpec:
    """Figure 13: acquire success rates, default vs paired, all 16 apps."""
    half = _half(config)
    plan = []
    for name in OCCUPANCY_LIMITED_APPS + REGISTER_RELAXED_APPS:
        spec = get_app(name)
        arch = config if spec.group == "occupancy-limited" else half
        plan.append(
            (name,
             "baseline" if spec.group == "occupancy-limited" else "half-rf",
             _rm(name, arch, spec.expected_es),
             _job(name, arch, "regmutex-paired",
                  extended_set_size=spec.expected_es))
        )

    def build(results: JobResults) -> list[Fig13Row]:
        rows = []
        for name, arch_label, default_job, paired_job in plan:
            rows.append(
                Fig13Row(
                    app=name,
                    arch=arch_label,
                    success_default=results[default_job].acquire_success_rate,
                    success_paired=results[paired_job].acquire_success_rate,
                )
            )
        return rows

    jobs = tuple(j for entry in plan for j in entry[2:])
    return ExperimentSpec("fig13", jobs, build)


def fig13_acquire_success(
    runner: ExperimentRunner,
    config: GpuConfig = GTX480,
    orchestrator=None,
) -> list[Fig13Row]:
    return _run(fig13_spec(config), runner, orchestrator)


# ---------------------------------------------------------------------------
# §III-B / §IV-C — hardware storage overhead
# ---------------------------------------------------------------------------

def storage_overhead_comparison(
    config: GpuConfig = GTX480,
) -> dict[str, StorageBudget]:
    """Per-SM added storage of every technique (§III-B1 / §IV-C)."""
    return {
        "regmutex": regmutex_storage_bits(config),
        "regmutex-paired": paired_storage_bits(config),
        "rfv": rfv_storage_bits(config),
        "owf": owf_storage_bits(config),
    }


# Zero-argument spec builders for every simulation-backed figure — the
# orchestrated entry points (`repro bench`, benchmark-session prewarm,
# EXPERIMENTS.md regeneration) iterate this to get the whole suite's job
# set in one deduplicated batch.
FIGURE_SPECS: dict[str, callable] = {
    "fig7": fig7_spec,
    "fig8": fig8_spec,
    "fig9a": fig9a_spec,
    "fig9b": fig9b_spec,
    "fig10": fig10_spec,
    "fig11": fig11_spec,
    "fig12a": lambda: fig12_spec(half_rf=False),
    "fig12b": lambda: fig12_spec(half_rf=True),
    "fig13": fig13_spec,
}


def figure_spec(
    name: str, apps: tuple[str, ...] | None = None
) -> ExperimentSpec:
    """Build one figure spec by name, forwarding ``apps`` where the
    factory takes it (fig12*/fig13 have fixed app sets).

    The one resolution path both the CLI (``repro bench``) and the
    service daemon (named-experiment submissions) use; raises
    ``KeyError`` listing the known names on a typo.
    """
    import inspect

    try:
        factory = FIGURE_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(FIGURE_SPECS))
        raise KeyError(f"unknown figure {name!r} (known: {known})") from None
    if apps and "apps" in inspect.signature(factory).parameters:
        return factory(apps=tuple(apps))
    return factory()
