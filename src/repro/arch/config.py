"""Device configurations.

The paper evaluates on GPGPU-Sim's GeForce GTX480 (Fermi) model: 15 SMs,
128 KB register file per SM (32K 32-bit registers), 2 warp schedulers,
greedy-then-oldest scheduling, up to 48 resident warps per SM.  The
"half register file" configuration of §IV-B halves per-SM registers to
64 KB (16K registers).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

#: Canonical registry of issue-engine names.  ``repro.sim.sm`` builds its
#: engine dispatch from this tuple and benchmark/CLI tooling discovers
#: engines here, so adding an engine means adding one entry (plus the
#: sm.py implementation) — not editing every script's hardcoded list.
#: "native" selects the optional C extension (``repro._native``) and
#: falls back to the pure-Python columnar stepper when it isn't built.
ISSUE_ENGINES = ("event", "scan", "columnar", "native")


def _default_issue_engine() -> str:
    """Default issue engine, overridable via ``REPRO_ISSUE_ENGINE``.

    The env hook exists so CI can run the whole tier-1 suite under an
    alternate engine (``REPRO_ISSUE_ENGINE=columnar python -m pytest``)
    without touching every test's config literal.  The knob is
    timing-neutral by contract (all engines are bit-identical) and is
    excluded from experiment cache keys either way.
    """
    return os.environ.get("REPRO_ISSUE_ENGINE", "event")


@dataclass(frozen=True)
class GpuConfig:
    """Static parameters of the simulated device."""

    name: str = "GTX480"
    num_sms: int = 15
    warp_size: int = 32
    max_warps_per_sm: int = 48
    max_ctas_per_sm: int = 8
    max_threads_per_sm: int = 1536
    registers_per_sm: int = 32 * 1024       # 32-bit registers
    shared_mem_per_sm: int = 48 * 1024      # bytes
    register_allocation_granularity: int = 4  # regs/thread rounding
    num_schedulers: int = 2
    scheduler_policy: str = "gto"           # "gto" | "lrr"
    # Memory model knobs (latency in cycles, patterned on Fermi GPGPU-Sim).
    dram_latency: int = 400
    l1_hit_latency: int = 28
    l1_hit_rate: float = 0.35
    max_in_flight_loads: int = 96  # MSHR-style cap on outstanding loads
    # Operand-collector / issue model.
    issue_width_per_scheduler: int = 1
    # Optional fidelity knob: charge operand-collector bank conflicts
    # explicitly (see repro.sim.banks).  Off by default — the paper's
    # simplified pipeline folds them into fixed latencies.
    model_bank_conflicts: bool = False
    register_file_banks: int = 16
    # Debug knob: assert, on every issued instruction, that extended-set
    # register accesses are covered by a held SRP section (the dynamic
    # twin of repro.compiler.verification's static proof).
    runtime_safety_checks: bool = False
    # Deadlock watchdog: raise SimulationDeadlockError (with a state
    # snapshot) when no warp advances its pc for this many cycles.  Set
    # far above any legitimate stall (the longest is one DRAM round
    # trip) but far below the 50M-cycle hard limit, so a livelocked
    # schedule is diagnosed in seconds, not minutes.  0 disables.
    watchdog_window: int = 20_000
    # Debug knob: run the installed technique's structural invariant
    # checks (SRP bitmask/LUT/status consistency) every cycle, raising
    # InvariantViolationError at the first inconsistent state.
    debug_invariants: bool = False
    # Dynamic sanitizer (repro.check.sanitizer): folds the scattered
    # runtime checks — extended-access permission, physical-bounds,
    # per-cycle SRP structural consistency, scoreboard hazard re-check,
    # wait-queue hygiene — into one per-issue/per-cycle checker emitting
    # typed SanitizerViolation reports with warp/pc/cycle provenance.
    sanitizer: bool = False
    # Issue-path implementation: "event" (the default) drives each
    # scheduler from wake-ordered ready queues + sleeper heaps; "scan"
    # selects the naive all-warp reference stepper; "columnar" runs the
    # array-backed store (repro.sim.columnar) — per-slot state columns
    # with thin Warp views — and is the fast path for long runs.  All
    # three are bit-identical (cycles, SmStats, oracle digests) — this
    # knob exists for the differential identity tests, for auditing,
    # and for speed, and is excluded from experiment cache keys for
    # that reason.  Defaults to "event" unless REPRO_ISSUE_ENGINE says
    # otherwise (CI uses the env hook to re-run the suite per engine).
    issue_engine: str = field(default_factory=_default_issue_engine)
    # Cadence of the sanitizer's per-cycle *structural* checks (SRP
    # consistency, wait-queue hygiene, slot accounting): 1 = every cycle
    # (the default; what the fault campaign relies on for tight
    # detection latency).  The oracle's long differential runs raise it
    # — per-issue checks still run on every instruction, so only the
    # detection latency of purely structural corruption changes.
    sanitizer_stride: int = 1

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.num_sms <= 0:
            raise ValueError("warp_size and num_sms must be positive")
        if self.max_warps_per_sm <= 0:
            raise ValueError("max_warps_per_sm must be positive")
        if self.registers_per_sm <= 0:
            raise ValueError("registers_per_sm must be positive")
        if self.scheduler_policy not in ("gto", "lrr"):
            raise ValueError(f"unknown scheduler policy {self.scheduler_policy!r}")
        if not 0.0 <= self.l1_hit_rate <= 1.0:
            raise ValueError("l1_hit_rate must lie in [0, 1]")
        if self.watchdog_window < 0:
            raise ValueError("watchdog_window must be >= 0 (0 disables)")
        if self.sanitizer_stride <= 0:
            raise ValueError("sanitizer_stride must be positive")
        if self.issue_engine not in ISSUE_ENGINES:
            raise ValueError(f"unknown issue engine {self.issue_engine!r}")

    @property
    def registers_per_sm_per_thread_slot(self) -> int:
        """Register budget divided across the maximum thread population."""
        return self.registers_per_sm // self.max_threads_per_sm

    @property
    def warp_register_packs(self) -> int:
        """Number of warp-granular register packs in the file.

        The paper's §III-B2: 32K registers / 32 threads = 1K per-thread
        register packs available to distribute among warps.
        """
        return self.registers_per_sm // self.warp_size

    def with_half_register_file(self) -> "GpuConfig":
        """The §IV-B variant: same SM, half the registers."""
        return replace(
            self,
            name=f"{self.name}-halfRF",
            registers_per_sm=self.registers_per_sm // 2,
        )

    def with_scheduler(self, policy: str) -> "GpuConfig":
        """Copy with a different warp-scheduler policy ("gto"/"lrr")."""
        return replace(self, scheduler_policy=policy)


GTX480 = GpuConfig()
GTX480_HALF_RF = GTX480.with_half_register_file()


def fermi_like(**overrides) -> GpuConfig:
    """A GTX480 variant with selected fields overridden."""
    return replace(GTX480, **overrides)


# Post-Fermi presets for the paper's §IV generalization argument: newer
# parts double the per-SM register file but also raise the resident-warp
# and thread ceilings, so the per-thread register budget stays near 32 —
# "in all post-Fermi Nvidia GPUs having more than 32 registers per
# thread definitely results in incomplete occupancy".
KEPLER_LIKE = GpuConfig(
    name="Kepler-like",
    num_sms=8,
    max_warps_per_sm=64,
    max_ctas_per_sm=16,
    max_threads_per_sm=2048,
    registers_per_sm=64 * 1024,
    shared_mem_per_sm=48 * 1024,
    num_schedulers=4,
)

PASCAL_LIKE = GpuConfig(
    name="Pascal-like",
    num_sms=28,
    max_warps_per_sm=64,
    max_ctas_per_sm=32,
    max_threads_per_sm=2048,
    registers_per_sm=64 * 1024,
    shared_mem_per_sm=64 * 1024,
    num_schedulers=4,
)

VOLTA_LIKE = GpuConfig(
    name="Volta-like",
    num_sms=80,
    max_warps_per_sm=64,
    max_ctas_per_sm=32,
    max_threads_per_sm=2048,
    registers_per_sm=64 * 1024,
    shared_mem_per_sm=96 * 1024,
    num_schedulers=4,
)
