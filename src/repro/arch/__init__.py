"""GPU architecture model: device configuration and occupancy math."""

from repro.arch.config import GpuConfig, GTX480, GTX480_HALF_RF, fermi_like
from repro.arch.occupancy import (
    OccupancyResult,
    theoretical_occupancy,
    occupancy_limited_by_registers,
    round_regs_to_granularity,
)

__all__ = [
    "GpuConfig",
    "GTX480",
    "GTX480_HALF_RF",
    "fermi_like",
    "OccupancyResult",
    "theoretical_occupancy",
    "occupancy_limited_by_registers",
    "round_regs_to_granularity",
]
