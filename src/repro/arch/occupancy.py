"""Theoretical occupancy calculator.

Occupancy = resident warps / max warps per SM, where resident warps are
limited by whichever of four resources runs out first when packing CTAs:
thread slots, CTA slots, shared memory, and registers.  This mirrors the
CUDA occupancy calculator's Fermi rules and is the quantity plotted in
the paper's Figures 7, 8, 11(a), and 12.

RegMutex changes the register term: a kernel compiled with base set
``|Bs|`` occupies only ``|Bs|`` exclusive registers per thread, while the
SRP is carved out of the register file *before* CTA packing.  The SRP
holds ``srp_sections`` extended sets of ``|Es|`` registers per thread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import GpuConfig
from repro.isa.kernel import KernelMetadata


def round_regs_to_granularity(regs: int, granularity: int) -> int:
    """Round a per-thread register count up to the allocation granularity.

    Table I's parenthesised numbers: e.g. 21 -> 24 at granularity 4.
    """
    if regs <= 0:
        raise ValueError("register count must be positive")
    return ((regs + granularity - 1) // granularity) * granularity


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy outcome plus the limiting-resource breakdown."""

    ctas_per_sm: int
    warps_per_cta: int
    limiting_resource: str
    max_warps: int
    # Per-resource CTA caps, for diagnostics and tests.
    cap_threads: int
    cap_cta_slots: int
    cap_shared_mem: int
    cap_registers: int

    @property
    def resident_warps(self) -> int:
        """Warps resident on the SM at this CTA count."""
        return self.ctas_per_sm * self.warps_per_cta

    @property
    def occupancy(self) -> float:
        """Resident warps over the SM's warp-slot ceiling (0..1)."""
        return self.resident_warps / self.max_warps if self.max_warps else 0.0


def _warps_per_cta(threads_per_cta: int, warp_size: int) -> int:
    return (threads_per_cta + warp_size - 1) // warp_size


def theoretical_occupancy(
    config: GpuConfig,
    metadata: KernelMetadata,
    regs_per_thread: int | None = None,
    reserved_registers: int = 0,
    granularity: int | None = None,
) -> OccupancyResult:
    """Compute theoretical occupancy for a kernel on a device.

    ``regs_per_thread`` overrides the metadata's declared count (the
    RegMutex path passes ``|Bs|`` here).  ``reserved_registers`` is
    removed from the register file before packing (the SRP carve-out).
    ``granularity`` overrides the device's register rounding — RegMutex
    packs base sets at granularity 1, matching the paper's §III-A2
    worked example where ``|Bs|=18`` yields 26 SRP sections.
    """
    regs = regs_per_thread if regs_per_thread is not None else metadata.regs_per_thread
    gran = granularity if granularity is not None else config.register_allocation_granularity
    regs = round_regs_to_granularity(regs, gran)
    warps_per_cta = _warps_per_cta(metadata.threads_per_cta, config.warp_size)

    cap_threads = config.max_threads_per_sm // metadata.threads_per_cta
    cap_cta_slots = config.max_ctas_per_sm
    if metadata.shared_mem_per_cta > 0:
        cap_shared_mem = config.shared_mem_per_sm // metadata.shared_mem_per_cta
    else:
        cap_shared_mem = config.max_ctas_per_sm

    available_regs = config.registers_per_sm - reserved_registers
    if available_regs < 0:
        available_regs = 0
    regs_per_cta = regs * warps_per_cta * config.warp_size
    cap_registers = available_regs // regs_per_cta if regs_per_cta else cap_cta_slots

    # Warp-slot cap folded into the thread cap via max_warps.
    cap_warp_slots = config.max_warps_per_sm // warps_per_cta

    caps = {
        "threads": cap_threads,
        "cta_slots": cap_cta_slots,
        "shared_mem": cap_shared_mem,
        "registers": cap_registers,
        "warp_slots": cap_warp_slots,
    }
    ctas = min(caps.values())
    if ctas < 0:
        ctas = 0
    limiting = min(caps, key=lambda k: caps[k])

    return OccupancyResult(
        ctas_per_sm=ctas,
        warps_per_cta=warps_per_cta,
        limiting_resource=limiting,
        max_warps=config.max_warps_per_sm,
        cap_threads=cap_threads,
        cap_cta_slots=cap_cta_slots,
        cap_shared_mem=cap_shared_mem,
        cap_registers=cap_registers,
    )


def occupancy_limited_by_registers(
    config: GpuConfig, metadata: KernelMetadata
) -> bool:
    """Whether the register cap is the (strict) binding constraint.

    The paper's §IV-A selects kernels "for which the occupancy is limited
    by high register demand": relaxing the register term must increase
    resident warps.
    """
    base = theoretical_occupancy(config, metadata)
    # Relax registers entirely and compare.
    relaxed = theoretical_occupancy(config, metadata, regs_per_thread=1)
    return relaxed.resident_warps > base.resident_warps
