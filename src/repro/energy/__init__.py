"""Register-file energy accounting (GPUWattch-style, heavily simplified).

Backs the paper's cost pitch quantitatively: RegMutex lets a GPU ship a
smaller register file at near-baseline performance, and a smaller SRAM
array costs both dynamic energy (shorter bitlines) and leakage
(fewer cells).  See :mod:`repro.energy.model`.
"""

from repro.energy.model import (
    EnergyParams,
    EnergyBreakdown,
    estimate_register_file_energy,
    compare_energy,
)

__all__ = [
    "EnergyParams",
    "EnergyBreakdown",
    "estimate_register_file_energy",
    "compare_energy",
]
