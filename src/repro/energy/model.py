"""First-order register-file energy model.

Two components, both functions of the register file size and the run's
activity counters:

* **dynamic** — energy per register-file access, scaled by the array
  size (bigger arrays drive longer bitlines; we use the standard
  square-root capacitance scaling).  Accesses are derived from issued
  instructions: each issue reads its sources and writes its
  destinations, 32 lanes wide.
* **static (leakage)** — proportional to the number of SRAM cells and
  to how long the kernel ran.  The default constant weights leakage at
  roughly a third of a full-file baseline's register-file energy,
  consistent with large-SRAM leakage shares in the GPUWattch-era
  literature; with leakage much lighter than that, a *slower* small
  file would come out "cheaper" than a fast one because time would cost
  nothing.

Absolute joules are meaningless here (the paper does not report them
either — it cites Jeon et al.'s 20-30% RF power savings); what the
model supports is *relative* comparisons: full-file baseline vs
half-file RegMutex at the same work, where RegMutex's selling point is
a smaller file at near-baseline runtime, i.e. lower leakage for ~equal
dynamic energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import GpuConfig
from repro.harness.runner import RunRecord

# Reference numbers, in arbitrary consistent units, anchored to a Fermi
# 128 KB/SM file: one 32-lane register read of the full-size array
# costs 1.0; a cell-cycle of leakage costs LEAK_PER_CELL_CYCLE.
_REFERENCE_REGS_PER_SM = 32 * 1024
_LEAK_PER_CELL_CYCLE = 4.0e-5
_AVG_READS_PER_INST = 1.8   # source operands per issued instruction
_AVG_WRITES_PER_INST = 0.8  # destination operands per issued instruction


@dataclass(frozen=True)
class EnergyParams:
    """Knobs of the model; defaults anchor to the Fermi baseline."""

    read_energy_fullsize: float = 1.0
    write_energy_fullsize: float = 1.1
    leak_per_cell_cycle: float = _LEAK_PER_CELL_CYCLE
    reads_per_instruction: float = _AVG_READS_PER_INST
    writes_per_instruction: float = _AVG_WRITES_PER_INST


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one run, in the model's arbitrary units."""

    dynamic: float
    static: float
    registers_per_sm: int
    cycles: int

    @property
    def total(self) -> float:
        """Dynamic plus static energy."""
        return self.dynamic + self.static

    def vs(self, other: "EnergyBreakdown") -> float:
        """Fractional total-energy change vs ``other`` (negative = less)."""
        if other.total == 0:
            return 0.0
        return (self.total - other.total) / other.total


def _size_scale(registers_per_sm: int) -> float:
    """Per-access energy scaling with array size (sqrt capacitance)."""
    return math.sqrt(registers_per_sm / _REFERENCE_REGS_PER_SM)


def estimate_register_file_energy(
    record: RunRecord,
    config: GpuConfig,
    params: EnergyParams | None = None,
) -> EnergyBreakdown:
    """Estimate one run's register-file energy from its counters."""
    params = params or EnergyParams()
    scale = _size_scale(config.registers_per_sm)
    accesses_dynamic = record.instructions_issued * (
        params.reads_per_instruction * params.read_energy_fullsize
        + params.writes_per_instruction * params.write_energy_fullsize
    )
    dynamic = accesses_dynamic * scale
    static = (
        config.registers_per_sm
        * config.num_sms
        * record.cycles
        * params.leak_per_cell_cycle
    )
    return EnergyBreakdown(
        dynamic=dynamic,
        static=static,
        registers_per_sm=config.registers_per_sm,
        cycles=record.cycles,
    )


def compare_energy(
    baseline: EnergyBreakdown, candidate: EnergyBreakdown
) -> dict[str, float]:
    """Relative deltas of a candidate configuration vs a baseline."""
    def rel(a: float, b: float) -> float:
        return (a - b) / b if b else 0.0

    return {
        "dynamic": rel(candidate.dynamic, baseline.dynamic),
        "static": rel(candidate.static, baseline.static),
        "total": candidate.vs(baseline),
    }
