"""Command-line interface: regenerate any paper experiment from a shell.

Usage::

    python -m repro list [--json]
    python -m repro table1
    python -m repro fig7 [--apps BFS,SAD] [--cache PATH] [--workers 4]
    python -m repro fig9a
    python -m repro storage
    python -m repro run BFS --technique regmutex [--half-rf] [--es 6]
    python -m repro profile SAD --out trace.json [--stride 64] [--csv t.csv]
    python -m repro bench [--figures fig7,fig9a] [--workers 8] [--label ci]
    python -m repro bench --history benchmarks/history.jsonl --gate
    python -m repro dashboard [--out dashboard.html] [--profile SAD]
    python -m repro faults [--seed 7] [--skip-harness]
    python -m repro check [--smoke] [--apps BFS,SAD] [--update-golden]
    python -m repro check --faults
    python -m repro --workers 4 serve [--socket .repro.sock]
    python -m repro submit fig7 [--timeout 120] [--socket .repro.sock]
    python -m repro status [--trace service.json]

``run`` executes a single (app, technique) pair and prints the raw
record — the quickest way to poke at one configuration.  ``profile``
runs one SM with full observability attached and prints the stall/SRP
profile report; ``--out`` additionally writes a Chrome trace-event JSON
loadable at https://ui.perfetto.dev (one track per warp, scheduler, and
SRP section).  ``bench`` regenerates whole figure suites through the
orchestrator — jobs are deduplicated across figures, dispatched to
``--workers`` processes, a telemetry report (per-job timings, cache
hits/misses, worker utilization) is printed at the end, and the session
is stamped into a regression-trackable ``BENCH_<label>.json`` perf
artifact.  ``--history PATH`` additionally appends the session (plus
git SHA / machine provenance) to a per-commit JSONL journal, and
``--gate`` fails the run only when throughput falls outside that
machine's own median ± k·MAD noise band (:mod:`repro.dashboard.gate`).
``dashboard`` renders the journal plus committed ``BENCH_*.json``
artifacts into a self-contained static HTML results page — per-engine
throughput trends, figure-vs-paper diffs, cache and failure trends, and
an optional live stall-attribution flame (``--profile APP``).
``--workers N`` on a figure command parallelizes just that figure.

``faults`` runs the deterministic fault-injection campaign
(:mod:`repro.faults.campaign`): every registered fault kind is armed
against its layer and the detection-rate table (injected vs detected vs
escaped) is printed; the exit code is non-zero if any fault escaped.

``check`` runs the differential execution oracle (:mod:`repro.check`):
each app is simulated under all five techniques with the sanitizer
armed and a shadow architectural executor attached, and the final
register/memory state and per-warp retired-instruction streams are
asserted equivalent modulo each technique's documented remapping.
``--update-golden`` (re)writes the golden snapshots under
``tests/check/golden/``; ``--smoke`` restricts to the three-app CI
subset; ``--faults`` instead re-runs the fault campaign with the
sanitizer armed and reports which mechanism caught each fault.

``serve`` runs the persistent simulation daemon (:mod:`repro.service`):
an asyncio front end over the journaled run store that dedups
submissions three ways and streams per-job telemetry; ``submit`` sends
a figure name or a JSON job file to a running daemon and follows the
event stream (exit 1 if any job failed, matching the batch CLI);
``status`` prints the daemon's dedup/queue statistics and can export
its job-lifecycle Perfetto trace.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.arch.config import GTX480
from repro.baselines.owf import OwfTechnique, owf_priority
from repro.baselines.rfv import RfvTechnique
from repro.errors import InterruptedRun
from repro.harness import experiments as E
from repro.harness.orchestrator import Orchestrator
from repro.harness.reporting import (
    format_percent_series,
    format_table,
    format_telemetry,
    percent,
)
from repro.harness.runner import ExperimentRunner
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.regmutex.paired import PairedWarpsTechnique
from repro.sim.technique import BaselineTechnique
from repro.workloads.suite import APPLICATIONS, build_app_kernel, get_app

_EXPERIMENTS = (
    "fig1", "table1", "fig7", "fig8", "fig9a", "fig9b",
    "fig10", "fig11", "fig12a", "fig12b", "fig13", "storage",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RegMutex (ISCA 2018) reproduction experiments",
    )
    parser.add_argument(
        "--cache", default=".bench_cache.json",
        help="simulation result cache path (default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for simulation jobs (default: %(default)s)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job timeout on the worker pool (default: none)",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="max extra attempts after a transient worker crash "
             "(default: %(default)s)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lst = sub.add_parser("list", help="list available experiments and apps")
    lst.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable listing (experiments, apps, techniques) "
             "so service clients can discover valid spec names",
    )

    serve = sub.add_parser(
        "serve",
        help="run the persistent simulation daemon (graceful SIGTERM "
             "drain, shared run store, streaming telemetry)",
    )
    serve.add_argument(
        "--socket", default=".repro.sock", metavar="PATH",
        help="Unix-domain socket to listen on (default: %(default)s)",
    )
    serve.add_argument(
        "--tcp", default=None, metavar="HOST:PORT",
        help="additionally listen on TCP (e.g. 127.0.0.1:7011)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="max concurrently active jobs before submissions get a "
             "typed queue-full rejection (default: %(default)s)",
    )
    serve.add_argument(
        "--flush-interval", type=float, default=5.0, metavar="SECONDS",
        help="periodic cache flush cadence, 0 disables "
             "(default: %(default)s)",
    )
    serve.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="directory for per-job checkpoints; with "
             "--checkpoint-interval this makes daemon kills resumable",
    )
    serve.add_argument(
        "--checkpoint-interval", type=int, default=0, metavar="CYCLES",
        help="checkpoint every N simulated cycles (0 disables)",
    )
    serve.add_argument("--seed", type=int, default=2018,
                       help="simulation seed (default: %(default)s)")

    submit = sub.add_parser(
        "submit",
        help="submit a spec to a running daemon and follow its "
             "per-job event stream",
    )
    submit.add_argument(
        "spec",
        help="a figure name (fig7, fig9a, ...) or a path to a JSON "
             "file with a {'jobs': [...]} list",
    )
    submit.add_argument(
        "--socket", default=".repro.sock", metavar="PATH",
        help="daemon socket (default: %(default)s)",
    )
    submit.add_argument(
        "--apps", default=None,
        help="comma-separated app subset (named experiments only)",
    )
    submit.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job timeout override for this submission "
             "(overrides the daemon's default end-to-end)",
    )
    submit.add_argument(
        "--no-follow", action="store_true",
        help="return after the submission response without streaming "
             "job events",
    )

    status = sub.add_parser(
        "status", help="query a running daemon's job table and stats"
    )
    status.add_argument(
        "--socket", default=".repro.sock", metavar="PATH",
        help="daemon socket (default: %(default)s)",
    )
    status.add_argument(
        "--trace", default=None, metavar="PATH",
        help="also fetch the daemon's job-lifecycle Chrome trace and "
             "write it to PATH (open at ui.perfetto.dev)",
    )
    bench = sub.add_parser(
        "bench",
        help="regenerate figure suites through the orchestrator "
             "with a telemetry report",
    )
    bench.add_argument(
        "--figures", default=None, metavar="NAMES",
        help="comma-separated figure subset (default: all of "
             + ",".join(sorted(E.FIGURE_SPECS)) + ")",
    )
    bench.add_argument(
        "--apps", default=None,
        help="comma-separated app subset, forwarded to every selected "
             "figure that takes one (fig12*/fig13 use their fixed sets)",
    )
    bench.add_argument(
        "--label", default="run", metavar="LABEL",
        help="perf-artifact label: the session is written to "
             "BENCH_<label>.json (default: %(default)s)",
    )
    bench.add_argument(
        "--artifact-dir", default=".", metavar="DIR",
        help="directory for the perf artifact (default: repo root)",
    )
    bench.add_argument(
        "--no-artifact", action="store_true",
        help="skip writing the BENCH_<label>.json perf artifact",
    )
    bench.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="perf artifact to compare cycles/sec against; prints a "
             "::warning:: line (never fails) beyond a 15%% regression",
    )
    bench.add_argument(
        "--fail-threshold", type=float, default=None, metavar="PCT",
        help="with --baseline: exit non-zero (::error:: annotation) "
             "when cycles/sec regresses more than PCT%% below the "
             "baseline — the CI hard gate; without it the comparison "
             "stays advisory.  Inconclusive comparisons (e.g. a fully "
             "cached run with no throughput number) warn and pass",
    )
    bench.add_argument(
        "--history", default=None, metavar="PATH",
        help="append this session to a per-commit BENCH history journal "
             "(e.g. benchmarks/history.jsonl); the substrate for "
             "--gate and `repro dashboard`",
    )
    bench.add_argument(
        "--commit", default=None, metavar="SHA",
        help="git SHA recorded with --history "
             "(default: $GITHUB_SHA, then 'local')",
    )
    bench.add_argument(
        "--timestamp", type=float, default=None, metavar="EPOCH",
        help="UNIX timestamp recorded with --history (default: now); "
             "CI passes the commit time so reruns stay attributable",
    )
    bench.add_argument(
        "--machine", default=None, metavar="NAME",
        help="machine label for --history/--gate (default: hostname); "
             "CI should pass a stable label — noise bands are "
             "per-machine",
    )
    bench.add_argument(
        "--engine", default=None, metavar="NAME",
        help="engine label recorded with --history (groups the "
             "dashboard's trend lines; default: none)",
    )
    bench.add_argument(
        "--gate", action="store_true",
        help="with --history: gate throughput against a noise band "
             "(median ± k·MAD of recent same-machine entries) instead "
             "of the fixed --fail-threshold, once enough history "
             "exists; falls back to --fail-threshold until then",
    )
    bench.add_argument(
        "--gate-window", type=int, default=None, metavar="N",
        help="history entries the noise band is fitted over "
             "(default: 20)",
    )
    bench.add_argument(
        "--gate-k", type=float, default=None, metavar="K",
        help="band half-width in MADs (default: 4.0)",
    )
    bench.add_argument(
        "--gate-min-entries", type=int, default=None, metavar="N",
        help="minimum same-machine history entries before the gate is "
             "conclusive (default: 5)",
    )

    dash = sub.add_parser(
        "dashboard",
        help="render the static HTML results dashboard (throughput "
             "trends, figure-vs-paper diffs, cache/failure trends)",
    )
    dash.add_argument(
        "--history", default="benchmarks/history.jsonl", metavar="PATH",
        help="BENCH history journal to plot (default: %(default)s; "
             "missing file renders an artifact-only page)",
    )
    dash.add_argument(
        "--artifacts", default="BENCH_*.json", metavar="GLOB",
        help="perf artifacts to include (default: %(default)s)",
    )
    dash.add_argument(
        "--out", default="dashboard.html", metavar="PATH",
        help="output HTML file (default: %(default)s)",
    )
    dash.add_argument(
        "--title", default=None, help="page title override",
    )
    dash.add_argument(
        "--profile", default=None, metavar="APP",
        help="also run one observed SM profile of APP (RegMutex, "
             "GTX480) and embed its stall-attribution flame",
    )
    dash.add_argument(
        "--profile-ctas", type=int, default=2, metavar="N",
        help="CTAs for the --profile run (default: %(default)s)",
    )
    dash.add_argument("--seed", type=int, default=2018,
                      help="--profile simulation seed (default: %(default)s)")
    for name in _EXPERIMENTS:
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument(
            "--apps", default=None,
            help="comma-separated app subset (where applicable)",
        )
        p.add_argument(
            "--csv", default=None, metavar="PATH",
            help="also export the rows to a CSV file",
        )

    faults = sub.add_parser(
        "faults",
        help="run the fault-injection campaign and print the "
             "detection-rate table (exit 1 if any fault escapes)",
    )
    faults.add_argument("--seed", type=int, default=2018,
                        help="campaign seed (default: %(default)s)")
    faults.add_argument(
        "--skip-harness", action="store_true",
        help="skip the orchestrator/worker-pool scenarios "
             "(they spawn real processes and take a few seconds)",
    )
    faults.add_argument(
        "--kill-mid-run", action="store_true",
        help="also run the crash-safety probe: SIGKILL a worker at a "
             "deterministic cycle and require the retry to resume from "
             "the surviving checkpoint bit-identically "
             "(implies the harness scenarios)",
    )

    check = sub.add_parser(
        "check",
        help="differential execution oracle: prove the five techniques "
             "equivalent per app (exit 1 on any mismatch)",
    )
    check.add_argument(
        "--apps", default=None,
        help="comma-separated app subset (default: all 16 Table I apps)",
    )
    check.add_argument(
        "--smoke", action="store_true",
        help="use the three-app CI subset "
             "(ignored when --apps is given)",
    )
    check.add_argument(
        "--update-golden", action="store_true",
        help="(re)write the golden snapshots instead of comparing",
    )
    check.add_argument(
        "--golden-dir", default=None, metavar="DIR",
        help="golden snapshot directory "
             "(default: tests/check/golden)",
    )
    check.add_argument("--seed", type=int, default=2018,
                       help="oracle seed (default: %(default)s)")
    check.add_argument(
        "--faults", action="store_true",
        help="instead run the fault campaign with the sanitizer armed "
             "and report which mechanism classified each fault",
    )

    run = sub.add_parser("run", help="run one app under one technique")
    run.add_argument("app", choices=sorted(APPLICATIONS))
    run.add_argument(
        "--technique",
        choices=("baseline", "regmutex", "paired", "owf", "rfv"),
        default="regmutex",
    )
    run.add_argument("--es", type=int, default=None,
                     help="force |Es| (default: Table I's split)")
    run.add_argument("--half-rf", action="store_true",
                     help="halve the register file")

    profile = sub.add_parser(
        "profile",
        help="run one SM with observability attached; print the profile "
             "report and optionally export a Perfetto trace",
    )
    profile.add_argument("app", choices=sorted(APPLICATIONS))
    profile.add_argument(
        "--technique",
        choices=("baseline", "regmutex", "paired", "owf", "rfv"),
        default="regmutex",
    )
    profile.add_argument("--es", type=int, default=None,
                         help="force |Es| (default: Table I's split)")
    profile.add_argument("--half-rf", action="store_true",
                         help="halve the register file")
    profile.add_argument(
        "--ctas", type=int, default=None, metavar="N",
        help="total CTAs to run through the SM (default: 2 waves)",
    )
    profile.add_argument(
        "--stride", type=int, default=64, metavar="CYCLES",
        help="probe sampling stride (default: %(default)s)",
    )
    profile.add_argument("--seed", type=int, default=2018,
                         help="simulation seed (default: %(default)s)")
    profile.add_argument(
        "--out", default=None, metavar="PATH",
        help="write a Chrome trace-event JSON (open at ui.perfetto.dev)",
    )
    profile.add_argument(
        "--csv", default=None, metavar="PATH",
        help="write the sampled timelines as CSV",
    )
    profile.add_argument(
        "--issues", action="store_true",
        help="include per-issue instant events in the trace (large)",
    )
    return parser


def _technique_for(name: str, es: int | None):
    """(technique, scheduler_priority) for a CLI technique name."""
    factories = {
        "baseline": lambda: (BaselineTechnique(), None),
        "regmutex": lambda: (RegMutexTechnique(extended_set_size=es), None),
        "paired": lambda: (PairedWarpsTechnique(extended_set_size=es), None),
        "owf": lambda: (OwfTechnique(), owf_priority),
        "rfv": lambda: (RfvTechnique(), None),
    }
    return factories[name]()


def _apps_arg(args) -> tuple[str, ...] | None:
    if getattr(args, "apps", None):
        names = tuple(a.strip() for a in args.apps.split(","))
        for name in names:
            get_app(name)  # raises with suggestions on typos
        return names
    return None


def _cmd_list(args=None) -> int:
    if args is not None and args.as_json:
        import json

        from repro.harness.spec import technique_kinds

        print(json.dumps({
            "experiments": list(_EXPERIMENTS),
            "figures": sorted(E.FIGURE_SPECS),
            "techniques": list(technique_kinds()),
            "apps": [
                {
                    "name": spec.name,
                    "suite": spec.suite,
                    "group": spec.group,
                    "regs": spec.regs,
                    "expected_bs": spec.expected_bs,
                    "expected_es": spec.expected_es,
                }
                for spec in APPLICATIONS.values()
            ],
        }, indent=2))
        return 0
    print("experiments:", ", ".join(_EXPERIMENTS))
    print("apps:")
    for spec in APPLICATIONS.values():
        print(f"  {spec.name:<16} {spec.suite:<9} {spec.group:<18} "
              f"regs={spec.regs} |Bs|={spec.expected_bs}")
    return 0


def _cmd_run(args, runner: ExperimentRunner) -> int:
    spec = get_app(args.app)
    config = GTX480.with_half_register_file() if args.half_rf else GTX480
    es = args.es if args.es is not None else spec.expected_es
    technique, priority = _technique_for(args.technique, es)
    kernel = build_app_kernel(spec)
    record = runner.run(kernel, config, technique, scheduler_priority=priority)
    base = runner.run(kernel, config, BaselineTechnique())
    print(format_table(
        ["field", "value"],
        [
            ["app", record.kernel_name],
            ["config", record.config_name],
            ["technique", record.technique],
            ["cycles/CTA", f"{record.cycles_per_cta:.1f}"],
            ["vs baseline", percent(record.reduction_vs(base))],
            ["occupancy", f"{record.theoretical_occupancy:.0%}"],
            ["acquire success", f"{record.acquire_success_rate:.0%}"],
            ["instructions issued", record.instructions_issued],
        ],
    ))
    return 0


def _cmd_profile(args) -> int:
    """One observed SM run: report to stdout, optional trace/CSV export."""
    from repro.observe import (
        chrome_trace_events,
        profile_kernel,
        profile_report,
        write_chrome_trace,
        write_timeline_csv,
    )

    spec = get_app(args.app)
    config = GTX480.with_half_register_file() if args.half_rf else GTX480
    es = args.es if args.es is not None else spec.expected_es
    technique, priority = _technique_for(args.technique, es)
    kernel = build_app_kernel(spec)
    result = profile_kernel(
        kernel, config, technique,
        total_ctas=args.ctas, stride=args.stride,
        scheduler_priority=priority, seed=args.seed,
    )
    title = (f"{result.kernel_name} / {result.technique_name} "
             f"on {config.name} ({result.total_ctas} CTAs)")
    print(profile_report(result.stats, config, samples=result.samples,
                         log=result.log, title=title))
    if result.error is not None:
        print(f"\nrun ended early: {result.error}")
    if args.out:
        events = chrome_trace_events(
            result.log, result.samples, sm_id=0, include_issues=args.issues
        )
        write_chrome_trace(args.out, events)
        print(f"(Perfetto trace written to {args.out} — "
              "open at https://ui.perfetto.dev)")
    if args.csv:
        write_timeline_csv(args.csv, result.samples)
        print(f"(timeline CSV written to {args.csv})")
    return 1 if result.error is not None else 0


def _maybe_csv(args, rows) -> None:
    path = getattr(args, "csv", None)
    if path:
        from repro.harness.export import rows_to_csv

        rows_to_csv(rows, path)
        print(f"(rows exported to {path})")


def _cmd_bench(args, runner: ExperimentRunner) -> int:
    """Regenerate figure suites through the orchestrator + telemetry."""
    if args.figures:
        names = [n.strip() for n in args.figures.split(",")]
        unknown = [n for n in names if n not in E.FIGURE_SPECS]
        if unknown:
            known = ", ".join(sorted(E.FIGURE_SPECS))
            raise KeyError(f"unknown figures {unknown} (known: {known})")
    else:
        names = list(E.FIGURE_SPECS)
    apps = _apps_arg(args)
    specs = [_figure_spec(n, apps) for n in names]
    orch = Orchestrator(
        runner, workers=args.workers,
        job_timeout=args.job_timeout, max_retries=args.retries,
    )
    rows_by_name = orch.run_specs(specs)
    print(format_table(
        ["figure", "rows"],
        [[n, len(rows_by_name[n])] for n in names],
    ))
    print()
    print(format_telemetry(orch.telemetry))

    from repro.dashboard.figures import summarize_figures
    from repro.observe.perf import perf_artifact, write_perf_artifact

    figures_summary = summarize_figures(rows_by_name)
    current = perf_artifact(args.label, orch.telemetry,
                            figures=figures_summary)
    if not args.no_artifact:
        path = write_perf_artifact(
            args.label, orch.telemetry, directory=args.artifact_dir,
            figures=figures_summary,
        )
        print(f"\n(perf artifact written to {path})")

    exit_code = 0
    gate_conclusive = False
    if args.gate:
        # Noise-band gate: the session's throughput against the median
        # ± k·MAD of this machine's own recent history.  It *replaces*
        # the fixed --fail-threshold once the machine has enough
        # entries; until then it is inconclusive and the fixed
        # threshold below still governs.
        if not args.history:
            raise ValueError("--gate requires --history")
        from repro.dashboard.gate import evaluate_gate
        from repro.dashboard.history import default_machine, load_history

        machine = args.machine or default_machine()
        gate_kwargs = {}
        if args.gate_window is not None:
            gate_kwargs["window"] = args.gate_window
        if args.gate_k is not None:
            gate_kwargs["k"] = args.gate_k
        if args.gate_min_entries is not None:
            gate_kwargs["min_entries"] = args.gate_min_entries
        gate = evaluate_gate(
            current["totals"]["cycles_per_sec"],
            load_history(args.history),
            label=args.label, machine=machine, **gate_kwargs,
        )
        if gate.regressed:
            print(f"::error::{gate.message}")
            exit_code = 1
            gate_conclusive = True
        elif gate.inconclusive:
            print(f"::warning::{gate.message}")
        else:
            print(f"(noise-band gate ok: {gate.message})")
            gate_conclusive = True

    if args.baseline and not gate_conclusive:
        from repro.observe.perf import (
            compare_perf_artifacts,
            load_perf_artifact,
        )

        baseline = load_perf_artifact(args.baseline)
        hard = None
        if args.fail_threshold is not None:
            # Hard gate: regressions past the caller's band fail the
            # run (GitHub Actions ::error:: annotation + exit 1).
            # Inconclusive comparisons — a fully-cached session has no
            # cycles_per_sec at all — warn and PASS: "no data" is not
            # "slower", and a warm cache must never fail CI.
            if args.fail_threshold < 0:
                raise ValueError("--fail-threshold must be >= 0")
            hard = compare_perf_artifacts(
                current, baseline, warn_threshold=args.fail_threshold / 100.0
            )
            if hard.regressed:
                for line in hard.messages:
                    print(f"::error::{line}")
                exit_code = 1
            elif hard.inconclusive:
                for line in hard.messages:
                    print(f"::warning::{line}")
        if args.fail_threshold is None or (hard is not None and hard.ok):
            advisory = compare_perf_artifacts(current, baseline)
            for line in advisory.messages:
                # GitHub Actions annotation syntax; advisory (absolute
                # throughput is machine-dependent) — pass
                # --fail-threshold or --gate for a hard gate.
                print(f"::warning::{line}")
            if advisory.ok:
                print(
                    f"(throughput ok vs baseline {baseline['label']!r}: "
                    f"{advisory.current:,.0f} vs "
                    f"{advisory.baseline:,.0f} cycles/sec)"
                )

    if args.history:
        # Recorded even when the gate failed: the history must show the
        # dip, and median ± MAD keeps one bad commit from dragging the
        # band.  CI passes --commit $GITHUB_SHA and a stable --machine.
        import os as _os

        from repro.dashboard.history import append_history

        sha = args.commit or _os.environ.get("GITHUB_SHA") or "local"
        append_history(
            args.history, current, sha=sha, timestamp=args.timestamp,
            machine=args.machine, engine=args.engine,
        )
        print(f"(bench session appended to {args.history} @ {sha[:10]})")
    return exit_code


def _cmd_dashboard(args) -> int:
    """Render the static HTML results dashboard."""
    import glob

    from repro.dashboard import load_history, render_dashboard, write_dashboard
    from repro.observe.perf import load_perf_artifact

    history = load_history(args.history)
    artifacts = []
    for path in sorted(glob.glob(args.artifacts)):
        try:
            artifacts.append((Path(path).name, load_perf_artifact(path)))
        except (OSError, ValueError) as exc:
            print(f"::warning::skipping {path}: {exc}")
    profile_data = None
    if args.profile:
        from repro.analysis.bottleneck import attribute_bottlenecks
        from repro.observe import profile_kernel

        spec = get_app(args.profile)
        technique, priority = _technique_for("regmutex", spec.expected_es)
        result = profile_kernel(
            build_app_kernel(spec), GTX480, technique,
            total_ctas=args.profile_ctas, scheduler_priority=priority,
            seed=args.seed,
        )
        report = attribute_bottlenecks(
            result.stats, num_schedulers=GTX480.num_schedulers
        )
        profile_data = {
            "title": f"{spec.name} / regmutex on {GTX480.name}",
            "issue_slots": report.issue_slots,
            "issued": report.issued,
            "stalls": dict(report.stalls),
        }
    import datetime

    generated = datetime.datetime.now(datetime.timezone.utc).strftime(
        "%Y-%m-%d %H:%M UTC"
    )
    page = render_dashboard(
        history, artifacts, profile=profile_data, generated_at=generated,
        **({"title": args.title} if args.title else {}),
    )
    write_dashboard(args.out, page)
    print(f"(dashboard written to {args.out}: {len(history)} history "
          f"entries, {len(artifacts)} artifacts)")
    return 0


def _figure_spec(name: str, apps: tuple[str, ...] | None):
    """Build one figure spec (thin alias of the shared resolver)."""
    return E.figure_spec(name, apps)


def _cmd_serve(args) -> int:
    """Run the simulation daemon until SIGTERM/SIGINT (exit 0)."""
    import asyncio

    from repro.service.daemon import ServiceConfig, serve

    host, port = None, 0
    if args.tcp:
        host, _, port_text = args.tcp.rpartition(":")
        if not host or not port_text.isdigit():
            raise ValueError(f"--tcp expects HOST:PORT, got {args.tcp!r}")
        port = int(port_text)
    config = ServiceConfig(
        socket_path=args.socket,
        host=host,
        port=port,
        cache_path=args.cache,
        workers=max(1, args.workers),
        seed=args.seed,
        job_timeout=args.job_timeout,
        max_retries=args.retries,
        max_queue=args.max_queue,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        flush_interval=args.flush_interval,
    )
    where = args.socket + (f" and {args.tcp}" if args.tcp else "")
    print(f"repro service listening on {where} "
          f"({config.workers} workers, cache {config.cache_path})")
    return asyncio.run(serve(config))


def _submission_jobs(args):
    """(jobs, experiment, apps) for a ``repro submit`` spec argument."""
    import json
    import os

    from repro.service.protocol import job_from_wire

    if args.spec in E.FIGURE_SPECS:
        apps = list(_apps_arg(args)) if _apps_arg(args) else None
        return None, args.spec, apps
    if args.spec.endswith(".json") or os.path.exists(args.spec):
        with open(args.spec) as fh:
            payload = json.load(fh)
        jobs_payload = (
            payload.get("jobs") if isinstance(payload, dict) else payload
        )
        if not isinstance(jobs_payload, list) or not jobs_payload:
            raise ValueError(
                f"{args.spec}: expected a {{'jobs': [...]}} object or a "
                "non-empty job array"
            )
        return [job_from_wire(j) for j in jobs_payload], None, None
    known = ", ".join(sorted(E.FIGURE_SPECS))
    raise ValueError(
        f"{args.spec!r} is neither a known figure ({known}) nor a "
        "readable JSON spec file"
    )


def _cmd_submit(args) -> int:
    """Submit to a running daemon; exit codes match the batch CLI."""
    from repro.service.client import ServiceClient

    jobs, experiment, apps = _submission_jobs(args)

    def on_event(event: dict) -> None:
        status = event.get("status", "?")
        line = f"  [{event.get('job_id')}] {event.get('label')}: {status}"
        if status == "done":
            timing = event.get("timing") or {}
            dedup = event.get("dedup")
            mode = timing.get("mode", "?")
            line += f" ({mode}"
            if dedup:
                line += f", dedup={dedup}"
            if event.get("resumed_from_cycle") is not None:
                line += f", resumed@{event['resumed_from_cycle']}"
            line += f", {timing.get('seconds', 0.0):.2f}s)"
        elif status == "failed":
            failure = event.get("failure") or {}
            line += f" ({failure.get('kind')}: {failure.get('message')})"
        print(line)

    with ServiceClient(socket_path=args.socket) as client:
        result = client.submit(
            jobs=jobs, experiment=experiment, apps=apps,
            timeout=args.timeout, follow=not args.no_follow,
            on_event=None if args.no_follow else on_event,
        )
    if not args.no_follow:
        # Jobs answered terminally in the submit response (store hits,
        # failures known up front) never stream an event — print their
        # lines from the response entries instead.
        streamed = {e.get("job_id") for e in result.events}
        for entry in result.jobs:
            if (entry["status"] in ("done", "failed")
                    and entry["job_id"] not in streamed):
                on_event(entry)
    dedup_hits = sum(
        1 for e in result.jobs if e.get("dedup") in ("store", "inflight")
    )
    if args.no_follow:
        print(f"submitted {len(result.jobs)} job(s), "
              f"{dedup_hits} dedup hit(s)")
        return 0
    failed = result.failed
    print(f"{len(result.final)} job(s) finished, {dedup_hits} dedup "
          f"hit(s), {len(failed)} failure(s)")
    return 1 if failed else 0


def _cmd_status(args) -> int:
    """Query a daemon: stats table, job table, optional Perfetto trace."""
    from repro.service.client import ServiceClient

    with ServiceClient(socket_path=args.socket) as client:
        status = client.status()
        trace = client.trace() if args.trace else None
    stats = status.get("stats", {})
    print(format_table(
        ["field", "value"],
        [
            ["uptime", f"{status.get('uptime_ms', 0) / 1000.0:.1f}s"],
            ["draining", status.get("draining")],
            ["queue depth", f"{status.get('queue_depth')}"
                            f"/{status.get('max_queue')}"],
            ["workers", status.get("workers")],
            ["submitted", stats.get("submitted")],
            ["simulations", stats.get("simulations")],
            ["dedup (store/inflight/batch)",
             f"{stats.get('dedup_store')}/{stats.get('dedup_inflight')}"
             f"/{stats.get('dedup_batch')}"],
            ["timeouts", stats.get("timeouts")],
            ["pool restarts", stats.get("pool_restarts")],
        ],
    ))
    jobs = status.get("jobs", [])
    if jobs:
        print()
        print(format_table(
            ["id", "label", "status", "dedup", "attached"],
            [[j["job_id"], j["label"], j["status"], j["dedup"] or "-",
              j["attached"]] for j in jobs],
        ))
    if args.trace:
        import json

        with open(args.trace, "w") as fh:
            json.dump(trace, fh)
        print(f"\n(Perfetto trace written to {args.trace} — "
              "open at https://ui.perfetto.dev)")
    return 0


def _cmd_faults(args) -> int:
    """Run the fault-injection campaign; exit 1 if anything escapes."""
    from repro.faults.campaign import campaign_table, run_campaign

    include_harness = not args.skip_harness or args.kill_mid_run
    outcomes = run_campaign(
        seed=args.seed,
        include_harness=include_harness,
        workers=max(2, args.workers),
        include_kill_mid_run=args.kill_mid_run,
    )
    print(campaign_table(outcomes))
    return 1 if any(o.escaped for o in outcomes) else 0


def _cmd_check(args) -> int:
    """Differential oracle / sanitized fault campaign; exit 1 on failure."""
    from repro.check.oracle import DEFAULT_GOLDEN_DIR, SMOKE_APPS, check_apps

    if args.faults:
        from repro.check.adversarial import run_adversarial_campaign
        from repro.faults.campaign import campaign_table

        outcomes = run_adversarial_campaign(
            seed=args.seed, workers=max(2, args.workers)
        )
        print(campaign_table(outcomes))
        return 1 if any(o.escaped for o in outcomes) else 0

    apps = _apps_arg(args)
    if apps is None and args.smoke:
        apps = SMOKE_APPS
    golden_dir = (
        Path(args.golden_dir) if args.golden_dir else DEFAULT_GOLDEN_DIR
    )
    results = check_apps(
        apps=apps,
        seed=args.seed,
        workers=args.workers,
        golden_dir=golden_dir,
        update_golden=args.update_golden,
    )
    rows = []
    for result in results:
        base = result.traces.get("baseline")
        verdict = "ok" if result.ok else "MISMATCH"
        if result.golden_updated:
            verdict = "golden updated"
        rows.append([
            result.app,
            len(result.traces),
            base.cycles if base else "-",
            f"{base.stream_digest:#x}" if base else "-",
            verdict,
        ])
    print(format_table(
        ["app", "techniques", "base cycles", "stream digest", "verdict"],
        rows,
    ))
    failures = [r for r in results if not r.ok]
    for result in failures:
        for line in result.equivalence_mismatches + result.golden_mismatches:
            print(f"  {result.app}: {line}")
    return 1 if failures else 0


def _cmd_experiment(name: str, args, runner: ExperimentRunner) -> int:
    apps = _apps_arg(args)

    if name == "fig1":
        rows = E.fig1_liveness_traces(apps or E.FIGURE1_APPS)
        for row in rows:
            print(format_percent_series(row.app, row.utilization_series))
        _maybe_csv(args, rows)
        return 0
    if name == "table1":
        rows = E.table1_workloads()
        print(format_table(
            ["app", "regs", "rounded", "|Bs|", "|Es|", "sections", "heuristic"],
            [[r.app, r.regs, r.regs_rounded, r.bs, r.es, r.srp_sections,
              r.heuristic_agrees] for r in rows],
        ))
        _maybe_csv(args, rows)
        return 0
    if name == "storage":
        budgets = E.storage_overhead_comparison()
        print(format_table(
            ["technique", "bits/SM"],
            [[n, b.total_bits] for n, b in budgets.items()],
        ))
        return 0

    kwargs = {"apps": apps} if apps else {}
    extra = {}
    if args.workers > 1:
        extra["orchestrator"] = Orchestrator(
            runner, workers=args.workers,
            job_timeout=args.job_timeout, max_retries=args.retries,
        )
    kwargs.update(extra)
    if name == "fig7":
        rows = E.fig7_occupancy_boost(runner, **kwargs)
        print(format_table(
            ["app", "reduction", "occ init", "occ regmutex", "acq success"],
            [[r.app, percent(r.cycle_reduction), f"{r.occupancy_init:.0%}",
              f"{r.occupancy_regmutex:.0%}",
              f"{r.acquire_success_rate:.0%}"] for r in rows],
        ))
    elif name == "fig8":
        rows = E.fig8_half_register_file(runner, **kwargs)
        print(format_table(
            ["app", "increase bare", "increase regmutex"],
            [[r.app, percent(r.increase_no_technique),
              percent(r.increase_regmutex)] for r in rows],
        ))
    elif name == "fig9a":
        rows = E.fig9a_comparison_baseline(runner, **kwargs)
        print(format_table(
            ["app", "OWF", "RFV", "RegMutex"],
            [[r.app, percent(r.reduction_owf), percent(r.reduction_rfv),
              percent(r.reduction_regmutex)] for r in rows],
        ))
    elif name == "fig9b":
        rows = E.fig9b_comparison_half_rf(runner, **kwargs)
        print(format_table(
            ["app", "none", "OWF", "RFV", "RegMutex"],
            [[r.app, percent(r.increase_none), percent(r.increase_owf),
              percent(r.increase_rfv), percent(r.increase_regmutex)]
             for r in rows],
        ))
    elif name == "fig10":
        rows = E.fig10_es_sensitivity(runner, **kwargs)
        print(format_table(
            ["app", "|Es|", "reduction", "heuristic pick"],
            [[r.app, r.es, percent(r.cycle_reduction), r.is_heuristic_pick]
             for r in rows],
        ))
    elif name == "fig11":
        rows = E.fig11_occupancy_and_acquires(runner, **kwargs)
        print(format_table(
            ["app", "|Es|", "occupancy", "acquire success"],
            [[r.app, r.es, f"{r.theoretical_occupancy:.0%}",
              f"{r.acquire_success_rate:.0%}"] for r in rows],
        ))
    elif name == "fig12a":
        rows = E.fig12_paired_warps(runner, half_rf=False, **extra)
        print(format_table(
            ["app", "paired reduction", "default reduction"],
            [[r.app, percent(r.metric), percent(r.metric_default)]
             for r in rows],
        ))
    elif name == "fig12b":
        rows = E.fig12_paired_warps(runner, half_rf=True, **extra)
        print(format_table(
            ["app", "paired increase", "default increase"],
            [[r.app, percent(r.metric), percent(r.metric_default)]
             for r in rows],
        ))
    elif name == "fig13":
        rows = E.fig13_acquire_success(runner, **extra)
        print(format_table(
            ["app", "arch", "default", "paired"],
            [[r.app, r.arch, f"{r.success_default:.0%}",
              f"{r.success_paired:.0%}"] for r in rows],
        ))
    else:  # pragma: no cover - parser restricts choices
        raise AssertionError(name)
    _maybe_csv(args, rows)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    try:
        with ExperimentRunner(cache_path=args.cache) as runner:
            if args.command == "run":
                return _cmd_run(args, runner)
            if args.command == "bench":
                return _cmd_bench(args, runner)
            return _cmd_experiment(args.command, args, runner)
    except InterruptedRun as exc:
        # Ctrl-C mid-campaign: the orchestrator has already cancelled
        # outstanding work and flushed completed records to the cache,
        # so a re-run picks up where this one stopped.
        print(f"interrupted: {exc.summary()}", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
