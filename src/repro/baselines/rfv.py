"""RFV baseline: register file virtualization (behaviour model of Jeon
et al., MICRO 2015).

A renaming table maps architected registers to physical registers
on demand: a physical register is taken at first write and returned when
the value dies.  Occupancy is therefore limited by *average* live
demand, not the declared maximum, and a warp only stalls when the pool
is momentarily empty at an allocating instruction.  That fine allocation
granularity is why RFV edges out RegMutex on cycles (paper Fig 9:
16.2% vs 12.8% average reduction) while paying >81× more storage.

Model specifics:

* per-warp physical demand tracks the static live count at the warp's
  PC (per-instruction allocate/free, the dead-value hints of the
  original design),
* the pool is ``registers_per_sm / warp_size`` per-thread slots shared
  by all resident warps,
* forward progress: the oldest resident warp may always allocate (the
  model's stand-in for the original's reserved/eviction machinery),
  so the pool can dip negative by at most one warp's peak demand.
"""

from __future__ import annotations

from repro.arch.config import GpuConfig
from repro.arch.occupancy import OccupancyResult, theoretical_occupancy
from repro.isa.instructions import Instruction
from repro.isa.kernel import Kernel
from repro.liveness.liveness import analyze_liveness
from repro.sim.stats import SmStats
from repro.sim.technique import SharingTechnique, SmTechniqueState
from repro.sim.warp import Warp


class RfvSmState(SmTechniqueState):
    """Per-SM virtualized register pool."""

    def __init__(self, kernel: Kernel, config: GpuConfig, stats: SmStats) -> None:
        super().__init__(kernel, config, stats)
        info = analyze_liveness(kernel)
        self._live_count = info.live_count
        self.pool_capacity = config.registers_per_sm // config.warp_size
        self.pool_free = self.pool_capacity
        self._allocated: dict[int, int] = {}  # warp_id -> per-thread regs held
        self.peak_pool_use = 0
        # Forward-progress reserve: exactly one warp may over-allocate
        # from an exhausted pool.  The token must never sit on a warp
        # that cannot run (a barrier waiter would deadlock the SM), so it
        # is dropped when the holder hits a barrier, returns registers,
        # or finishes.
        self._reserve_holder: int | None = None

    def _demand_at(self, warp: Warp) -> int:
        return self._live_count[warp.pc]

    def can_issue(self, warp: Warp, inst: Instruction, cycle: int) -> bool:
        held = self._allocated.get(warp.warp_id, 0)
        needed = self._demand_at(warp) - held
        if needed <= 0:
            return True
        if self.pool_free >= needed:
            return True
        if self._reserve_holder in (None, warp.warp_id):
            self._reserve_holder = warp.warp_id
            return True
        warp.stalled_on = "technique"
        return False

    def on_issue(self, warp: Warp, inst: Instruction, cycle: int) -> None:
        held = self._allocated.get(warp.warp_id, 0)
        demand = self._demand_at(warp)
        delta = demand - held
        self.pool_free -= delta
        self._allocated[warp.warp_id] = demand
        used = self.pool_capacity - self.pool_free
        if used > self.peak_pool_use:
            self.peak_pool_use = used
        if self._reserve_holder == warp.warp_id and (
            delta < 0 or inst.is_barrier
        ):
            self._reserve_holder = None

    def on_warp_finish(self, warp: Warp, cycle: int) -> None:
        held = self._allocated.pop(warp.warp_id, 0)
        self.pool_free += held
        if self._reserve_holder == warp.warp_id:
            self._reserve_holder = None

    def state_snapshot(self) -> dict:
        return {
            "pool_free": self.pool_free,
            "allocated": {str(w): h for w, h in self._allocated.items()},
            "peak_pool_use": self.peak_pool_use,
            "reserve_holder": self._reserve_holder,
        }

    def state_restore(self, payload: dict, warps_by_id: dict[int, Warp]) -> None:
        self.pool_free = payload["pool_free"]
        self._allocated = {
            int(w): h for w, h in payload["allocated"].items()
        }
        self.peak_pool_use = payload["peak_pool_use"]
        self._reserve_holder = payload["reserve_holder"]


class RfvTechnique(SharingTechnique):
    """Register file virtualization with dead-value reclamation."""

    name = "rfv"
    # Bumped whenever the model's semantics change, so cached experiment
    # records invalidate without flushing unrelated techniques.
    model_version = 2

    def prepare_kernel(self, kernel: Kernel, config: GpuConfig) -> Kernel:
        # No code rewriting: dead-value information rides on liveness
        # metadata (the original embeds it via meta-instructions, whose
        # fetch-stage cost we charge below through occupancy, not code).
        return kernel

    def occupancy(self, kernel: Kernel, config: GpuConfig) -> OccupancyResult:
        md = kernel.metadata
        # Registers virtualized: CTA packing sizes each warp by the
        # midpoint of its mean and peak static live demand.  Packing by
        # the mean alone admits so many warps on high-variance kernels
        # that the physical pool saturates whenever several warps hit
        # their peak together, serializing execution behind the
        # forward-progress reserve — a residency throttle the real
        # design's eviction machinery corresponds to.
        info = analyze_liveness(kernel)
        counts = info.live_count
        if counts:
            mean_live = sum(counts) / len(counts)
            effective = max(1, -(-int(mean_live + max(counts)) // 2))
        else:
            effective = 1
        return theoretical_occupancy(
            config, md, regs_per_thread=effective, granularity=1
        )

    def make_sm_state(
        self, kernel: Kernel, config: GpuConfig, stats: SmStats
    ) -> RfvSmState:
        return RfvSmState(kernel, config, stats)
