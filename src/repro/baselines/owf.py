"""OWF baseline: warp-pair register sharing with one-shot acquisition
(behaviour model of Jatala et al., HPDC 2016).

The scheme keeps the baseline's resident CTAs ("native" warps, which own
their full register allocation privately) and packs *extra* CTAs into
the register-file leftover: an extra warp owns only the base portion of
its registers and time-shares the high-index portion with one native
partner behind a hardware lock with **one-shot** semantics — the first
warp to touch a shared register owns it *until it finishes* (the paper's
central criticism: "one-time acquire with no in-kernel release").

A native warp implicitly owns its shared set from launch, so in practice
an extra warp progresses through low-pressure code, blocks at its first
high-register access, and resumes only when its partner retires.
Scheduling is Owner-Warp-First: lock owners outrank non-owners so they
finish (and hand over) sooner.  The net effect the paper measures — a
small average gain (≈2%) with occasional losses — comes from extra
warps contributing low-pressure progress and tail coverage only.

For an apples-to-apples comparison the high-register threshold reuses
the RegMutex compiler's |Bs| split; no instructions are injected (the
real design checks indices at the register file on every access).
"""

from __future__ import annotations

from repro.arch.config import GpuConfig
from repro.arch.occupancy import OccupancyResult, theoretical_occupancy
from repro.compiler.es_selection import select_extended_set_size
from repro.isa.instructions import Instruction
from repro.isa.kernel import Kernel
from repro.sim.stats import SmStats
from repro.sim.technique import SharingTechnique, SmTechniqueState
from repro.sim.warp import Warp, WarpStatus


def _extra_ctas(config: GpuConfig, md, base: OccupancyResult) -> int:
    """How many additional shared-register CTAs fit after baseline packing."""
    if not md.uses_regmutex:
        return 0
    from repro.arch.occupancy import round_regs_to_granularity

    rounded = round_regs_to_granularity(
        md.regs_per_thread, config.register_allocation_granularity
    )
    used_regs = base.ctas_per_sm * rounded * md.threads_per_cta
    leftover = config.registers_per_sm - used_regs
    extra_cta_regs = md.base_set_size * md.threads_per_cta
    cap_regs = leftover // extra_cta_regs if extra_cta_regs else 0
    cap_threads = (
        config.max_threads_per_sm - base.ctas_per_sm * md.threads_per_cta
    ) // md.threads_per_cta
    cap_slots = config.max_ctas_per_sm - base.ctas_per_sm
    cap_warps = (
        config.max_warps_per_sm - base.resident_warps
    ) // base.warps_per_cta
    if md.shared_mem_per_cta > 0:
        cap_smem = (
            config.shared_mem_per_sm
            - base.ctas_per_sm * md.shared_mem_per_cta
        ) // md.shared_mem_per_cta
    else:
        cap_smem = cap_slots
    # Pairing capacity: every extra warp needs a native partner.
    cap_pairing = base.ctas_per_sm
    return max(0, min(cap_regs, cap_threads, cap_slots, cap_warps,
                      cap_smem, cap_pairing))


class OwfSmState(SmTechniqueState):
    """Per-SM one-shot pair locks between native and extra warps."""

    def __init__(
        self,
        kernel: Kernel,
        config: GpuConfig,
        stats: SmStats,
        base_ctas: int,
        extra_ctas: int,
    ) -> None:
        super().__init__(kernel, config, stats)
        md = kernel.metadata
        self.threshold = md.base_set_size if md.base_set_size else md.regs_per_thread
        self.base_ctas = max(1, base_ctas)
        self.extra_ctas = extra_ctas
        self._cycle_len = self.base_ctas + self.extra_ctas
        # extra warp -> native partner currently blocking it
        self._partner: dict[int, Warp] = {}
        self._waiting_on: dict[int, list[Warp]] = {}
        self._native_round_robin = 0
        # Double-buffered like the RegMutex states: no per-cycle list.
        self._pending_wakeups: list[Warp] = []
        self._wakeup_spare: list[Warp] = []
        self._natives: dict[int, Warp] = {}

    def is_extra(self, warp: Warp) -> bool:
        return (warp.cta_id % self._cycle_len) >= self.base_ctas

    def _touches_shared(self, inst: Instruction) -> bool:
        return any(r >= self.threshold for r in inst.registers)

    def can_issue(self, warp: Warp, inst: Instruction, cycle: int) -> bool:
        if not self.is_extra(warp):
            # Native warps own their shared set from launch (one-shot
            # semantics: they are the first toucher by construction).
            if not warp.owns_pair_lock:
                warp.owns_pair_lock = True
                self._natives[warp.warp_id] = warp
            return True
        if warp.owns_pair_lock or not self._touches_shared(inst):
            return True
        # Extra warp hitting its first shared access: pick (or look up)
        # the native partner; block until that partner retires.
        partner = self._partner.get(warp.warp_id)
        if partner is None:
            alive = [w for w in self._natives.values() if not w.finished]
            if not alive:
                # Partner already finished (or none resident): own freely.
                warp.owns_pair_lock = True
                self.stats.acquire_attempts += 1
                self.stats.acquire_successes += 1
                return True
            partner = alive[self._native_round_robin % len(alive)]
            self._native_round_robin += 1
            self._partner[warp.warp_id] = partner
        self.stats.acquire_attempts += 1
        warp.status = WarpStatus.WAITING_ACQUIRE
        self._waiting_on.setdefault(partner.warp_id, []).append(warp)
        if warp.acquire_block_since is None:
            warp.acquire_block_since = cycle
        return False

    def on_warp_finish(self, warp: Warp, cycle: int) -> None:
        self._natives.pop(warp.warp_id, None)
        if warp in self._pending_wakeups:
            # The warp finished before consuming its wakeup (its lock is
            # one-shot, so nothing transfers — just drop the stale entry).
            self._pending_wakeups.remove(warp)
        for waiter in self._waiting_on.pop(warp.warp_id, []):
            waiter.owns_pair_lock = True
            self._partner.pop(waiter.warp_id, None)
            self.stats.acquire_successes += 1
            if waiter.acquire_block_since is not None:
                self.stats.acquire_wait_cycles += cycle - waiter.acquire_block_since
                waiter.acquire_block_since = None
            self._pending_wakeups.append(waiter)
        self._partner.pop(warp.warp_id, None)

    def wakeup_pending(self) -> list[Warp] | tuple:
        woken = self._pending_wakeups
        if not woken:
            return ()
        spare = self._wakeup_spare
        spare.clear()
        self._pending_wakeups, self._wakeup_spare = spare, woken
        return woken

    def state_snapshot(self) -> dict:
        return {
            "partner": {
                str(w): p.warp_id for w, p in self._partner.items()
            },
            "waiting_on": {
                str(n): [w.warp_id for w in waiters]
                for n, waiters in self._waiting_on.items()
            },
            "native_round_robin": self._native_round_robin,
            "pending_wakeups": [w.warp_id for w in self._pending_wakeups],
            # Insertion order matters: the round-robin partner pick
            # indexes the live natives in registration order.
            "natives": list(self._natives),
        }

    def state_restore(self, payload: dict, warps_by_id: dict[int, Warp]) -> None:
        self._partner = {
            int(w): warps_by_id[p] for w, p in payload["partner"].items()
        }
        self._waiting_on = {
            int(n): [warps_by_id[w] for w in waiters]
            for n, waiters in payload["waiting_on"].items()
        }
        self._native_round_robin = payload["native_round_robin"]
        self._pending_wakeups = [
            warps_by_id[w] for w in payload["pending_wakeups"]
        ]
        self._wakeup_spare = []
        self._natives = {w: warps_by_id[w] for w in payload["natives"]}


def owf_priority(warp: Warp) -> int:
    """Owner-Warp-First: lock owners outrank everyone else."""
    return 0 if warp.owns_pair_lock else 1


class OwfTechnique(SharingTechnique):
    """Baseline residency plus extra pair-shared CTAs, one-shot lock,
    owner-warp-first scheduling."""

    name = "owf"

    def prepare_kernel(self, kernel: Kernel, config: GpuConfig) -> Kernel:
        if kernel.metadata.uses_regmutex:
            raise ValueError("OWF expects an uninstrumented kernel")
        selection = select_extended_set_size(kernel, config)
        return kernel.with_metadata(
            regs_per_thread=selection.rounded_regs,
            base_set_size=(
                selection.base_set_size
                if selection.uses_regmutex
                else selection.rounded_regs
            ),
            extended_set_size=selection.extended_set_size,
        )

    def occupancy(self, kernel: Kernel, config: GpuConfig) -> OccupancyResult:
        md = kernel.metadata
        base = theoretical_occupancy(config, md)
        extra = _extra_ctas(config, md, base)
        if extra == 0:
            return base
        import dataclasses

        return dataclasses.replace(
            base, ctas_per_sm=base.ctas_per_sm + extra
        )

    def make_sm_state(
        self, kernel: Kernel, config: GpuConfig, stats: SmStats
    ) -> OwfSmState:
        md = kernel.metadata
        base = theoretical_occupancy(config, md)
        extra = _extra_ctas(config, md, base)
        return OwfSmState(
            kernel, config, stats,
            base_ctas=base.ctas_per_sm, extra_ctas=extra,
        )
