"""Comparator techniques for the paper's Figure 9 evaluation.

* :mod:`repro.baselines.owf` — Jatala et al. (HPDC'16) resource sharing
  with Owner-Warp-First scheduling: warp pairs share high-index
  registers behind a one-shot lock held until the owner finishes.
* :mod:`repro.baselines.rfv` — Jeon et al. (MICRO'15) register file
  virtualization: a renaming table allocates physical registers at first
  write and reclaims them when values die, at a large storage cost.
"""

from repro.baselines.owf import OwfTechnique, OwfSmState
from repro.baselines.rfv import RfvTechnique, RfvSmState

__all__ = ["OwfTechnique", "OwfSmState", "RfvTechnique", "RfvSmState"]
