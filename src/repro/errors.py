"""Typed failure taxonomy shared by the simulator and the harness.

The simulator used to signal every abnormal outcome — a genuine
deadlock, a runaway kernel hitting the cycle limit, a kernel that does
not fit on the device — as a bare ``RuntimeError``, which left the
harness unable to tell "this configuration deterministically cannot
run" from "something broke".  This module gives each failure mode a
type and a machine-readable ``kind`` string that survives a process
boundary (workers ship ``(kind, message)`` tuples back to the
orchestrator) and shows up attributed in telemetry and the ``repro
bench`` report.

Every class subclasses :class:`RuntimeError` so pre-taxonomy callers
(``except RuntimeError``) keep working unchanged.

:class:`DeadlockDiagnostic` is the structured snapshot a
:class:`SimulationDeadlockError` carries: enough per-warp, SRP, and
scoreboard state to diagnose a stuck schedule without re-running the
simulation under a debugger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# Failure kinds produced by the *harness* rather than the simulator.
# Simulator kinds are the ``kind`` class attributes below.
FAILURE_TIMEOUT = "timeout"
FAILURE_WORKER_CRASH = "worker-crash"
FAILURE_RUNTIME = "runtime-error"


@dataclass(frozen=True)
class WarpSnapshot:
    """One warp's state at the moment a deadlock was diagnosed."""

    warp_id: int
    cta_id: int
    pc: int
    status: str                      # WarpStatus.value
    stalled_on: Optional[str]
    wake_cycle: int
    holds_extended_set: bool
    srp_section: Optional[int]


@dataclass(frozen=True)
class DeadlockDiagnostic:
    """Snapshot of an SM with no forward progress.

    ``technique`` is the installed technique state's
    ``debug_snapshot()`` — for RegMutex that is the SRP bitmask/LUT,
    section accounting, and the acquire wait queue.
    """

    sm_id: int
    cycle: int
    last_progress_cycle: int
    warps: tuple[WarpSnapshot, ...] = ()
    scoreboard_pending: dict = field(default_factory=dict)
    technique: dict = field(default_factory=dict)

    def blocked_on_acquire(self) -> tuple[int, ...]:
        """Warp ids parked in the acquire wait state."""
        return tuple(
            w.warp_id for w in self.warps if w.status == "wait_acquire"
        )

    def summary(self) -> str:
        by_status: dict[str, int] = {}
        for w in self.warps:
            by_status[w.status] = by_status.get(w.status, 0) + 1
        statuses = ", ".join(f"{k}={v}" for k, v in sorted(by_status.items()))
        parts = [
            f"SM {self.sm_id} cycle {self.cycle} "
            f"(last progress at {self.last_progress_cycle})",
            f"warps: {statuses or 'none'}",
        ]
        if self.technique:
            srp = self.technique
            if "sections_in_use" in srp:
                parts.append(
                    f"SRP: {srp['sections_in_use']}/{srp.get('num_sections')} "
                    f"sections held, bitmask={srp.get('srp_bitmask'):#x}, "
                    f"wait queue={srp.get('wait_queue')}"
                )
        return "; ".join(parts)


class SimulationError(RuntimeError):
    """Base class for deterministic simulator failures.

    Deterministic means: re-running the identical (kernel, config,
    technique, seed) job reproduces the failure — so the harness must
    *not* retry it (unlike a worker crash, which is environmental).
    """

    kind = "simulation-error"

    def __init__(
        self, message: str, diagnostic: DeadlockDiagnostic | dict | None = None
    ) -> None:
        super().__init__(message)
        self.diagnostic = diagnostic


class SimulationDeadlockError(SimulationError):
    """No warp can ever issue again, or nothing made forward progress
    for the watchdog window — the schedule is stuck."""

    kind = "deadlock"


class CycleLimitExceededError(SimulationError):
    """The hard ``max_cycles`` backstop tripped (runaway kernel, or a
    livelock the watchdog was configured not to catch)."""

    kind = "cycle-limit"


class InvariantViolationError(SimulationError):
    """A hardware-structure consistency check failed (e.g. the SRP
    bitmask, LUT, and warp-status bitmask disagree)."""

    kind = "invariant-violation"


class KernelPlacementError(SimulationError):
    """The kernel (or kernel mix) cannot be placed on the device at
    all — zero CTAs fit."""

    kind = "placement"


class SanitizerError(SimulationError):
    """The dynamic sanitizer (``GpuConfig.sanitizer``) observed one or
    more runtime contract violations.  ``violations`` holds the typed
    :class:`repro.check.sanitizer.SanitizerViolation` reports (each with
    warp/pc/cycle provenance); the message summarizes the first."""

    kind = "sanitizer-violation"

    def __init__(
        self,
        message: str,
        violations: tuple = (),
        diagnostic: DeadlockDiagnostic | dict | None = None,
    ) -> None:
        super().__init__(message, diagnostic=diagnostic)
        self.violations = violations


class FaultInjectionError(RuntimeError):
    """A fault campaign was misconfigured (unknown fault kind, no
    injection site in the target kernel)."""


class CheckpointError(RuntimeError):
    """Base class for checkpoint save/restore failures.

    Deliberately *not* a :class:`SimulationError`: a bad checkpoint
    says nothing about the determinism of the underlying job, so the
    harness treats it as "fall back to a fresh run", never as a
    non-retryable simulation verdict.
    """

    kind = "checkpoint"


class CheckpointCorruptError(CheckpointError):
    """The checkpoint file is unreadable or fails its content checksum
    (torn write, truncation, bit-rot)."""

    kind = "checkpoint-corrupt"


class CheckpointSchemaError(CheckpointError):
    """The checkpoint parses but cannot be resumed: wrong schema
    version, or it describes a different (kernel, config, technique)
    context than the one being restored into."""

    kind = "checkpoint-schema"


class CheckpointEngineMismatchError(CheckpointSchemaError):
    """The checkpoint was captured under a different ``issue_engine``.

    The engines are bit-identical over whole runs, but their in-flight
    queue representations differ; resuming across engines is refused
    rather than approximated.
    """

    kind = "checkpoint-engine-mismatch"


class ServiceError(RuntimeError):
    """Base class for simulation-service failures (:mod:`repro.service`).

    Every subclass carries a machine-readable ``kind`` that crosses the
    wire verbatim: the daemon serializes a rejected request as
    ``{"ok": false, "error": {"kind", "message"}}`` and the client
    re-raises the matching class, so ``except ServiceQueueFullError``
    works identically in-process and across a socket.
    """

    kind = "service"


class ServiceProtocolError(ServiceError):
    """A wire frame was malformed: not JSON, not an object, missing a
    required field, an unknown operation, or an oversized line."""

    kind = "protocol"


class ServiceVersionError(ServiceProtocolError):
    """The frame parses but speaks a different protocol schema version
    than this peer — rejected rather than guessed at."""

    kind = "version-skew"


class ServiceSpecError(ServiceError):
    """A structurally valid submission names something that does not
    exist: an unknown app, technique kind, experiment, or an invalid
    device configuration."""

    kind = "bad-spec"


class ServiceQueueFullError(ServiceError):
    """The daemon's job queue is at ``max_queue``: backpressure.  The
    client should retry later (nothing was enqueued)."""

    kind = "queue-full"


class ServiceUnavailableError(ServiceError):
    """The daemon is draining toward shutdown (or the client could not
    reach it at all); new submissions are refused."""

    kind = "unavailable"


# kind -> class, for re-raising a wire error frame as the typed original.
SERVICE_ERRORS: dict[str, type] = {
    cls.kind: cls
    for cls in (
        ServiceError, ServiceProtocolError, ServiceVersionError,
        ServiceSpecError, ServiceQueueFullError, ServiceUnavailableError,
    )
}


class InterruptedRun(RuntimeError):
    """The operator interrupted an orchestrated batch (SIGINT).

    Carries enough for a typed summary instead of a raw traceback:
    how much of the batch completed, and whether the cache and
    telemetry were flushed before unwinding.
    """

    kind = "interrupted"

    def __init__(
        self, message: str, completed: int = 0, total: int = 0,
        flushed: bool = False,
    ) -> None:
        super().__init__(message)
        self.completed = completed
        self.total = total
        self.flushed = flushed

    def summary(self) -> str:
        state = "flushed" if self.flushed else "NOT flushed"
        return (
            f"interrupted: {self.completed}/{self.total} jobs completed, "
            f"cache {state}"
        )
