"""Exporters: Chrome trace-event JSON (Perfetto) and CSV timelines.

The Chrome trace-event format is the JSON array Perfetto's legacy
importer (and chrome://tracing) loads directly: each event carries
``ph`` (phase), ``ts`` (microseconds — we map one simulated cycle to one
microsecond), ``pid``/``tid`` (track routing), and ``name``.  The track
layout renders one process per SM and:

* one thread per warp — ``hold S<k>`` / ``wait acquire`` duration spans
  plus finish instants;
* one thread per SRP section — busy spans from the pool's own
  transition events (so EXIT-time reclamation shows too);
* one counter track each for SRP occupancy, the warp-status histogram,
  live-register pressure, cumulative stall attribution, and each warp
  scheduler's issued count (all stride-sampled from the probes).

``validate_chrome_trace`` is the schema gate CI runs against the
emitted file: required keys on every event, known phases, balanced
B/E nesting per track.
"""

from __future__ import annotations

import csv
import json

from repro.observe.bus import EventLog
from repro.observe.events import (
    ACQUIRE_BLOCKED,
    ACQUIRE_OK,
    CTA_LAUNCH,
    CTA_RETIRE,
    ISSUE,
    JOB_DONE,
    JOB_FAILED,
    JOB_KINDS,
    JOB_QUEUED,
    JOB_RESUMED,
    JOB_RUNNING,
    RELEASE,
    SANITIZER,
    SECTION_ACQUIRE,
    SECTION_RELEASE,
    WARP_FINISH,
    WATCHDOG,
)
from repro.observe.probes import ProbeSeries

REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")

# Track (tid) layout within one SM's process.
TID_SM = 0            # process-scoped instants (CTA launch/retire, watchdog)
TID_SRP_COUNTER = 1
TID_WARP_STATES = 2
TID_LIVE_REGISTERS = 3
TID_STALLS = 4
TID_SCHEDULER_BASE = 10      # + scheduler id
TID_SECTION_BASE = 100       # + section index
TID_WARP_BASE = 1000         # + warp id


def _meta(pid: int, tid: int, kind: str, name: str) -> dict:
    return {"ph": "M", "ts": 0, "pid": pid, "tid": tid,
            "name": kind, "args": {"name": name}}


def _counter(pid: int, tid: int, ts: int, name: str, args: dict) -> dict:
    return {"ph": "C", "ts": ts, "pid": pid, "tid": tid,
            "name": name, "args": args}


def _span(pid: int, tid: int, ph: str, ts: int, name: str) -> dict:
    return {"ph": ph, "ts": ts, "pid": pid, "tid": tid, "name": name}


def chrome_trace_events(
    log: EventLog | None,
    samples: ProbeSeries | None = None,
    sm_id: int = 0,
    include_issues: bool = False,
) -> list[dict]:
    """Convert one SM's observations into Chrome trace events."""
    events: list[dict] = [
        _meta(sm_id, TID_SM, "process_name", f"SM {sm_id}"),
        _meta(sm_id, TID_SM, "thread_name", "SM events"),
    ]
    if log is not None:
        events.extend(_warp_track_events(log, sm_id, include_issues))
        events.extend(_section_track_events(log, sm_id))
        events.extend(_sm_instant_events(log, sm_id))
    if samples is not None and len(samples):
        events.extend(_counter_track_events(samples, sm_id))
    return events


def _warp_track_events(
    log: EventLog, sm_id: int, include_issues: bool
) -> list[dict]:
    out: list[dict] = []
    named: set[int] = set()
    open_wait: dict[int, int] = {}   # warp -> wait-span start cycle
    open_hold: dict[int, str] = {}   # warp -> open hold-span name

    def tid(warp_id: int) -> int:
        t = TID_WARP_BASE + warp_id
        if warp_id not in named:
            named.add(warp_id)
            out.append(_meta(sm_id, t, "thread_name", f"warp {warp_id}"))
        return t

    for e in log:
        if e.kind == ACQUIRE_BLOCKED:
            if e.warp_id not in open_wait:
                open_wait[e.warp_id] = e.cycle
                out.append(_span(sm_id, tid(e.warp_id), "B", e.cycle,
                                 "wait acquire"))
        elif e.kind == ACQUIRE_OK:
            t = tid(e.warp_id)
            if e.warp_id in open_wait:
                del open_wait[e.warp_id]
                out.append(_span(sm_id, t, "E", e.cycle, "wait acquire"))
            if e.warp_id not in open_hold:
                name = f"hold S{e.value}"
                open_hold[e.warp_id] = name
                out.append(_span(sm_id, t, "B", e.cycle, name))
        elif e.kind == RELEASE:
            name = open_hold.pop(e.warp_id, None)
            if name is not None:
                out.append(_span(sm_id, tid(e.warp_id), "E", e.cycle, name))
        elif e.kind == WARP_FINISH:
            t = tid(e.warp_id)
            if e.warp_id in open_wait:
                del open_wait[e.warp_id]
                out.append(_span(sm_id, t, "E", e.cycle, "wait acquire"))
            name = open_hold.pop(e.warp_id, None)
            if name is not None:
                out.append(_span(sm_id, t, "E", e.cycle, name))
            out.append({"ph": "i", "ts": e.cycle, "pid": sm_id, "tid": t,
                        "name": "finish", "s": "t"})
        elif include_issues and e.kind == ISSUE:
            out.append({"ph": "X", "ts": e.cycle, "pid": sm_id,
                        "tid": tid(e.warp_id), "name": e.detail or "issue",
                        "dur": 1})
    # Close any span left open at the end of the log (e.g. a run that
    # raised): balanced B/E is part of the exported contract.
    last = log.events[-1].cycle if log.events else 0
    for warp_id in list(open_wait):
        out.append(_span(sm_id, TID_WARP_BASE + warp_id, "E", last,
                         "wait acquire"))
    for warp_id, name in open_hold.items():
        out.append(_span(sm_id, TID_WARP_BASE + warp_id, "E", last, name))
    return out


def _section_track_events(log: EventLog, sm_id: int) -> list[dict]:
    out: list[dict] = []
    named: set[int] = set()
    open_by_section: dict[int, str] = {}
    for e in log:
        if e.kind not in (SECTION_ACQUIRE, SECTION_RELEASE):
            continue
        t = TID_SECTION_BASE + e.value
        if e.value not in named:
            named.add(e.value)
            out.append(_meta(sm_id, t, "thread_name", f"SRP section {e.value}"))
        if e.kind == SECTION_ACQUIRE:
            if e.value not in open_by_section:
                name = f"held by slot {e.warp_id}"
                open_by_section[e.value] = name
                out.append(_span(sm_id, t, "B", e.cycle, name))
        else:
            name = open_by_section.pop(e.value, None)
            if name is not None:
                out.append(_span(sm_id, t, "E", e.cycle, name))
    last = log.events[-1].cycle if log.events else 0
    for section, name in open_by_section.items():
        out.append(_span(sm_id, TID_SECTION_BASE + section, "E", last, name))
    return out


def _sm_instant_events(log: EventLog, sm_id: int) -> list[dict]:
    out: list[dict] = []
    for e in log:
        if e.kind == CTA_LAUNCH:
            out.append({"ph": "i", "ts": e.cycle, "pid": sm_id, "tid": TID_SM,
                        "name": f"CTA {e.value} launch", "s": "t"})
        elif e.kind == CTA_RETIRE:
            out.append({"ph": "i", "ts": e.cycle, "pid": sm_id, "tid": TID_SM,
                        "name": f"CTA {e.value} retire", "s": "t"})
        elif e.kind == WATCHDOG:
            out.append({"ph": "i", "ts": e.cycle, "pid": sm_id, "tid": TID_SM,
                        "name": "watchdog", "s": "p",
                        "args": {"summary": e.detail or ""}})
        elif e.kind == SANITIZER:
            # Route the violation to the offending warp's track when it
            # has a warp subject, otherwise to the SM track.
            tid = TID_WARP_BASE + e.warp_id if e.warp_id >= 0 else TID_SM
            out.append({"ph": "i", "ts": e.cycle, "pid": sm_id, "tid": tid,
                        "name": "sanitizer violation", "s": "p",
                        "args": {"violation": e.detail or "",
                                 "pc": e.pc}})
    return out


def _counter_track_events(samples: ProbeSeries, sm_id: int) -> list[dict]:
    out = [
        _meta(sm_id, TID_SRP_COUNTER, "thread_name", "SRP occupancy"),
        _meta(sm_id, TID_WARP_STATES, "thread_name", "warp states"),
        _meta(sm_id, TID_LIVE_REGISTERS, "thread_name", "register pressure"),
        _meta(sm_id, TID_STALLS, "thread_name", "stall attribution"),
    ]
    num_scheds = len(samples.sched_issued[0]) if samples.sched_issued else 0
    for s in range(num_scheds):
        out.append(_meta(sm_id, TID_SCHEDULER_BASE + s, "thread_name",
                         f"scheduler {s}"))
    for i in range(len(samples)):
        ts = samples.cycle[i]
        if samples.srp_total[i] > 0:
            out.append(_counter(sm_id, TID_SRP_COUNTER, ts, "SRP sections",
                                {"in use": samples.srp_in_use[i]}))
        out.append(_counter(sm_id, TID_WARP_STATES, ts, "warp states", {
            "ready": samples.warps_ready[i],
            "at barrier": samples.warps_at_barrier[i],
            "wait acquire": samples.warps_waiting_acquire[i],
        }))
        out.append(_counter(sm_id, TID_LIVE_REGISTERS, ts, "live registers",
                            {"registers": samples.live_registers[i]}))
        out.append(_counter(sm_id, TID_STALLS, ts, "stall slots", {
            "memory": samples.stall_memory[i],
            "scoreboard": samples.stall_scoreboard[i],
            "barrier": samples.stall_barrier[i],
            "acquire": samples.stall_acquire[i],
        }))
        if i < len(samples.sched_issued):
            for s, issued in enumerate(samples.sched_issued[i]):
                out.append(_counter(sm_id, TID_SCHEDULER_BASE + s, ts,
                                    "issued", {"instructions": issued}))
    return out


def job_trace_events(log: EventLog, pid: int = 0) -> list[dict]:
    """Convert service job-lifecycle events into Chrome trace events.

    One thread per daemon job (``tid`` = job id), a ``running`` span
    from JOB_RUNNING to JOB_DONE/JOB_FAILED, and instants for queueing
    and checkpoint resumes.  Timestamps are the events' wall-clock
    milliseconds (the daemon stamps ``cycle`` that way for JOB_* kinds),
    so daemon traces render on a real timeline rather than simulated
    cycles.  Spans still open at the end of the log (jobs in flight
    when the trace was fetched) are closed at the last timestamp so the
    B/E contract :func:`validate_chrome_trace` enforces holds.
    """
    out: list[dict] = [_meta(pid, 0, "process_name", "repro service")]
    named: set[int] = set()
    open_run: dict[int, str] = {}    # job id -> open span name
    last_ts = 0

    def tid(e) -> int:
        if e.value not in named:
            named.add(e.value)
            out.append(_meta(pid, e.value, "thread_name",
                             f"job {e.value}: {e.detail or '?'}"))
        return e.value

    for e in log:
        if e.kind not in JOB_KINDS:
            continue
        last_ts = max(last_ts, e.cycle)
        if e.kind == JOB_QUEUED:
            out.append({"ph": "i", "ts": e.cycle, "pid": pid, "tid": tid(e),
                        "name": "queued", "s": "t"})
        elif e.kind == JOB_RUNNING:
            if e.value not in open_run:
                name = e.detail or "running"
                open_run[e.value] = name
                out.append(_span(pid, tid(e), "B", e.cycle, name))
        elif e.kind == JOB_RESUMED:
            out.append({"ph": "i", "ts": e.cycle, "pid": pid, "tid": tid(e),
                        "name": f"resumed from cycle {e.pc}", "s": "t"})
        elif e.kind in (JOB_DONE, JOB_FAILED):
            t = tid(e)
            name = open_run.pop(e.value, None)
            if name is not None:
                out.append(_span(pid, t, "E", e.cycle, name))
            label = "done" if e.kind == JOB_DONE else "failed"
            out.append({"ph": "i", "ts": e.cycle, "pid": pid, "tid": t,
                        "name": f"{label}: {e.detail or ''}".rstrip(": "),
                        "s": "t"})
    for job_id, name in open_run.items():
        out.append(_span(pid, job_id, "E", last_ts, name))
    return out


def write_chrome_trace(path: str, events: list[dict]) -> str:
    """Write events as a Perfetto-loadable Chrome trace JSON file."""
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return path


# -- validation (the CI schema gate) -----------------------------------------------
_KNOWN_PHASES = {"B", "E", "X", "i", "I", "C", "M", "b", "e", "n", "s", "t", "f"}


def validate_chrome_trace(payload: object) -> int:
    """Validate a parsed Chrome trace; returns the event count.

    Checks the contract Perfetto's importer relies on: a ``traceEvents``
    list (or a bare array), the required keys on every event, known
    phase codes, and balanced ``B``/``E`` nesting per (pid, tid) track.
    Raises ``ValueError`` on the first violation.
    """
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("trace object has no 'traceEvents' list")
    elif isinstance(payload, list):
        events = payload
    else:
        raise ValueError(f"trace root is {type(payload).__name__}, "
                         "expected object or array")
    if not events:
        raise ValueError("trace contains no events")

    depth: dict[tuple, int] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{i} is not an object")
        for key in REQUIRED_KEYS:
            if key not in event:
                raise ValueError(f"event #{i} missing required key {key!r}")
        ph = event["ph"]
        if ph not in _KNOWN_PHASES:
            raise ValueError(f"event #{i} has unknown phase {ph!r}")
        track = (event["pid"], event["tid"])
        if ph == "B":
            depth[track] = depth.get(track, 0) + 1
        elif ph == "E":
            depth[track] = depth.get(track, 0) - 1
            if depth[track] < 0:
                raise ValueError(f"track {track}: 'E' without matching 'B' "
                                 f"at event #{i}")
    unbalanced = {t: d for t, d in depth.items() if d != 0}
    if unbalanced:
        raise ValueError(f"unbalanced B/E spans on tracks: {unbalanced}")
    return len(events)


def validate_trace_file(path: str) -> int:
    """Load and validate a trace JSON file; returns the event count."""
    with open(path) as fh:
        return validate_chrome_trace(json.load(fh))


# -- CSV timelines ---------------------------------------------------------------
def timeline_rows(samples: ProbeSeries) -> tuple[list[str], list[list[int]]]:
    """(headers, rows) for the sampled timeline, one row per sample."""
    num_scheds = len(samples.sched_issued[0]) if samples.sched_issued else 0
    headers = list(samples.columns) + [
        f"sched{j}_issued" for j in range(num_scheds)
    ]
    rows = []
    for i in range(len(samples)):
        row = [getattr(samples, name)[i] for name in samples.columns]
        row.extend(samples.sched_issued[i])
        rows.append(row)
    return headers, rows


def write_timeline_csv(path: str, samples: ProbeSeries) -> str:
    """Write the probe timeline as CSV."""
    headers, rows = timeline_rows(samples)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)
    return path
