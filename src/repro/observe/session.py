"""One-call profiled runs: the driver behind ``repro profile``.

Profiles one SM — the unit the paper's time-resolved figures describe —
under any sharing technique, with an observer attached for the whole
run.  A single SM keeps traces readable (one Perfetto process) and
profile runs fast; the CTA count is configurable for longer timelines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import GpuConfig
from repro.errors import SimulationError
from repro.isa.kernel import Kernel
from repro.observe.hooks import SmObserver
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.sim.technique import SharingTechnique


@dataclass
class ProfileResult:
    """Everything a profiled run produced."""

    kernel_name: str
    technique_name: str
    config: GpuConfig
    stats: SmStats
    observer: SmObserver
    total_ctas: int
    srp_sections: int
    error: SimulationError | None = None

    @property
    def log(self):
        return self.observer.log

    @property
    def samples(self):
        return self.observer.samples


def profile_kernel(
    kernel: Kernel,
    config: GpuConfig,
    technique: SharingTechnique,
    total_ctas: int | None = None,
    stride: int = 64,
    scheduler_priority=None,
    seed: int = 2018,
    max_cycles: int = 50_000_000,
) -> ProfileResult:
    """Run one SM with full observability and return the observations.

    A run that dies on a :class:`SimulationError` (deadlock, watchdog,
    cycle limit) still returns its partial observations — a trace of the
    run *up to* the failure is exactly what the watchdog events are for
    — with the error recorded on the result.
    """
    compiled = technique.prepare_kernel(kernel, config)
    occ = technique.occupancy(compiled, config)
    resident = max(1, occ.ctas_per_sm)
    if total_ctas is None:
        total_ctas = resident * 2

    stats = SmStats()
    state = technique.make_sm_state(compiled, config, stats)
    sm = StreamingMultiprocessor(
        sm_id=0,
        config=config,
        kernel=compiled,
        technique_state=state,
        ctas_resident_limit=resident,
        total_ctas=total_ctas,
        rng=DeterministicRng(seed),
        scheduler_priority=scheduler_priority,
        stats=stats,
    )
    observer = SmObserver(stride=stride)
    observer.attach(sm)

    error: SimulationError | None = None
    try:
        sm.run(max_cycles=max_cycles)
    except SimulationError as exc:
        error = exc
        observer.on_run_end(sm)
    stats.cycles = sm.cycle

    sections = 0
    view = sm.technique.srp_view()
    if view is not None:
        sections = view[1]
    return ProfileResult(
        kernel_name=kernel.name,
        technique_name=technique.name,
        config=config,
        stats=stats,
        observer=observer,
        total_ctas=total_ctas,
        srp_sections=sections,
        error=error,
    )
