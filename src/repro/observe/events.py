"""Event vocabulary of the observability subsystem.

Every observable simulator occurrence is a :class:`SimEvent` — a small
frozen record with a ``kind`` drawn from the constants below.  The
vocabulary is deliberately flat (no per-kind subclasses): exporters and
tests dispatch on the string kind, and the two generic payload fields
(``detail`` for a category/opcode label, ``value`` for an index/count)
cover every current producer without per-event dict allocation.

Producers (see :mod:`repro.observe.hooks`):

* issue/acquire/release/warp-finish — the technique wrapper around the
  installed :class:`~repro.sim.technique.SmTechniqueState`;
* CTA launch/retire, stall attribution, fast-forward, watchdog — the
  :class:`~repro.observe.hooks.SmObserver` cycle hook in the SM;
* SRP section transitions — the
  :class:`~repro.regmutex.srp.SharedRegisterPool` transition callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# Instruction/warp lifecycle (emitted by the technique wrapper).
ISSUE = "issue"
ACQUIRE_OK = "acquire_ok"
ACQUIRE_BLOCKED = "acquire_blocked"
RELEASE = "release"
WARP_FINISH = "warp_finish"

# CTA lifecycle (emitted by the SM dispatcher).
CTA_LAUNCH = "cta_launch"
CTA_RETIRE = "cta_retire"

# Per-cycle stall attribution: one event per (cycle, category) with a
# non-zero idle-slot delta; ``detail`` is the category
# ("scoreboard" | "memory" | "barrier" | "acquire"), ``value`` the
# number of idle issue slots newly attributed to it.
STALL = "stall"

# Clock jumps and failure diagnostics.
FAST_FORWARD = "fast_forward"   # value = skipped cycles
WATCHDOG = "watchdog"           # detail = diagnostic summary

# Crash-safety lifecycle (repro.sim.checkpoint): a snapshot was emitted
# / the SM was rebuilt from one.  ``value`` is the snapshot cycle.
CHECKPOINT = "checkpoint"
RESTORE = "restore"

# SRP section transitions (emitted by the pool itself, so they cover
# defensive EXIT-time reclamation too).  ``warp_id`` is the warp *slot*,
# ``value`` the section index.
SECTION_ACQUIRE = "section_acquire"
SECTION_RELEASE = "section_release"

# Dynamic sanitizer violation (emitted by repro.check.sanitizer when a
# bus is attached): ``detail`` is "<check>: <message>", ``warp_id``/``pc``
# the provenance (-1 when the violation has no warp subject).
SANITIZER = "sanitizer"

# Service job lifecycle (emitted by the simulation daemon,
# :mod:`repro.service`).  These ride the same bus as simulator events
# but live on wall-clock time, not simulated cycles: ``cycle`` is
# milliseconds since the daemon started, ``value`` the daemon job id,
# ``detail`` the job label (JOB_DONE appends the execution mode,
# JOB_FAILED the failure kind, JOB_RESUMED carries the resume cycle in
# ``pc``).
JOB_QUEUED = "job_queued"
JOB_RUNNING = "job_running"
JOB_RESUMED = "job_resumed"
JOB_DONE = "job_done"
JOB_FAILED = "job_failed"

STALL_CATEGORIES = ("memory", "scoreboard", "barrier", "acquire")

JOB_KINDS = frozenset({
    JOB_QUEUED, JOB_RUNNING, JOB_RESUMED, JOB_DONE, JOB_FAILED,
})

ALL_KINDS = frozenset({
    ISSUE, ACQUIRE_OK, ACQUIRE_BLOCKED, RELEASE, WARP_FINISH,
    CTA_LAUNCH, CTA_RETIRE, STALL, FAST_FORWARD, WATCHDOG,
    SECTION_ACQUIRE, SECTION_RELEASE, SANITIZER, CHECKPOINT, RESTORE,
}) | JOB_KINDS


@dataclass(frozen=True, slots=True)
class SimEvent:
    """One observable simulator occurrence.

    ``warp_id``/``pc`` are -1 for events without a warp subject (CTA and
    stall events); ``detail`` carries an opcode or category label;
    ``value`` carries a small integer payload (section index, idle-slot
    count, CTA id, skipped cycles) whose meaning is fixed per kind.
    """

    cycle: int
    kind: str
    warp_id: int = -1
    pc: int = -1
    detail: Optional[str] = None
    value: int = 0
