"""Perf artifacts: regression-trackable ``BENCH_<label>.json`` files.

``repro bench`` stamps every orchestrated job with its wall time,
simulated cycles, and cycles/second through the harness telemetry, and
this module serializes the session into a schema-versioned JSON
artifact at the repo root.  CI uploads the file per run, giving the
project a perf trajectory that survives across commits — the ROADMAP's
"runs as fast as the hardware allows" goal needs a trail of numbers,
not vibes.

Schema (``PERF_ARTIFACT_VERSION`` 1)::

    {
      "schema": 1,
      "label": "<run label>",
      "workers": N,
      "wall_seconds": float,
      "cache": {"hits": N, "misses": N, "hit_rate": float},
      "totals": {"jobs": N, "failures": N, "sim_seconds": float,
                 "cycles": N, "cycles_per_sec": float},
      "failure_kinds": {"<kind>": N, ...},
      "jobs": [{"label", "mode", "seconds", "cycles", "cycles_per_sec",
                "failed", "failure_kind", "attempts"}, ...]
    }
"""

from __future__ import annotations

import json
import os
import re

from repro.harness.telemetry import SessionTelemetry

PERF_ARTIFACT_VERSION = 1

_LABEL_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def artifact_filename(label: str) -> str:
    """``BENCH_<label>.json`` with the label sanitized for filesystems."""
    safe = _LABEL_SAFE.sub("-", label).strip("-") or "run"
    return f"BENCH_{safe}.json"


def perf_artifact(label: str, telemetry: SessionTelemetry) -> dict:
    """Build the artifact dict from one orchestration session."""
    # Per-job entries are JobTiming.to_dict() verbatim: the perf
    # artifact and the service wire protocol share one serialization.
    jobs = []
    total_cycles = 0
    for t in telemetry.timings:
        if t.cycles is not None:
            total_cycles += t.cycles
        jobs.append(t.to_dict())
    hits, misses = telemetry.cache_hits, telemetry.cache_misses
    total = hits + misses
    sim_seconds = telemetry.sim_seconds
    return {
        "schema": PERF_ARTIFACT_VERSION,
        "label": label,
        "workers": telemetry.workers,
        "wall_seconds": round(telemetry.wall_seconds, 6),
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        },
        "totals": {
            "jobs": telemetry.jobs_total,
            "failures": telemetry.failures,
            "sim_seconds": round(sim_seconds, 6),
            "cycles": total_cycles,
            "cycles_per_sec": (
                round(total_cycles / sim_seconds, 1) if sim_seconds > 0 else None
            ),
        },
        "failure_kinds": telemetry.failures_by_kind(),
        "jobs": jobs,
    }


def write_perf_artifact(
    label: str, telemetry: SessionTelemetry, directory: str = "."
) -> str:
    """Serialize the session to ``<directory>/BENCH_<label>.json``."""
    path = os.path.join(directory, artifact_filename(label))
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(perf_artifact(label, telemetry), fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_perf_artifact(path: str) -> dict:
    """Load and minimally validate a perf artifact (schema gate)."""
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("schema") != PERF_ARTIFACT_VERSION:
        raise ValueError(
            f"{path}: not a schema-{PERF_ARTIFACT_VERSION} perf artifact"
        )
    for key in ("label", "totals", "cache", "jobs"):
        if key not in data:
            raise ValueError(f"{path}: missing key {key!r}")
    return data


def compare_perf_artifacts(
    current: dict, baseline: dict, warn_threshold: float = 0.15
) -> list[str]:
    """Compare headline simulation throughput against a baseline artifact.

    Returns a list of warning strings — empty when the current run's
    ``totals.cycles_per_sec`` is within ``warn_threshold`` of the
    baseline's (or faster).  Advisory only: throughput depends on the
    executing machine, so callers warn and move on rather than fail —
    a committed seed artifact catches *order-of-magnitude* issue-path
    regressions, not percent-level noise.
    """
    cur = current.get("totals", {}).get("cycles_per_sec")
    base = baseline.get("totals", {}).get("cycles_per_sec")
    if cur is None or base is None or base <= 0:
        return [
            "perf comparison inconclusive: cycles_per_sec missing "
            f"(current={cur!r}, baseline={base!r}) — all jobs cached?"
        ]
    ratio = cur / base
    if ratio < 1.0 - warn_threshold:
        return [
            f"simulation throughput regressed {1.0 - ratio:.0%} vs "
            f"baseline {baseline.get('label', '?')!r}: "
            f"{cur:,.0f} cycles/sec vs {base:,.0f} "
            f"(warn threshold {warn_threshold:.0%})"
        ]
    return []
