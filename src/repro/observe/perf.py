"""Perf artifacts: regression-trackable ``BENCH_<label>.json`` files.

``repro bench`` stamps every orchestrated job with its wall time,
simulated cycles, and cycles/second through the harness telemetry, and
this module serializes the session into a schema-versioned JSON
artifact at the repo root.  CI uploads the file per run, giving the
project a perf trajectory that survives across commits — the ROADMAP's
"runs as fast as the hardware allows" goal needs a trail of numbers,
not vibes.

Schema (``PERF_ARTIFACT_VERSION`` 1)::

    {
      "schema": 1,
      "label": "<run label>",
      "workers": N,
      "wall_seconds": float,
      "cache": {"hits": N, "misses": N, "hit_rate": float},
      "totals": {"jobs": N, "failures": N, "sim_seconds": float,
                 "cycles": N, "cached_cycles": N, "cycles_per_sec": float},
      "failure_kinds": {"<kind>": N, ...},
      "figures": {"<fig>": {"<metric>": float, ...}, ...},   # optional
      "jobs": [{"label", "mode", "seconds", "cycles", "cycles_per_sec",
                "failed", "failure_kind", "attempts"}, ...]
    }

``totals.cycles`` counts **computed** (non-cached) jobs only: cache hits
replay a stored record in ~0 time, and ``totals.sim_seconds`` already
excludes them, so folding their cycles into the numerator would inflate
``cycles_per_sec`` on any partially-cached session (and mask real
regressions).  Cached cycles are reported separately as
``totals.cached_cycles``.  ``cached_cycles`` and ``figures`` are
additive schema-1 fields — absent in older artifacts, tolerated by
every consumer.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass

from repro.harness.telemetry import SessionTelemetry

PERF_ARTIFACT_VERSION = 1

# Comparison verdicts: a comparison either has a conclusive answer
# ("ok" / "regressed") or no data to answer with ("inconclusive" — e.g.
# a fully-cached session computed nothing, so it has no throughput).
# Callers gate on ``regressed`` only; inconclusive must warn, not fail.
STATUS_OK = "ok"
STATUS_REGRESSED = "regressed"
STATUS_INCONCLUSIVE = "inconclusive"

_LABEL_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def artifact_filename(label: str) -> str:
    """``BENCH_<label>.json`` with the label sanitized for filesystems."""
    safe = _LABEL_SAFE.sub("-", label).strip("-") or "run"
    return f"BENCH_{safe}.json"


def perf_artifact(
    label: str,
    telemetry: SessionTelemetry,
    figures: dict[str, dict[str, float]] | None = None,
) -> dict:
    """Build the artifact dict from one orchestration session.

    ``figures`` optionally embeds per-figure headline metrics (see
    :mod:`repro.dashboard.figures`) so the dashboard can diff them
    against the paper's targets commit over commit.
    """
    # Per-job entries are JobTiming.to_dict() verbatim: the perf
    # artifact and the service wire protocol share one serialization.
    jobs = [t.to_dict() for t in telemetry.timings]
    hits, misses = telemetry.cache_hits, telemetry.cache_misses
    total = hits + misses
    sim_seconds = telemetry.sim_seconds
    computed_cycles = telemetry.computed_cycles
    artifact = {
        "schema": PERF_ARTIFACT_VERSION,
        "label": label,
        "workers": telemetry.workers,
        "wall_seconds": round(telemetry.wall_seconds, 6),
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        },
        "totals": {
            "jobs": telemetry.jobs_total,
            "failures": telemetry.failures,
            "sim_seconds": round(sim_seconds, 6),
            # Computed jobs only: cached cycles have no matching time in
            # sim_seconds, so they must not land in the cps numerator.
            "cycles": computed_cycles,
            "cached_cycles": telemetry.cached_cycles,
            "cycles_per_sec": (
                round(computed_cycles / sim_seconds, 1)
                if sim_seconds > 0 and computed_cycles else None
            ),
        },
        "failure_kinds": telemetry.failures_by_kind(),
        "jobs": jobs,
    }
    if figures:
        artifact["figures"] = figures
    return artifact


def write_perf_artifact(
    label: str,
    telemetry: SessionTelemetry,
    directory: str = ".",
    figures: dict[str, dict[str, float]] | None = None,
) -> str:
    """Serialize the session to ``<directory>/BENCH_<label>.json``."""
    path = os.path.join(directory, artifact_filename(label))
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(perf_artifact(label, telemetry, figures=figures), fh,
                  indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_perf_artifact(path: str) -> dict:
    """Load and minimally validate a perf artifact (schema gate)."""
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("schema") != PERF_ARTIFACT_VERSION:
        raise ValueError(
            f"{path}: not a schema-{PERF_ARTIFACT_VERSION} perf artifact"
        )
    for key in ("label", "totals", "cache", "jobs"):
        if key not in data:
            raise ValueError(f"{path}: missing key {key!r}")
    return data


@dataclass(frozen=True)
class PerfComparison:
    """Outcome of one throughput comparison.

    ``status`` is one of :data:`STATUS_OK`, :data:`STATUS_REGRESSED`,
    :data:`STATUS_INCONCLUSIVE`.  The distinction matters to gates: a
    fully-cached run has no throughput number — that is *no data*, not
    a regression, and must never fail CI.
    """

    status: str
    messages: tuple[str, ...] = ()
    current: float | None = None
    baseline: float | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def regressed(self) -> bool:
        return self.status == STATUS_REGRESSED

    @property
    def inconclusive(self) -> bool:
        return self.status == STATUS_INCONCLUSIVE


def compare_perf_artifacts(
    current: dict, baseline: dict, warn_threshold: float = 0.15
) -> PerfComparison:
    """Compare headline simulation throughput against a baseline artifact.

    Returns a :class:`PerfComparison`: ``ok`` when the current run's
    ``totals.cycles_per_sec`` is within ``warn_threshold`` of the
    baseline's (or faster), ``regressed`` when it fell below the band,
    and ``inconclusive`` when either side has no throughput number at
    all (e.g. every job came from cache).  Callers decide severity:
    ``repro bench --baseline`` prints warnings, ``--fail-threshold``
    fails the run on ``regressed`` *only* — inconclusive comparisons
    warn and pass, because "no data" is not "slower".
    """
    cur = current.get("totals", {}).get("cycles_per_sec")
    base = baseline.get("totals", {}).get("cycles_per_sec")
    if cur is None or base is None or cur <= 0 or base <= 0:
        return PerfComparison(
            status=STATUS_INCONCLUSIVE,
            messages=(
                "perf comparison inconclusive: cycles_per_sec missing "
                f"(current={cur!r}, baseline={base!r}) — all jobs cached?",
            ),
            current=cur,
            baseline=base,
        )
    ratio = cur / base
    if ratio < 1.0 - warn_threshold:
        return PerfComparison(
            status=STATUS_REGRESSED,
            messages=(
                f"simulation throughput regressed {1.0 - ratio:.0%} vs "
                f"baseline {baseline.get('label', '?')!r}: "
                f"{cur:,.0f} cycles/sec vs {base:,.0f} "
                f"(warn threshold {warn_threshold:.0%})",
            ),
            current=cur,
            baseline=base,
        )
    return PerfComparison(status=STATUS_OK, current=cur, baseline=base)
