"""The event bus: fan-out from simulator hooks to subscribers.

A :class:`EventBus` only exists while observability is enabled — the SM
holds no bus when disabled, so the disabled hot path pays a single
``is None`` branch per cycle and nothing else (see
:mod:`repro.sim.sm`).  Subscribers are plain callables; they may filter
by kind at subscription time so high-rate kinds (issue events) are only
dispatched where someone listens.

:class:`EventLog` is the standard recording subscriber: an append-only
list of :class:`~repro.observe.events.SimEvent` with the query helpers
the test suite and exporters need (kind/warp filters, SRP hold
intervals).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.observe.events import (
    ACQUIRE_OK,
    ALL_KINDS,
    RELEASE,
    SimEvent,
    WARP_FINISH,
)

Subscriber = Callable[[SimEvent], None]


class EventBus:
    """Synchronous publish/subscribe dispatch for :class:`SimEvent`s."""

    __slots__ = ("_any", "_by_kind")

    def __init__(self) -> None:
        self._any: list[Subscriber] = []
        self._by_kind: dict[str, list[Subscriber]] = {}

    def subscribe(self, fn: Subscriber, kind: str | None = None) -> Subscriber:
        """Register ``fn`` for one kind (or every event when ``None``).

        Returns ``fn`` so it can be used as a decorator.
        """
        if kind is None:
            self._any.append(fn)
        else:
            if kind not in ALL_KINDS:
                known = ", ".join(sorted(ALL_KINDS))
                raise KeyError(f"unknown event kind {kind!r} (known: {known})")
            self._by_kind.setdefault(kind, []).append(fn)
        return fn

    def emit(self, event: SimEvent) -> None:
        """Deliver ``event`` to wildcard and kind subscribers, in order."""
        for fn in self._any:
            fn(event)
        subs = self._by_kind.get(event.kind)
        if subs is not None:
            for fn in subs:
                fn(event)

    @property
    def subscriber_count(self) -> int:
        return len(self._any) + sum(len(v) for v in self._by_kind.values())


class EventLog:
    """An append-only event record with query helpers.

    Usable directly as a bus subscriber::

        log = EventLog()
        bus.subscribe(log.append)
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[SimEvent] = []

    def append(self, event: SimEvent) -> None:
        self.events.append(event)

    # -- queries ---------------------------------------------------------------
    def of_kind(self, kind: str) -> list[SimEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_warp(self, warp_id: int) -> list[SimEvent]:
        return [e for e in self.events if e.warp_id == warp_id]

    def warp_ids(self) -> list[int]:
        """Sorted warp ids that appear in any warp-subject event."""
        return sorted({e.warp_id for e in self.events if e.warp_id >= 0})

    def hold_intervals(self, warp_id: int) -> list[tuple[int, int]]:
        """(acquire cycle, release cycle) pairs for one warp.

        An unmatched trailing acquire (section reclaimed at EXIT) closes
        at the warp's finish event, or at the last logged cycle.
        """
        intervals: list[tuple[int, int]] = []
        start: Optional[int] = None
        finish: Optional[int] = None
        for e in self.events:
            if e.warp_id != warp_id:
                continue
            if e.kind == ACQUIRE_OK and start is None:
                start = e.cycle
            elif e.kind == RELEASE and start is not None:
                intervals.append((start, e.cycle))
                start = None
            elif e.kind == WARP_FINISH:
                finish = e.cycle
        if start is not None:
            last = finish if finish is not None else (
                self.events[-1].cycle if self.events else start
            )
            intervals.append((start, last))
        return intervals

    def stall_totals(self) -> dict[str, int]:
        """Idle-slot sums per stall category, from the STALL stream."""
        totals: dict[str, int] = {}
        for e in self.events:
            if e.kind == "stall":
                totals[e.detail] = totals.get(e.detail, 0) + e.value
        return totals

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self.events)
