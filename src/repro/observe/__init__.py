"""Simulation observability: event bus, probes, exporters, perf artifacts.

The subsystem is strictly opt-in: an SM without an attached
:class:`SmObserver` pays one ``is not None`` branch per cycle and zero
allocations.  With one attached, every acquire/release/issue decision,
stall attribution delta, and CTA lifecycle event flows over the
:class:`EventBus`, cycle-sampled :class:`ProbeSeries` timelines record
levels, and the exporters turn both into Perfetto-loadable Chrome
traces, CSV timelines, and text profile reports.
"""

from repro.observe.bus import EventBus, EventLog
from repro.observe.events import (
    ACQUIRE_BLOCKED,
    ACQUIRE_OK,
    ALL_KINDS,
    CTA_LAUNCH,
    CTA_RETIRE,
    FAST_FORWARD,
    ISSUE,
    JOB_DONE,
    JOB_FAILED,
    JOB_KINDS,
    JOB_QUEUED,
    JOB_RESUMED,
    JOB_RUNNING,
    RELEASE,
    SECTION_ACQUIRE,
    SECTION_RELEASE,
    STALL,
    STALL_CATEGORIES,
    WARP_FINISH,
    WATCHDOG,
    SimEvent,
)
from repro.observe.export import (
    chrome_trace_events,
    job_trace_events,
    timeline_rows,
    validate_chrome_trace,
    validate_trace_file,
    write_chrome_trace,
    write_timeline_csv,
)
from repro.observe.hooks import ObservingTechniqueState, SmObserver
from repro.observe.perf import (
    PERF_ARTIFACT_VERSION,
    STATUS_INCONCLUSIVE,
    STATUS_OK,
    STATUS_REGRESSED,
    PerfComparison,
    artifact_filename,
    compare_perf_artifacts,
    load_perf_artifact,
    perf_artifact,
    write_perf_artifact,
)
from repro.observe.probes import ProbeSample, ProbeSeries
from repro.observe.report import profile_report
from repro.observe.session import ProfileResult, profile_kernel

__all__ = [
    "ACQUIRE_BLOCKED",
    "ACQUIRE_OK",
    "ALL_KINDS",
    "CTA_LAUNCH",
    "CTA_RETIRE",
    "EventBus",
    "EventLog",
    "FAST_FORWARD",
    "ISSUE",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_KINDS",
    "JOB_QUEUED",
    "JOB_RESUMED",
    "JOB_RUNNING",
    "ObservingTechniqueState",
    "PERF_ARTIFACT_VERSION",
    "PerfComparison",
    "ProbeSample",
    "ProbeSeries",
    "ProfileResult",
    "RELEASE",
    "SECTION_ACQUIRE",
    "SECTION_RELEASE",
    "STALL",
    "STALL_CATEGORIES",
    "STATUS_INCONCLUSIVE",
    "STATUS_OK",
    "STATUS_REGRESSED",
    "SimEvent",
    "SmObserver",
    "WARP_FINISH",
    "WATCHDOG",
    "artifact_filename",
    "chrome_trace_events",
    "compare_perf_artifacts",
    "job_trace_events",
    "load_perf_artifact",
    "perf_artifact",
    "profile_kernel",
    "profile_report",
    "timeline_rows",
    "validate_chrome_trace",
    "validate_trace_file",
    "write_chrome_trace",
    "write_perf_artifact",
    "write_timeline_csv",
]
