"""Cycle-sampled probes: columnar timelines of SM state.

Where the event bus captures *transitions*, probes capture *levels*: at
a configurable stride (every N-th cycle) the observer snapshots SRP
occupancy, the warp-status histogram, live-register pressure, and the
cumulative issue/stall counters.  Columns are parallel Python lists —
appending four ints per sample keeps full-length runs cheap at stride
64 (the default), and exporters read the columns directly.

Live-register pressure counts registers a warp can architecturally
touch right now: ``|Bs|`` per resident warp (its private base set) plus
``|Es|`` per currently-held SRP section, times the warp size.  On a
non-RegMutex kernel it degrades to ``regs_per_thread × warps``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.warp import WarpStatus


@dataclass(frozen=True)
class ProbeSample:
    """One row of the timeline (a convenience view over the columns)."""

    cycle: int
    srp_in_use: int
    srp_total: int
    warps_ready: int
    warps_at_barrier: int
    warps_waiting_acquire: int
    resident_warps: int
    section_holders: int
    live_registers: int
    instructions_issued: int
    idle_scheduler_cycles: int
    stall_memory: int
    stall_scoreboard: int
    stall_barrier: int
    stall_acquire: int


_COLUMNS = (
    "cycle", "srp_in_use", "srp_total", "warps_ready", "warps_at_barrier",
    "warps_waiting_acquire", "resident_warps", "section_holders",
    "live_registers", "instructions_issued", "idle_scheduler_cycles",
    "stall_memory", "stall_scoreboard", "stall_barrier", "stall_acquire",
)


class ProbeSeries:
    """Columnar store of cycle-sampled SM state.

    ``sched_issued`` is the one non-scalar column: a tuple per sample of
    each scheduler's cumulative issued-instruction count, feeding the
    per-scheduler Perfetto tracks and the idle-breakdown report.
    """

    __slots__ = tuple(_COLUMNS) + ("stride", "sched_issued")

    def __init__(self, stride: int = 64) -> None:
        if stride <= 0:
            raise ValueError("sampling stride must be positive")
        self.stride = stride
        self.sched_issued: list[tuple[int, ...]] = []
        for name in _COLUMNS:
            setattr(self, name, [])

    def __len__(self) -> int:
        return len(self.cycle)

    @property
    def columns(self) -> tuple[str, ...]:
        return _COLUMNS

    def sample(self, sm) -> None:
        """Append one row snapshotted from a live SM.

        Under the columnar engine the histogram is one bulk pass over
        the state columns (:meth:`repro.sim.columnar.ColumnarCore.
        probe_counts` — vectorized when numpy is present) instead of a
        per-warp object walk; both paths count the same thing, which
        the column-view tests assert.
        """
        core = getattr(sm, "_columnar", None)
        if core is not None:
            (
                ready, barrier, waiting, resident, holders, live,
            ) = core.probe_counts()
        else:
            ready = barrier = waiting = resident = holders = live = 0
            for warps in sm._warps_by_scheduler:
                for w in warps:
                    status = w.status
                    if status is WarpStatus.FINISHED:
                        continue
                    resident += 1
                    if status is WarpStatus.READY:
                        ready += 1
                    elif status is WarpStatus.AT_BARRIER:
                        barrier += 1
                    elif status is WarpStatus.WAITING_ACQUIRE:
                        waiting += 1
                    md = w.kernel.metadata
                    base = md.base_set_size or md.regs_per_thread
                    live += base
                    if w.holds_extended_set:
                        holders += 1
                        live += md.extended_set_size or 0

        view = sm.technique.srp_view()
        in_use, total = view if view is not None else (0, 0)
        stats = sm.stats
        self.cycle.append(sm.cycle)
        self.srp_in_use.append(in_use)
        self.srp_total.append(total)
        self.warps_ready.append(ready)
        self.warps_at_barrier.append(barrier)
        self.warps_waiting_acquire.append(waiting)
        self.resident_warps.append(resident)
        self.section_holders.append(holders)
        self.live_registers.append(live * sm.config.warp_size)
        self.instructions_issued.append(stats.instructions_issued)
        self.idle_scheduler_cycles.append(stats.idle_scheduler_cycles)
        self.stall_memory.append(stats.stall_memory)
        self.stall_scoreboard.append(stats.stall_scoreboard)
        self.stall_barrier.append(stats.stall_barrier)
        self.stall_acquire.append(stats.stall_acquire)
        self.sched_issued.append(
            tuple(s.issued_count for s in sm.schedulers)
        )

    # -- views -----------------------------------------------------------------
    def row(self, i: int) -> ProbeSample:
        return ProbeSample(*(getattr(self, name)[i] for name in _COLUMNS))

    def rows(self) -> list[ProbeSample]:
        return [self.row(i) for i in range(len(self))]

    def srp_utilization(self) -> float:
        """Mean fraction of SRP sections in use across the samples."""
        pairs = [
            (u, t) for u, t in zip(self.srp_in_use, self.srp_total) if t > 0
        ]
        if not pairs:
            return 0.0
        return sum(u / t for u, t in pairs) / len(pairs)

    def peak_srp_in_use(self) -> int:
        return max(self.srp_in_use, default=0)
