"""The text profile report: one readable page per profiled run.

Combines the aggregate counters (via
:mod:`repro.analysis.bottleneck`'s flame-style attribution), the
acquire/SRP statistics the paper's time-sharing story revolves around,
and the cycle-sampled timelines into the report ``repro profile``
prints.
"""

from __future__ import annotations

from repro.arch.config import GpuConfig
from repro.observe.bus import EventLog
from repro.observe.probes import ProbeSeries
from repro.sim.stats import SmStats


def _sparkline(values: list[float], width: int = 48) -> str:
    blocks = " .:-=+*#%@"
    if not values:
        return "(no samples)"
    stride = max(1, len(values) // width)
    peak = max(max(values), 1e-12)
    chars = []
    for v in values[::stride]:
        frac = min(max(v / peak, 0.0), 1.0)
        chars.append(blocks[min(int(frac * (len(blocks) - 1)),
                                len(blocks) - 1)])
    return "".join(chars)


def profile_report(
    stats: SmStats,
    config: GpuConfig,
    samples: ProbeSeries | None = None,
    log: EventLog | None = None,
    title: str = "profile",
) -> str:
    """Render the profile report for one SM run."""
    # Local import: repro.analysis imports repro.sim, whose trace shim
    # imports this package — a module-level import here would be a cycle.
    from repro.analysis.bottleneck import attribute_bottlenecks

    lines = [title, "=" * len(title), ""]

    report = attribute_bottlenecks(stats, num_schedulers=config.num_schedulers)
    occupancy = stats.achieved_occupancy(config.max_warps_per_sm)
    lines.append(
        f"cycles {stats.cycles:,}   instructions {stats.instructions_issued:,}"
        f"   IPC {report.issue_utilization * config.num_schedulers:.2f}"
        f"   achieved occupancy {occupancy:.0%}"
    )
    lines.append("")
    lines.append("stall attribution")
    lines.append(report.flame())
    lines.append("")

    if stats.acquire_attempts:
        waits = stats.acquire_wait_cycles
        blocked = stats.acquire_attempts - stats.acquire_successes
        mean_wait = waits / blocked if blocked else 0.0
        lines.append("SRP time-sharing")
        lines.append(
            f"  acquires {stats.acquire_attempts:,} "
            f"({stats.acquire_success_rate:.0%} immediate), "
            f"releases {stats.release_count:,}"
        )
        lines.append(
            f"  acquire-wait {waits:,} warp-cycles "
            f"(mean {mean_wait:.0f} per blocked acquire)"
        )
        lines.append("")

    if samples is not None and len(samples):
        lines.append(
            f"timelines ({len(samples)} samples, stride {samples.stride})"
        )
        if any(t > 0 for t in samples.srp_total):
            util = samples.srp_utilization()
            lines.append(
                f"  SRP in use    |{_sparkline(list(map(float, samples.srp_in_use)))}| "
                f"mean {util:.0%} of {max(samples.srp_total)} sections, "
                f"peak {samples.peak_srp_in_use()}"
            )
        lines.append(
            f"  warps ready   |{_sparkline(list(map(float, samples.warps_ready)))}| "
            f"peak {max(samples.warps_ready)}"
        )
        if any(samples.warps_waiting_acquire):
            lines.append(
                f"  wait acquire  |{_sparkline(list(map(float, samples.warps_waiting_acquire)))}| "
                f"peak {max(samples.warps_waiting_acquire)}"
            )
        lines.append(
            f"  live registers|{_sparkline(list(map(float, samples.live_registers)))}| "
            f"peak {max(samples.live_registers):,} "
            f"of {config.registers_per_sm:,}"
        )
        lines.append("")

    if log is not None and len(log):
        holders = []
        for warp_id in log.warp_ids():
            held = sum(e - s for s, e in log.hold_intervals(warp_id))
            if held:
                holders.append((held, warp_id))
        if holders:
            holders.sort(reverse=True)
            top = ", ".join(
                f"w{warp_id} ({held:,}cy)" for held, warp_id in holders[:6]
            )
            lines.append(f"top section holders: {top}")
            lines.append("")
        lines.append(f"event log: {len(log):,} events")

    return "\n".join(lines).rstrip() + "\n"
