"""Attachment points between the simulator and the event bus.

Two cooperating pieces:

* :class:`ObservingTechniqueState` wraps the installed technique state
  (decorator pattern, the same shape the old ``TracingTechniqueState``
  used) and publishes issue / acquire / release / warp-finish events.
  Because the SM already virtual-dispatches through its technique state,
  wrapping costs nothing when observability is off — no wrapper exists.

* :class:`SmObserver` owns the bus, the event log, and the probe
  series for one SM.  The SM calls exactly one observer hook per cycle
  (``on_cycle``), from which stall attribution (aggregate-counter
  deltas, so the event stream sums to ``SmStats`` by construction *and*
  by test) and stride-sampled probes are driven.  CTA, fast-forward,
  watchdog, and run-end hooks fire on their (rare) occasions.

``SmObserver.attach`` is the one-call entry point::

    obs = SmObserver(stride=64)
    obs.attach(sm)          # before sm.run()
    sm.run()
    obs.log, obs.samples    # events + timelines
"""

from __future__ import annotations

from repro.observe.bus import EventBus, EventLog
from repro.observe.events import (
    ACQUIRE_BLOCKED,
    ACQUIRE_OK,
    CHECKPOINT,
    CTA_LAUNCH,
    CTA_RETIRE,
    FAST_FORWARD,
    ISSUE,
    RELEASE,
    RESTORE,
    SECTION_ACQUIRE,
    SECTION_RELEASE,
    STALL,
    WARP_FINISH,
    WATCHDOG,
    SimEvent,
)
from repro.observe.probes import ProbeSeries
from repro.sim.technique import SmTechniqueState
from repro.sim.warp import Warp


class ObservingTechniqueState(SmTechniqueState):
    """Wraps another technique state and publishes its decisions."""

    def __init__(self, inner: SmTechniqueState, bus: EventBus) -> None:
        super().__init__(inner.kernel, inner.config, inner.stats)
        self.inner = inner
        self.bus = bus

    def can_issue(self, warp: Warp, inst, cycle: int) -> bool:
        return self.inner.can_issue(warp, inst, cycle)

    def on_issue(self, warp: Warp, inst, cycle: int) -> None:
        self.bus.emit(SimEvent(
            cycle, ISSUE, warp.warp_id, warp.pc, inst.opcode.value
        ))
        self.inner.on_issue(warp, inst, cycle)

    def try_acquire(self, warp: Warp, cycle: int) -> bool:
        granted = self.inner.try_acquire(warp, cycle)
        if granted:
            self.bus.emit(SimEvent(
                cycle, ACQUIRE_OK, warp.warp_id, warp.pc,
                value=warp.srp_section if warp.srp_section is not None else 0,
            ))
        else:
            self.bus.emit(SimEvent(
                cycle, ACQUIRE_BLOCKED, warp.warp_id, warp.pc
            ))
        return granted

    def release(self, warp: Warp, cycle: int) -> None:
        held_before = warp.holds_extended_set
        section = warp.srp_section
        self.inner.release(warp, cycle)
        if held_before:
            self.bus.emit(SimEvent(
                cycle, RELEASE, warp.warp_id, warp.pc,
                value=section if section is not None else 0,
            ))

    def on_warp_finish(self, warp: Warp, cycle: int) -> None:
        self.inner.on_warp_finish(warp, cycle)
        self.bus.emit(SimEvent(cycle, WARP_FINISH, warp.warp_id, warp.pc))

    def wakeup_pending(self):
        return self.inner.wakeup_pending()

    def check_invariants(self, cycle: int) -> None:
        self.inner.check_invariants(cycle)

    def debug_snapshot(self) -> dict:
        return self.inner.debug_snapshot()

    def resolve_physical(self, warp: Warp, arch_reg: int) -> int:
        return self.inner.resolve_physical(warp, arch_reg)

    def srp_view(self):
        return self.inner.srp_view()

    def state_snapshot(self) -> dict:
        return self.inner.state_snapshot()

    def state_restore(self, payload: dict, warps_by_id) -> None:
        self.inner.state_restore(payload, warps_by_id)


# Stat-attribute name -> event category label, in attribution priority
# order (matches the SM's saw_* precedence).
_STALL_FIELDS = (
    ("stall_acquire", "acquire"),
    ("stall_memory", "memory"),
    ("stall_barrier", "barrier"),
    ("stall_scoreboard", "scoreboard"),
)


class SmObserver:
    """Per-SM observability session: bus + event log + probe series."""

    def __init__(
        self,
        bus: EventBus | None = None,
        stride: int = 64,
        collect_log: bool = True,
    ) -> None:
        self.bus = bus if bus is not None else EventBus()
        self.samples = ProbeSeries(stride=stride)
        self.log: EventLog | None = None
        if collect_log:
            self.log = EventLog()
            self.bus.subscribe(self.log.append)
        self.sm = None
        self._next_sample = 0
        self._prev_stalls = [0] * len(_STALL_FIELDS)

    # -- attachment -------------------------------------------------------------
    def attach(self, sm) -> "SmObserver":
        """Install this observer on an SM (idempotent per SM).

        Replacing ``sm.technique`` with the observing wrapper is safe
        under both issue engines: the event-driven stepper reads
        ``self.technique`` afresh each cycle (it holds no reference to
        the inner state), and the wrapper forwards ``wakeup_pending``
        verbatim, so acquire re-arms still reach the wake queues.
        """
        if sm._observer is not None:
            raise ValueError(f"SM {sm.sm_id} already has an observer")
        self.sm = sm
        sm._observer = self
        sm.technique = ObservingTechniqueState(sm.technique, self.bus)
        # SRP-level section transitions, when the technique has a pool.
        srp = getattr(sm.technique.inner, "srp", None)
        if srp is not None and hasattr(srp, "on_transition"):
            srp.on_transition = self._on_srp_transition
        # Seed the stall baseline in case the SM already ran cycles.
        stats = sm.stats
        self._prev_stalls = [getattr(stats, f) for f, _ in _STALL_FIELDS]
        self._next_sample = sm.cycle
        return self

    # -- SM-side hooks ----------------------------------------------------------
    def on_cycle(self, sm) -> None:
        """The once-per-cycle hook: stall deltas + stride sampling."""
        stats = sm.stats
        prev = self._prev_stalls
        cycle = sm.cycle
        for i, (field, category) in enumerate(_STALL_FIELDS):
            now = getattr(stats, field)
            delta = now - prev[i]
            if delta:
                self.bus.emit(SimEvent(
                    cycle, STALL, detail=category, value=delta
                ))
                prev[i] = now
        if cycle >= self._next_sample:
            self.samples.sample(sm)
            self._next_sample = cycle + self.samples.stride

    def on_cta_launch(self, sm, cta) -> None:
        self.bus.emit(SimEvent(
            sm.cycle, CTA_LAUNCH, value=cta.cta_id,
            detail=cta.warps[0].kernel.name if cta.warps else None,
        ))

    def on_cta_retire(self, sm, cta) -> None:
        self.bus.emit(SimEvent(sm.cycle, CTA_RETIRE, value=cta.cta_id))

    def on_fast_forward(self, sm, skipped: int) -> None:
        self.bus.emit(SimEvent(sm.cycle, FAST_FORWARD, value=skipped))

    def on_watchdog(self, sm, summary: str) -> None:
        self.bus.emit(SimEvent(sm.cycle, WATCHDOG, detail=summary))

    def on_checkpoint(self, sm, cycle: int) -> None:
        self.bus.emit(SimEvent(cycle, CHECKPOINT, value=cycle))

    def on_restore(self, sm, cycle: int) -> None:
        # Re-seed the stall baseline and sample cursor from the restored
        # counters: deltas are measured from the restore point onward,
        # not from attach time (which may predate the checkpoint).
        stats = sm.stats
        self._prev_stalls = [getattr(stats, f) for f, _ in _STALL_FIELDS]
        self._next_sample = sm.cycle
        self.bus.emit(SimEvent(cycle, RESTORE, value=cycle))

    def on_run_end(self, sm) -> None:
        """Flush trailing stall deltas and take a final sample."""
        self.on_cycle(sm)
        if not len(self.samples) or self.samples.cycle[-1] != sm.cycle:
            self.samples.sample(sm)

    # -- SRP-side hook ----------------------------------------------------------
    def _on_srp_transition(self, kind: str, slot: int, section: int) -> None:
        cycle = self.sm.cycle if self.sm is not None else 0
        event_kind = SECTION_ACQUIRE if kind == "acquire" else SECTION_RELEASE
        self.bus.emit(SimEvent(cycle, event_kind, warp_id=slot, value=section))
