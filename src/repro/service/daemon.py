"""The simulation daemon: one warm service in front of the run store.

Every ``repro`` invocation used to pay process startup, simulator
import, and a private cache load.  :class:`SimulationService` keeps one
asyncio front end (Unix-domain socket, optionally TCP) over one
journaled :class:`~repro.harness.runner.ExperimentRunner` and one
persistent ``ProcessPoolExecutor``, so the marginal cost of a
submission is a cache-key lookup.

Deduplication is layered, cheapest first:

1. **Batch** — a submission's own duplicate jobs collapse through
   :func:`~repro.harness.orchestrator.ordered_unique_jobs`, the same
   function the batch orchestrator applies across figure specs.
2. **Run store** — a content-addressed fingerprint hit in the shared
   journaled cache answers instantly with zero simulation cycles
   (including results journaled by concurrent *processes*, which are
   adopted via journal replay before declaring a miss).
3. **In-flight singleflight** — a submission whose key is already
   computing attaches to the running computation; both clients stream
   the same job id and receive the same record when it lands.

Execution rides PR 7's crash-safety machinery: each job runs in a pool
worker with periodic checkpoints keyed like the run cache, a worker
crash retries (resuming from the surviving checkpoint), a per-job
timeout — the client's override or the service default — fails the job
with kind ``timeout`` and recycles the pool, and every completed record
is write-ahead journaled before the periodic flush folds it into the
cache file.  Killing the daemon itself (SIGKILL) therefore loses
nothing: a restarted daemon adopts journaled records and resumes
interrupted jobs from their checkpoints.

Job lifecycle (queued → running → resumed → done/failed) is published
twice from one code path: as wire frames to subscribed clients, and as
``JOB_*`` :class:`~repro.observe.events.SimEvent`s on an observe
:class:`~repro.observe.bus.EventBus` (wall-clock milliseconds in the
``cycle`` field), which is what makes daemon-executed jobs exportable
to Perfetto via :func:`~repro.observe.export.job_trace_events`.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.errors import (
    FAILURE_TIMEOUT,
    FAILURE_WORKER_CRASH,
    ServiceProtocolError,
    ServiceQueueFullError,
    ServiceSpecError,
    ServiceUnavailableError,
)
from repro.harness.experiments import figure_spec
from repro.harness.orchestrator import _simulate, ordered_unique_jobs
from repro.harness.runner import ExperimentRunner
from repro.harness.spec import JobFailure, JobSpec, materialize_job
from repro.harness.telemetry import (
    MODE_CACHED,
    MODE_POOL,
    JobTiming,
    SessionTelemetry,
)
from repro.observe.bus import EventBus, EventLog
from repro.observe.events import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RESUMED,
    JOB_RUNNING,
    SimEvent,
)
from repro.service.protocol import (
    decode_frame,
    encode_frame,
    error_frame,
    job_from_wire,
    record_to_wire,
)
from repro.workloads.suite import get_app

# Job status vocabulary (wire `status` field values).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TERMINAL = (DONE, FAILED)


@dataclass
class ServiceConfig:
    """Static knobs of one daemon instance."""

    socket_path: str | None = None
    host: str | None = None
    port: int = 0
    cache_path: str = ".bench_cache.json"
    workers: int = 2
    seed: int = 2018
    target_ctas_per_sm: int = 24
    job_timeout: float | None = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    max_queue: int = 64
    checkpoint_dir: str | None = None
    checkpoint_interval: int = 0
    flush_interval: float = 5.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None)")


@dataclass
class JobState:
    """One daemon-side computation (possibly shared by many clients)."""

    job_id: int
    key: str
    job: JobSpec
    timeout: float | None
    status: str = QUEUED
    record: object = None
    failure: JobFailure | None = None
    timing: JobTiming | None = None
    resumed_from_cycle: int | None = None
    dedup: str | None = None       # how the *first* submitter got it
    attach_count: int = 0          # later submitters (singleflight hits)
    task: asyncio.Task | None = field(default=None, compare=False)


class SimulationService:
    """The daemon: submission intake, layered dedup, pool execution."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.runner = ExperimentRunner(
            target_ctas_per_sm=config.target_ctas_per_sm,
            seed=config.seed,
            cache_path=config.cache_path,
        )
        self.telemetry = SessionTelemetry(workers=config.workers)
        self.bus = EventBus()
        self.log = EventLog()
        self.bus.subscribe(self.log.append)
        self.stats = {
            "submitted": 0,
            "simulations": 0,
            "dedup_batch": 0,
            "dedup_store": 0,
            "dedup_inflight": 0,
            "timeouts": 0,
            "pool_restarts": 0,
        }
        self._pool: ProcessPoolExecutor | None = None
        self._pool_gen = 0
        self._pool_lock = asyncio.Lock()
        self._inflight: dict[str, JobState] = {}
        self._jobs: dict[int, JobState] = {}
        self._next_job_id = 1
        self._next_sub_id = 1
        self._subscribers: dict[int, asyncio.Queue] = {}
        self._servers: list[asyncio.base_events.Server] = []
        self._shutdown = asyncio.Event()
        self._draining = False
        self._closing = False
        self._flush_task: asyncio.Task | None = None
        self._started_at = time.monotonic()

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> None:
        """Bring up the worker pool and the periodic cache flusher
        (no sockets yet — tests and the fault campaign drive the
        service in-process through :meth:`submit`)."""
        self._pool = self._new_pool()
        if self.config.flush_interval > 0:
            self._flush_task = asyncio.create_task(self._flush_loop())

    async def start_servers(self) -> None:
        """Bind the Unix-domain socket and/or the TCP listener."""
        limit = 2 * (1 << 20)   # line buffer above MAX_FRAME_BYTES
        if self.config.socket_path:
            try:
                os.unlink(self.config.socket_path)
            except FileNotFoundError:
                pass
            self._servers.append(await asyncio.start_unix_server(
                self._handle_conn, path=self.config.socket_path, limit=limit,
            ))
        if self.config.host is not None:
            self._servers.append(await asyncio.start_server(
                self._handle_conn, host=self.config.host,
                port=self.config.port, limit=limit,
            ))
        if not self._servers:
            raise ValueError("service has neither a socket path nor a host")

    def begin_drain(self) -> None:
        """Stop accepting submissions; finish what is in flight."""
        self._draining = True
        self._shutdown.set()

    async def run(self) -> int:
        """Serve until SIGTERM/SIGINT, drain, flush, exit 0."""
        await self.start()
        await self.start_servers()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, self.begin_drain)
        await self._shutdown.wait()
        await self.aclose()
        return 0

    async def aclose(self) -> None:
        """Drain in-flight jobs, flush the cache, release everything."""
        self._draining = True
        for server in self._servers:
            server.close()
        tasks = [s.task for s in self._inflight.values() if s.task]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        # Let follow-mode connection handlers forward the final events.
        await asyncio.sleep(0)
        self._closing = True
        if self._flush_task is not None:
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
        self.runner.flush()
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self.config.socket_path:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass

    async def _flush_loop(self) -> None:
        """Fold journaled records into the cache file periodically, so a
        long-lived daemon's results become visible to plain ``repro``
        batch runs sharing the cache path."""
        while True:
            await asyncio.sleep(self.config.flush_interval)
            self.runner.flush()

    # -- submission intake ----------------------------------------------------
    def _key_for(self, job: JobSpec) -> str:
        kernel, technique, _ = materialize_job(job)
        return self.runner.key_for(kernel, job.config, technique)

    def _store_lookup(self, key: str):
        record = self.runner.cached(key)
        if record is None:
            # Adopt results journaled by concurrent processes sharing
            # the cache path (the same replay runner.run performs).
            self.runner._replay_journal()
            record = self.runner.cached(key)
        return record

    def submit(
        self, jobs: list[JobSpec], timeout: float | None = None
    ) -> list[tuple[JobState, str | None]]:
        """Classify, dedup, and enqueue a submission.

        Returns one ``(state, dedup)`` pair per unique job, in
        submission order — ``dedup`` is how *this* submission got the
        state ("store", "inflight", or None for a fresh computation),
        which differs from ``state.dedup`` when attaching to another
        client's in-flight job.  Raises
        :class:`ServiceUnavailableError` while draining and
        :class:`ServiceQueueFullError` when the new computations would
        overflow ``max_queue`` (nothing is enqueued in that case —
        backpressure is all-or-nothing per submission).
        """
        if self._draining:
            raise ServiceUnavailableError(
                "service is draining toward shutdown; resubmit elsewhere"
            )
        if timeout is not None and timeout <= 0:
            raise ServiceSpecError("submission timeout must be positive")
        jobs = list(jobs)
        unique = ordered_unique_jobs(jobs)
        self.stats["dedup_batch"] += len(jobs) - len(unique)
        effective_timeout = (
            timeout if timeout is not None else self.config.job_timeout
        )

        # Classification pass (no side effects): what would each job do?
        plan: list[tuple[JobSpec, str, str | None, object]] = []
        fresh = 0
        for job in unique:
            key = self._key_for(job)
            if key in self._inflight:
                plan.append((job, key, "inflight", None))
                continue
            record = self._store_lookup(key)
            if record is not None:
                plan.append((job, key, "store", record))
            else:
                plan.append((job, key, None, None))
                fresh += 1
        active = sum(
            1 for s in self._inflight.values() if s.status not in TERMINAL
        )
        if active + fresh > self.config.max_queue:
            raise ServiceQueueFullError(
                f"queue full: {active} active + {fresh} new > "
                f"max_queue={self.config.max_queue}; retry later"
            )

        # Commit pass: attach, answer from store, or spawn.
        results: list[tuple[JobState, str | None]] = []
        for job, key, dedup, record in plan:
            if dedup == "inflight":
                state = self._inflight[key]
                state.attach_count += 1
                self.stats["dedup_inflight"] += 1
            elif dedup == "store":
                state = self._new_state(job, key, effective_timeout)
                state.dedup = "store"
                self.stats["dedup_store"] += 1
                self._emit(state, JOB_QUEUED, QUEUED)
                state.timing = JobTiming(
                    job.label, 0.0, MODE_CACHED, cycles=record.cycles
                )
                self.telemetry.timings.append(state.timing)
                self._finish(state, record=record)
            else:
                state = self._new_state(job, key, effective_timeout)
                self._inflight[key] = state
                self._emit(state, JOB_QUEUED, QUEUED)
                state.task = asyncio.get_running_loop().create_task(
                    self._execute(state)
                )
            self.stats["submitted"] += 1
            results.append((state, dedup))
        return results

    def _new_state(
        self, job: JobSpec, key: str, timeout: float | None
    ) -> JobState:
        state = JobState(
            job_id=self._next_job_id, key=key, job=job, timeout=timeout
        )
        self._next_job_id += 1
        self._jobs[state.job_id] = state
        return state

    # -- execution ------------------------------------------------------------
    def _job_checkpoint_dir(self, key: str) -> str | None:
        if self.config.checkpoint_dir is None \
                or self.config.checkpoint_interval <= 0:
            return None
        return os.path.join(self.config.checkpoint_dir, key[:16])

    async def _execute(self, state: JobState) -> None:
        try:
            await self._run_job(state)
        finally:
            self._inflight.pop(state.key, None)

    async def _run_job(self, state: JobState) -> None:
        state.status = RUNNING
        self._emit(state, JOB_RUNNING, RUNNING)
        attempt = 1
        while True:
            gen = self._pool_gen
            future = self._pool.submit(
                _simulate, state.job, self.runner.seed,
                self.runner.target_ctas_per_sm,
                self._job_checkpoint_dir(state.key),
                self.config.checkpoint_interval,
            )
            try:
                record, failure, seconds, resumed = await asyncio.wait_for(
                    asyncio.wrap_future(future), timeout=state.timeout
                )
            except asyncio.TimeoutError:
                # The worker is past its budget and cannot be preempted
                # in place: declare the job timed out and recycle the
                # pool so the wedged process dies.
                self.stats["timeouts"] += 1
                await self._restart_pool(gen)
                self._finish(
                    state,
                    failure=(FAILURE_TIMEOUT,
                             f"job still running after "
                             f"{state.timeout:.1f}s timeout; "
                             "worker recycled"),
                    seconds=state.timeout or 0.0, attempts=attempt,
                    simulated=True,
                )
                return
            except BrokenExecutor as exc:
                await self._restart_pool(gen)
                if attempt <= self.config.max_retries:
                    attempt += 1
                    await asyncio.sleep(
                        self.config.retry_backoff * attempt
                    )
                    continue
                self._finish(
                    state,
                    failure=(FAILURE_WORKER_CRASH,
                             f"worker process died ({exc}); gave up "
                             f"after {attempt} attempts"),
                    seconds=0.0, attempts=attempt, simulated=True,
                )
                return
            except asyncio.CancelledError:
                if self._closing:
                    raise
                # Our (pending) pool future was collateral of a sibling
                # job's pool recycle — the work never started; redo it
                # on the fresh pool without consuming a retry.
                continue
            break
        self.stats["simulations"] += 1
        state.resumed_from_cycle = resumed
        if resumed is not None:
            self._emit(state, JOB_RESUMED, RUNNING, pc=resumed,
                       resumed_from_cycle=resumed)
        self._finish(state, record=record, failure=failure,
                     seconds=seconds, attempts=attempt, resumed=resumed,
                     simulated=True)

    async def _restart_pool(self, gen: int) -> None:
        """Terminate and rebuild the pool at most once per generation."""
        async with self._pool_lock:
            if gen != self._pool_gen:
                return
            self._pool_gen += 1
            self.stats["pool_restarts"] += 1
            old = self._pool
            for proc in getattr(old, "_processes", {}).values():
                proc.terminate()
            old.shutdown(wait=False, cancel_futures=True)
            self._pool = self._new_pool()

    def _new_pool(self) -> ProcessPoolExecutor:
        """A spawn-context pool: fork would hand every worker a copy of
        the daemon's listening socket, so a worker orphaned by a daemon
        SIGKILL would keep the dead listener's backlog accepting
        connects and black-hole clients of the restarted daemon.
        Spawned workers inherit no daemon fds."""
        return ProcessPoolExecutor(
            max_workers=self.config.workers,
            mp_context=multiprocessing.get_context("spawn"),
        )

    # -- completion + event fan-out -------------------------------------------
    def _finish(
        self,
        state: JobState,
        record=None,
        failure: tuple[str, str] | None = None,
        seconds: float = 0.0,
        attempts: int = 1,
        resumed: int | None = None,
        simulated: bool = False,
    ) -> None:
        if failure is not None:
            kind, message = failure
            state.failure = JobFailure(message, kind=kind, attempts=attempts)
            state.status = FAILED
        else:
            state.record = record
            state.status = DONE
            if simulated:
                self.runner.install(state.key, record)
        if simulated:
            state.timing = JobTiming(
                state.job.label, seconds, MODE_POOL,
                failed=failure is not None,
                failure_kind=failure[0] if failure else None,
                attempts=attempts,
                cycles=record.cycles if failure is None else None,
                resumed_from_cycle=resumed,
            )
            self.telemetry.timings.append(state.timing)
        frame_extra: dict = {
            "timing": state.timing.to_dict() if state.timing else None,
        }
        if state.status == DONE:
            frame_extra["record"] = record_to_wire(state.record)
            frame_extra["dedup"] = state.dedup
            frame_extra["resumed_from_cycle"] = state.resumed_from_cycle
            self._emit(state, JOB_DONE, DONE, **frame_extra)
        else:
            frame_extra["failure"] = {
                "kind": state.failure.kind,
                "message": state.failure.message,
                "attempts": state.failure.attempts,
            }
            self._emit(state, JOB_FAILED, FAILED, **frame_extra)

    def _now_ms(self) -> int:
        return int((time.monotonic() - self._started_at) * 1000)

    def _emit(
        self, state: JobState, kind: str, status: str,
        pc: int = -1, **frame_extra,
    ) -> None:
        """One code path feeding both outputs: the observe bus (Perfetto
        export path) and every subscribed client's frame queue."""
        detail = state.job.label
        if kind == JOB_DONE and state.timing is not None:
            detail = f"{state.job.label} [{state.timing.mode}]"
        elif kind == JOB_FAILED and state.failure is not None:
            detail = f"{state.job.label} [{state.failure.kind}]"
        self.bus.emit(SimEvent(
            cycle=self._now_ms(), kind=kind, warp_id=-1, pc=pc,
            detail=detail, value=state.job_id,
        ))
        frame = {
            "event": "job",
            "job_id": state.job_id,
            "key": state.key,
            "label": state.job.label,
            "status": status,
        }
        frame.update(frame_extra)
        for queue in self._subscribers.values():
            queue.put_nowait(frame)

    # -- subscriptions ---------------------------------------------------------
    def _add_subscriber(self) -> tuple[int, asyncio.Queue]:
        sub_id = self._next_sub_id
        self._next_sub_id += 1
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers[sub_id] = queue
        return sub_id, queue

    def _remove_subscriber(self, sub_id: int) -> None:
        self._subscribers.pop(sub_id, None)

    # -- wire dispatch ---------------------------------------------------------
    def _resolve_submission(self, frame: dict) -> list[JobSpec]:
        """Jobs from a submit frame: named experiment or explicit list."""
        experiment = frame.get("experiment")
        if experiment is not None:
            if not isinstance(experiment, str):
                raise ServiceSpecError("'experiment' must be a string")
            apps = frame.get("apps")
            if apps is not None:
                if not isinstance(apps, list) or not all(
                    isinstance(a, str) for a in apps
                ):
                    raise ServiceSpecError("'apps' must be a string list")
                for app in apps:
                    try:
                        get_app(app)
                    except KeyError as exc:
                        raise ServiceSpecError(
                            str(exc.args[0] if exc.args else exc)
                        )
            try:
                spec = figure_spec(experiment, tuple(apps) if apps else None)
            except KeyError as exc:
                raise ServiceSpecError(
                    str(exc.args[0] if exc.args else exc)
                )
            return list(spec.jobs)
        jobs_payload = frame.get("jobs")
        if not isinstance(jobs_payload, list) or not jobs_payload:
            raise ServiceSpecError(
                "submit needs 'experiment' or a non-empty 'jobs' list"
            )
        return [job_from_wire(j) for j in jobs_payload]

    @staticmethod
    def _entry(state: JobState, dedup: str | None) -> dict:
        entry = {
            "job_id": state.job_id,
            "key": state.key,
            "label": state.job.label,
            "status": state.status,
            "dedup": dedup,
        }
        if state.status == DONE:
            entry["record"] = record_to_wire(state.record)
            entry["timing"] = (
                state.timing.to_dict() if state.timing else None
            )
        elif state.status == FAILED:
            entry["failure"] = {
                "kind": state.failure.kind,
                "message": state.failure.message,
                "attempts": state.failure.attempts,
            }
        return entry

    async def _handle_conn(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    break   # oversized line or peer reset: drop the conn
                if not line:
                    break
                try:
                    frame = decode_frame(line.rstrip(b"\n"))
                    await self._dispatch(frame, writer)
                except Exception as exc:   # typed errors → error frames
                    writer.write(encode_frame(error_frame(exc)))
                    await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, frame: dict, writer) -> None:
        op = frame.get("op")
        if op == "ping":
            writer.write(encode_frame({"ok": True, "server": "repro",
                                       "uptime_ms": self._now_ms()}))
            await writer.drain()
        elif op == "status":
            writer.write(encode_frame(self._status_frame()))
            await writer.drain()
        elif op == "trace":
            from repro.observe.export import job_trace_events

            writer.write(encode_frame({
                "ok": True,
                "trace": {"traceEvents": job_trace_events(self.log),
                          "displayTimeUnit": "ms"},
            }))
            await writer.drain()
        elif op == "submit":
            await self._op_submit(frame, writer)
        else:
            raise ServiceProtocolError(f"unknown operation {op!r}")

    def _status_frame(self) -> dict:
        return {
            "ok": True,
            "draining": self._draining,
            "uptime_ms": self._now_ms(),
            "queue_depth": len(self._inflight),
            "max_queue": self.config.max_queue,
            "workers": self.config.workers,
            "stats": dict(self.stats),
            "jobs": [
                {
                    "job_id": s.job_id,
                    "label": s.job.label,
                    "status": s.status,
                    "dedup": s.dedup,
                    "attached": s.attach_count,
                }
                for s in self._jobs.values()
            ],
            "telemetry": self.telemetry.to_dict(),
        }

    async def _op_submit(self, frame: dict, writer) -> None:
        jobs = self._resolve_submission(frame)
        timeout = frame.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ServiceSpecError("'timeout' must be a number of seconds")
        follow = bool(frame.get("follow", True))
        sub_id, queue = (None, None)
        if follow:
            # Subscribe *before* submitting: store-hit events emitted
            # synchronously inside submit() land in this queue, so the
            # client sees a complete queued→done story for every job.
            sub_id, queue = self._add_subscriber()
        try:
            results = self.submit(jobs, timeout)
        except Exception:
            if sub_id is not None:
                self._remove_subscriber(sub_id)
            raise
        entries = [self._entry(s, dedup) for s, dedup in results]
        writer.write(encode_frame({"ok": True, "jobs": entries}))
        await writer.drain()
        if not follow:
            return
        wanted = {s.job_id for s, _ in results}
        pending = {s.job_id for s, _ in results if s.status not in TERMINAL}
        # Jobs that finished during submit() streamed their terminal
        # frames into the queue already; forward everything relevant
        # until every followed job is terminal.
        try:
            while pending:
                event = await queue.get()
                if event.get("job_id") not in wanted:
                    continue
                writer.write(encode_frame(event))
                await writer.drain()
                if event.get("status") in TERMINAL:
                    pending.discard(event["job_id"])
            writer.write(encode_frame({"event": "batch", "status": "done"}))
            await writer.drain()
        finally:
            self._remove_subscriber(sub_id)


async def serve(config: ServiceConfig) -> int:
    """Run one daemon to completion (the ``repro serve`` entry point)."""
    service = SimulationService(config)
    return await service.run()
