"""Wire protocol of the simulation service: newline-delimited JSON.

One frame per line, UTF-8 JSON objects, every frame carrying the
protocol schema version under ``"v"``.  The framing is deliberately the
dumbest thing that works over both a Unix-domain socket and TCP: a
client can be three lines of netcat, and the daemon never needs to
buffer more than one line (oversized lines are a typed protocol error,
not an allocation).

Frame shapes:

* request — ``{"v": 1, "op": "submit" | "status" | "trace" | "ping",
  ...}``
* response — ``{"v": 1, "ok": true, ...}`` or
  ``{"v": 1, "ok": false, "error": {"kind", "message"}}``; the ``kind``
  is a :data:`repro.errors.SERVICE_ERRORS` key, so
  :func:`raise_wire_error` re-raises the daemon's typed exception in
  the client process.
* event — ``{"v": 1, "event": "job", "job_id", "status", ...}``
  streamed while a followed submission executes.

Job serialization round-trips the harness dataclasses explicitly
(:func:`job_to_wire` / :func:`job_from_wire`) rather than pickling:
the wire is inspectable, versioned, and cannot execute anything.
"""

from __future__ import annotations

import dataclasses
import json

from repro.arch.config import GpuConfig
from repro.errors import (
    SERVICE_ERRORS,
    ServiceError,
    ServiceProtocolError,
    ServiceSpecError,
    ServiceVersionError,
)
from repro.harness.runner import RunRecord
from repro.harness.spec import JobSpec, TechniqueSpec
from repro.workloads.suite import get_app

PROTOCOL_VERSION = 1

# A frame larger than this is rejected before parsing: the daemon's
# read buffer is bounded and a malicious/broken peer cannot balloon it.
MAX_FRAME_BYTES = 1 << 20


def encode_frame(frame: dict) -> bytes:
    """Serialize one frame (the version is stamped in, never trusted)."""
    payload = dict(frame)
    payload["v"] = PROTOCOL_VERSION
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse and version-check one received line.

    Raises :class:`ServiceProtocolError` for anything that is not a
    JSON object on one line, :class:`ServiceVersionError` when the
    object speaks a different protocol version.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ServiceProtocolError(
            f"frame of {len(line)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceProtocolError(f"frame is not valid JSON: {exc}")
    if not isinstance(frame, dict):
        raise ServiceProtocolError(
            f"frame is {type(frame).__name__}, expected object"
        )
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ServiceVersionError(
            f"frame speaks protocol version {version!r}, "
            f"this peer speaks {PROTOCOL_VERSION}"
        )
    return frame


def error_frame(exc: Exception) -> dict:
    """The ``ok: false`` response for a (preferably typed) exception."""
    kind = getattr(exc, "kind", ServiceError.kind)
    if kind not in SERVICE_ERRORS:
        kind = ServiceError.kind
    return {"ok": False, "error": {"kind": kind, "message": str(exc)}}


def raise_wire_error(frame: dict) -> None:
    """Re-raise a received ``ok: false`` frame as its typed original."""
    error = frame.get("error")
    if not isinstance(error, dict):
        raise ServiceProtocolError(f"malformed error frame: {frame!r}")
    cls = SERVICE_ERRORS.get(error.get("kind"), ServiceError)
    raise cls(str(error.get("message", "unspecified service error")))


# -- job serialization --------------------------------------------------------
def job_to_wire(job: JobSpec) -> dict:
    """Explicit dict form of one (app, config, technique) job."""
    return {
        "app": job.app,
        "config": dataclasses.asdict(job.config),
        "technique": {
            "kind": job.technique.kind,
            "params": dict(job.technique.params),
        },
    }


def job_from_wire(data: object) -> JobSpec:
    """Rebuild a :class:`JobSpec`, rejecting anything unknown as
    :class:`ServiceSpecError` (app, technique kind, config field, or an
    invalid config value)."""
    if not isinstance(data, dict):
        raise ServiceSpecError(
            f"job payload is {type(data).__name__}, expected object"
        )
    app = data.get("app")
    if not isinstance(app, str):
        raise ServiceSpecError("job payload missing string 'app'")
    try:
        get_app(app)
    except KeyError as exc:
        raise ServiceSpecError(str(exc.args[0] if exc.args else exc))

    technique = data.get("technique", {"kind": "baseline"})
    if isinstance(technique, str):
        technique = {"kind": technique}
    if not isinstance(technique, dict) or not isinstance(
        technique.get("kind"), str
    ):
        raise ServiceSpecError("job 'technique' must be a kind string or "
                               "{'kind', 'params'} object")
    params = technique.get("params", {})
    if not isinstance(params, dict):
        raise ServiceSpecError("technique 'params' must be an object")
    try:
        tspec = TechniqueSpec.of(technique["kind"], **params)
    except (KeyError, TypeError) as exc:
        raise ServiceSpecError(str(exc.args[0] if exc.args else exc))

    config_fields = data.get("config", {})
    if not isinstance(config_fields, dict):
        raise ServiceSpecError("job 'config' must be an object of "
                               "GpuConfig fields")
    try:
        config = GpuConfig(**config_fields)
    except (TypeError, ValueError) as exc:
        raise ServiceSpecError(f"invalid device config: {exc}")
    return JobSpec(app=app, config=config, technique=tspec)


def record_to_wire(record: RunRecord) -> dict:
    return dataclasses.asdict(record)


def record_from_wire(data: object) -> RunRecord:
    if not isinstance(data, dict):
        raise ServiceProtocolError(
            f"record payload is {type(data).__name__}, expected object"
        )
    try:
        return RunRecord(**data)
    except TypeError as exc:
        raise ServiceProtocolError(f"invalid record payload: {exc}")
