"""Blocking client for the simulation daemon.

The daemon is asyncio; its clients deliberately are not.  ``repro
submit`` / ``repro status``, the test suite, and any script that wants
a record synchronously open one socket, write one-line JSON frames, and
read one-line responses — no event loop required on the consuming side.

Error frames are re-raised as their typed
:class:`repro.errors.ServiceError` originals (the ``kind`` string is
the lookup key), so ``except ServiceQueueFullError`` works across the
wire exactly as it would in-process.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field

from repro.errors import ServiceProtocolError, ServiceUnavailableError
from repro.harness.spec import JobSpec
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    job_to_wire,
    raise_wire_error,
)


@dataclass
class SubmitResult:
    """Everything one followed submission produced."""

    jobs: list[dict]                 # the submit response's job entries
    events: list[dict] = field(default_factory=list)
    # job_id -> final "done"/"failed" event (store hits resolve from
    # the response entry itself, which is synthesized into this map).
    final: dict[int, dict] = field(default_factory=dict)

    @property
    def failed(self) -> list[dict]:
        return [f for f in self.final.values() if f.get("status") == "failed"]

    @property
    def ok(self) -> bool:
        return bool(self.final) and not self.failed


class ServiceClient:
    """One connection to a running daemon (context-manager friendly)."""

    def __init__(
        self,
        socket_path: str | None = None,
        host: str | None = None,
        port: int = 0,
        connect_timeout: float = 5.0,
        io_timeout: float | None = 300.0,
    ) -> None:
        if socket_path is None and host is None:
            raise ValueError("client needs a socket path or a host")
        self._socket_path = socket_path
        self._host, self._port = host, port
        self._connect_timeout = connect_timeout
        self._io_timeout = io_timeout
        self._sock: socket.socket | None = None
        self._buffer = b""

    # -- plumbing -------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        try:
            if self._socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self._connect_timeout)
                sock.connect(self._socket_path)
            else:
                sock = socket.create_connection(
                    (self._host, self._port), timeout=self._connect_timeout
                )
        except OSError as exc:
            raise ServiceUnavailableError(
                f"cannot reach the simulation service "
                f"({self._socket_path or f'{self._host}:{self._port}'}): "
                f"{exc}"
            )
        sock.settimeout(self._io_timeout)
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _send(self, frame: dict) -> None:
        if self._sock is None:
            self.connect()
        self._sock.sendall(encode_frame(frame))

    def _recv(self) -> dict:
        """Read one frame; raises the typed error for ``ok: false``."""
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_FRAME_BYTES:
                raise ServiceProtocolError("oversized frame from server")
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                raise ServiceUnavailableError(
                    "timed out waiting for the service to respond"
                )
            if not chunk:
                raise ServiceUnavailableError(
                    "service closed the connection mid-conversation"
                )
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        frame = decode_frame(line)
        if frame.get("ok") is False:
            raise_wire_error(frame)
        return frame

    def request(self, frame: dict) -> dict:
        self._send(frame)
        return self._recv()

    # -- operations -----------------------------------------------------------
    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def status(self) -> dict:
        return self.request({"op": "status"})

    def trace(self) -> dict:
        """The daemon's job-lifecycle Chrome trace (Perfetto-loadable)."""
        return self.request({"op": "trace"})["trace"]

    def submit(
        self,
        jobs: list[JobSpec] | None = None,
        experiment: str | None = None,
        apps: list[str] | None = None,
        timeout: float | None = None,
        follow: bool = True,
        on_event=None,
    ) -> SubmitResult:
        """Submit jobs (or a named experiment) and optionally follow the
        event stream until every submitted job is terminal.

        ``on_event`` is called with each streamed event frame as it
        arrives — the live-progress hook ``repro submit`` prints from.
        """
        frame: dict = {"op": "submit", "follow": follow}
        if experiment is not None:
            frame["experiment"] = experiment
            if apps:
                frame["apps"] = list(apps)
        else:
            frame["jobs"] = [job_to_wire(j) for j in jobs or []]
        if timeout is not None:
            frame["timeout"] = timeout
        response = self.request(frame)
        result = SubmitResult(jobs=response["jobs"])
        for entry in response["jobs"]:
            if entry["status"] in ("done", "failed"):
                result.final[entry["job_id"]] = entry
        if not follow:
            return result
        pending = {
            e["job_id"] for e in response["jobs"]
            if e["status"] not in ("done", "failed")
        }
        while True:
            event = self._recv()
            if event.get("event") == "batch":
                break
            result.events.append(event)
            if on_event is not None:
                on_event(event)
            if event.get("status") in ("done", "failed"):
                result.final[event["job_id"]] = event
                pending.discard(event["job_id"])
        return result
