"""Simulation-as-a-service: persistent daemon, protocol, and client.

One warm process in front of the journaled run store (see
ARCHITECTURE.md, "service daemon"): :class:`SimulationService` accepts
job/experiment submissions over newline-delimited JSON, dedups them
three ways (batch, run store, in-flight singleflight), executes on a
persistent worker pool with checkpoint/resume, and streams per-job
telemetry events to subscribed clients and onto the observe bus.
"""

from repro.service.client import ServiceClient, SubmitResult
from repro.service.daemon import (
    ServiceConfig,
    SimulationService,
    serve,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    error_frame,
    job_from_wire,
    job_to_wire,
    raise_wire_error,
    record_from_wire,
    record_to_wire,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceConfig",
    "SimulationService",
    "SubmitResult",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "job_from_wire",
    "job_to_wire",
    "raise_wire_error",
    "record_from_wire",
    "record_to_wire",
    "serve",
]
