"""Architected register naming and register-set arithmetic.

GPU kernels address a dense range of architected registers ``R0..R{n-1}``
per thread.  The compiler passes manipulate *sets* of register indices
(live sets, base sets, extended sets); :class:`RegisterSet` wraps a
``frozenset``-like interface with the handful of operations the passes
need while keeping a stable, sorted ``repr`` for debugging and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, order=True)
class Register:
    """A single architected register, identified by its dense index."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"register index must be non-negative, got {self.index}")

    @property
    def name(self) -> str:
        """Assembly spelling, e.g. ``R7``."""
        return f"R{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    @classmethod
    def parse(cls, text: str) -> "Register":
        """Parse ``R<k>`` (case-insensitive) into a :class:`Register`."""
        stripped = text.strip()
        if not stripped or stripped[0] not in "rR":
            raise ValueError(f"not a register token: {text!r}")
        body = stripped[1:]
        if not body.isdigit():
            raise ValueError(f"not a register token: {text!r}")
        return cls(int(body))


class RegisterSet:
    """An immutable set of architected register indices.

    Stored as a sorted tuple of ints; supports the set algebra used by
    liveness analysis and the RegMutex base/extended split.
    """

    __slots__ = ("_indices",)

    def __init__(self, indices: Iterable[int] = ()) -> None:
        seen = set()
        for idx in indices:
            i = idx.index if isinstance(idx, Register) else int(idx)
            if i < 0:
                raise ValueError(f"register index must be non-negative, got {i}")
            seen.add(i)
        object.__setattr__(self, "_indices", tuple(sorted(seen)))

    # -- construction helpers ------------------------------------------------
    @classmethod
    def range(cls, count: int) -> "RegisterSet":
        """The dense set ``{0, 1, ..., count-1}``."""
        return cls(range(count))

    # -- container protocol --------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if isinstance(item, Register):
            item = item.index
        return item in set(self._indices)

    def __iter__(self) -> Iterator[int]:
        return iter(self._indices)

    def __len__(self) -> int:
        return len(self._indices)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RegisterSet):
            return self._indices == other._indices
        if isinstance(other, (set, frozenset)):
            return set(self._indices) == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._indices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"R{i}" for i in self._indices)
        return f"RegisterSet({{{inner}}})"

    # -- set algebra ----------------------------------------------------------
    def union(self, other: "RegisterSet | Iterable[int]") -> "RegisterSet":
        return RegisterSet([*self._indices, *other])

    def difference(self, other: "RegisterSet | Iterable[int]") -> "RegisterSet":
        drop = {i.index if isinstance(i, Register) else int(i) for i in other}
        return RegisterSet(i for i in self._indices if i not in drop)

    def intersection(self, other: "RegisterSet | Iterable[int]") -> "RegisterSet":
        keep = {i.index if isinstance(i, Register) else int(i) for i in other}
        return RegisterSet(i for i in self._indices if i in keep)

    __or__ = union
    __sub__ = difference
    __and__ = intersection

    # -- queries used by the compiler passes ----------------------------------
    def max_index(self) -> int:
        """Highest register index in the set; -1 when empty."""
        return self._indices[-1] if self._indices else -1

    def above(self, boundary: int) -> "RegisterSet":
        """Members with ``index >= boundary`` (the extended-set overflow)."""
        return RegisterSet(i for i in self._indices if i >= boundary)

    def below(self, boundary: int) -> "RegisterSet":
        """Members with ``index < boundary`` (the base-set residents)."""
        return RegisterSet(i for i in self._indices if i < boundary)

    def free_slots_below(self, boundary: int) -> tuple[int, ...]:
        """Indices ``< boundary`` *not* in this set, ascending.

        Used by index compaction to find destinations inside the base set
        for live values stranded in the extended set.
        """
        occupied = set(self._indices)
        return tuple(i for i in range(boundary) if i not in occupied)
