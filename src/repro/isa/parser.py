"""Textual assembly parser.

Round-trips with :mod:`repro.isa.printer`.  Syntax, one instruction per
line::

    [label:] OPCODE [dst_regs] [, src_regs] [-> target] [@p=0.5] [@trips=8]

* register lists are space-free comma lists: ``R3,R4``
* an instruction with no destinations writes nothing: ``ST.GLOBAL , R1,R2``
  uses a leading comma to disambiguate (printer always emits it)
* ``#`` starts a comment to end-of-line
* directives: ``.kernel NAME``, ``.regs N``, ``.threads N``, ``.smem N``

This exists so workloads can be checked into text files, diffs of the
compiler passes are inspectable, and property tests can round-trip.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.isa.instructions import Instruction, Opcode
from repro.isa.kernel import Kernel, KernelMetadata


class AsmSyntaxError(ValueError):
    """Raised on malformed assembly text, with a line number."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_OPCODES_BY_NAME = {op.value: op for op in Opcode}
_LABEL_RE = re.compile(r"^([A-Za-z_][\w.$]*):\s*(.*)$")
_REG_RE = re.compile(r"^[rR](\d+)$")


def _parse_reg_list(text: str, lineno: int) -> tuple[int, ...]:
    text = text.strip()
    if not text:
        return ()
    regs = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        m = _REG_RE.match(token)
        if not m:
            raise AsmSyntaxError(lineno, f"bad register token {token!r}")
        regs.append(int(m.group(1)))
    return tuple(regs)


def parse_instruction(line: str, lineno: int = 0) -> Instruction:
    """Parse a single instruction line (without directives)."""
    line = line.split("#", 1)[0]
    label: Optional[str] = None
    m = _LABEL_RE.match(line)
    if m:
        label, line = m.group(1), m.group(2)
    line = line.strip()
    if not line:
        raise AsmSyntaxError(
            lineno,
            "label with no instruction (only parse_kernel accepts "
            "bare-label lines)",
        )

    # Annotations
    taken_probability: Optional[float] = None
    trip_count: Optional[int] = None
    for ann in re.findall(r"@(\w+)=([\w.]+)", line):
        key, value = ann
        if key == "p":
            taken_probability = float(value)
        elif key == "trips":
            trip_count = int(value)
        else:
            raise AsmSyntaxError(lineno, f"unknown annotation @{key}")
    line = re.sub(r"@\w+=[\w.]+", "", line).strip()

    # Branch target
    target: Optional[str] = None
    if "->" in line:
        line, _, target_part = line.partition("->")
        target = target_part.strip()
        if not target:
            raise AsmSyntaxError(lineno, "empty branch target after '->'")
        line = line.strip()

    # Opcode = first whitespace-delimited token
    parts = line.split(None, 1)
    opname = parts[0].upper()
    if opname not in _OPCODES_BY_NAME:
        raise AsmSyntaxError(lineno, f"unknown opcode {opname!r}")
    opcode = _OPCODES_BY_NAME[opname]

    dsts: tuple[int, ...] = ()
    srcs: tuple[int, ...] = ()
    if len(parts) > 1:
        operand_text = parts[1].strip()
        if operand_text:
            if ";" in operand_text:
                dst_text, _, src_text = operand_text.partition(";")
            else:
                dst_text, src_text = operand_text, ""
            dsts = _parse_reg_list(dst_text, lineno)
            srcs = _parse_reg_list(src_text, lineno)

    try:
        return Instruction(
            opcode,
            dsts,
            srcs,
            target=target,
            label=label,
            taken_probability=taken_probability,
            trip_count=trip_count,
        )
    except ValueError as exc:
        raise AsmSyntaxError(lineno, str(exc)) from exc


def parse_kernel(text: str) -> Kernel:
    """Parse a full kernel listing, directives included."""
    name = "kernel"
    regs: Optional[int] = None
    threads = 256
    smem = 0
    instructions: list[Instruction] = []
    pending_label: Optional[str] = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        bare = _LABEL_RE.match(line)
        if bare and not bare.group(2).strip():
            # A label on its own line attaches to the next instruction.
            if pending_label is not None:
                raise AsmSyntaxError(
                    lineno, f"two consecutive bare labels "
                    f"({pending_label!r}, {bare.group(1)!r})"
                )
            pending_label = bare.group(1)
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".kernel" and len(parts) == 2:
                name = parts[1]
            elif directive == ".regs" and len(parts) == 2:
                regs = int(parts[1])
            elif directive == ".threads" and len(parts) == 2:
                threads = int(parts[1])
            elif directive == ".smem" and len(parts) == 2:
                smem = int(parts[1])
            else:
                raise AsmSyntaxError(lineno, f"bad directive {line!r}")
            continue
        inst = parse_instruction(line, lineno)
        if pending_label is not None:
            if inst.label is not None:
                raise AsmSyntaxError(
                    lineno, f"instruction already labelled {inst.label!r} "
                    f"but bare label {pending_label!r} is pending"
                )
            inst = inst.with_label(pending_label)
            pending_label = None
        instructions.append(inst)

    if pending_label is not None:
        raise AsmSyntaxError(0, f"dangling label {pending_label!r} at end of text")
    if not instructions:
        raise AsmSyntaxError(0, "no instructions in kernel text")

    max_ref = max(
        (r for inst in instructions for r in inst.registers), default=-1
    )
    declared = regs if regs is not None else max_ref + 1
    declared = max(declared, max_ref + 1, 1)
    return Kernel(
        instructions,
        KernelMetadata(
            name=name,
            regs_per_thread=declared,
            threads_per_cta=threads,
            shared_mem_per_cta=smem,
        ),
    )
