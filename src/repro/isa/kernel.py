"""Kernel container: a flat instruction list plus launch metadata.

A :class:`Kernel` is what every other subsystem consumes: the CFG builder
splits it into basic blocks, the liveness pass annotates it, the RegMutex
compiler rewrites it, and the simulator executes it.  Launch metadata
(threads per CTA, shared memory, declared register count) is what the
occupancy calculator needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional

from repro.isa.instructions import Instruction, Opcode


@dataclass(frozen=True)
class KernelMetadata:
    """Launch-relevant kernel properties (mirrors a ``.cubin`` header).

    ``regs_per_thread`` is the architected register demand as declared by
    the (synthetic) compiler — the maximum live count plus scratch, i.e.
    Table I's "# Regs." column before rounding.  ``base_set_size`` is
    populated by the RegMutex compiler; ``extended_set_size`` likewise.
    """

    name: str = "kernel"
    regs_per_thread: int = 16
    threads_per_cta: int = 256
    shared_mem_per_cta: int = 0
    base_set_size: Optional[int] = None
    extended_set_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.regs_per_thread <= 0:
            raise ValueError("regs_per_thread must be positive")
        if self.threads_per_cta <= 0:
            raise ValueError("threads_per_cta must be positive")
        if self.shared_mem_per_cta < 0:
            raise ValueError("shared_mem_per_cta must be non-negative")
        if self.base_set_size is not None and self.extended_set_size is not None:
            if self.base_set_size + self.extended_set_size != self.regs_per_thread:
                raise ValueError(
                    "|Bs| + |Es| must equal regs_per_thread "
                    f"({self.base_set_size} + {self.extended_set_size} "
                    f"!= {self.regs_per_thread})"
                )

    @property
    def uses_regmutex(self) -> bool:
        return bool(self.extended_set_size)


class Kernel:
    """An immutable GPU kernel: instructions + metadata + label index."""

    def __init__(
        self,
        instructions: Iterable[Instruction],
        metadata: KernelMetadata | None = None,
    ) -> None:
        self._instructions: tuple[Instruction, ...] = tuple(instructions)
        self._metadata = metadata or KernelMetadata()
        if not self._instructions:
            raise ValueError("kernel must contain at least one instruction")
        self._labels: dict[str, int] = {}
        for pc, inst in enumerate(self._instructions):
            if inst.label is not None:
                if inst.label in self._labels:
                    raise ValueError(f"duplicate label {inst.label!r}")
                self._labels[inst.label] = pc
        for pc, inst in enumerate(self._instructions):
            if inst.target is not None and inst.target not in self._labels:
                raise ValueError(
                    f"pc {pc}: branch target {inst.target!r} is not a label"
                )

    # -- container protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self._instructions[pc]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Kernel):
            return NotImplemented
        return (
            self._instructions == other._instructions
            and self._metadata == other._metadata
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Kernel({self._metadata.name!r}, {len(self)} insts, "
            f"{self._metadata.regs_per_thread} regs/thread)"
        )

    # -- accessors ---------------------------------------------------------------
    @property
    def instructions(self) -> tuple[Instruction, ...]:
        return self._instructions

    @property
    def metadata(self) -> KernelMetadata:
        return self._metadata

    @property
    def name(self) -> str:
        return self._metadata.name

    def label_pc(self, label: str) -> int:
        """Program counter of a label."""
        return self._labels[label]

    @property
    def labels(self) -> dict[str, int]:
        return dict(self._labels)

    # -- derived properties --------------------------------------------------------
    def referenced_registers(self) -> set[int]:
        """Every architected register index any instruction touches."""
        regs: set[int] = set()
        for inst in self._instructions:
            regs.update(inst.registers)
        return regs

    def max_register_index(self) -> int:
        regs = self.referenced_registers()
        return max(regs) if regs else -1

    def has_barrier(self) -> bool:
        return any(inst.is_barrier for inst in self._instructions)

    def regmutex_instruction_count(self) -> int:
        return sum(1 for inst in self._instructions if inst.is_regmutex)

    # -- rewriting -----------------------------------------------------------------
    def with_metadata(self, **changes) -> "Kernel":
        return Kernel(self._instructions, replace(self._metadata, **changes))

    def with_instructions(self, instructions: Iterable[Instruction]) -> "Kernel":
        return Kernel(instructions, self._metadata)

    def validate_register_bound(self) -> None:
        """Check no instruction references a register beyond the declared count."""
        bound = self._metadata.regs_per_thread
        for pc, inst in enumerate(self._instructions):
            for reg in inst.registers:
                if reg >= bound:
                    raise ValueError(
                        f"pc {pc}: register R{reg} exceeds declared "
                        f"regs_per_thread={bound}"
                    )

    def exit_pcs(self) -> tuple[int, ...]:
        return tuple(
            pc for pc, inst in enumerate(self._instructions) if inst.is_exit
        )

    def successors_of_pc(self, pc: int) -> tuple[int, ...]:
        """Instruction-level control-flow successors of ``pc``.

        EXIT has none; JMP has its target; a conditional branch has the
        fall-through (if any) and the target; everything else falls
        through (if not at the end of the kernel).
        """
        inst = self._instructions[pc]
        if inst.is_exit:
            return ()
        if inst.is_branch:
            target = self._labels[inst.target]
            if inst.is_conditional_branch and pc + 1 < len(self._instructions):
                return (pc + 1, target) if pc + 1 != target else (target,)
            return (target,)
        return (pc + 1,) if pc + 1 < len(self._instructions) else ()
