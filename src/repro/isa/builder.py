"""Fluent builder for constructing kernels programmatically.

The workload generator and most tests construct kernels through this
builder rather than the textual parser: it tracks labels, validates
branch targets at :meth:`KernelBuilder.build` time (via ``Kernel``'s own
checks), and offers convenience emitters for common instruction shapes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.isa.instructions import Instruction, Opcode
from repro.isa.kernel import Kernel, KernelMetadata


class KernelBuilder:
    """Accumulates instructions and produces a :class:`Kernel`."""

    def __init__(
        self,
        name: str = "kernel",
        regs_per_thread: int = 16,
        threads_per_cta: int = 256,
        shared_mem_per_cta: int = 0,
    ) -> None:
        self._name = name
        self._regs_per_thread = regs_per_thread
        self._threads_per_cta = threads_per_cta
        self._shared_mem_per_cta = shared_mem_per_cta
        self._instructions: list[Instruction] = []
        self._pending_label: Optional[str] = None

    # -- label handling --------------------------------------------------------
    def label(self, name: str) -> "KernelBuilder":
        """Attach ``name`` to the next emitted instruction."""
        if self._pending_label is not None:
            raise ValueError(
                f"label {self._pending_label!r} already pending; emit an "
                "instruction before placing another label"
            )
        self._pending_label = name
        return self

    def _emit(self, inst: Instruction) -> "KernelBuilder":
        if self._pending_label is not None:
            inst = inst.with_label(self._pending_label)
            self._pending_label = None
        self._instructions.append(inst)
        return self

    # -- generic emitter ---------------------------------------------------------
    def op(
        self,
        opcode: Opcode,
        dsts: Sequence[int] = (),
        srcs: Sequence[int] = (),
        **annotations,
    ) -> "KernelBuilder":
        return self._emit(
            Instruction(opcode, tuple(dsts), tuple(srcs), **annotations)
        )

    # -- common shapes ------------------------------------------------------------
    def alu(self, dst: int, *srcs: int, opcode: Opcode = Opcode.IADD) -> "KernelBuilder":
        return self.op(opcode, (dst,), srcs)

    def fma(self, dst: int, a: int, b: int, c: int) -> "KernelBuilder":
        return self.op(Opcode.FFMA, (dst,), (a, b, c))

    def mov(self, dst: int, src: int, comment: str | None = None) -> "KernelBuilder":
        return self.op(Opcode.MOV, (dst,), (src,), comment=comment)

    def ldc(self, dst: int) -> "KernelBuilder":
        """Load a constant: defines ``dst`` with no register sources."""
        return self.op(Opcode.LDC, (dst,))

    def load(self, dst: int, addr: int, shared: bool = False) -> "KernelBuilder":
        opcode = Opcode.LD_SHARED if shared else Opcode.LD_GLOBAL
        return self.op(opcode, (dst,), (addr,))

    def store(self, addr: int, value: int, shared: bool = False) -> "KernelBuilder":
        opcode = Opcode.ST_SHARED if shared else Opcode.ST_GLOBAL
        return self.op(opcode, (), (addr, value))

    def setp(self, dst: int, a: int, b: int) -> "KernelBuilder":
        return self.op(Opcode.ISETP, (dst,), (a, b))

    def branch(
        self,
        target: str,
        pred: int,
        taken_probability: float | None = None,
        trip_count: int | None = None,
    ) -> "KernelBuilder":
        return self.op(
            Opcode.BRA,
            (),
            (pred,),
            target=target,
            taken_probability=taken_probability,
            trip_count=trip_count,
        )

    def jump(self, target: str) -> "KernelBuilder":
        return self.op(Opcode.JMP, target=target)

    def barrier(self) -> "KernelBuilder":
        return self.op(Opcode.BAR_SYNC)

    def acquire(self) -> "KernelBuilder":
        return self.op(Opcode.ACQUIRE)

    def release(self) -> "KernelBuilder":
        return self.op(Opcode.RELEASE)

    def exit(self) -> "KernelBuilder":
        return self.op(Opcode.EXIT)

    def nop(self) -> "KernelBuilder":
        return self.op(Opcode.NOP)

    # -- finalization ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instructions)

    def build(self, regs_per_thread: int | None = None) -> Kernel:
        """Produce the kernel; validates labels/targets and register bounds.

        ``regs_per_thread`` defaults to the builder's declared count but is
        raised to cover the highest referenced register if needed, which is
        what a real register allocator would report.
        """
        if self._pending_label is not None:
            raise ValueError(f"dangling label {self._pending_label!r} at end of kernel")
        declared = regs_per_thread or self._regs_per_thread
        max_ref = -1
        for inst in self._instructions:
            for reg in inst.registers:
                max_ref = max(max_ref, reg)
        regs = max(declared, max_ref + 1)
        kernel = Kernel(
            self._instructions,
            KernelMetadata(
                name=self._name,
                regs_per_thread=regs,
                threads_per_cta=self._threads_per_cta,
                shared_mem_per_cta=self._shared_mem_per_cta,
            ),
        )
        kernel.validate_register_bound()
        return kernel
