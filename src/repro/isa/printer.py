"""Textual assembly printer — inverse of :mod:`repro.isa.parser`."""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.isa.kernel import Kernel


def format_instruction(inst: Instruction) -> str:
    """Render one instruction in the parser's syntax."""
    pieces: list[str] = []
    if inst.label is not None:
        pieces.append(f"{inst.label}:")
    pieces.append(inst.opcode.value)
    if inst.dsts or inst.srcs:
        dst_text = ",".join(f"R{r}" for r in inst.dsts)
        src_text = ",".join(f"R{r}" for r in inst.srcs)
        if inst.srcs:
            pieces.append(f"{dst_text} ; {src_text}")
        else:
            pieces.append(dst_text)
    if inst.target is not None:
        pieces.append(f"-> {inst.target}")
    if inst.taken_probability is not None:
        pieces.append(f"@p={inst.taken_probability:g}")
    if inst.trip_count is not None:
        pieces.append(f"@trips={inst.trip_count}")
    line = " ".join(pieces)
    if inst.comment:
        line = f"{line}  # {inst.comment}"
    return line


def format_kernel(kernel: Kernel) -> str:
    """Render a full kernel listing with directives; parses back losslessly
    (modulo comments)."""
    md = kernel.metadata
    lines = [
        f".kernel {md.name}",
        f".regs {md.regs_per_thread}",
        f".threads {md.threads_per_cta}",
        f".smem {md.shared_mem_per_cta}",
    ]
    lines.extend(format_instruction(inst) for inst in kernel)
    return "\n".join(lines) + "\n"
