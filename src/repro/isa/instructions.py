"""Instruction set definition for the GPU assembly IR.

The opcode vocabulary mirrors what the RegMutex compiler passes and the
cycle-level simulator need from PTXPlus-level assembly:

* ALU ops at several latency classes (integer, FP32, SFU),
* memory ops (global/shared load/store) that go to the memory model,
* control flow (``BRA``/``BRX`` conditional, ``JMP`` unconditional,
  ``EXIT``),
* synchronization (``BAR_SYNC`` — CTA-wide barrier),
* register-move (``MOV``) used by index compaction, and
* the two RegMutex primitives ``ACQUIRE`` and ``RELEASE`` which the
  compiler injects and the issue stage interprets (paper §III-A3/§III-B1).

Operand convention: ``dsts`` are written registers, ``srcs`` are read
registers — both as plain int indices.  Control transfer targets are
string labels resolved by :class:`repro.isa.kernel.Kernel`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional


class OpClass(enum.Enum):
    """Execution-resource class; drives latency and pipe selection."""

    IALU = "ialu"        # integer ALU
    FALU = "falu"        # single-precision FP
    SFU = "sfu"          # special function unit (rsqrt, sin, ...)
    LOAD = "load"        # memory read
    STORE = "store"      # memory write
    BRANCH = "branch"    # control transfer
    BARRIER = "barrier"  # CTA-wide synchronization
    REGMUTEX = "regmutex"  # acquire / release primitives
    NOP = "nop"


class Opcode(enum.Enum):
    """Concrete opcodes of the IR."""

    # integer ALU
    IADD = "IADD"
    ISUB = "ISUB"
    IMUL = "IMUL"
    IMAD = "IMAD"
    SHL = "SHL"
    SHR = "SHR"
    AND = "AND"
    OR = "OR"
    XOR = "XOR"
    ISETP = "ISETP"     # integer compare, writes a predicate-carrying reg
    MOV = "MOV"
    LDC = "LDC"         # load constant / immediate into register
    # floating point
    FADD = "FADD"
    FMUL = "FMUL"
    FFMA = "FFMA"
    FSETP = "FSETP"
    # special function unit
    RSQRT = "RSQRT"
    SIN = "SIN"
    COS = "COS"
    EX2 = "EX2"
    LG2 = "LG2"
    RCP = "RCP"
    # memory
    LD_GLOBAL = "LD.GLOBAL"
    ST_GLOBAL = "ST.GLOBAL"
    LD_SHARED = "LD.SHARED"
    ST_SHARED = "ST.SHARED"
    # control flow
    BRA = "BRA"         # conditional branch on a register's predicate
    JMP = "JMP"         # unconditional jump
    EXIT = "EXIT"       # thread/warp termination
    # synchronization
    BAR_SYNC = "BAR.SYNC"
    # RegMutex primitives (paper §III-A3)
    ACQUIRE = "REGMUTEX.ACQUIRE"
    RELEASE = "REGMUTEX.RELEASE"
    NOP = "NOP"


OPCODE_CLASS: dict[Opcode, OpClass] = {
    Opcode.IADD: OpClass.IALU,
    Opcode.ISUB: OpClass.IALU,
    Opcode.IMUL: OpClass.IALU,
    Opcode.IMAD: OpClass.IALU,
    Opcode.SHL: OpClass.IALU,
    Opcode.SHR: OpClass.IALU,
    Opcode.AND: OpClass.IALU,
    Opcode.OR: OpClass.IALU,
    Opcode.XOR: OpClass.IALU,
    Opcode.ISETP: OpClass.IALU,
    Opcode.MOV: OpClass.IALU,
    Opcode.LDC: OpClass.IALU,
    Opcode.FADD: OpClass.FALU,
    Opcode.FMUL: OpClass.FALU,
    Opcode.FFMA: OpClass.FALU,
    Opcode.FSETP: OpClass.FALU,
    Opcode.RSQRT: OpClass.SFU,
    Opcode.SIN: OpClass.SFU,
    Opcode.COS: OpClass.SFU,
    Opcode.EX2: OpClass.SFU,
    Opcode.LG2: OpClass.SFU,
    Opcode.RCP: OpClass.SFU,
    Opcode.LD_GLOBAL: OpClass.LOAD,
    Opcode.ST_GLOBAL: OpClass.STORE,
    Opcode.LD_SHARED: OpClass.LOAD,
    Opcode.ST_SHARED: OpClass.STORE,
    Opcode.BRA: OpClass.BRANCH,
    Opcode.JMP: OpClass.BRANCH,
    Opcode.EXIT: OpClass.BRANCH,
    Opcode.BAR_SYNC: OpClass.BARRIER,
    Opcode.ACQUIRE: OpClass.REGMUTEX,
    Opcode.RELEASE: OpClass.REGMUTEX,
    Opcode.NOP: OpClass.NOP,
}

# Issue-to-writeback latency in cycles per opcode, patterned on Fermi-era
# numbers used by GPGPU-Sim configs (ALU ~4-6, SFU ~16-32; memory latency is
# supplied by the memory model, the value here is only the pipeline
# occupancy of the access instruction itself).
OPCODE_LATENCY: dict[Opcode, int] = {
    Opcode.IADD: 4, Opcode.ISUB: 4, Opcode.IMUL: 6, Opcode.IMAD: 6,
    Opcode.SHL: 4, Opcode.SHR: 4, Opcode.AND: 4, Opcode.OR: 4, Opcode.XOR: 4,
    Opcode.ISETP: 4, Opcode.MOV: 4, Opcode.LDC: 4,
    Opcode.FADD: 4, Opcode.FMUL: 4, Opcode.FFMA: 6, Opcode.FSETP: 4,
    Opcode.RSQRT: 16, Opcode.SIN: 16, Opcode.COS: 16,
    Opcode.EX2: 16, Opcode.LG2: 16, Opcode.RCP: 16,
    Opcode.LD_GLOBAL: 4, Opcode.ST_GLOBAL: 4,
    Opcode.LD_SHARED: 4, Opcode.ST_SHARED: 4,
    Opcode.BRA: 4, Opcode.JMP: 4, Opcode.EXIT: 1,
    Opcode.BAR_SYNC: 1,
    Opcode.ACQUIRE: 1, Opcode.RELEASE: 1,
    Opcode.NOP: 1,
}


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    ``dsts``/``srcs`` hold architected register indices.  ``target`` is a
    label for branch opcodes.  ``taken_probability`` and ``trip_count``
    annotate branches for the simulator's execution model (synthetic
    workloads set these; see :mod:`repro.workloads.generator`).
    ``label`` marks the instruction as a branch destination.
    """

    opcode: Opcode
    dsts: tuple[int, ...] = ()
    srcs: tuple[int, ...] = ()
    target: Optional[str] = None
    label: Optional[str] = None
    # Branch behaviour annotations consumed by the simulator front-end.
    taken_probability: Optional[float] = None
    trip_count: Optional[int] = None
    # Free-form annotations (e.g. compaction provenance).
    comment: Optional[str] = None

    def __post_init__(self) -> None:
        if self.opcode not in OPCODE_CLASS:
            raise ValueError(f"unknown opcode {self.opcode!r}")
        for reg in (*self.dsts, *self.srcs):
            if not isinstance(reg, int) or reg < 0:
                raise ValueError(f"bad register operand {reg!r} in {self.opcode}")
        if self.op_class is OpClass.BRANCH and self.opcode is not Opcode.EXIT:
            if self.target is None:
                raise ValueError(f"{self.opcode.value} requires a target label")
        if self.target is not None and self.op_class is not OpClass.BRANCH:
            raise ValueError(f"{self.opcode.value} cannot carry a branch target")
        if self.taken_probability is not None and not 0.0 <= self.taken_probability <= 1.0:
            raise ValueError("taken_probability must lie in [0, 1]")
        if self.trip_count is not None and self.trip_count < 0:
            raise ValueError("trip_count must be non-negative")

    @property
    def op_class(self) -> OpClass:
        return OPCODE_CLASS[self.opcode]

    @property
    def latency(self) -> int:
        return OPCODE_LATENCY[self.opcode]

    @property
    def registers(self) -> tuple[int, ...]:
        """All registers the instruction touches (dsts then srcs)."""
        return (*self.dsts, *self.srcs)

    @property
    def is_branch(self) -> bool:
        return self.op_class is OpClass.BRANCH and self.opcode is not Opcode.EXIT

    @property
    def is_conditional_branch(self) -> bool:
        return self.opcode is Opcode.BRA

    @property
    def is_exit(self) -> bool:
        return self.opcode is Opcode.EXIT

    @property
    def is_barrier(self) -> bool:
        return self.opcode is Opcode.BAR_SYNC

    @property
    def is_memory(self) -> bool:
        return self.op_class in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_regmutex(self) -> bool:
        return self.op_class is OpClass.REGMUTEX

    def with_label(self, label: str) -> "Instruction":
        return replace(self, label=label)

    def renamed(self, mapping: dict[int, int]) -> "Instruction":
        """Return a copy with register operands renamed through ``mapping``.

        Registers absent from the mapping are kept as-is.  Used by the
        index-compaction pass (paper §III-A4).
        """
        return replace(
            self,
            dsts=tuple(mapping.get(r, r) for r in self.dsts),
            srcs=tuple(mapping.get(r, r) for r in self.srcs),
        )
