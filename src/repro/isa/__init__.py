"""GPU assembly intermediate representation.

This package models post-register-allocation GPU assembly at the same
abstraction level as GPGPU-Sim's PTXPlus: instructions operate on
*architected* register indices (``R0 .. R{n-1}``), plus predicates,
branches, barriers, and the RegMutex ``acquire``/``release`` primitives.

The IR is deliberately simple: a :class:`~repro.isa.kernel.Kernel` is a
flat list of :class:`~repro.isa.instructions.Instruction` objects with
label-based control flow, which is exactly what the compiler passes in
:mod:`repro.compiler` and the cycle-level simulator in :mod:`repro.sim`
consume.
"""

from repro.isa.registers import Register, RegisterSet
from repro.isa.instructions import (
    Opcode,
    OpClass,
    Instruction,
    OPCODE_CLASS,
    OPCODE_LATENCY,
)
from repro.isa.kernel import Kernel, KernelMetadata
from repro.isa.builder import KernelBuilder
from repro.isa.parser import parse_kernel, AsmSyntaxError
from repro.isa.printer import format_kernel, format_instruction

__all__ = [
    "Register",
    "RegisterSet",
    "Opcode",
    "OpClass",
    "Instruction",
    "OPCODE_CLASS",
    "OPCODE_LATENCY",
    "Kernel",
    "KernelMetadata",
    "KernelBuilder",
    "parse_kernel",
    "AsmSyntaxError",
    "format_kernel",
    "format_instruction",
]
