"""Deterministic fault-injection campaign (``repro faults``).

Arms every registered fault kind (:mod:`repro.faults.injector`) against
the layer that must catch it, and reports injected vs detected vs
escaped:

* SRP/compiler faults run a small contended RegMutex workload on a
  1-SM device and must be caught by the simulator's failure detectors —
  the no-timer deadlock check, the progress watchdog, or the per-cycle
  invariant checker — with a structured diagnostic, well before the
  hard cycle limit.
* Harness faults run real jobs through the :class:`Orchestrator` and
  must be absorbed (transient crash → retried to success) or attributed
  (deterministic error → typed :class:`JobFailure`, hang → timeout).
* Cache faults damage a real on-disk result cache and must be caught by
  the runner's load-time validation (``.corrupt`` backup or per-entry
  quarantine) without poisoning results.

Everything is a pure function of ``seed``: injection sites are event
ordinals, the simulator is deterministic, and worker retry outcomes are
forced by marker files — so a campaign run is reproducible evidence,
not a flaky smoke test.
"""

from __future__ import annotations

import dataclasses
import os
import re
import shutil
import tempfile
from dataclasses import dataclass

from repro.arch.config import GpuConfig, fermi_like
from repro.errors import (
    CycleLimitExceededError,
    DeadlockDiagnostic,
    InvariantViolationError,
    SimulationDeadlockError,
    SimulationError,
)
from repro.faults.injector import (
    FaultSpec,
    FaultingRegMutexTechnique,
    corrupt_cache_file,
    corrupt_checkpoint_file,
)
from repro.harness.orchestrator import Orchestrator
from repro.harness.runner import ExperimentRunner, RunRecord
from repro.harness.spec import JobFailure, JobSpec, TechniqueSpec
from repro.isa.builder import KernelBuilder
from repro.isa.kernel import Kernel
from repro.sim.gpu import Gpu
from repro.sim.technique import BaselineTechnique

# Campaign-wide detection deadline: a deadlock-class fault must be
# caught far below this, or it counts as escaped.  Well under the
# production 50M-cycle backstop so an escape costs milliseconds, and
# comfortably above the watchdog window so the watchdog gets its shot.
DETECTION_DEADLINE_CYCLES = 100_000

# One tiny SM with real contention: 4 CTAs x 2 warps fill all 8 slots.
CAMPAIGN_CONFIG = fermi_like(
    name="fault-campaign",
    num_sms=1,
    max_warps_per_sm=8,
    max_ctas_per_sm=4,
    max_threads_per_sm=512,
    registers_per_sm=2048,
    dram_latency=60,
    l1_hit_latency=8,
)

# Small device for the harness-level jobs (real workload apps).
HARNESS_CONFIG = fermi_like(
    name="fault-harness",
    num_sms=1,
    max_warps_per_sm=16,
    max_ctas_per_sm=4,
    max_threads_per_sm=512,
    registers_per_sm=8192,
    dram_latency=60,
    l1_hit_latency=8,
)


@dataclass(frozen=True)
class FaultOutcome:
    """One campaign row: what was injected and who (if anyone) caught it."""

    scenario: str
    fault: str
    layer: str
    detected: bool
    detector: str       # which mechanism caught it ("" when escaped)
    cycles: int | None  # detection cycle for simulator faults
    detail: str

    @property
    def escaped(self) -> bool:
        return not self.detected


def detection_rate(outcomes: list[FaultOutcome]) -> float:
    if not outcomes:
        return 1.0
    return sum(1 for o in outcomes if o.detected) / len(outcomes)


# -- simulator-layer scenarios -----------------------------------------------------
def _probe_kernel(hold_across_barrier: bool = False) -> Kernel:
    """A pre-instrumented acquire/work/release kernel (|Bs|=|Es|=4).

    ``hold_across_barrier`` places a barrier after the release; the
    unbalanced-acquire transform then strips the release, leaving a warp
    holding its section at the barrier while its CTA-mate starves on
    acquire — the circular wait the compiler's deadlock-avoidance rules
    exist to prevent.
    """
    b = KernelBuilder(name="fault-probe", regs_per_thread=8, threads_per_cta=64)
    for reg in range(4):
        b.ldc(reg)
    b.acquire()
    b.alu(4, 0, 1)
    b.alu(5, 2, 3)
    b.alu(6, 4, 5)
    b.alu(7, 6, 0)
    b.release()
    if hold_across_barrier:
        b.barrier()
    b.store(0, 7)
    b.exit()
    return b.build().with_metadata(base_set_size=4, extended_set_size=4)


def _detection_cycle(exc: SimulationError) -> int | None:
    if isinstance(exc.diagnostic, DeadlockDiagnostic):
        return exc.diagnostic.cycle
    match = re.search(r"cycle (\d+)", str(exc))
    return int(match.group(1)) if match else None


def _run_sim_scenario(
    scenario: str,
    fault: FaultSpec,
    seed: int,
    *,
    kernel: Kernel,
    retry_policy: str,
    config: GpuConfig = CAMPAIGN_CONFIG,
    forced_sections: int | None = 1,
) -> FaultOutcome:
    technique = FaultingRegMutexTechnique(
        fault, retry_policy=retry_policy, forced_sections=forced_sections
    )
    gpu = Gpu(config, technique, seed=seed)
    try:
        gpu.launch(kernel, grid_ctas=8, max_cycles=DETECTION_DEADLINE_CYCLES)
    except CycleLimitExceededError as exc:
        # Reaching the deadline without a structured verdict IS the
        # escape this campaign exists to rule out.
        return FaultOutcome(
            scenario, fault.kind, fault.layer, detected=False, detector="",
            cycles=_detection_cycle(exc),
            detail="ran to the detection deadline undetected",
        )
    except SimulationError as exc:
        if isinstance(exc, InvariantViolationError):
            detector = "invariant-checker"
        elif isinstance(exc, SimulationDeadlockError):
            detector = (
                "watchdog" if "watchdog" in str(exc) else "deadlock-check"
            )
        else:
            detector = type(exc).__name__
        has_diag = exc.diagnostic is not None
        return FaultOutcome(
            scenario, fault.kind, fault.layer,
            detected=has_diag, detector=detector,
            cycles=_detection_cycle(exc),
            detail=str(exc).split(";")[0],
        )
    except RuntimeError as exc:
        return FaultOutcome(
            scenario, fault.kind, fault.layer, detected=False, detector="",
            cycles=None, detail=f"escaped as bare {type(exc).__name__}: {exc}",
        )
    return FaultOutcome(
        scenario, fault.kind, fault.layer, detected=False, detector="",
        cycles=None, detail="simulation completed as if nothing happened",
    )


def _sim_scenarios(seed: int) -> list[FaultOutcome]:
    plain = _probe_kernel()
    barrier = _probe_kernel(hold_across_barrier=True)
    return [
        # Lost release, wakeup policy: every waiter parks with no timer
        # pending — the no-timer deadlock check must fire.
        _run_sim_scenario(
            "lost-release/wakeup",
            FaultSpec("dropped-release", trigger=0, seed=seed),
            seed, kernel=plain, retry_policy="wakeup",
        ),
        # Lost release, eager policy: waiters keep re-polling on backoff
        # timers, so there is never a timer-free cycle — only the
        # progress watchdog can see this livelock.
        _run_sim_scenario(
            "lost-release/eager",
            FaultSpec("dropped-release", trigger=0, seed=seed),
            seed, kernel=plain, retry_policy="eager",
        ),
        # Miscompiled kernel: acquire with no matching release, held
        # across a barrier — circular wait between CTA-mates.
        _run_sim_scenario(
            "unbalanced-acquire/barrier",
            FaultSpec("unbalanced-acquire", trigger=0, seed=seed),
            seed, kernel=barrier, retry_policy="wakeup",
        ),
        # Flipped SRP bit with the invariant checker armed: caught at
        # the first inconsistent cycle, long before any deadlock forms.
        _run_sim_scenario(
            "srp-bit-flip/invariants",
            FaultSpec("srp-bit-corruption", trigger=2, seed=seed),
            seed, kernel=plain, retry_policy="wakeup",
            config=dataclasses.replace(CAMPAIGN_CONFIG, debug_invariants=True),
            forced_sections=2,
        ),
    ]


# -- checkpoint-layer scenarios ----------------------------------------------------
def _plain_kernel() -> Kernel:
    """An uninstrumented compute kernel for the checkpoint scenarios
    (baseline technique — no acquire/release, so the fault surface is
    purely the checkpoint machinery)."""
    b = KernelBuilder(name="ckpt-probe", regs_per_thread=8, threads_per_cta=64)
    for reg in range(4):
        b.ldc(reg)
    b.alu(4, 0, 1)
    b.alu(5, 2, 3)
    b.alu(6, 4, 5)
    b.store(0, 6)
    b.exit()
    return b.build()


def _checkpoint_scenarios(seed: int, workdir: str) -> list[FaultOutcome]:
    """Damage a surviving checkpoint; resume must classify and fall back.

    The surviving checkpoint is produced the way a real crash produces
    one: a checkpointing launch is cut off mid-run (here by the cycle
    limit standing in for SIGKILL), leaving its periodic snapshot on
    disk because the completion cleanup never ran.
    """
    from repro.sim.checkpoint import checkpoint_path

    kernel = _plain_kernel()
    ref = Gpu(CAMPAIGN_CONFIG, BaselineTechnique(), seed=seed).launch(
        kernel, grid_ctas=8
    )
    interval = max(10, ref.cycles // 4)
    outcomes = []
    for kind in ("checkpoint-truncate", "checkpoint-corrupt"):
        ckpt_dir = os.path.join(workdir, kind)
        os.makedirs(ckpt_dir, exist_ok=True)
        try:
            Gpu(CAMPAIGN_CONFIG, BaselineTechnique(), seed=seed).launch(
                kernel, grid_ctas=8,
                max_cycles=interval * 2,  # "crash" after >=1 checkpoint
                checkpoint_dir=ckpt_dir, checkpoint_interval=interval,
            )
            raise AssertionError("truncated run unexpectedly completed")
        except CycleLimitExceededError:
            pass
        path = checkpoint_path(ckpt_dir, total_ctas=8)
        corrupt_checkpoint_file(path, kind, seed=seed)
        report: dict = {}
        result = Gpu(CAMPAIGN_CONFIG, BaselineTechnique(), seed=seed).launch(
            kernel, grid_ctas=8,
            checkpoint_dir=ckpt_dir, checkpoint_interval=interval,
            resume_report=report,
        )
        fallback = report.get("fallback", {}).get(8, "")
        classified = "CheckpointCorruptError" in fallback
        identical = result.stats == ref.stats
        detected = classified and identical and not report.get("resumed")
        outcomes.append(FaultOutcome(
            f"{kind}/fallback", kind, "checkpoint",
            detected=detected,
            detector="checkpoint-validation" if detected else "",
            cycles=None,
            detail=(
                "classified, discarded, recomputed bit-identically"
                if detected else
                f"classified={classified} identical={identical} "
                f"resumed={report.get('resumed')}"
            ),
        ))
    return outcomes


# -- cache-concurrency scenario ----------------------------------------------------
def _concurrent_cache_worker(
    path: str, worker_id: int, entries: int, seed: int
) -> int:
    """Pool entry point: compute ``entries`` distinct records against a
    shared cache file, flushing after every one for maximal collision
    pressure on the journal/lock protocol."""
    runner = ExperimentRunner(target_ctas_per_sm=2, seed=seed, cache_path=path)
    kernel = _plain_kernel()
    for i in range(entries):
        config = dataclasses.replace(
            CAMPAIGN_CONFIG, name=f"ccw-{worker_id}-{i}"
        )
        runner.run(kernel, config, BaselineTechnique())
        runner.flush()
    return entries


def _concurrent_cache_scenario(
    seed: int, workdir: str, writers: int = 2, entries: int = 3
) -> FaultOutcome:
    """Hammer one cache path from several processes at once.

    Every writer journals and flushes its own records concurrently; the
    advisory lock + write-ahead journal must deliver all of them into
    the final cache file with valid checksums — no lost entries, no
    quarantine, no torn file.
    """
    from concurrent.futures import ProcessPoolExecutor

    path = os.path.join(workdir, "concurrent-cache.json")
    expected = writers * entries
    with ProcessPoolExecutor(max_workers=writers) as pool:
        futures = [
            pool.submit(_concurrent_cache_worker, path, wid, entries, seed)
            for wid in range(writers)
        ]
        written = sum(f.result() for f in futures)
    survivor = ExperimentRunner(target_ctas_per_sm=2, seed=seed, cache_path=path)
    intact = len(survivor._memo)
    clean = survivor.quarantined_entries == 0
    detected = written == expected and intact == expected and clean
    return FaultOutcome(
        "cache-concurrent-writer/stress", "cache-concurrent-writer", "cache",
        detected=detected,
        detector="journal-lock" if detected else "",
        cycles=None,
        detail=(
            f"{expected}/{expected} records intact after "
            f"{writers}-writer collision"
            if detected else
            f"wrote {written}, reloaded {intact}, "
            f"quarantined {survivor.quarantined_entries}"
        ),
    )


# -- kill-mid-run scenario ---------------------------------------------------------
def _kill_mid_run_scenario(
    seed: int, workers: int, workdir: str, engine: str | None = None
) -> FaultOutcome:
    """SIGKILL a worker at a deterministic cycle; resume must finish the
    job bit-identically to an undisturbed baseline run.

    ``engine`` pins the issue engine (e.g. ``"native"``: the C core's
    mid-run checkpoints must be just as resumable as pure Python's);
    None keeps the config default.
    """
    config = HARNESS_CONFIG
    tag = ""
    if engine is not None:
        config = dataclasses.replace(config, issue_engine=engine)
        tag = f"-{engine}"
    ref_job = JobSpec(
        app="Gaussian", config=config,
        technique=TechniqueSpec("baseline"),
    )
    ref_orch = Orchestrator(
        ExperimentRunner(target_ctas_per_sm=2, seed=seed), workers=1
    )
    ref = ref_orch.run_jobs([ref_job])[ref_job]

    kill_cycle = max(200, ref.cycles // 2)
    interval = max(50, kill_cycle // 3)
    marker = os.path.join(workdir, f"kill-mid-run{tag}.marker")
    ckpt_dir = os.path.join(workdir, f"kill-mid-run{tag}-ckpts")
    job = JobSpec(
        app="Gaussian", config=config,
        technique=TechniqueSpec.of(
            "kill-mid-run", kill_cycle=kill_cycle, marker_path=marker
        ),
    )
    orch = Orchestrator(
        ExperimentRunner(target_ctas_per_sm=2, seed=seed),
        workers=max(2, workers), max_retries=2, retry_backoff=0.01,
        checkpoint_dir=ckpt_dir, checkpoint_interval=interval,
    )
    result = orch.run_jobs([job])[job]
    recovered = isinstance(result, RunRecord)
    retried = orch.telemetry.retries >= 1
    resumed = orch.telemetry.resumed_jobs >= 1
    identical = recovered and (
        dataclasses.replace(result, technique=ref.technique) == ref
    )
    detected = recovered and retried and resumed and identical
    resumed_cycle = next(
        (t.resumed_from_cycle for t in orch.telemetry.timings
         if t.resumed_from_cycle is not None),
        None,
    )
    return FaultOutcome(
        f"kill-mid-run{tag}/resume", "kill-mid-run", "harness",
        detected=detected,
        detector="checkpoint-resume" if detected else "",
        cycles=resumed_cycle,
        detail=(
            f"SIGKILL at cycle {kill_cycle} absorbed; resumed from cycle "
            f"{resumed_cycle}, result bit-identical to undisturbed run"
            if detected else
            f"recovered={recovered} retried={retried} resumed={resumed} "
            f"identical={identical}"
        ),
    )


def _daemon_kill_worker_scenario(
    seed: int, workers: int, workdir: str
) -> FaultOutcome:
    """SIGKILL a pool worker *under the service daemon*; the daemon's
    retry path must resume from the surviving checkpoint and finish the
    job bit-identically — the asyncio twin of the orchestrator's
    kill-mid-run probe, exercising the pool-recycle + singleflight
    machinery instead of `_run_pool_round`."""
    import asyncio

    from repro.service.daemon import ServiceConfig, SimulationService

    ref_job = JobSpec(
        app="Gaussian", config=HARNESS_CONFIG,
        technique=TechniqueSpec("baseline"),
    )
    ref_orch = Orchestrator(
        ExperimentRunner(target_ctas_per_sm=2, seed=seed), workers=1
    )
    ref = ref_orch.run_jobs([ref_job])[ref_job]

    kill_cycle = max(200, ref.cycles // 2)
    interval = max(50, kill_cycle // 3)
    marker = os.path.join(workdir, "daemon-kill.marker")
    job = JobSpec(
        app="Gaussian", config=HARNESS_CONFIG,
        technique=TechniqueSpec.of(
            "kill-mid-run", kill_cycle=kill_cycle, marker_path=marker
        ),
    )
    service_config = ServiceConfig(
        socket_path=os.path.join(workdir, "daemon-kill.sock"),
        cache_path=os.path.join(workdir, "daemon-kill-cache.json"),
        workers=max(2, workers), seed=seed, target_ctas_per_sm=2,
        max_retries=2, retry_backoff=0.01,
        checkpoint_dir=os.path.join(workdir, "daemon-kill-ckpts"),
        checkpoint_interval=interval, flush_interval=0,
    )

    async def drive():
        service = SimulationService(service_config)
        await service.start()
        try:
            results = service.submit([job])
            await asyncio.gather(
                *[s.task for s, _ in results if s.task is not None]
            )
            return service, results[0][0]
        finally:
            await service.aclose()

    service, state = asyncio.run(drive())
    recovered = isinstance(state.record, RunRecord)
    timing = state.timing
    retried = timing is not None and timing.attempts >= 2
    resumed = state.resumed_from_cycle is not None
    restarted = service.stats["pool_restarts"] >= 1
    identical = recovered and (
        dataclasses.replace(state.record, technique=ref.technique) == ref
    )
    detected = recovered and retried and resumed and restarted and identical
    return FaultOutcome(
        "daemon-kill-worker/resume", "kill-mid-run", "service",
        detected=detected,
        detector="daemon-retry+resume" if detected else "",
        cycles=state.resumed_from_cycle,
        detail=(
            f"daemon absorbed SIGKILL at cycle {kill_cycle}: pool "
            f"recycled, retry resumed from cycle "
            f"{state.resumed_from_cycle}, record bit-identical"
            if detected else
            f"recovered={recovered} retried={retried} resumed={resumed} "
            f"pool_restarted={restarted} identical={identical}"
        ),
    )


# -- harness-layer scenarios -------------------------------------------------------
def _harness_scenarios(seed: int, workers: int, workdir: str) -> list[FaultOutcome]:
    outcomes = []

    # Transient worker crash: first dispatch dies via os._exit, the
    # marker file makes the retry clean — the batch must complete.
    marker = os.path.join(workdir, "crash.marker")
    crash_job = JobSpec(
        app="Gaussian", config=HARNESS_CONFIG,
        technique=TechniqueSpec.of(
            "faulty-worker", mode="worker-crash", marker_path=marker
        ),
    )
    orch = Orchestrator(
        ExperimentRunner(target_ctas_per_sm=2, seed=seed),
        workers=max(2, workers), max_retries=2, retry_backoff=0.01,
    )
    result = orch.run_jobs([crash_job])[crash_job]
    recovered = isinstance(result, RunRecord)
    retries = orch.telemetry.retries
    outcomes.append(FaultOutcome(
        "worker-crash/retry", "worker-crash", "harness",
        detected=recovered and retries >= 1,
        detector="retry" if recovered else "",
        cycles=None,
        detail=(
            f"recovered after {retries} retr{'y' if retries == 1 else 'ies'}"
            if recovered else f"batch did not complete: {result}"
        ),
    ))

    # Deterministic simulation error: must surface as a typed failure
    # on the FIRST attempt — retrying determinism is wasted work.
    error_job = JobSpec(
        app="Gaussian", config=HARNESS_CONFIG,
        technique=TechniqueSpec.of("faulty-worker", mode="sim-error"),
    )
    orch = Orchestrator(
        ExperimentRunner(target_ctas_per_sm=2, seed=seed),
        workers=max(2, workers), max_retries=2, retry_backoff=0.01,
    )
    result = orch.run_jobs([error_job])[error_job]
    attributed = (
        isinstance(result, JobFailure)
        and result.kind == "simulation-error"
        and result.attempts == 1
    )
    outcomes.append(FaultOutcome(
        "sim-error/no-retry", "sim-error", "harness",
        detected=attributed,
        detector="failure-taxonomy" if attributed else "",
        cycles=None,
        detail=(
            f"JobFailure(kind={result.kind!r}, attempts={result.attempts})"
            if isinstance(result, JobFailure)
            else f"unexpected outcome {type(result).__name__}"
        ),
    ))

    # Hung worker: the per-job timeout must cut it loose.
    sleep_job = JobSpec(
        app="Gaussian", config=HARNESS_CONFIG,
        technique=TechniqueSpec.of(
            "faulty-worker", mode="worker-sleep", delay_seconds=5.0
        ),
    )
    orch = Orchestrator(
        ExperimentRunner(target_ctas_per_sm=2, seed=seed),
        workers=max(2, workers), job_timeout=0.75, max_retries=0,
    )
    result = orch.run_jobs([sleep_job])[sleep_job]
    timed_out = isinstance(result, JobFailure) and result.kind == "timeout"
    outcomes.append(FaultOutcome(
        "worker-hang/timeout", "worker-sleep", "harness",
        detected=timed_out,
        detector="job-timeout" if timed_out else "",
        cycles=None,
        detail=(
            f"JobFailure(kind={result.kind!r})"
            if isinstance(result, JobFailure)
            else f"unexpected outcome {type(result).__name__}"
        ),
    ))

    return outcomes


# -- cache-layer scenarios ---------------------------------------------------------
def _seed_cache(path: str, seed: int) -> None:
    with ExperimentRunner(target_ctas_per_sm=2, seed=seed, cache_path=path) as r:
        r.run(_probe_kernel(), CAMPAIGN_CONFIG, BaselineTechnique())


def _cache_scenarios(seed: int, workdir: str) -> list[FaultOutcome]:
    import warnings as warnings_mod

    outcomes = []
    cases = [
        ("cache-truncate", "torn write"),
        ("cache-garbage", "non-JSON overwrite"),
        ("cache-poison-entry", "silent record bit-rot"),
    ]
    for kind, label in cases:
        path = os.path.join(workdir, f"{kind}.json")
        _seed_cache(path, seed)
        corrupt_cache_file(path, kind, seed=seed)
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            runner = ExperimentRunner(
                target_ctas_per_sm=2, seed=seed, cache_path=path
            )
        warned = len(caught) > 0
        if kind == "cache-poison-entry":
            detected = runner.quarantined_entries == 1 and warned
            detector = "checksum-quarantine"
            detail = (
                f"{runner.quarantined_entries} entry quarantined to "
                f"{os.path.basename(path)}.quarantine.json"
            )
        else:
            backed_up = os.path.exists(path + ".corrupt")
            detected = backed_up and warned and not runner._memo
            detector = "load-validation"
            detail = f"{label} preserved at {os.path.basename(path)}.corrupt"
        if not detected:
            detail = f"{label} was silently accepted"
        outcomes.append(FaultOutcome(
            f"{kind}/reload", kind, "cache",
            detected=detected,
            detector=detector if detected else "",
            cycles=None, detail=detail,
        ))
    return outcomes


# -- entry point -------------------------------------------------------------------
def run_campaign(
    seed: int = 2018,
    include_harness: bool = True,
    workers: int = 2,
    include_kill_mid_run: bool = False,
) -> list[FaultOutcome]:
    """Run the full campaign; returns one :class:`FaultOutcome` per scenario.

    ``include_harness=False`` skips the orchestrator/pool scenarios
    (which spawn real worker processes and take a few seconds) — the
    simulator, checkpoint, and cache layers alone run in well under a
    second.  ``include_kill_mid_run`` adds the SIGKILL-at-cycle
    checkpoint/resume scenario (``repro faults --kill-mid-run``): the
    heaviest probe — it deliberately kills a pool worker and proves the
    retry resumes bit-identically — so it is opt-in on top of
    ``include_harness``.
    """
    outcomes = _sim_scenarios(seed)
    workdir = tempfile.mkdtemp(prefix="regmutex-faults-")
    try:
        outcomes.extend(_checkpoint_scenarios(seed, workdir))
        outcomes.extend(_cache_scenarios(seed, workdir))
        outcomes.append(_concurrent_cache_scenario(seed, workdir))
        if include_harness:
            outcomes.extend(_harness_scenarios(seed, workers, workdir))
            if include_kill_mid_run:
                outcomes.append(
                    _kill_mid_run_scenario(seed, workers, workdir)
                )
                outcomes.append(
                    _kill_mid_run_scenario(
                        seed, workers, workdir, engine="native"
                    )
                )
                outcomes.append(
                    _daemon_kill_worker_scenario(seed, workers, workdir)
                )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return outcomes


def campaign_table(outcomes: list[FaultOutcome]) -> str:
    """The ``repro faults`` report: per-scenario verdicts + totals."""
    from repro.harness.reporting import format_table

    rows = [
        [
            o.scenario,
            o.layer,
            "detected" if o.detected else "ESCAPED",
            o.detector or "-",
            o.cycles if o.cycles is not None else "-",
            o.detail,
        ]
        for o in outcomes
    ]
    table = format_table(
        ["scenario", "layer", "verdict", "detector", "cycle", "detail"],
        rows,
        title="fault-injection campaign",
    )
    escaped = sum(1 for o in outcomes if o.escaped)
    summary = (
        f"\n{len(outcomes)} faults injected, "
        f"{len(outcomes) - escaped} detected, {escaped} escaped "
        f"(detection rate {detection_rate(outcomes):.0%})"
    )
    return table + summary
