"""Deterministic fault injection across the stack.

RegMutex's correctness rests on invariants the happy path never tests:
the compiler's two deadlock-avoidance rules, the SRP bitmask/LUT
consistency, and the harness's assumption that workers return.  This
module *breaks each of them on purpose*, deterministically, so the
detection machinery (the SM watchdog, ``Srp.check_invariants``, the
orchestrator's retry/timeout logic, the cache checksums) can be proven
to catch them — the related register-sharing literature (Jatala et
al., RegDem) is full of livelock/starvation modes that only fault
campaigns surface.

Fault kinds (see :data:`FAULT_KINDS`):

* ``dropped-release`` — a RELEASE is "lost in flight" at the SRP: the
  warp-side state clears but the section bit stays set, leaking the
  section forever.
* ``srp-bit-corruption`` — a bit of the SRP bitmask flips (a free
  section is marked taken), desynchronizing bitmask and LUT.
* ``unbalanced-acquire`` — the compiler emits an acquire with no
  matching release (:func:`drop_release` on the compiled kernel), the
  exact bug the paper's |Es|-selection rules exist to avoid.
* ``worker-crash`` / ``sim-error`` / ``worker-sleep`` — harness-level
  faults via :class:`FaultyWorkerTechnique`: a worker process dies
  hard (transient — retried), raises a deterministic simulation error
  (never retried), or hangs past the per-job timeout.
* ``cache-truncate`` / ``cache-garbage`` / ``cache-poison-entry`` —
  on-disk cache damage via :func:`corrupt_cache_file`, caught by the
  runner's checksum validation and quarantine.
* ``kill-mid-run`` — a worker is SIGKILLed at a deterministic
  simulation cycle via :class:`KillMidRunTechnique`; with periodic
  checkpointing armed, the orchestrator's retry must *resume* from the
  surviving checkpoint and finish bit-identical to an undisturbed run.
* ``checkpoint-truncate`` / ``checkpoint-corrupt`` — a checkpoint file
  is cut short or its payload altered under an unchanged checksum
  (:func:`corrupt_checkpoint_file`); resume must classify the damage
  (:class:`repro.errors.CheckpointCorruptError`) and fall back to a
  fresh, bit-identical run — never resume silently from bad state.
* ``cache-concurrent-writer`` — multiple processes hammer one result
  cache; the journal + advisory-lock protocol must lose no entry and
  corrupt none.

Every injection site is an *event ordinal* (the Nth release, the Nth
acquire attempt), not a wall-clock or cycle trigger, so a campaign is
bit-reproducible under a seed.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, replace

from repro.arch.config import GpuConfig
from repro.errors import FaultInjectionError, SimulationError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.kernel import Kernel
from repro.regmutex.issue_logic import RegMutexSmState, RegMutexTechnique
from repro.sim.stats import SmStats
from repro.sim.technique import BaselineTechnique, SmTechniqueState
from repro.sim.warp import Warp


@dataclass(frozen=True)
class FaultKind:
    """Registry entry: where a fault lives and what it corrupts."""

    name: str
    layer: str  # "srp" | "compiler" | "harness" | "cache"
    description: str


FAULT_KINDS: dict[str, FaultKind] = {
    k.name: k
    for k in (
        FaultKind("dropped-release", "srp",
                  "a RELEASE is lost in flight; the section leaks"),
        FaultKind("srp-bit-corruption", "srp",
                  "an SRP bitmask bit flips out from under the LUT"),
        FaultKind("unbalanced-acquire", "compiler",
                  "the compiled kernel acquires without releasing"),
        FaultKind("worker-crash", "harness",
                  "a pool worker process dies mid-job (transient)"),
        FaultKind("sim-error", "harness",
                  "a job fails deterministically inside the worker"),
        FaultKind("worker-sleep", "harness",
                  "a worker hangs past the per-job timeout"),
        FaultKind("cache-truncate", "cache",
                  "the cache file is cut short mid-record"),
        FaultKind("cache-garbage", "cache",
                  "the cache file is overwritten with non-JSON bytes"),
        FaultKind("cache-poison-entry", "cache",
                  "one cache record is altered without its checksum"),
        FaultKind("kill-mid-run", "harness",
                  "a worker is SIGKILLed at a deterministic sim cycle"),
        FaultKind("checkpoint-truncate", "checkpoint",
                  "a checkpoint file is cut short mid-write"),
        FaultKind("checkpoint-corrupt", "checkpoint",
                  "checkpoint payload altered under an unchanged checksum"),
        FaultKind("cache-concurrent-writer", "cache",
                  "concurrent processes collide on one result cache"),
    )
}


def fault_kinds() -> tuple[str, ...]:
    return tuple(sorted(FAULT_KINDS))


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: a registered kind plus its deterministic trigger.

    ``trigger`` is an event ordinal — the Nth occurrence of the fault's
    target event (release, acquire attempt, …) fires the injection.
    ``seed`` feeds any remaining choice (e.g. which bit to flip) so a
    campaign replays bit-identically.
    """

    kind: str
    trigger: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(fault_kinds())
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r} (known: {known})"
            )
        if self.trigger < 0:
            raise FaultInjectionError("trigger ordinal must be >= 0")

    @property
    def layer(self) -> str:
        return FAULT_KINDS[self.kind].layer


# -- compiler-level faults: kernel transforms --------------------------------------
def drop_release(kernel: Kernel, occurrence: int = 0) -> Kernel:
    """Remove the Nth RELEASE instruction (an unbalanced acquire).

    A boundary label on the removed RELEASE migrates to the following
    instruction so branch targets stay valid; a candidate whose
    successor already carries a label is skipped (removing it would
    require merging labels, which no real miscompile would do).
    """
    candidates = [
        pc for pc, inst in enumerate(kernel)
        if inst.opcode is Opcode.RELEASE
        and (inst.label is None
             or (pc + 1 < len(kernel) and kernel[pc + 1].label is None))
    ]
    if not candidates:
        raise FaultInjectionError(
            f"kernel {kernel.name!r} has no removable RELEASE to drop"
        )
    target = candidates[occurrence % len(candidates)]
    moved_label = kernel[target].label
    new_instructions: list[Instruction] = []
    for pc, inst in enumerate(kernel):
        if pc == target:
            continue
        if pc == target + 1 and moved_label is not None:
            inst = replace(inst, label=moved_label)
        new_instructions.append(inst)
    return kernel.with_instructions(new_instructions)


def insert_acquire(kernel: Kernel, before_pc: int) -> Kernel:
    """Insert a spurious ACQUIRE before ``before_pc`` (the other
    unbalanced shape: an extra acquire the release count never matches).
    The displaced instruction's label moves onto the ACQUIRE so branch
    targets execute it — mirroring the real injector's label rule."""
    if not 0 <= before_pc < len(kernel):
        raise FaultInjectionError(f"pc {before_pc} outside kernel")
    new_instructions: list[Instruction] = []
    for pc, inst in enumerate(kernel):
        if pc == before_pc:
            new_instructions.append(
                Instruction(Opcode.ACQUIRE, label=inst.label)
            )
            inst = replace(inst, label=None)
        new_instructions.append(inst)
    return kernel.with_instructions(new_instructions)


# -- SRP-level faults: a sabotaged RegMutex SM state -------------------------------
class FaultingRegMutexState(RegMutexSmState):
    """RegMutex per-SM state with one armed hardware fault.

    Behaves identically to the real state until the armed event
    ordinal, then corrupts the SRP through
    ``Srp.corrupt_for_fault_injection`` — after which detection is the
    watchdog's and invariant checker's problem, exactly as it would be
    on real silicon.
    """

    def __init__(self, *args, fault: FaultSpec, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.fault = fault
        self._releases_seen = 0
        self._acquires_seen = 0
        self.fault_fired_at: int | None = None

    def try_acquire(self, warp: Warp, cycle: int) -> bool:
        if (
            self.fault.kind == "srp-bit-corruption"
            and self.fault_fired_at is None
            and self._acquires_seen >= self.fault.trigger
        ):
            # Fires at the first acquire at-or-after the trigger ordinal
            # where a section bit is actually clear (a flip of an
            # already-set bit would be invisible); FFZ is a pure
            # function of the bitmask, so the site stays deterministic.
            free = self.srp.srp_bitmask.find_first_zero()
            if free is not None:
                # The flipped bit marks a free section as taken; the
                # LUT says nobody holds it.
                self.srp.corrupt_for_fault_injection(
                    set_section_bits=(free,)
                )
                self.fault_fired_at = cycle
        self._acquires_seen += 1
        return super().try_acquire(warp, cycle)

    def release(self, warp: Warp, cycle: int) -> None:
        if (
            self.fault.kind == "dropped-release"
            and self.fault_fired_at is None
            and self._releases_seen == self.fault.trigger
            and warp.holds_extended_set
        ):
            self._releases_seen += 1
            # The release never reaches the SRP: the warp believes it
            # released (and the pipeline advances it), but the section
            # bit stays set and no waiter is woken.
            self.srp.corrupt_for_fault_injection(clear_slots=(warp.slot,))
            warp.holds_extended_set = False
            warp.srp_section = None
            self.fault_fired_at = cycle
            return
        self._releases_seen += 1
        super().release(warp, cycle)

    def debug_snapshot(self) -> dict:
        snapshot = super().debug_snapshot()
        snapshot["fault"] = {
            "kind": self.fault.kind,
            "trigger": self.fault.trigger,
            "fired_at": self.fault_fired_at,
        }
        return snapshot

    def state_snapshot(self) -> dict:
        payload = super().state_snapshot()
        payload["fault_counters"] = {
            "releases_seen": self._releases_seen,
            "acquires_seen": self._acquires_seen,
            "fired_at": self.fault_fired_at,
        }
        return payload

    def state_restore(self, payload: dict, warps_by_id) -> None:
        super().state_restore(payload, warps_by_id)
        counters = payload["fault_counters"]
        self._releases_seen = counters["releases_seen"]
        self._acquires_seen = counters["acquires_seen"]
        self.fault_fired_at = counters["fired_at"]


class FaultingRegMutexTechnique(RegMutexTechnique):
    """RegMutex with a fault armed — the campaign's simulator entry.

    Accepts pre-instrumented kernels (``uses_regmutex`` already set) so
    campaign scenarios can hand-place acquire/release/barrier shapes
    the compiler's deadlock rules would (correctly) refuse to emit;
    ``forced_sections`` pins the SRP size to create contention on tiny
    configs.
    """

    name = "regmutex-faulty"

    def __init__(
        self,
        fault: FaultSpec,
        extended_set_size: int | None = None,
        retry_policy: str = "wakeup",
        forced_sections: int | None = None,
    ) -> None:
        super().__init__(
            extended_set_size=extended_set_size, retry_policy=retry_policy
        )
        self.fault = fault
        self.forced_sections = forced_sections

    def prepare_kernel(self, kernel: Kernel, config: GpuConfig) -> Kernel:
        if kernel.metadata.uses_regmutex:
            compiled = kernel  # pre-instrumented scenario kernel
        else:
            compiled = super().prepare_kernel(kernel, config)
        if self.fault.kind == "unbalanced-acquire":
            compiled = drop_release(compiled, occurrence=self.fault.seed)
        return compiled

    def num_sections(self, kernel: Kernel, config: GpuConfig) -> int:
        if self.forced_sections is not None:
            return self.forced_sections
        return super().num_sections(kernel, config)

    def make_sm_state(
        self, kernel: Kernel, config: GpuConfig, stats: SmStats
    ) -> FaultingRegMutexState:
        return FaultingRegMutexState(
            kernel,
            config,
            stats,
            num_sections=self.num_sections(kernel, config),
            retry_policy=self.retry_policy,
            fault=self.fault,
        )


# -- harness-level faults: a technique that sabotages its worker -------------------
class FaultyWorkerTechnique(BaselineTechnique):
    """Baseline behaviour, plus one harness fault at kernel-prepare time.

    ``prepare_kernel`` runs inside the worker process (the orchestrator
    only fingerprints the technique in the parent), so this is the
    deterministic way to kill, fail, or hang a specific pool worker:

    * ``worker-crash`` — ``os._exit`` unless ``marker_path`` exists;
      the first attempt writes the marker and dies, the retry runs
      clean.  Models a transient environmental crash (OOM kill, node
      preemption).
    * ``sim-error`` — raise :class:`SimulationError`; deterministic, so
      the orchestrator must NOT retry it.
    * ``worker-sleep`` — sleep ``delay_seconds`` to trip the per-job
      timeout.
    """

    name = "faulty-worker"

    def __init__(
        self,
        mode: str = "worker-crash",
        marker_path: str = "",
        delay_seconds: float = 0.0,
        message: str = "injected deterministic simulation failure",
    ) -> None:
        if mode not in ("worker-crash", "sim-error", "worker-sleep"):
            raise FaultInjectionError(f"unknown worker fault mode {mode!r}")
        if mode == "worker-crash" and not marker_path:
            # Without a marker the crash would repeat on every retry
            # (and kill the orchestrating process itself in inline mode).
            raise FaultInjectionError(
                "worker-crash mode requires a marker_path"
            )
        self.mode = mode
        self.marker_path = marker_path
        self.delay_seconds = delay_seconds
        self.message = message

    def prepare_kernel(self, kernel: Kernel, config: GpuConfig) -> Kernel:
        if self.mode == "worker-crash":
            if not os.path.exists(self.marker_path):
                with open(self.marker_path, "w") as fh:
                    fh.write(str(os.getpid()))
                os._exit(23)  # hard death: no exception crosses the pipe
        elif self.mode == "sim-error":
            raise SimulationError(self.message)
        elif self.mode == "worker-sleep" and self.delay_seconds > 0:
            time.sleep(self.delay_seconds)
        return kernel


# -- kill-mid-run: a worker that dies at a deterministic cycle ---------------------
class _KillMidRunState(SmTechniqueState):
    """Baseline-identical issue state that SIGKILLs its own process.

    The kill fires on the first ``can_issue`` probe at or past
    ``kill_cycle`` — a deterministic point in a deterministic
    simulation — unless the marker file exists (the retried worker
    writes nothing and runs clean, so recovery is provable).  SIGKILL,
    not an exception: nothing crosses the pipe, the pool only sees a
    dead process, exactly like an OOM kill landing mid-simulation.
    """

    def __init__(self, *args, kill_cycle: int, marker_path: str, **kwargs):
        super().__init__(*args, **kwargs)
        self.kill_cycle = kill_cycle
        self.marker_path = marker_path

    def can_issue(self, warp: Warp, inst, cycle: int) -> bool:
        if cycle >= self.kill_cycle and not os.path.exists(self.marker_path):
            with open(self.marker_path, "w") as fh:
                fh.write(f"{os.getpid()} killed at cycle {cycle}")
                fh.flush()
                os.fsync(fh.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
        return super().can_issue(warp, inst, cycle)


class KillMidRunTechnique(BaselineTechnique):
    """Baseline occupancy and timing, plus one mid-run SIGKILL.

    Used by the kill-mid-run campaign: the first dispatch dies at
    ``kill_cycle`` (after the periodic checkpointer has flushed at
    least once), the marker file lets the retry finish, and the final
    record must be bit-identical to a plain baseline run — the whole
    point of checkpoint/resume.
    """

    name = "kill-mid-run"

    def __init__(self, kill_cycle: int = 0, marker_path: str = "") -> None:
        if kill_cycle > 0 and not marker_path:
            raise FaultInjectionError(
                "kill-mid-run with a positive kill_cycle requires a "
                "marker_path, or every retry dies identically"
            )
        self.kill_cycle = kill_cycle
        self.marker_path = marker_path

    def make_sm_state(
        self, kernel: Kernel, config: GpuConfig, stats: SmStats
    ) -> SmTechniqueState:
        if self.kill_cycle <= 0:
            return super().make_sm_state(kernel, config, stats)
        return _KillMidRunState(
            kernel, config, stats,
            kill_cycle=self.kill_cycle, marker_path=self.marker_path,
        )


# -- checkpoint-level faults -------------------------------------------------------
def corrupt_checkpoint_file(path: str, kind: str, seed: int = 0) -> None:
    """Damage a checkpoint file the way a crash or bit-rot would.

    ``checkpoint-truncate`` models a writer killed mid-write (only
    possible on the temp file path, but belt and braces); the result is
    not valid JSON.  ``checkpoint-corrupt`` alters the payload while
    keeping the stored checksum — parseable, plausible, and wrong —
    which only the content checksum can catch.
    """
    import json

    if kind == "checkpoint-truncate":
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))
    elif kind == "checkpoint-corrupt":
        with open(path) as fh:
            raw = json.load(fh)
        payload = raw.get("payload", {})
        payload["cycle"] = int(payload.get("cycle", 0)) + 1 + seed % 7
        with open(path, "w") as fh:
            json.dump(raw, fh)  # checksum left stale on purpose
    else:
        raise FaultInjectionError(f"unknown checkpoint fault kind {kind!r}")


# -- cache-level faults ------------------------------------------------------------
def corrupt_cache_file(path: str, kind: str, seed: int = 0) -> None:
    """Damage an on-disk result cache in one of three deterministic ways."""
    import json

    if kind == "cache-truncate":
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))
    elif kind == "cache-garbage":
        with open(path, "w") as fh:
            fh.write("{this is not json" + "x" * (seed % 7))
    elif kind == "cache-poison-entry":
        with open(path) as fh:
            raw = json.load(fh)
        entries = raw.get("entries", raw)
        if not entries:
            raise FaultInjectionError(f"cache {path!r} has no entries to poison")
        key = sorted(entries)[seed % len(entries)]
        entry = entries[key]
        record = entry.get("record", entry)
        # Flip a result field without touching the stored checksum —
        # the signature of silent bit-rot or a torn write.
        record["cycles"] = int(record.get("cycles", 0)) + 1
        with open(path, "w") as fh:
            json.dump(raw, fh)
    else:
        raise FaultInjectionError(f"unknown cache fault kind {kind!r}")
