"""Fault injection for the RegMutex stack (see :mod:`repro.faults.injector`).

Deliberately does NOT import :mod:`repro.faults.campaign` here: campaign
pulls in the harness, and the harness registers
:class:`FaultyWorkerTechnique` from this package — importing it eagerly
would make the import graph circular.
"""

from repro.faults.injector import (
    FAULT_KINDS,
    FaultKind,
    FaultSpec,
    FaultingRegMutexState,
    FaultingRegMutexTechnique,
    FaultyWorkerTechnique,
    corrupt_cache_file,
    drop_release,
    fault_kinds,
    insert_acquire,
)

__all__ = [
    "FAULT_KINDS",
    "FaultKind",
    "FaultSpec",
    "FaultingRegMutexState",
    "FaultingRegMutexTechnique",
    "FaultyWorkerTechnique",
    "corrupt_cache_file",
    "drop_release",
    "fault_kinds",
    "insert_acquire",
]
