"""RegMutex issue-stage logic and the full technique wiring.

The acquire/release primitives execute at the issue stage, like barrier
operations (paper §III-B1).  A failed acquire parks the warp in
``WAITING_ACQUIRE``; any release wakes all parked warps, which then
retry their acquire when next scheduled (an alternative eager-retry
policy is available for the ablation benches).

:class:`RegMutexTechnique` is the end-to-end scheme: ``prepare_kernel``
runs the compiler pipeline (liveness → |Es| selection → compaction →
primitive injection) and ``occupancy`` implements the paper's register
accounting — CTAs packed by ``|Bs|`` alone, with the leftover registers
carved into SRP sections of ``|Es|`` registers each.
"""

from __future__ import annotations

from repro.arch.config import GpuConfig
from repro.arch.occupancy import OccupancyResult, theoretical_occupancy
from repro.errors import InvariantViolationError
from repro.isa.instructions import Instruction
from repro.isa.kernel import Kernel
from repro.regmutex.srp import SharedRegisterPool
from repro.sim.stats import SmStats
from repro.sim.technique import SharingTechnique, SmTechniqueState
from repro.sim.warp import Warp, WarpStatus


def srp_section_count(
    config: GpuConfig,
    resident_warps: int,
    base_set_size: int,
    extended_set_size: int,
) -> int:
    """Number of extended sets that fit in the register file leftover.

    Paper §III-A2 worked example: 48 warps × |Bs| threads' registers are
    packed first; the remainder is divided by one extended set's register
    cost (|Es| × warp_size); the count is capped at the warp-slot count
    (the SRP bitmask is Nw bits) and floored at 0.
    """
    if extended_set_size <= 0:
        return 0
    used = resident_warps * base_set_size * config.warp_size
    leftover = config.registers_per_sm - used
    if leftover <= 0:
        return 0
    sections = leftover // (extended_set_size * config.warp_size)
    return max(0, min(sections, config.max_warps_per_sm))


class RegMutexSmState(SmTechniqueState):
    """Per-SM runtime: the SRP plus the blocked-warp wait queue."""

    def __init__(
        self,
        kernel: Kernel,
        config: GpuConfig,
        stats: SmStats,
        num_sections: int,
        retry_policy: str = "wakeup",
    ) -> None:
        super().__init__(kernel, config, stats)
        if retry_policy not in ("wakeup", "eager"):
            raise ValueError(f"unknown retry policy {retry_policy!r}")
        self.srp = SharedRegisterPool(config.max_warps_per_sm, num_sections)
        self.retry_policy = retry_policy
        self._wait_queue: list[Warp] = []
        # Double-buffered wakeup list: ``wakeup_pending`` swaps the two
        # instead of allocating a fresh list per cycle (hot loop).
        self._pending_wakeups: list[Warp] = []
        self._wakeup_spare: list[Warp] = []

    # -- technique interface -----------------------------------------------------
    def on_issue(self, warp: Warp, inst, cycle: int) -> None:
        if not self.config.runtime_safety_checks:
            return
        md = self.kernel.metadata
        bs = md.base_set_size
        if not bs or warp.holds_extended_set:
            return
        for reg in inst.registers:
            if reg >= bs:
                raise PermissionError(
                    f"cycle {cycle}: warp {warp.warp_id} touched extended "
                    f"register R{reg} at pc {warp.pc} without holding an "
                    "SRP section (miscompiled kernel)"
                )

    def try_acquire(self, warp: Warp, cycle: int) -> bool:
        self.stats.acquire_attempts += 1
        section = self.srp.acquire(warp.slot)
        if section is not None:
            self.stats.acquire_successes += 1
            warp.holds_extended_set = True
            warp.srp_section = section
            if warp.acquire_block_since is not None:
                self.stats.acquire_wait_cycles += cycle - warp.acquire_block_since
                warp.acquire_block_since = None
            return True
        if self.retry_policy == "wakeup":
            warp.status = WarpStatus.WAITING_ACQUIRE
            if warp not in self._wait_queue:
                self._wait_queue.append(warp)
        if warp.acquire_block_since is None:
            warp.acquire_block_since = cycle
        return False

    def release(self, warp: Warp, cycle: int) -> None:
        freed = self.srp.release(warp.slot)
        if freed is not None:
            self.stats.release_count += 1
            warp.holds_extended_set = False
            warp.srp_section = None
            if self._wait_queue:
                # One section came back: wake exactly one waiter (FIFO).
                # Waking the whole queue would burn an issue slot per
                # loser on every release (thundering herd).
                self._pending_wakeups.append(self._wait_queue.pop(0))

    def on_warp_finish(self, warp: Warp, cycle: int) -> None:
        # Defensive reclamation: a well-formed compiled kernel releases
        # before EXIT, but a warp exiting inside an acquire region must
        # not leak its section.
        if warp.holds_extended_set:
            self.release(warp, cycle)
        if warp in self._wait_queue:
            self._wait_queue.remove(warp)
        if warp in self._pending_wakeups:
            # The warp finished (or was watchdog-killed) between being
            # granted a wakeup and consuming it.  Dropping the stale
            # wakeup alone would strand the freed section until the next
            # release, so hand it to the next parked waiter.
            self._pending_wakeups.remove(warp)
            if self._wait_queue:
                self._pending_wakeups.append(self._wait_queue.pop(0))

    def wakeup_pending(self) -> list[Warp] | tuple:
        woken = self._pending_wakeups
        if not woken:
            return ()
        spare = self._wakeup_spare
        spare.clear()
        self._pending_wakeups, self._wakeup_spare = spare, woken
        return woken

    def srp_view(self) -> tuple[int, int]:
        return (self.srp.sections_in_use, self.srp.num_sections)

    @property
    def waiting_warps(self) -> int:
        return len(self._wait_queue)

    def check_invariants(self, cycle: int) -> None:
        """SRP bitmask/LUT/status consistency, as a structured error.

        ``Srp.check_invariants`` raises ``AssertionError`` (its
        property-test contract); the simulator surface wraps it so a
        corrupted structure is attributable and carries a snapshot.
        """
        try:
            self.srp.check_invariants()
        except AssertionError as exc:
            raise InvariantViolationError(
                f"cycle {cycle}: SRP invariant violated: {exc}",
                diagnostic=self.debug_snapshot(),
            ) from exc

    def debug_snapshot(self) -> dict:
        return {
            "srp_bitmask": self.srp.srp_bitmask.as_int(),
            "warp_status": self.srp.warp_status.as_int(),
            "lut": [
                self.srp.lut_entry(slot) for slot in range(self.srp.max_warps)
            ],
            "num_sections": self.srp.num_sections,
            "sections_in_use": self.srp.sections_in_use,
            "wait_queue": [w.warp_id for w in self._wait_queue],
            "retry_policy": self.retry_policy,
        }

    def state_snapshot(self) -> dict:
        return {
            "srp_bitmask": self.srp.srp_bitmask.as_int(),
            "warp_status": self.srp.warp_status.as_int(),
            "lut": list(self.srp._lut),
            "wait_queue": [w.warp_id for w in self._wait_queue],
            "pending_wakeups": [w.warp_id for w in self._pending_wakeups],
        }

    def state_restore(self, payload: dict, warps_by_id: dict[int, Warp]) -> None:
        self.srp.srp_bitmask._bits = payload["srp_bitmask"]
        self.srp.warp_status._bits = payload["warp_status"]
        self.srp._lut = list(payload["lut"])
        # FIFO order is part of the schedule: restore verbatim.
        self._wait_queue = [warps_by_id[w] for w in payload["wait_queue"]]
        self._pending_wakeups = [
            warps_by_id[w] for w in payload["pending_wakeups"]
        ]
        self._wakeup_spare = []

    def resolve_physical(self, warp: Warp, arch_reg: int) -> int:
        """The Figure 6b mux, for the bank-conflict model.

        Base registers live in the warp's |Bs| block; extended registers
        live in the warp's current SRP section past the SRP offset.  A
        warp touching an extended register without a section would be a
        compiler bug (the static verifier forbids it); fall back to the
        base formula so the timing model never crashes mid-run.
        """
        md = self.kernel.metadata
        bs = md.base_set_size or md.regs_per_thread
        if arch_reg < bs or not warp.holds_extended_set:
            return arch_reg + bs * warp.slot
        es = md.extended_set_size or 0
        section = warp.srp_section or 0
        srp_offset = bs * self.config.max_warps_per_sm
        return (arch_reg - bs) + es * section + srp_offset


class RegMutexTechnique(SharingTechnique):
    """RegMutex default mode: communal SRP time-shared by all warps."""

    name = "regmutex"

    def __init__(
        self,
        extended_set_size: int | None = None,
        retry_policy: str = "wakeup",
        enable_compaction: bool = True,
    ) -> None:
        """``extended_set_size`` forces |Es| (the Figure 10 sweep); None
        lets the compiler heuristic choose."""
        self.extended_set_size = extended_set_size
        self.retry_policy = retry_policy
        self.enable_compaction = enable_compaction

    def prepare_kernel(self, kernel: Kernel, config: GpuConfig) -> Kernel:
        # Local import: the compiler package builds on isa/liveness/arch
        # and is orthogonal to the hardware model hierarchy.
        from repro.compiler.pipeline import regmutex_compile

        return regmutex_compile(
            kernel,
            config,
            forced_es=self.extended_set_size,
            enable_compaction=self.enable_compaction,
        )

    def occupancy(self, kernel: Kernel, config: GpuConfig) -> OccupancyResult:
        md = kernel.metadata
        if not md.uses_regmutex:
            return theoretical_occupancy(config, md)
        return theoretical_occupancy(
            config, md, regs_per_thread=md.base_set_size, granularity=1
        )

    def num_sections(self, kernel: Kernel, config: GpuConfig) -> int:
        md = kernel.metadata
        if not md.uses_regmutex:
            return 0
        occ = self.occupancy(kernel, config)
        return srp_section_count(
            config, occ.resident_warps, md.base_set_size, md.extended_set_size
        )

    def make_sm_state(
        self, kernel: Kernel, config: GpuConfig, stats: SmStats
    ) -> RegMutexSmState:
        return RegMutexSmState(
            kernel,
            config,
            stats,
            num_sections=self.num_sections(kernel, config),
            retry_policy=self.retry_policy,
        )
