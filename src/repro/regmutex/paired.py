"""Paired-warps specialization (paper §III-C).

Instead of a communal SRP, warps are statically paired and each pair is
provisioned ``2·|Bs| + |Es|`` physical registers: base sets are private,
the single extended section is time-shared between the two partners.
This drops the LUT and SRP bitmask entirely — only an ``Nw/2``-bit
pair-status bitmask remains — at the cost of sharing flexibility: a warp
can only wait on its own partner, never borrow a section from an idle
pair elsewhere on the SM.
"""

from __future__ import annotations

from repro.arch.config import GpuConfig
from repro.arch.occupancy import OccupancyResult, theoretical_occupancy
from repro.isa.kernel import Kernel
from repro.regmutex.srp import Bitmask
from repro.sim.stats import SmStats
from repro.sim.technique import SmTechniqueState
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.sim.warp import Warp, WarpStatus


class PairedWarpsSmState(SmTechniqueState):
    """Per-SM state: one status bit per warp pair."""

    def __init__(self, kernel: Kernel, config: GpuConfig, stats: SmStats) -> None:
        super().__init__(kernel, config, stats)
        num_pairs = max(1, config.max_warps_per_sm // 2)
        self.pair_status = Bitmask(num_pairs)
        # pair index -> warp currently holding the pair's extended section
        self._holder: dict[int, Warp] = {}
        self._waiting: dict[int, Warp] = {}
        # Double-buffered, like RegMutexSmState: no per-cycle allocation.
        self._pending_wakeups: list[Warp] = []
        self._wakeup_spare: list[Warp] = []

    def _pair_of(self, warp: Warp) -> int:
        return warp.slot // 2

    def try_acquire(self, warp: Warp, cycle: int) -> bool:
        self.stats.acquire_attempts += 1
        pair = self._pair_of(warp)
        holder = self._holder.get(pair)
        if holder is warp or not self.pair_status.test(pair):
            self.pair_status.set(pair)
            self._holder[pair] = warp
            self.stats.acquire_successes += 1
            warp.holds_extended_set = True
            warp.srp_section = pair
            if warp.acquire_block_since is not None:
                self.stats.acquire_wait_cycles += cycle - warp.acquire_block_since
                warp.acquire_block_since = None
            return True
        warp.status = WarpStatus.WAITING_ACQUIRE
        self._waiting[pair] = warp
        if warp.acquire_block_since is None:
            warp.acquire_block_since = cycle
        return False

    def release(self, warp: Warp, cycle: int) -> None:
        pair = self._pair_of(warp)
        if self._holder.get(pair) is not warp:
            return  # nested release: no effect
        self.pair_status.unset(pair)
        del self._holder[pair]
        warp.holds_extended_set = False
        warp.srp_section = None
        self.stats.release_count += 1
        partner = self._waiting.pop(pair, None)
        if partner is not None:
            self._pending_wakeups.append(partner)

    def on_warp_finish(self, warp: Warp, cycle: int) -> None:
        if warp.holds_extended_set:
            self.release(warp, cycle)
        pair = self._pair_of(warp)
        if self._waiting.get(pair) is warp:
            del self._waiting[pair]
        if warp in self._pending_wakeups:
            # Stale wakeup for a finished warp: drop it.  No handoff is
            # needed — the pair's only other member is the one that
            # released, and it reacquires without a wakeup.
            self._pending_wakeups.remove(warp)

    def wakeup_pending(self) -> list[Warp] | tuple:
        woken = self._pending_wakeups
        if not woken:
            return ()
        spare = self._wakeup_spare
        spare.clear()
        self._pending_wakeups, self._wakeup_spare = spare, woken
        return woken

    def srp_view(self) -> tuple[int, int]:
        return (self.pair_status.popcount(), self.pair_status.width)

    def state_snapshot(self) -> dict:
        return {
            "pair_status": self.pair_status.as_int(),
            "holder": {str(p): w.warp_id for p, w in self._holder.items()},
            "waiting": {str(p): w.warp_id for p, w in self._waiting.items()},
            "pending_wakeups": [w.warp_id for w in self._pending_wakeups],
        }

    def state_restore(self, payload: dict, warps_by_id: dict[int, Warp]) -> None:
        self.pair_status._bits = payload["pair_status"]
        self._holder = {
            int(p): warps_by_id[w] for p, w in payload["holder"].items()
        }
        self._waiting = {
            int(p): warps_by_id[w] for p, w in payload["waiting"].items()
        }
        self._pending_wakeups = [
            warps_by_id[w] for w in payload["pending_wakeups"]
        ]
        self._wakeup_spare = []


class PairedWarpsTechnique(RegMutexTechnique):
    """RegMutex with statically paired warps sharing one section each."""

    name = "regmutex-paired"

    def occupancy(self, kernel: Kernel, config: GpuConfig) -> OccupancyResult:
        md = kernel.metadata
        if not md.uses_regmutex:
            return theoretical_occupancy(config, md)
        # Each *pair* costs 2|Bs| + |Es| registers per thread; amortized
        # per warp that is |Bs| + |Es|/2.  Using a fractional per-thread
        # cost directly would misround, so pack pairs explicitly: the
        # register cap in warps is 2 * floor(R / (2|Bs|+|Es|)) expressed
        # through an effective per-thread register cost.
        pair_cost_threads = 2 * md.base_set_size + md.extended_set_size
        # Effective per-warp register cost: half the pair.
        effective = (pair_cost_threads + 1) // 2
        return theoretical_occupancy(
            config, md, regs_per_thread=effective, granularity=1
        )

    def num_sections(self, kernel: Kernel, config: GpuConfig) -> int:
        md = kernel.metadata
        if not md.uses_regmutex:
            return 0
        occ = self.occupancy(kernel, config)
        return occ.resident_warps // 2

    def make_sm_state(
        self, kernel: Kernel, config: GpuConfig, stats: SmStats
    ) -> PairedWarpsSmState:
        return PairedWarpsSmState(kernel, config, stats)
