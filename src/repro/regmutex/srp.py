"""Shared Register Pool hardware structures (paper §III-B1, Figures 4/5).

Three tiny structures per SM:

* **warp status bitmask** — one bit per warp slot: has this warp
  acquired its extended set?  (``Nw`` bits)
* **SRP bitmask** — one bit per SRP section: is the section taken?
  Allocation is Find-First-Zero.  Sections beyond the number that
  physically fits are pre-set at kernel placement and never cleared.
  (``Nw`` bits)
* **LUT** — per-warp entry of ``ceil(log2 Nw)`` bits recording which
  section the warp holds.

:class:`Bitmask` models a fixed-width hardware bitmask faithfully
(including FFZ); :class:`SharedRegisterPool` composes the three
structures with the acquire/release procedures of Figure 5.
"""

from __future__ import annotations

import math
from typing import Optional


class Bitmask:
    """Fixed-width bitmask with hardware-style operations."""

    __slots__ = ("_width", "_bits")

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError("bitmask width must be positive")
        self._width = width
        self._bits = 0

    @property
    def width(self) -> int:
        return self._width

    def _check(self, index: int) -> None:
        if not 0 <= index < self._width:
            raise IndexError(f"bit {index} outside width {self._width}")

    def set(self, index: int) -> None:
        self._check(index)
        self._bits |= 1 << index

    def unset(self, index: int) -> None:
        self._check(index)
        self._bits &= ~(1 << index)

    def test(self, index: int) -> bool:
        self._check(index)
        return bool(self._bits >> index & 1)

    def find_first_zero(self) -> Optional[int]:
        """Index of the least-significant zero bit; None if full."""
        inverted = ~self._bits & ((1 << self._width) - 1)
        if inverted == 0:
            return None
        return (inverted & -inverted).bit_length() - 1

    def popcount(self) -> int:
        return self._bits.bit_count()

    def as_int(self) -> int:
        return self._bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bitmask({self._width}, {self._bits:#x})"


class SharedRegisterPool:
    """The SRP allocator: status bitmask + SRP bitmask + LUT.

    ``num_sections`` is how many extended sets physically fit; bits past
    it are pre-set at construction ("kernel placement") per the paper.
    """

    def __init__(self, max_warps: int, num_sections: int) -> None:
        if num_sections < 0:
            raise ValueError("num_sections must be non-negative")
        if num_sections > max_warps:
            # The SRP bitmask is Nw bits long; more sections than warp
            # slots cannot be addressed (and would be useless anyway).
            raise ValueError(
                f"num_sections {num_sections} exceeds warp slots {max_warps}"
            )
        self._max_warps = max_warps
        self._num_sections = num_sections
        # Observability hook: called as (kind, warp_slot, section) on
        # every *real* state transition ("acquire"/"release"); nested
        # no-op acquires/releases do not fire it.  None when unobserved.
        self.on_transition = None
        self.warp_status = Bitmask(max_warps)
        self.srp_bitmask = Bitmask(max_warps)
        # LUT: one entry of ceil(log2 Nw) bits per warp.
        self._lut: list[Optional[int]] = [None] * max_warps
        for section in range(num_sections, max_warps):
            self.srp_bitmask.set(section)

    # -- geometry ---------------------------------------------------------------
    @property
    def num_sections(self) -> int:
        return self._num_sections

    @property
    def max_warps(self) -> int:
        return self._max_warps

    @property
    def sections_in_use(self) -> int:
        return self.srp_bitmask.popcount() - (self._max_warps - self._num_sections)

    @property
    def sections_free(self) -> int:
        # Clamped: after corrupt_for_fault_injection leaks a section the
        # raw count can go negative; fault diagnostics read this as an
        # occupancy figure, so it never reports "-1 free".  The raw value
        # still trips check_invariants.
        return max(0, self._num_sections - self.sections_in_use)

    def lut_entry(self, warp_slot: int) -> Optional[int]:
        return self._lut[warp_slot]

    def holds_section(self, warp_slot: int) -> bool:
        return self.warp_status.test(warp_slot)

    # -- acquire/release procedures (Figure 5) ------------------------------------
    def acquire(self, warp_slot: int) -> Optional[int]:
        """Attempt to acquire a section for a warp slot.

        Returns the granted section index, or None when the SRP is full
        (the warp must wait and retry).  A nested acquire — the warp
        already holds a section — is a no-op returning the held section,
        per the paper's "an acquire after another acquire ... should have
        no effect".
        """
        if self.warp_status.test(warp_slot):
            return self._lut[warp_slot]
        section = self.srp_bitmask.find_first_zero()
        if section is None:
            return None
        self.srp_bitmask.set(section)
        self.warp_status.set(warp_slot)
        self._lut[warp_slot] = section
        if self.on_transition is not None:
            self.on_transition("acquire", warp_slot, section)
        return section

    def release(self, warp_slot: int) -> Optional[int]:
        """Release the warp's section; no-op if it holds none (nested
        release rule).  Returns the freed section index, or None."""
        if not self.warp_status.test(warp_slot):
            return None
        section = self._lut[warp_slot]
        assert section is not None, "status bit set but LUT empty"
        self.warp_status.unset(warp_slot)
        self.srp_bitmask.unset(section)
        self._lut[warp_slot] = None
        if self.on_transition is not None:
            self.on_transition("release", warp_slot, section)
        return section

    # -- columnar export ---------------------------------------------------------
    def occupancy_columns(self) -> dict:
        """The three structures as per-slot/per-section columns.

        Bulk consumers (the sanitizer's cross-check against the
        columnar ``holds`` column, the column-view tests, exporters)
        read these instead of probing bits one at a time.  Returns
        ndarrays when numpy is installed, plain lists otherwise —
        mirroring :meth:`repro.sim.columnar.ColumnarCore.snapshot`.

        Keys: ``holds`` (bool per warp slot: status bit), ``section``
        (int per warp slot: LUT entry, -1 when none), ``taken`` (bool
        per *addressable* section: SRP bit — pre-set bits past
        ``num_sections`` included, exactly as the hardware holds them).
        """
        cols = {
            "holds": [
                self.warp_status.test(slot) for slot in range(self._max_warps)
            ],
            "section": [
                -1 if entry is None else entry for entry in self._lut
            ],
            "taken": [
                self.srp_bitmask.test(section)
                for section in range(self._max_warps)
            ],
        }
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - minimal installs
            return cols
        return {name: np.asarray(col) for name, col in cols.items()}

    # -- fault injection support -----------------------------------------------------
    def corrupt_for_fault_injection(
        self,
        *,
        set_section_bits: tuple[int, ...] = (),
        clear_section_bits: tuple[int, ...] = (),
        clear_slots: tuple[int, ...] = (),
    ) -> None:
        """Deliberately desynchronize the three structures.

        This is the *only* supported way to model hardware faults (a
        flipped SRP bit, a release lost in flight): it bypasses the
        acquire/release procedures, so the structures end up mutually
        inconsistent — exactly what :meth:`check_invariants` and the
        simulator watchdog exist to catch.  Never called outside
        ``repro.faults`` and its tests.
        """
        for section in set_section_bits:
            self.srp_bitmask.set(section)
        for section in clear_section_bits:
            self.srp_bitmask.unset(section)
        for slot in clear_slots:
            # A lost release: the warp-side view clears but the section
            # bit stays set, leaking the section forever.
            self.warp_status.unset(slot)
            self._lut[slot] = None

    # -- invariant checking (used by property tests) ---------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if the three structures disagree."""
        held = [s for s in self._lut if s is not None]
        assert len(held) == len(set(held)), "two warps hold the same section"
        for slot in range(self._max_warps):
            if self.warp_status.test(slot):
                section = self._lut[slot]
                assert section is not None, f"slot {slot}: status set, LUT empty"
                assert section < self._num_sections, (
                    f"slot {slot}: holds phantom section {section}"
                )
                assert self.srp_bitmask.test(section), (
                    f"slot {slot}: LUT says {section} but SRP bit clear"
                )
            else:
                assert self._lut[slot] is None, f"slot {slot}: stale LUT entry"
        assert self.sections_in_use == len(held), (
            f"{self.sections_in_use} section(s) marked in use but "
            f"{len(held)} LUT holder(s)"
        )
        # Deliberately unclamped: a leaked section (release lost in
        # flight) makes sections_in_use exceed num_sections, which the
        # clamped sections_free property would hide.
        raw_free = self._num_sections - self.sections_in_use
        assert 0 <= raw_free <= self._num_sections, (
            f"section leak: {self.sections_in_use} in use of "
            f"{self._num_sections}"
        )


def lut_bits(max_warps: int) -> int:
    """Storage of the LUT in bits: Nw entries of ceil(log2 Nw) bits.

    With one warp slot the entry needs ceil(log2 1) = 0 bits — there is
    nothing to index — so the documented formula gives 0, not 1.
    """
    if max_warps <= 1:
        return 0
    return max_warps * math.ceil(math.log2(max_warps))
