"""RegMutex microarchitecture: the paper's primary contribution.

Hardware-side structures (§III-B): the Shared Register Pool bitmask with
Find-First-Zero allocation, the warp-status bitmask, the warp→section
lookup table, the issue-stage acquire/release logic, and the augmented
architected-to-physical mapping mux.  Plus the paired-warps
specialization (§III-C) and the storage-overhead accounting used for the
"384 bits vs >31 kilobits" comparison.
"""

from repro.regmutex.srp import Bitmask, SharedRegisterPool
from repro.regmutex.issue_logic import RegMutexSmState, RegMutexTechnique
from repro.regmutex.mapping import RegMutexRegisterMapper
from repro.regmutex.paired import PairedWarpsSmState, PairedWarpsTechnique
from repro.regmutex.storage import (
    StorageBudget,
    regmutex_storage_bits,
    paired_storage_bits,
    rfv_storage_bits,
)

__all__ = [
    "Bitmask",
    "SharedRegisterPool",
    "RegMutexSmState",
    "RegMutexTechnique",
    "RegMutexRegisterMapper",
    "PairedWarpsSmState",
    "PairedWarpsTechnique",
    "StorageBudget",
    "regmutex_storage_bits",
    "paired_storage_bits",
    "rfv_storage_bits",
]
