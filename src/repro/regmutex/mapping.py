"""Architected-to-physical mapping augmented for RegMutex (Figure 6b).

The mux: for architected index ``X``, if ``X < |Bs|`` the register lives
in the warp's exclusive base block at ``X + |Bs| * Widx``; otherwise it
lives in the warp's currently-held SRP section at
``(X - |Bs|) + |Es| * LUT(Widx) + SRP_offset``.  The SRP offset is the
first physical index past all resident warps' base blocks.

Resolving an extended-set register while the warp holds no section is a
hardware protocol violation; the mapper raises, and the simulator's
self-check tests assert the compiled kernels never trigger it.
"""

from __future__ import annotations

from repro.regmutex.srp import SharedRegisterPool
from repro.sim.regfile import MappedRegister


class RegMutexRegisterMapper:
    """Resolves physical indices for base and extended registers."""

    def __init__(
        self,
        base_set_size: int,
        extended_set_size: int,
        resident_warps: int,
        total_registers: int,
        srp: SharedRegisterPool,
    ) -> None:
        if base_set_size <= 0:
            raise ValueError("base set size must be positive")
        if extended_set_size < 0:
            raise ValueError("extended set size must be non-negative")
        if resident_warps <= 0:
            raise ValueError("resident_warps must be positive")
        self._bs = base_set_size
        self._es = extended_set_size
        self._srp = srp
        self._total = total_registers
        self._resident_warps = resident_warps
        # SRP begins right after the statically packed base blocks.
        self._srp_offset = base_set_size * resident_warps
        srp_capacity = extended_set_size * srp.num_sections
        if self._srp_offset + srp_capacity > total_registers:
            raise ValueError(
                "register file overcommitted: "
                f"{self._srp_offset} base + {srp_capacity} SRP "
                f"> {total_registers} physical registers"
            )

    @property
    def srp_offset(self) -> int:
        return self._srp_offset

    def resolve(self, warp_index: int, arch_reg: int) -> MappedRegister:
        if not 0 <= warp_index < self._resident_warps:
            # A base-path resolve for an out-of-range warp index would
            # silently land inside SRP physical space (the mux has no
            # bounds wire); reject it before either path computes.
            raise ValueError(
                f"warp index {warp_index} outside resident range "
                f"[0, {self._resident_warps})"
            )
        if arch_reg < self._bs:
            # Base path of the mux: Y = X + |Bs| * Widx.
            return MappedRegister(
                physical_index=arch_reg + self._bs * warp_index,
                region="base",
            )
        if arch_reg >= self._bs + self._es:
            raise ValueError(
                f"architected register R{arch_reg} outside |Bs|+|Es| = "
                f"{self._bs}+{self._es}"
            )
        if not self._srp.holds_section(warp_index):
            raise PermissionError(
                f"warp {warp_index} touched extended register R{arch_reg} "
                "without holding an SRP section"
            )
        section = self._srp.lut_entry(warp_index)
        assert section is not None
        physical = (arch_reg - self._bs) + self._es * section + self._srp_offset
        if physical >= self._total:
            raise ValueError(
                f"physical register {physical} exceeds file size {self._total}"
            )
        return MappedRegister(physical_index=physical, region="extended")
