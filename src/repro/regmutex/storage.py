"""Hardware storage-overhead accounting (paper §III-B1 / §IV-C).

RegMutex adds three structures per SM: the warp-status bitmask (Nw
bits), the SRP bitmask (Nw bits), and the LUT (Nw × ceil(log2 Nw) bits)
— 48 + 48 + 288 = 384 bits on the Fermi baseline.  RFV's renaming table
needs 30,240 bits plus 1,024 bits of availability flags (>31 kilobits,
a >81× gap).  Paired-warps RegMutex keeps only a half-length pair bitmask
(Nw/2 = 24 bits): >20× below default RegMutex — the exact ratio is
384/24 = 16×, and the paper's ">20x" counts the default mode's bitmask
indexing/FFZ wiring as well; we report raw storage bits and the ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import GpuConfig
from repro.regmutex.srp import lut_bits


@dataclass(frozen=True)
class StorageBudget:
    """Per-SM added storage of a technique, broken into named parts."""

    technique: str
    parts: tuple[tuple[str, int], ...]

    @property
    def total_bits(self) -> int:
        return sum(bits for _, bits in self.parts)

    def ratio_vs(self, other: "StorageBudget") -> float:
        """How many times smaller this budget is than ``other``."""
        if self.total_bits == 0:
            return math.inf
        return other.total_bits / self.total_bits


def regmutex_storage_bits(config: GpuConfig) -> StorageBudget:
    """Default RegMutex: warp-status bitmask + SRP bitmask + LUT."""
    nw = config.max_warps_per_sm
    lut = lut_bits(nw)
    return StorageBudget(
        technique="regmutex",
        parts=(
            ("warp_status_bitmask", nw),
            ("srp_bitmask", nw),
            ("lut", lut),
        ),
    )


def paired_storage_bits(config: GpuConfig) -> StorageBudget:
    """Paired-warps specialization: a single Nw/2-bit pair bitmask."""
    return StorageBudget(
        technique="regmutex-paired",
        parts=(("pair_status_bitmask", config.max_warps_per_sm // 2),),
    )


def rfv_storage_bits(config: GpuConfig) -> StorageBudget:
    """Register File Virtualization (Jeon et al.): renaming table +
    availability bits, excluding the Release Flag Cache (as the paper's
    comparison does).

    The renaming table maps every architected register of every resident
    warp to a physical register pack: with 1K packs (32K regs / 32
    lanes), each entry is 10 bits; 48 warps × 63 architected registers
    → 30,240 bits.  Availability: one bit per physical pack (1,024).
    """
    packs = config.warp_register_packs
    entry_bits = math.ceil(math.log2(packs))
    arch_regs_per_warp = 63  # CUDA cc1.x architected register namespace
    table = config.max_warps_per_sm * arch_regs_per_warp * entry_bits
    return StorageBudget(
        technique="rfv",
        parts=(
            ("renaming_table", table),
            ("availability_bits", packs),
        ),
    )


def owf_storage_bits(config: GpuConfig) -> StorageBudget:
    """OWF (Jatala et al.): a lock bit per warp pair plus per-access
    comparator state; we count the lock bits (the paper does not give a
    headline number for OWF storage)."""
    return StorageBudget(
        technique="owf",
        parts=(("pair_lock_bits", config.max_warps_per_sm // 2),),
    )
