"""Dynamic sanitizer: one per-issue / per-cycle runtime checker.

Before this module the runtime safety net was scattered and opt-in
piecemeal: the extended-access ``PermissionError`` behind
``runtime_safety_checks`` (:class:`repro.regmutex.issue_logic.RegMutexSmState`),
the mapper's bounds errors, the SRP structural check behind
``debug_invariants``, and nothing at all watching the scoreboard,
wait queues, or physical-register aliasing.  ``GpuConfig.sanitizer``
arms all of them at once, reporting every failure as a typed
:class:`SanitizerViolation` with warp/pc/cycle provenance, published on
the observability bus (so violations land in Perfetto traces as instant
events) and raised as :class:`repro.errors.SanitizerError`.

Per issued instruction:

* **extended-access** — an SRP-family warp touches a register >= |Bs|
  without holding a section (the dynamic twin of the static verifier);
* **scoreboard-hazard** — the instruction issued over a pending write
  (RAW/WAW) the issue stage should have blocked on;
* **physical-bounds** — the technique's architected-to-physical mapping
  left the register file;
* **physical-aliasing** — a write claims a physical register another
  live warp wrote and still owns (claims are dropped at the owner's
  ACQUIRE/RELEASE — its section mapping changes — and at EXIT).

Per cycle:

* **structural-invariant** — the technique's own ``check_invariants``
  (SRP bitmask/LUT/status consistency for RegMutex) without needing
  ``debug_invariants``;
* **wait-queue** — a finished warp parked in a wait queue or holding a
  stale wakeup, or a duplicated queue entry;
* **slot-accounting** — warp-slot leakage or aliasing in the SM's slot
  allocator.

Structural checks run every ``GpuConfig.sanitizer_stride`` cycles
(default 1 — every cycle); per-issue checks always run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvariantViolationError, SanitizerError
from repro.isa.instructions import Instruction, OpClass
from repro.observe.events import SANITIZER, SimEvent
from repro.regmutex.issue_logic import RegMutexSmState
from repro.regmutex.paired import PairedWarpsSmState
from repro.sim.warp import Warp

# Techniques whose kernels carry the acquire/release contract the
# extended-access check enforces.  OWF also sets |Bs| metadata but its
# warps legally touch shared registers without ACQUIRE (the hardware
# lock triggers on first access), so membership is by state type, not
# by kernel metadata.
_SRP_FAMILY = (RegMutexSmState, PairedWarpsSmState)


@dataclass(frozen=True)
class SanitizerViolation:
    """One runtime contract violation with full provenance."""

    check: str        # which checker fired (see module docstring)
    message: str
    cycle: int
    warp_id: int = -1  # -1: no warp subject (structural checks)
    pc: int = -1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        subject = f" warp {self.warp_id} pc {self.pc}" if self.warp_id >= 0 else ""
        return f"[{self.check}] cycle {self.cycle}{subject}: {self.message}"


class Sanitizer:
    """Per-SM dynamic checker installed when ``config.sanitizer`` is set.

    ``fail_fast`` (the default) raises :class:`SanitizerError` at the
    first violation — with the SM diagnostic snapshot attached, so the
    fault campaign's detectors classify it like any other structured
    failure.  With ``fail_fast=False`` violations accumulate in
    ``self.violations`` (used by tests that seed several).
    """

    def __init__(self, sm, fail_fast: bool = True) -> None:
        self.sm = sm
        self.fail_fast = fail_fast
        self.violations: list[SanitizerViolation] = []
        self._stride = max(1, getattr(sm.config, "sanitizer_stride", 1))
        # physical register -> (warp_id, arch_reg) of the live claimant.
        self._claims: dict[int, tuple[int, int]] = {}
        self._claims_by_warp: dict[int, list[int]] = {}

    # -- plumbing ------------------------------------------------------------------
    def _state(self):
        state = self.sm.technique
        while hasattr(state, "inner"):  # observe/shadow wrappers
            state = state.inner
        return state

    def _report(
        self, check: str, message: str, cycle: int, warp_id: int = -1, pc: int = -1
    ) -> None:
        violation = SanitizerViolation(check, message, cycle, warp_id, pc)
        self.violations.append(violation)
        observer = self.sm._observer
        if observer is not None:
            observer.bus.emit(SimEvent(
                cycle, SANITIZER, warp_id=warp_id, pc=pc,
                detail=f"{check}: {message}",
            ))
        if self.fail_fast:
            raise SanitizerError(
                f"sanitizer: {violation}",
                violations=tuple(self.violations),
                diagnostic=self.sm.diagnostic(),
            )

    def _drop_claims(self, warp_id: int) -> None:
        for phys in self._claims_by_warp.pop(warp_id, ()):
            claim = self._claims.get(phys)
            if claim is not None and claim[0] == warp_id:
                del self._claims[phys]

    # -- per-issue checks ----------------------------------------------------------
    def on_issue(self, warp: Warp, inst: Instruction, cycle: int) -> None:
        state = self._state()
        metadata = warp.kernel.metadata

        if (
            isinstance(state, _SRP_FAMILY)
            and metadata.uses_regmutex
            and metadata.base_set_size
            and not warp.holds_extended_set
        ):
            base = metadata.base_set_size
            for reg in inst.registers:
                if reg >= base:
                    self._report(
                        "extended-access",
                        f"touched extended register R{reg} (|Bs|={base}) "
                        "without holding an SRP section",
                        cycle, warp.warp_id, warp.pc,
                    )

        if not self.sm.scoreboard.can_issue(warp.warp_id, inst, cycle):
            blocking = self.sm.scoreboard.blocking_registers(
                warp.warp_id, inst, cycle
            )
            regs = ", ".join(f"R{r}" for r in blocking)
            self._report(
                "scoreboard-hazard",
                f"{inst.opcode.value} issued over pending writes to {regs}",
                cycle, warp.warp_id, warp.pc,
            )

        if inst.op_class is OpClass.REGMUTEX or inst.is_exit:
            # The warp's extended mapping (or the warp itself) is going
            # away; its claims are no longer authoritative.
            self._drop_claims(warp.warp_id)
            return

        limit = self.sm.config.registers_per_sm
        for reg in dict.fromkeys(inst.registers):
            phys = state.resolve_physical(warp, reg)
            if not 0 <= phys < limit:
                self._report(
                    "physical-bounds",
                    f"R{reg} mapped to physical {phys}, outside "
                    f"[0, {limit})",
                    cycle, warp.warp_id, warp.pc,
                )
        for reg in inst.dsts:
            phys = state.resolve_physical(warp, reg)
            claim = self._claims.get(phys)
            if claim is not None and claim[0] != warp.warp_id:
                self._report(
                    "physical-aliasing",
                    f"write to R{reg} hit physical {phys}, still owned "
                    f"by warp {claim[0]} (its R{claim[1]})",
                    cycle, warp.warp_id, warp.pc,
                )
            self._claims[phys] = (warp.warp_id, reg)
            self._claims_by_warp.setdefault(warp.warp_id, []).append(phys)

    # -- per-cycle checks ----------------------------------------------------------
    def on_cycle(self, sm) -> None:
        cycle = sm.cycle
        if cycle % self._stride:
            return
        state = self._state()

        try:
            state.check_invariants(cycle)
        except InvariantViolationError as exc:
            self._report("structural-invariant", str(exc), cycle)

        for attr in ("_wait_queue", "_pending_wakeups"):
            queue = getattr(state, attr, None)
            if not queue:
                continue
            seen: set[int] = set()
            for warp in queue:
                if warp.finished:
                    self._report(
                        "wait-queue",
                        f"finished warp {warp.warp_id} still in {attr}",
                        cycle, warp.warp_id, warp.pc,
                    )
                if warp.warp_id in seen:
                    self._report(
                        "wait-queue",
                        f"warp {warp.warp_id} enqueued twice in {attr}",
                        cycle, warp.warp_id, warp.pc,
                    )
                seen.add(warp.warp_id)

        core = getattr(sm, "_columnar", None)
        if core is not None:
            # Columnar engine: the store's own structural contract —
            # queue membership vs qstate codes, ready-list ordering,
            # finished/free slots detached — plus agreement between the
            # holds column and the SRP's warp-status bitmask (the column
            # is a cache of the hardware structure; divergence means a
            # lost acquire/release transition).
            try:
                core.check_hygiene()
            except AssertionError as exc:
                self._report("columnar-hygiene", str(exc), cycle)
            srp = getattr(state, "srp", None)
            if srp is not None:
                srp_holds = srp.occupancy_columns()["holds"]
                holds = core.holds
                for slot, warp_id in enumerate(core.wid):
                    if warp_id < 0 or slot >= len(srp_holds):
                        continue
                    if bool(holds[slot]) != bool(srp_holds[slot]):
                        self._report(
                            "columnar-hygiene",
                            f"holds column says {bool(holds[slot])} for "
                            f"slot {slot} but SRP status bit is "
                            f"{bool(srp_holds[slot])}",
                            cycle, warp_id,
                        )

        occupied = sm._occupied_slots
        if len(occupied) != sm._resident_warp_count:
            self._report(
                "slot-accounting",
                f"{sm._resident_warp_count} resident warps but "
                f"{len(occupied)} occupied slots (leak or aliasing)",
                cycle,
            )
        if occupied and max(occupied) >= sm.config.max_warps_per_sm:
            self._report(
                "slot-accounting",
                f"slot {max(occupied)} outside the "
                f"{sm.config.max_warps_per_sm}-slot window",
                cycle,
            )
