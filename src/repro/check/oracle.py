"""Differential execution oracle across the five techniques.

Runs one Table I workload under baseline / RegMutex / paired-warps /
OWF / RFV on a 1-SM device with the shadow executor
(:mod:`repro.check.shadow`) and the dynamic sanitizer armed, then
asserts the architectural outcomes are equivalent modulo each
technique's documented remapping:

* **per-warp stream digests and retired counts** must match the
  baseline exactly for every technique — the digested stream excludes
  only the REGMUTEX primitives and compaction-injected MOVs, so any
  value divergence (a wrong rename, a corrupted section mux) poisons
  the digest;
* **final shadow memory** must match exactly (the shadow's warp-seeded
  value roots make all addresses warp-private, so the final state is
  interleaving-independent);
* **final register maps** must additionally match index-for-index for
  the non-rewriting techniques (baseline, OWF, RFV).  RegMutex and
  paired-warps legally redistribute the same values across different
  indices (compaction), which the stream digests already cover.

Every run doubles as a sanitizer soak: ``CHECK_CONFIG`` arms
``GpuConfig.sanitizer``, so a clean ``repro check`` also certifies that
no runtime contract check fires on healthy schedules.

Fan-out mirrors the harness orchestrator's worker discipline — a
module-level job function fed to a ``ProcessPoolExecutor`` (the
orchestrator itself is coupled to cached ``RunRecord`` jobs; the oracle
needs shadow digests, which the record format does not carry).  Golden
snapshots under ``tests/check/golden/`` pin cycles and digests per app
so behavioural drift shows up as a diff, not a silent re-baseline.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.arch.config import GpuConfig, fermi_like
from repro.baselines.owf import OwfTechnique, owf_priority
from repro.baselines.rfv import RfvTechnique
from repro.check.shadow import attach_shadow, mix64
from repro.errors import SimulationError
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.regmutex.paired import PairedWarpsTechnique
from repro.sim.rand import DeterministicRng
from repro.sim.sm import StreamingMultiprocessor
from repro.sim.stats import SmStats
from repro.sim.technique import BaselineTechnique
from repro.workloads.suite import APPLICATIONS, build_app_kernel, get_app

# The differential device: GTX480 geometry with shortened memory
# latencies (the oracle checks architectural state, not timing realism)
# and the sanitizer armed.  Structural checks run at stride 16 — the
# per-issue checks still cover every instruction.
CHECK_CONFIG = fermi_like(
    name="GTX480-check",
    dram_latency=120,
    l1_hit_latency=10,
    sanitizer=True,
    sanitizer_stride=16,
)

ORACLE_TECHNIQUES: tuple[str, ...] = (
    "baseline", "regmutex", "paired", "owf", "rfv",
)
# Techniques that never rename registers: their final register maps
# must match the baseline index-for-index.
_EXACT_REGISTER_TECHNIQUES = frozenset({"owf", "rfv"})

# Small, structurally diverse subset for the CI gate: BFS
# (occupancy-limited — the compiler actually instruments it, so the
# regmutex/paired lanes run remapped code), Gaussian (register-relaxed
# control: all five lanes identical), SRAD (barrier synchronization).
SMOKE_APPS: tuple[str, ...] = ("BFS", "Gaussian", "SRAD")

GOLDEN_SCHEMA = 1
DEFAULT_GOLDEN_DIR = Path("tests/check/golden")

_MAX_CYCLES = 20_000_000


def _technique_for(name: str):
    """Technique instance + scheduler priority for one oracle lane.

    Local twin of the CLI's factory (importing :mod:`repro.cli` from
    here would be circular once the CLI imports the oracle).  |Es| is
    left to the compiler heuristic so regmutex/paired/OWF all derive
    their splits from the same selection pass.
    """
    if name == "baseline":
        return BaselineTechnique(), None
    if name == "regmutex":
        return RegMutexTechnique(), None
    if name == "paired":
        return PairedWarpsTechnique(), None
    if name == "owf":
        return OwfTechnique(), owf_priority
    if name == "rfv":
        return RfvTechnique(), None
    raise ValueError(f"unknown oracle technique {name!r}")


@dataclass(frozen=True)
class TechniqueTrace:
    """Shadow-state fingerprint of one (app, technique) run."""

    app: str
    technique: str
    cycles: int
    instructions: int
    total_ctas: int
    # (warp_id, stream digest, retired semantic count), sorted by warp.
    warp_streams: tuple[tuple[int, int, int], ...]
    memory_digest: int
    register_digest: int
    error: str | None = None

    @property
    def stream_digest(self) -> int:
        """All per-warp streams folded into one value."""
        digest = 0
        for wid, warp_digest, count in self.warp_streams:
            digest = mix64(digest, wid, warp_digest, count)
        return digest


def run_technique_trace(
    app_name: str,
    technique_name: str,
    seed: int = 2018,
    config: GpuConfig | None = None,
) -> TechniqueTrace:
    """Simulate one app under one technique with the shadow attached."""
    if config is None:
        config = CHECK_CONFIG
    spec = get_app(app_name)
    kernel = build_app_kernel(spec)
    technique, priority = _technique_for(technique_name)

    # Identical workload across lanes: two baseline waves of CTAs.  The
    # per-technique residency only changes *when* each CTA runs.
    base_occ = BaselineTechnique().occupancy(kernel, config)
    total_ctas = max(1, base_occ.ctas_per_sm) * 2

    compiled = technique.prepare_kernel(kernel, config)
    occ = technique.occupancy(compiled, config)
    resident = max(1, occ.ctas_per_sm)
    stats = SmStats()
    sm = StreamingMultiprocessor(
        sm_id=0,
        config=config,
        kernel=compiled,
        technique_state=technique.make_sm_state(compiled, config, stats),
        ctas_resident_limit=resident,
        total_ctas=total_ctas,
        rng=DeterministicRng(seed),
        scheduler_priority=priority,
        stats=stats,
    )
    shadow = attach_shadow(sm)
    error = None
    try:
        sm.run(max_cycles=_MAX_CYCLES)
    except SimulationError as exc:
        error = f"{exc.kind}: {exc}"
    return TechniqueTrace(
        app=app_name,
        technique=technique_name,
        cycles=sm.cycle,
        instructions=stats.instructions_issued,
        total_ctas=total_ctas,
        warp_streams=shadow.warp_streams(),
        memory_digest=shadow.memory_digest(),
        register_digest=shadow.register_digest(),
        error=error,
    )


def _trace_job(job: tuple[str, str, int]) -> TechniqueTrace:
    """Pool-worker entry (module level: must survive pickling)."""
    app_name, technique_name, seed = job
    return run_technique_trace(app_name, technique_name, seed)


# -- equivalence -------------------------------------------------------------------
def compare_traces(traces: dict[str, TechniqueTrace]) -> list[str]:
    """Mismatch descriptions (empty = all techniques equivalent)."""
    mismatches = [
        f"{name}: run failed: {trace.error}"
        for name, trace in traces.items()
        if trace.error
    ]
    base = traces.get("baseline")
    if base is None or base.error:
        return mismatches

    for name, trace in traces.items():
        if name == "baseline" or trace.error:
            continue
        if len(trace.warp_streams) != len(base.warp_streams):
            mismatches.append(
                f"{name}: executed {len(trace.warp_streams)} warps, "
                f"baseline executed {len(base.warp_streams)}"
            )
        elif trace.warp_streams != base.warp_streams:
            for (wid, digest, count), (bwid, bdigest, bcount) in zip(
                trace.warp_streams, base.warp_streams
            ):
                if (wid, digest, count) != (bwid, bdigest, bcount):
                    what = (
                        f"retired {count} vs {bcount} instructions"
                        if count != bcount
                        else f"stream digest {digest:#x} vs {bdigest:#x}"
                    )
                    mismatches.append(
                        f"{name}: warp {wid} diverged from baseline ({what})"
                    )
                    break
        if trace.memory_digest != base.memory_digest:
            mismatches.append(
                f"{name}: final memory state diverged "
                f"({trace.memory_digest:#x} vs {base.memory_digest:#x})"
            )
        if (
            name in _EXACT_REGISTER_TECHNIQUES
            and trace.register_digest != base.register_digest
        ):
            mismatches.append(
                f"{name}: final register map diverged from baseline "
                "(non-renaming technique must match index-for-index)"
            )
    return mismatches


# -- golden snapshots --------------------------------------------------------------
def golden_path(golden_dir: Path, app_name: str) -> Path:
    return Path(golden_dir) / f"{app_name.lower()}.json"


def golden_payload(
    app_name: str, traces: dict[str, TechniqueTrace], seed: int
) -> dict:
    """JSON-able snapshot of one app's oracle fingerprints."""
    return {
        "schema": GOLDEN_SCHEMA,
        "app": app_name,
        "config": CHECK_CONFIG.name,
        "seed": seed,
        "techniques": {
            name: {
                "cycles": trace.cycles,
                "instructions": trace.instructions,
                "total_ctas": trace.total_ctas,
                "warps": len(trace.warp_streams),
                "stream": f"{trace.stream_digest:#018x}",
                "memory": f"{trace.memory_digest:#018x}",
                "registers": f"{trace.register_digest:#018x}",
            }
            for name, trace in sorted(traces.items())
        },
    }


def compare_golden(path: Path, payload: dict) -> list[str]:
    """Field-level diffs against the stored snapshot."""
    if not path.exists():
        return [f"golden file {path} missing (run with --update-golden)"]
    stored = json.loads(path.read_text())
    if stored.get("schema") != payload["schema"]:
        return [f"golden schema {stored.get('schema')} != {payload['schema']}"]
    diffs = []
    for name, fields in payload["techniques"].items():
        old = stored.get("techniques", {}).get(name)
        if old is None:
            diffs.append(f"{name}: missing from golden file")
            continue
        for key, value in fields.items():
            if old.get(key) != value:
                diffs.append(
                    f"{name}.{key}: got {value!r}, golden has {old.get(key)!r}"
                )
    return diffs


def write_golden(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# -- entry point -------------------------------------------------------------------
@dataclass(frozen=True)
class AppCheckResult:
    """Oracle verdict for one application."""

    app: str
    traces: dict[str, TechniqueTrace]
    equivalence_mismatches: tuple[str, ...]
    golden_mismatches: tuple[str, ...]
    golden_updated: bool = False

    @property
    def ok(self) -> bool:
        return not self.equivalence_mismatches and not self.golden_mismatches


def check_apps(
    apps: tuple[str, ...] | None = None,
    seed: int = 2018,
    workers: int = 1,
    golden_dir: Path | None = DEFAULT_GOLDEN_DIR,
    update_golden: bool = False,
) -> list[AppCheckResult]:
    """Run the differential oracle over ``apps`` (default: all 16).

    ``golden_dir=None`` skips the snapshot comparison (equivalence
    only); ``update_golden`` rewrites the snapshots instead of
    comparing.
    """
    if apps is None:
        apps = tuple(APPLICATIONS)
    jobs = [
        (app, technique, seed) for app in apps for technique in ORACLE_TECHNIQUES
    ]
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_trace_job, jobs))
    else:
        outcomes = [_trace_job(job) for job in jobs]

    by_app: dict[str, dict[str, TechniqueTrace]] = {}
    for trace in outcomes:
        by_app.setdefault(trace.app, {})[trace.technique] = trace

    results = []
    for app in apps:
        traces = by_app[app]
        equivalence = compare_traces(traces)
        golden: list[str] = []
        updated = False
        if golden_dir is not None:
            payload = golden_payload(app, traces, seed)
            path = golden_path(golden_dir, app)
            if update_golden:
                write_golden(path, payload)
                updated = True
            else:
                golden = compare_golden(path, payload)
        results.append(AppCheckResult(
            app=app,
            traces=traces,
            equivalence_mismatches=tuple(equivalence),
            golden_mismatches=tuple(golden),
            golden_updated=updated,
        ))
    return results
