"""Shadow architectural executor for the differential oracle.

The cycle-level simulator is timing-only: registers have no values, so
two techniques can diverge architecturally (a compaction MOV copying the
wrong register, an SRP mux aliasing two warps' sections) while producing
plausible cycle counts.  The shadow executor gives every instruction
deterministic *synthetic* value semantics — a splitmix64-style 64-bit
mix of its operand values — and folds each warp's retired values into a
running stream digest.  Two runs whose per-warp digests agree executed,
warp for warp, the same dataflow; one corrupted copy anywhere poisons
every downstream value.

Semantics (all values are 64-bit):

* ``MOV`` is a value copy — so register renaming (compaction) is
  invariant by construction;
* ALU/SFU ops mix an opcode tag with the source values;
* ``LDC`` yields ``mix(tag, warp_id, n)`` for the warp's n-th LDC —
  warp-unique roots, so all derived values (addresses included) are
  warp-private and memory is free of cross-warp races, making the final
  memory state independent of the technique's interleaving;
* loads/stores go through a shadow memory dict keyed by (space,
  address-value); an unwritten address reads a mix of its key;
* reading a never-written register yields a per-warp constant that does
  not depend on the register *index* (rename invariance again).

What is digested: every retired instruction except the REGMUTEX
primitives and the compaction-injected MOVs (``comment`` starting with
``"compaction:"``) — exactly the instructions a technique is documented
to add.  Both still *execute* (the MOV performs its copy); they are
only excluded from the cross-technique comparison stream.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction, OpClass, Opcode
from repro.sim.technique import SmTechniqueState
from repro.sim.warp import Warp

_MASK = (1 << 64) - 1


def mix64(*parts: int) -> int:
    """Fold integers into a 64-bit splitmix64-style digest.

    Deterministic across processes and Python versions (unlike
    ``hash()``), cheap enough to run per retired instruction.
    """
    x = 0x9E3779B97F4A7C15
    for part in parts:
        x = (x + (part & _MASK)) & _MASK
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & _MASK
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & _MASK
        x ^= x >> 31
    return x


# Stable per-opcode tags (enum definition order, not hash order).
_OP_TAG: dict[Opcode, int] = {
    op: mix64(0x0C0DE, index) for index, op in enumerate(Opcode)
}
_UNINIT_TAG = mix64(0x0DEAD)   # never-written register reads
_UNREAD_TAG = mix64(0x0BEEF)   # never-written memory reads
_COMPACTION_PREFIX = "compaction:"


class ShadowState:
    """Architectural state shadowing one SM's execution."""

    __slots__ = ("regs", "mem", "_digests", "_counts", "_ldc_counts")

    def __init__(self) -> None:
        # warp_id -> {arch_reg: value}
        self.regs: dict[int, dict[int, int]] = {}
        # (space, address value) -> stored value; space 0 = global,
        # 1 = shared.
        self.mem: dict[tuple[int, int], int] = {}
        self._digests: dict[int, int] = {}
        self._counts: dict[int, int] = {}
        self._ldc_counts: dict[int, int] = {}

    # -- execution -----------------------------------------------------------------
    def _read(self, regs: dict[int, int], wid: int, reg: int) -> int:
        value = regs.get(reg)
        if value is None:
            # Index-independent so a renamed uninitialized read (legal
            # in straight-line prologue code) stays invariant.
            value = mix64(_UNINIT_TAG, wid)
        return value

    def observe(self, warp: Warp, inst: Instruction) -> None:
        """Execute one issued instruction against the shadow state."""
        op_class = inst.op_class
        if op_class is OpClass.REGMUTEX:
            return  # documented remapping traffic, not dataflow
        wid = warp.warp_id
        regs = self.regs.get(wid)
        if regs is None:
            regs = self.regs[wid] = {}
        opcode = inst.opcode

        if opcode is Opcode.MOV:
            value = self._read(regs, wid, inst.srcs[0])
            regs[inst.dsts[0]] = value
            if inst.comment is not None and inst.comment.startswith(
                _COMPACTION_PREFIX
            ):
                return  # injected copy: value-transparent by contract
            self._record(wid, opcode, (value,), (value,))
            return

        src_values = tuple(self._read(regs, wid, r) for r in inst.srcs)
        tag = _OP_TAG[opcode]

        if opcode is Opcode.LDC:
            ordinal = self._ldc_counts.get(wid, 0)
            self._ldc_counts[wid] = ordinal + 1
            value = mix64(tag, wid, ordinal)
            regs[inst.dsts[0]] = value
            out_values: tuple[int, ...] = (value,)
        elif op_class is OpClass.LOAD:
            space = 1 if opcode is Opcode.LD_SHARED else 0
            address = src_values[0]
            value = self.mem.get(
                (space, address), mix64(_UNREAD_TAG, space, address)
            )
            regs[inst.dsts[0]] = value
            out_values = (value,)
        elif op_class is OpClass.STORE:
            address, value = src_values
            space = 1 if opcode is Opcode.ST_SHARED else 0
            self.mem[(space, address)] = value
            out_values = ()
        elif inst.dsts:
            out_values = tuple(
                mix64(tag, index, *src_values)
                for index in range(len(inst.dsts))
            )
            for reg, value in zip(inst.dsts, out_values):
                regs[reg] = value
        else:
            out_values = ()  # branches, barriers, EXIT, NOP

        self._record(wid, opcode, src_values, out_values)

    def _record(
        self,
        wid: int,
        opcode: Opcode,
        src_values: tuple[int, ...],
        out_values: tuple[int, ...],
    ) -> None:
        self._digests[wid] = mix64(
            self._digests.get(wid, 0), _OP_TAG[opcode], *src_values, *out_values
        )
        self._counts[wid] = self._counts.get(wid, 0) + 1

    # -- summaries -----------------------------------------------------------------
    def warp_streams(self) -> tuple[tuple[int, int, int], ...]:
        """Per-warp ``(warp_id, stream_digest, retired_count)``, sorted."""
        return tuple(
            (wid, self._digests.get(wid, 0), self._counts.get(wid, 0))
            for wid in sorted(self.regs)
        )

    def memory_digest(self) -> int:
        """Digest of the final shadow memory contents."""
        digest = 0
        for (space, address), value in sorted(self.mem.items()):
            digest = mix64(digest, space, address, value)
        return digest

    def register_digest(self) -> int:
        """Digest of the final per-warp (register index, value) maps.

        Index-sensitive, so it is only comparable between techniques
        that do not rename registers (baseline, OWF, RFV); RegMutex
        compaction legitimately redistributes the same values across
        different indices.
        """
        digest = 0
        for wid in sorted(self.regs):
            digest = mix64(digest, wid)
            for reg, value in sorted(self.regs[wid].items()):
                digest = mix64(digest, reg, value)
        return digest


class ShadowTechniqueState(SmTechniqueState):
    """Decorator around the installed technique that feeds the shadow.

    Same shape as the observability wrapper
    (:class:`repro.observe.hooks.ObservingTechniqueState`): full
    delegation, with ``on_issue`` additionally executing the instruction
    against the :class:`ShadowState`.  ``inner`` is public so unwrapping
    loops (``while hasattr(state, "inner")``) reach the real state.
    """

    def __init__(self, inner: SmTechniqueState, shadow: ShadowState) -> None:
        super().__init__(inner.kernel, inner.config, inner.stats)
        self.inner = inner
        self.shadow = shadow

    def can_issue(self, warp, inst, cycle):
        return self.inner.can_issue(warp, inst, cycle)

    def on_issue(self, warp, inst, cycle):
        self.inner.on_issue(warp, inst, cycle)
        self.shadow.observe(warp, inst)

    def try_acquire(self, warp, cycle):
        return self.inner.try_acquire(warp, cycle)

    def release(self, warp, cycle):
        self.inner.release(warp, cycle)

    def on_warp_finish(self, warp, cycle):
        self.inner.on_warp_finish(warp, cycle)

    def wakeup_pending(self):
        return self.inner.wakeup_pending()

    def check_invariants(self, cycle):
        self.inner.check_invariants(cycle)

    def debug_snapshot(self):
        return self.inner.debug_snapshot()

    def srp_view(self):
        return self.inner.srp_view()

    def resolve_physical(self, warp, arch_reg):
        return self.inner.resolve_physical(warp, arch_reg)


def attach_shadow(sm) -> ShadowState:
    """Wrap an SM's technique state with a fresh shadow executor.

    Must run before the first ``step()``; composes with the
    observability wrapper (either order — both delegate fully).
    """
    shadow = ShadowState()
    sm.technique = ShadowTechniqueState(sm.technique, shadow)
    return shadow
