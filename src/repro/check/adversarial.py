"""The PR-2 fault campaign as an adversarial test bed for the checkers.

``repro check --faults`` re-runs every campaign scenario with
``GpuConfig.sanitizer`` armed and reports **which mechanism** catches
each injected fault:

* ``sanitizer`` — a typed :class:`SanitizerViolation` with
  warp/pc/cycle provenance (the SRP corruptions are caught here, at the
  first inconsistent cycle, without needing ``debug_invariants``);
* ``watchdog`` / ``deadlock-check`` — schedule-level faults whose
  structures stay self-consistent (an unbalanced acquire held across a
  barrier *is* a legal-looking state; only the lack of progress betrays
  it);
* the harness and cache scenarios reuse the campaign's own detectors
  (retry, failure taxonomy, job timeout, checksum quarantine) — the
  sanitizer has no process or file-format jurisdiction.

A fault that completes undetected, or dies as an untyped error, counts
as escaped; the CI gate requires 10/10 caught-and-classified.
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile

from repro.errors import (
    CycleLimitExceededError,
    InvariantViolationError,
    SanitizerError,
    SimulationDeadlockError,
    SimulationError,
)
from repro.faults.campaign import (
    CAMPAIGN_CONFIG,
    DETECTION_DEADLINE_CYCLES,
    FaultOutcome,
    _cache_scenarios,
    _detection_cycle,
    _harness_scenarios,
)
from repro.faults.injector import FaultingRegMutexTechnique, FaultSpec
from repro.isa.builder import KernelBuilder
from repro.isa.kernel import Kernel
from repro.sim.gpu import Gpu

# The campaign config with the sanitizer armed.  ``debug_invariants``
# stays off: the point is that the sanitizer subsumes it.
SANITIZED_CONFIG = dataclasses.replace(CAMPAIGN_CONFIG, sanitizer=True)


def _probe_kernel(hold_across_barrier: bool = False) -> Kernel:
    """The campaign's acquire/work/release probe, contract-clean.

    The campaign's own probe stores an extended register *after* the
    release — harmless there, but under the sanitizer that would fire
    ``extended-access`` on every run, fault or no fault.  This variant
    moves the result into the base set before releasing, so a clean run
    is sanitizer-silent and every violation below is the fault's doing.
    """
    b = KernelBuilder(name="check-probe", regs_per_thread=8, threads_per_cta=64)
    for reg in range(4):
        b.ldc(reg)
    b.acquire()
    b.alu(4, 0, 1)
    b.alu(5, 2, 3)
    b.alu(6, 4, 5)
    b.alu(7, 6, 0)
    b.mov(3, 7)  # result home in the base set before the release
    b.release()
    if hold_across_barrier:
        b.barrier()
    b.store(0, 3)
    b.exit()
    return b.build().with_metadata(base_set_size=4, extended_set_size=4)


def _classify(exc: SimulationError) -> tuple[str, str]:
    """(detector, provenance detail) for a structured simulator failure."""
    if isinstance(exc, SanitizerError):
        if exc.violations:
            v = exc.violations[0]
            subject = f" warp {v.warp_id} pc {v.pc}" if v.warp_id >= 0 else ""
            return "sanitizer", f"{v.check} at cycle {v.cycle}{subject}: {v.message}"
        return "sanitizer", str(exc)
    if isinstance(exc, InvariantViolationError):
        return "invariant-checker", str(exc).split(";")[0]
    if isinstance(exc, SimulationDeadlockError):
        detector = "watchdog" if "watchdog" in str(exc) else "deadlock-check"
        return detector, str(exc).split(";")[0]
    return type(exc).__name__, str(exc).split(";")[0]


def _run_sanitized_scenario(
    scenario: str,
    fault: FaultSpec,
    seed: int,
    *,
    kernel: Kernel,
    retry_policy: str,
    forced_sections: int | None = 1,
) -> FaultOutcome:
    technique = FaultingRegMutexTechnique(
        fault, retry_policy=retry_policy, forced_sections=forced_sections
    )
    gpu = Gpu(SANITIZED_CONFIG, technique, seed=seed)
    try:
        gpu.launch(kernel, grid_ctas=8, max_cycles=DETECTION_DEADLINE_CYCLES)
    except CycleLimitExceededError as exc:
        return FaultOutcome(
            scenario, fault.kind, fault.layer, detected=False, detector="",
            cycles=_detection_cycle(exc),
            detail="ran to the detection deadline undetected",
        )
    except SimulationError as exc:
        detector, detail = _classify(exc)
        return FaultOutcome(
            scenario, fault.kind, fault.layer,
            detected=exc.diagnostic is not None, detector=detector,
            cycles=_detection_cycle(exc), detail=detail,
        )
    except RuntimeError as exc:
        return FaultOutcome(
            scenario, fault.kind, fault.layer, detected=False, detector="",
            cycles=None, detail=f"escaped as bare {type(exc).__name__}: {exc}",
        )
    return FaultOutcome(
        scenario, fault.kind, fault.layer, detected=False, detector="",
        cycles=None, detail="simulation completed as if nothing happened",
    )


def _sanitized_sim_scenarios(seed: int) -> list[FaultOutcome]:
    plain = _probe_kernel()
    barrier = _probe_kernel(hold_across_barrier=True)
    return [
        # Lost release, both retry policies: the corruption leaves the
        # section bit set with an empty LUT slot — the sanitizer's
        # structural check fires the same cycle, where the un-sanitized
        # campaign had to wait for the deadlock check / watchdog.
        _run_sanitized_scenario(
            "lost-release/wakeup",
            FaultSpec("dropped-release", trigger=0, seed=seed),
            seed, kernel=plain, retry_policy="wakeup",
        ),
        _run_sanitized_scenario(
            "lost-release/eager",
            FaultSpec("dropped-release", trigger=0, seed=seed),
            seed, kernel=plain, retry_policy="eager",
        ),
        # Unbalanced acquire across a barrier: every structure remains
        # self-consistent, so this one is *correctly* not the
        # sanitizer's catch — the deadlock detectors classify it.
        _run_sanitized_scenario(
            "unbalanced-acquire/barrier",
            FaultSpec("unbalanced-acquire", trigger=0, seed=seed),
            seed, kernel=barrier, retry_policy="wakeup",
        ),
        # Flipped SRP bit: caught by the sanitizer at the first
        # inconsistent cycle without debug_invariants.
        _run_sanitized_scenario(
            "srp-bit-flip/sanitizer",
            FaultSpec("srp-bit-corruption", trigger=2, seed=seed),
            seed, kernel=plain, retry_policy="wakeup", forced_sections=2,
        ),
    ]


def run_adversarial_campaign(
    seed: int = 2018,
    include_harness: bool = True,
    workers: int = 2,
) -> list[FaultOutcome]:
    """All campaign scenarios, sanitizer armed where it has jurisdiction."""
    outcomes = _sanitized_sim_scenarios(seed)
    workdir = tempfile.mkdtemp(prefix="regmutex-check-faults-")
    try:
        outcomes.extend(_cache_scenarios(seed, workdir))
        if include_harness:
            outcomes.extend(_harness_scenarios(seed, workers, workdir))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return outcomes
