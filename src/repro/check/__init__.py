"""Correctness tooling: differential execution oracle + dynamic sanitizer.

The timing simulator computes *when* instructions issue, never *what*
they compute — so a register-remapping bug (RegMutex compaction, SRP
section muxing, OWF pair sharing) would be invisible to every cycle
count the repo reports.  This package closes that hole twice over:

* :mod:`repro.check.shadow` — a shadow architectural executor with
  synthetic deterministic value semantics, attached to an SM the same
  way the observability wrapper is;
* :mod:`repro.check.oracle` — runs one workload under baseline /
  RegMutex / paired-warps / OWF / RFV and asserts the shadow states are
  equivalent modulo each technique's documented remapping;
* :mod:`repro.check.sanitizer` — the ``GpuConfig.sanitizer`` runtime
  checker folding the scattered safety checks into one per-issue /
  per-cycle pass with typed, provenance-carrying violations;
* :mod:`repro.check.adversarial` — the PR-2 fault campaign re-run with
  the sanitizer armed, classifying which mechanism catches each fault.
"""

from repro.check.oracle import (
    CHECK_CONFIG,
    ORACLE_TECHNIQUES,
    SMOKE_APPS,
    AppCheckResult,
    TechniqueTrace,
    check_apps,
    compare_traces,
    run_technique_trace,
)
from repro.check.sanitizer import Sanitizer, SanitizerViolation
from repro.check.shadow import ShadowState, ShadowTechniqueState, attach_shadow, mix64

__all__ = [
    "CHECK_CONFIG",
    "ORACLE_TECHNIQUES",
    "SMOKE_APPS",
    "AppCheckResult",
    "Sanitizer",
    "SanitizerViolation",
    "ShadowState",
    "ShadowTechniqueState",
    "TechniqueTrace",
    "attach_shadow",
    "check_apps",
    "compare_traces",
    "mix64",
    "run_technique_trace",
]
