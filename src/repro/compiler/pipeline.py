"""End-to-end RegMutex compilation pipeline (paper §III-A).

``regmutex_compile`` chains the four compiler steps — liveness analysis,
|Es| selection, primitive injection, index compaction — and records what
each did in a :class:`CompilationReport` attached to the returned
kernel's metadata (``base_set_size``/``extended_set_size``).

A kernel whose occupancy is not register-limited, or whose heuristic
yields no viable split, is returned unchanged with ``|Es| = 0`` — the
paper's "does not insert any acquire or release instructions" behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import GpuConfig
from repro.compiler.acquire_release import InjectionResult, inject_primitives
from repro.compiler.compaction import compact_register_indices, verify_compact
from repro.compiler.es_selection import EsSelection, select_extended_set_size
from repro.compiler.regions import AcquireRegion, find_acquire_regions
from repro.isa.kernel import Kernel
from repro.liveness.liveness import analyze_liveness


@dataclass(frozen=True)
class CompilationReport:
    """What the pipeline decided and produced, for inspection and tests."""

    selection: EsSelection
    regions: tuple[AcquireRegion, ...]
    acquire_count: int
    release_count: int
    instructions_before: int
    instructions_after: int

    @property
    def instrumented(self) -> bool:
        return self.acquire_count > 0

    @property
    def overhead_instructions(self) -> int:
        return self.instructions_after - self.instructions_before


# Reports are keyed by the *output* kernel object so callers can look up
# what the pipeline did without threading a second return value through
# the technique interface.
_reports: "dict[int, CompilationReport]" = {}


def compilation_report(kernel: Kernel) -> CompilationReport | None:
    """The report for a kernel produced by :func:`regmutex_compile`."""
    return _reports.get(id(kernel))


def regmutex_compile(
    kernel: Kernel,
    config: GpuConfig,
    forced_es: int | None = None,
    enable_compaction: bool = True,
) -> Kernel:
    """Compile a kernel for RegMutex execution on ``config``.

    Returns a new kernel with acquire/release primitives injected and
    metadata carrying the |Bs|/|Es| split, or the original kernel (plus
    metadata) when RegMutex does not apply.
    """
    if kernel.metadata.uses_regmutex:
        raise ValueError("kernel already compiled for RegMutex")
    info = analyze_liveness(kernel)
    selection = select_extended_set_size(
        kernel, config, liveness=info, forced_es=forced_es
    )

    rounded = selection.rounded_regs

    def finish(result: Kernel, report: CompilationReport) -> Kernel:
        _reports[id(result)] = report
        return result

    if not selection.uses_regmutex:
        result = kernel.with_metadata(
            regs_per_thread=rounded,
            base_set_size=rounded,
            extended_set_size=0,
        )
        return finish(
            result,
            CompilationReport(
                selection=selection,
                regions=(),
                acquire_count=0,
                release_count=0,
                instructions_before=len(kernel),
                instructions_after=len(result),
            ),
        )

    bs = selection.base_set_size
    regions = find_acquire_regions(kernel, bs, liveness=info)
    if not regions:
        # Pressure never exceeds |Bs|: nothing to time-share.  Fall back
        # to the uninstrumented kernel (all registers in the base set).
        result = kernel.with_metadata(
            regs_per_thread=rounded,
            base_set_size=rounded,
            extended_set_size=0,
        )
        return finish(
            result,
            CompilationReport(
                selection=selection,
                regions=(),
                acquire_count=0,
                release_count=0,
                instructions_before=len(kernel),
                instructions_after=len(result),
            ),
        )

    injection: InjectionResult = inject_primitives(kernel, regions)
    compiled = injection.kernel
    if enable_compaction:
        compiled = compact_register_indices(compiled, bs)
        verify_compact(compiled, bs)
        # Final gate: no extended-register access reachable without a
        # held section (raises RegMutexSafetyError on a compiler bug).
        from repro.compiler.verification import assert_regmutex_safe

        assert_regmutex_safe(compiled, bs)

    compiled = compiled.with_metadata(
        regs_per_thread=rounded,
        base_set_size=bs,
        extended_set_size=selection.extended_set_size,
    )
    return finish(
        compiled,
        CompilationReport(
            selection=selection,
            regions=injection.regions,
            acquire_count=len(injection.acquire_pcs),
            release_count=len(injection.release_pcs),
            instructions_before=len(kernel),
            instructions_after=len(compiled),
        ),
    )
