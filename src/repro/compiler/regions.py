"""Acquire-region discovery.

An *acquire region* is a maximal range of program points whose
live-register demand exceeds |Bs| — the extended set must be held
throughout.  Regions are computed on the flat instruction list from
per-PC live counts, then widened so region boundaries never split a
basic block's terminator from its block (an acquire/release injected
mid-branch-shadow would not dominate/post-dominate its region), and
merged when separated by fewer than a configurable gap (releasing and
immediately re-acquiring wastes two instructions and an arbitration
round-trip).

Nested regions never arise by construction (maximal ranges on a single
threshold), matching the paper's no-nesting rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.graph import ControlFlowGraph, build_cfg
from repro.isa.kernel import Kernel
from repro.liveness.liveness import LivenessInfo, analyze_liveness


@dataclass(frozen=True)
class AcquireRegion:
    """A [start, end) PC range executed while holding the extended set."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise ValueError(f"empty acquire region [{self.start}, {self.end})")

    def __len__(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "AcquireRegion") -> bool:
        return self.start < other.end and other.start < self.end


def _raw_regions(live_count: list[int], threshold: int) -> list[AcquireRegion]:
    """Maximal PC ranges where live count exceeds the threshold."""
    regions: list[AcquireRegion] = []
    start = None
    for pc, count in enumerate(live_count):
        if count > threshold:
            if start is None:
                start = pc
        else:
            if start is not None:
                regions.append(AcquireRegion(start, pc))
                start = None
    if start is not None:
        regions.append(AcquireRegion(start, len(live_count)))
    return regions


def _merge_close(regions: list[AcquireRegion], gap: int) -> list[AcquireRegion]:
    if not regions:
        return []
    merged = [regions[0]]
    for region in regions[1:]:
        last = merged[-1]
        if region.start - last.end <= gap:
            merged[-1] = AcquireRegion(last.start, region.end)
        else:
            merged.append(region)
    return merged


def _align_to_blocks(
    regions: list[AcquireRegion], cfg: ControlFlowGraph
) -> list[AcquireRegion]:
    """Snap region boundaries outward so that a region containing any part
    of a loop contains whole loop iterations' high-pressure blocks.

    Concretely: a region that starts or ends strictly inside a basic
    block is fine (straight-line code), but a region boundary may not
    fall *between* a block's last real instruction and its terminator,
    or an injected release would sit after a branch.  We widen the end
    to include the terminator when the region covers the instruction
    immediately before it.
    """
    aligned: list[AcquireRegion] = []
    for region in regions:
        end = region.end
        block = cfg.block_of_pc(end - 1)
        term_pc = block.last_pc
        inst = cfg.kernel[term_pc]
        if end == term_pc and (inst.is_branch or inst.is_exit):
            # Region would end right before the terminator; the release
            # would land between the condition and the jump — widen.
            end = term_pc + 1
        aligned.append(AcquireRegion(region.start, end))
    return _merge_close(aligned, gap=0)


def find_acquire_regions(
    kernel: Kernel,
    base_set_size: int,
    liveness: LivenessInfo | None = None,
    merge_gap: int = 3,
    cover_extended_accesses: bool = True,
) -> list[AcquireRegion]:
    """All acquire regions for a base set size, block-aligned and merged.

    With ``cover_extended_accesses`` (the default, used by the pipeline),
    regions are additionally widened so no *definition* of an
    extended-index register (index >= |Bs|) sits outside them — a warp
    cannot physically write an extended register before acquiring a
    section, regardless of the live count at that point.  Uses that
    trail a region are left to the index-compaction pass, which renames
    them into the base set.
    """
    info = liveness or analyze_liveness(kernel)
    raw = _raw_regions(info.live_count, base_set_size)
    if not raw:
        return []
    cfg = info.cfg or build_cfg(kernel)
    merged = _merge_close(raw, merge_gap)
    aligned = _align_to_blocks(merged, cfg)
    if cover_extended_accesses:
        aligned = cover_extended_defs(kernel, aligned, base_set_size)
    return aligned


def cover_extended_defs(
    kernel: Kernel, regions: list[AcquireRegion], base_set_size: int
) -> list[AcquireRegion]:
    """Widen regions until every extended-index access they can fix is
    covered.

    * An access *before* a region (in the gap since the previous region)
      pulls that region's start back to it — the acquire must precede
      the first extended-register touch (e.g. the definitions that ramp
      pressure up to the peak).
    * A *definition* after the last region covering it pulls the
      preceding region's end forward — a write needs a held section.
    * A trailing *use* is not widened over: index compaction moves the
      value into the base set before the release instead.
    """
    if not regions:
        return []
    widened = sorted(regions, key=lambda r: r.start)
    for _ in range(len(kernel) + 1):
        changed = False
        for pc, inst in enumerate(kernel):
            defines_extended = any(r >= base_set_size for r in inst.dsts)
            if not defines_extended:
                continue  # uses are compaction's job
            if any(r.start <= pc < r.end for r in widened):
                continue
            following = [r for r in widened if r.start > pc]
            preceding = [r for r in widened if r.end <= pc]
            if following:
                nxt = following[0]
                idx = widened.index(nxt)
                widened[idx] = AcquireRegion(pc, nxt.end)
                changed = True
            elif preceding:
                prev = preceding[-1]
                idx = widened.index(prev)
                widened[idx] = AcquireRegion(prev.start, pc + 1)
                changed = True
        widened = _merge_close(sorted(widened, key=lambda r: r.start), 0)
        if not changed:
            return widened
    return widened  # pragma: no cover - bounded by kernel length
