"""Acquire/release primitive injection (paper §III-A3).

Inserts an ``ACQUIRE`` immediately before each acquire region and a
``RELEASE`` immediately after it.  Before inserting, regions are
normalized at instruction granularity so no control-flow edge crosses a
region boundary improperly:

* **legitimate edges**: any edge landing exactly on ``start`` (the
  injected acquire carries the boundary label, so every such path
  executes it — a re-acquire while holding is an architectural no-op),
  the fall-through ``end-1 → end`` (which passes the injected release),
  and ``EXIT`` inside the region (hardware reclaims the section at warp
  finish).
* **offending edges**: a jump from outside into the region's interior
  (would touch extended registers without acquiring) or a jump from
  inside to anywhere other than ``end`` (would keep the section past the
  release).  Each offending edge grows the region to contain both of its
  endpoints; growth is monotone and bounded by the kernel length, so
  normalization always terminates.

For structured code the common cases are: a straight-line burst inside a
larger block (already normal — zero growth), and a burst containing a
loop back edge (grows to cover the whole loop, which is exactly the
acquire-around-the-loop placement the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.compiler.regions import AcquireRegion
from repro.isa.instructions import Instruction, Opcode
from repro.isa.kernel import Kernel


class RegionShapeError(ValueError):
    """A region could not be normalized (should be unreachable: growth is
    bounded by the kernel length)."""


def _offending_edges(
    kernel: Kernel, region: AcquireRegion
) -> list[tuple[int, int]]:
    """Control edges (p -> s) that improperly cross the region boundary."""
    start, end = region.start, region.end
    offending: list[tuple[int, int]] = []
    for pc in range(len(kernel)):
        inside = start <= pc < end
        for succ in kernel.successors_of_pc(pc):
            succ_inside = start <= succ < end
            if inside and not succ_inside:
                if succ == end:
                    continue  # passes the release: legitimate
                offending.append((pc, succ))
            elif not inside and succ_inside:
                if succ == start:
                    continue  # lands on the acquire: legitimate
                if pc == start - 1 and succ == start:
                    continue  # unreachable given the branch above; kept
                    # for symmetry with the docstring's edge list
                offending.append((pc, succ))
    return offending


def normalize_region(kernel: Kernel, region: AcquireRegion) -> AcquireRegion:
    """Grow the region until no edge crosses its boundary improperly."""
    start, end = region.start, region.end
    n = len(kernel)
    for _ in range(2 * n + 2):
        offending = _offending_edges(kernel, AcquireRegion(start, end))
        if not offending:
            return AcquireRegion(start, end)
        for p, s in offending:
            start = min(start, p, s)
            end = max(end, p + 1, min(s + 1, n))
        end = min(end, n)
    raise RegionShapeError(
        f"region {region} failed to normalize"
    )  # pragma: no cover - growth is monotone and bounded


def _merge_overlapping(regions: list[AcquireRegion]) -> list[AcquireRegion]:
    if not regions:
        return []
    ordered = sorted(regions, key=lambda r: r.start)
    merged = [ordered[0]]
    for region in ordered[1:]:
        last = merged[-1]
        if region.start <= last.end:
            merged[-1] = AcquireRegion(last.start, max(last.end, region.end))
        else:
            merged.append(region)
    return merged


@dataclass(frozen=True)
class InjectionResult:
    kernel: Kernel
    regions: tuple[AcquireRegion, ...]  # normalized, in ORIGINAL pc space
    acquire_pcs: tuple[int, ...]        # pcs of ACQUIRE in the NEW kernel
    release_pcs: tuple[int, ...]


def inject_primitives(
    kernel: Kernel, regions: list[AcquireRegion]
) -> InjectionResult:
    """Insert ACQUIRE/RELEASE around each (normalized) region."""
    if not regions:
        return InjectionResult(kernel, (), (), ())
    normalized = _merge_overlapping(
        [normalize_region(kernel, r) for r in regions]
    )
    # Normalization may have created overlaps; merge until stable.
    while True:
        merged = _merge_overlapping(
            [normalize_region(kernel, r) for r in normalized]
        )
        if merged == normalized:
            break
        normalized = merged

    starts = {r.start for r in normalized}
    ends = {r.end for r in normalized}  # release goes before pc == end

    new_instructions: list[Instruction] = []
    acquire_pcs: list[int] = []
    release_pcs: list[int] = []
    for pc, inst in enumerate(kernel):
        if pc in ends:
            release_pcs.append(len(new_instructions))
            # The boundary instruction's label belongs to the *region
            # exit*: jumps to it must pass the release, so it moves onto
            # the RELEASE (a release while holding nothing is a no-op).
            new_instructions.append(Instruction(Opcode.RELEASE, label=inst.label))
            inst = replace(inst, label=None)
        if pc in starts:
            acquire_pcs.append(len(new_instructions))
            # Likewise the region-start label moves onto the ACQUIRE so
            # branches to the boundary execute the acquire.
            acquire = Instruction(Opcode.ACQUIRE, label=inst.label)
            new_instructions.append(acquire)
            inst = replace(inst, label=None)
        new_instructions.append(inst)
    # A region ending at len(kernel): EXIT reclamation covers termination,
    # but emit a trailing release when the last instruction is not EXIT.
    if len(kernel) in ends and not kernel[len(kernel) - 1].is_exit:
        release_pcs.append(len(new_instructions))
        new_instructions.append(Instruction(Opcode.RELEASE))

    return InjectionResult(
        kernel=kernel.with_instructions(new_instructions),
        regions=tuple(normalized),
        acquire_pcs=tuple(acquire_pcs),
        release_pcs=tuple(release_pcs),
    )
