"""Extended-register-set size selection (paper §III-A2).

The heuristic, as described in the paper with one documented
disambiguation:

1. Round the kernel's register demand to the allocation granularity
   (Table I's parenthesised counts); call it R.
2. Candidate |Es| values: each element of {0.1, 0.15, 0.2, 0.25, 0.3,
   0.35}·R rounded to the nearest even integer (halves round up),
   deduplicated, 0 < |Es| < R.
3. Keep the candidates whose base set |Bs| = R − |Es| yields the highest
   theoretical occupancy computed with the base set alone.
4. Among those, pick the smallest |Es| whose SRP section count lets more
   than half of the resident warps hold an extended set concurrently; if
   no candidate satisfies that, take the one with the most sections
   (largest |Es| on ties).

   *Disambiguation*: the paper's prose says "largest element that
   possibly results in concurrent progress of more than half the warps",
   but its own worked example (R = 24, candidates {4, 6, 8} all at full
   occupancy, sections {16, 26, 32}) selects |Es| = 6 — the smallest
   candidate clearing the half-warp bar, not the largest (8 also
   clears it at 32 sections).  We implement the smallest-clearing rule,
   which reproduces the worked example exactly and Table I's picks.

Two deadlock-avoidance rules then filter candidates:

* the SRP must hold at least one section (no indefinite acquire stall);
* |Bs| must cover the live-register count at every CTA-wide barrier
  (no cross-warp wait cycle between a barrier and an acquire).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import GpuConfig
from repro.arch.occupancy import (
    round_regs_to_granularity,
    theoretical_occupancy,
    occupancy_limited_by_registers,
)
from repro.isa.kernel import Kernel
from repro.liveness.liveness import LivenessInfo, analyze_liveness

_MULTIPLIERS = (0.10, 0.15, 0.20, 0.25, 0.30, 0.35)


def _round_to_even(value: float) -> int:
    """Nearest even integer; exact odd integers and halves round up."""
    lower = int(value // 2) * 2
    upper = lower + 2
    return lower if (value - lower) < (upper - value) else upper


def candidate_es_sizes(rounded_regs: int) -> list[int]:
    """Step 2: the even candidate sizes for a given rounded register count."""
    candidates = set()
    for mult in _MULTIPLIERS:
        es = _round_to_even(mult * rounded_regs)
        if 0 < es < rounded_regs:
            candidates.add(es)
    return sorted(candidates)


@dataclass(frozen=True)
class EsSelection:
    """Outcome of the |Es| heuristic."""

    extended_set_size: int
    base_set_size: int
    rounded_regs: int
    srp_sections: int
    occupancy_warps: int
    reason: str
    candidates_considered: tuple[int, ...] = ()

    @property
    def uses_regmutex(self) -> bool:
        return self.extended_set_size > 0


def _sections_for(
    config: GpuConfig, kernel: Kernel, bs: int, es: int
) -> tuple[int, int]:
    """(resident warps, SRP sections) for a Bs/Es split."""
    from repro.regmutex.issue_logic import srp_section_count

    occ = theoretical_occupancy(
        config, kernel.metadata, regs_per_thread=bs, granularity=1
    )
    sections = srp_section_count(config, occ.resident_warps, bs, es)
    return occ.resident_warps, sections


def select_extended_set_size(
    kernel: Kernel,
    config: GpuConfig,
    liveness: LivenessInfo | None = None,
    forced_es: int | None = None,
) -> EsSelection:
    """Run the heuristic (or validate a forced |Es| for the Fig 10 sweep)."""
    md = kernel.metadata
    rounded = round_regs_to_granularity(
        md.regs_per_thread, config.register_allocation_granularity
    )
    info = liveness or analyze_liveness(kernel)

    def no_regmutex(reason: str) -> EsSelection:
        return EsSelection(
            extended_set_size=0,
            base_set_size=rounded,
            rounded_regs=rounded,
            srp_sections=0,
            occupancy_warps=theoretical_occupancy(
                config, md
            ).resident_warps,
            reason=reason,
        )

    # Barrier floor for deadlock rule 2.
    barrier_floor = max(
        (len(live) for _, live in info.live_at_barriers()), default=0
    )

    if forced_es is not None:
        if forced_es <= 0:
            return no_regmutex("forced |Es| = 0")
        if forced_es >= rounded:
            raise ValueError(f"forced |Es| {forced_es} >= register count {rounded}")
        bs = rounded - forced_es
        warps, sections = _sections_for(config, kernel, bs, forced_es)
        if sections < 1:
            return no_regmutex(
                f"forced |Es| {forced_es} leaves no SRP section (deadlock rule 1)"
            )
        if bs < barrier_floor:
            return no_regmutex(
                f"forced |Es| {forced_es} violates barrier floor "
                f"|Bs| {bs} < {barrier_floor} (deadlock rule 2)"
            )
        return EsSelection(
            extended_set_size=forced_es,
            base_set_size=bs,
            rounded_regs=rounded,
            srp_sections=sections,
            occupancy_warps=warps,
            reason="forced by caller",
            candidates_considered=(forced_es,),
        )

    if not occupancy_limited_by_registers(config, md):
        # Applications without high register pressure are untouched: all
        # registers become base-set members, no primitives injected.
        return no_regmutex("occupancy not limited by register usage")

    candidates = candidate_es_sizes(rounded)
    viable: list[tuple[int, int, int]] = []  # (es, warps, sections)
    for es in candidates:
        bs = rounded - es
        if bs < barrier_floor or bs <= 0:
            continue  # deadlock rule 2
        warps, sections = _sections_for(config, kernel, bs, es)
        if sections < 1:
            continue  # deadlock rule 1
        viable.append((es, warps, sections))

    if not viable:
        return no_regmutex("no candidate passes the deadlock rules")

    best_warps = max(w for _, w, _ in viable)
    top = [(es, w, s) for es, w, s in viable if w == best_warps]

    # Step 4: smallest |Es| whose sections exceed half the resident warps.
    for es, warps, sections in sorted(top):
        if sections > warps / 2:
            chosen = (es, warps, sections)
            reason = (
                f"smallest max-occupancy candidate with sections "
                f"({sections}) > half of {warps} resident warps"
            )
            break
    else:
        chosen = max(top, key=lambda t: (t[2], t[0]))
        reason = (
            "no candidate clears the half-warp bar; picked the one with "
            f"the most SRP sections ({chosen[2]})"
        )

    es, warps, sections = chosen
    return EsSelection(
        extended_set_size=es,
        base_set_size=rounded - es,
        rounded_regs=rounded,
        srp_sections=sections,
        occupancy_warps=warps,
        reason=reason,
        candidates_considered=tuple(c for c, _, _ in viable),
    )
