"""Architected register index compaction (paper §III-A4).

Before each release, every live value must sit at an index below |Bs| so
the release state only touches base-set physical registers.  For each
live register ``o >= |Bs|`` at a release point, the pass:

1. picks a free base-set slot ``f`` (an index < |Bs| with no live value),
2. inserts ``MOV Rf, Ro`` immediately before the RELEASE, and
3. renames every use of ``o`` that is reached by this move — forward
   along the CFG until ``o`` is redefined — to ``f``.

The rename is only sound if no renamed use is *also* reachable from a
different definition of ``o`` that bypasses the move; the pass verifies
this and raises :class:`CompactionError` otherwise (the workload
generator never produces such shapes, but hand-written kernels could).
"""

from __future__ import annotations

from dataclasses import replace

from repro.cfg.graph import ControlFlowGraph, build_cfg
from repro.isa.instructions import Instruction, Opcode
from repro.isa.kernel import Kernel
from repro.liveness.liveness import analyze_liveness


class CompactionError(ValueError):
    """Compaction cannot be performed safely for this kernel shape."""


def _successor_pcs(kernel: Kernel, pc: int) -> list[int]:
    inst = kernel[pc]
    if inst.is_exit:
        return []
    if inst.is_branch:
        targets = [kernel.label_pc(inst.target)]
        if inst.is_conditional_branch and pc + 1 < len(kernel):
            targets.append(pc + 1)
        return targets
    return [pc + 1] if pc + 1 < len(kernel) else []


def _uses_reached(kernel: Kernel, start_pc: int, reg: int) -> set[int]:
    """Use PCs of ``reg`` reachable from ``start_pc`` (inclusive) without
    passing a redefinition of ``reg``."""
    uses: set[int] = set()
    seen: set[int] = set()
    stack = [start_pc]
    while stack:
        pc = stack.pop()
        if pc in seen or pc >= len(kernel):
            continue
        seen.add(pc)
        inst = kernel[pc]
        if reg in inst.srcs:
            uses.add(pc)
        if reg in inst.dsts:
            continue  # value killed past this point on this path
        stack.extend(_successor_pcs(kernel, pc))
    return uses


def _other_defs_reach(kernel: Kernel, reg: int, use_pc: int, barrier_pc: int) -> bool:
    """Whether any definition of ``reg`` other than the move at
    ``barrier_pc`` reaches ``use_pc`` without passing ``barrier_pc``."""
    sources = [0] + [
        pc + 1
        for pc, inst in enumerate(kernel)
        if reg in inst.dsts and pc != barrier_pc and pc + 1 < len(kernel)
    ]
    seen: set[int] = set()
    stack = list(sources)
    while stack:
        pc = stack.pop()
        if pc in seen or pc >= len(kernel):
            continue
        if pc == barrier_pc:
            continue  # would pass through the move; that path is renamed
        seen.add(pc)
        if pc == use_pc:
            return True
        inst = kernel[pc]
        if reg in inst.dsts:
            continue
        stack.extend(_successor_pcs(kernel, pc))
    return False


def compact_register_indices(kernel: Kernel, base_set_size: int) -> Kernel:
    """Run index compaction for every RELEASE point of a kernel.

    The input must already contain the injected primitives.  Returns a
    kernel in which, at every RELEASE, no live register index reaches
    past ``base_set_size``.  Idempotent on already-compact kernels.
    """
    if base_set_size <= 0:
        raise ValueError("base set size must be positive")

    # Iterate because renaming shifts liveness; each round fixes one
    # release point, and there are finitely many.
    for _ in range(len(kernel) + 1):
        info = analyze_liveness(kernel)
        change = _compact_one(kernel, base_set_size, info)
        if change is None:
            return kernel
        kernel = change
    raise CompactionError("compaction failed to converge")  # pragma: no cover


def _compact_one(kernel: Kernel, base_set_size: int, info) -> Kernel | None:
    """Fix the first offending release point; None when all are clean."""
    for pc, inst in enumerate(kernel):
        if inst.opcode is not Opcode.RELEASE:
            continue
        live_after = info.live_out[pc]
        overflow = sorted(r for r in live_after if r >= base_set_size)
        if not overflow:
            continue
        occupied = {r for r in live_after if r < base_set_size}
        free = [i for i in range(base_set_size) if i not in occupied]
        if len(overflow) > len(free):
            raise CompactionError(
                f"release at pc {pc}: {len(overflow)} live extended "
                f"registers but only {len(free)} free base slots — "
                "|Bs| below the release-point live count"
            )

        instructions = list(kernel.instructions)
        rename_pairs = list(zip(overflow, free))
        # Insert MOVs before the release (old pc shifts by the count).
        movs = [
            Instruction(
                Opcode.MOV, (dst,), (src,),
                comment=f"compaction: R{src} -> R{dst}",
            )
            for src, dst in rename_pairs
        ]
        # The release may carry a label (region boundary); keep it on the
        # first inserted MOV so branches still pass through the moves.
        release = instructions[pc]
        if release.label is not None and movs:
            movs[0] = movs[0].with_label(release.label)
            instructions[pc] = replace(release, label=None)
        instructions[pc:pc] = movs
        shifted = kernel.with_instructions(instructions)
        release_pc = pc + len(movs)

        # Rename downstream uses.
        new_instructions = list(shifted.instructions)
        for (src, dst), mov_offset in zip(rename_pairs, range(len(movs))):
            mov_pc = pc + mov_offset
            start = release_pc  # uses begin after the release point
            reached = _uses_reached(shifted, start + 1, src)
            for use_pc in reached:
                if _other_defs_reach(shifted, src, use_pc, mov_pc):
                    raise CompactionError(
                        f"use of R{src} at pc {use_pc} is reachable from "
                        "another definition; rename would be unsound"
                    )
            for use_pc in reached:
                cur = new_instructions[use_pc]
                new_instructions[use_pc] = replace(
                    cur,
                    srcs=tuple(dst if r == src else r for r in cur.srcs),
                )
        return shifted.with_instructions(new_instructions)
    return None


def verify_compact(kernel: Kernel, base_set_size: int) -> None:
    """Assert no live register index reaches |Bs| at any RELEASE point."""
    info = analyze_liveness(kernel)
    for pc, inst in enumerate(kernel):
        if inst.opcode is Opcode.RELEASE:
            overflow = [r for r in info.live_out[pc] if r >= base_set_size]
            if overflow:
                raise CompactionError(
                    f"release at pc {pc} leaves live extended registers "
                    f"{sorted(overflow)}"
                )
