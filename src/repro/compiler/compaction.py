"""Architected register index compaction (paper §III-A4).

Before each release, every live value must sit at an index below |Bs| so
the release state only touches base-set physical registers.  For each
live register ``o >= |Bs|`` at a release point, the pass:

1. picks a free base-set slot ``f`` (an index < |Bs| with no live value),
2. inserts ``MOV Rf, Ro`` immediately before the RELEASE, and
3. renames every use of ``o`` that is reached by this move — forward
   along the CFG until ``o`` is redefined — to ``f``.

The rename is only sound if (a) no renamed use is *also* reachable from
a different definition of ``o`` that bypasses the move, and (b) the
chosen slot ``f`` is not redefined on any path between the move and a
renamed use — ``f`` being dead *at the release* says nothing about the
span the moved value must survive.  The pass verifies (a) and raises
:class:`CompactionError` when violated; for (b) it skips clobbered
candidate slots during selection and only fails when no safe slot
exists.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cfg.graph import ControlFlowGraph, build_cfg
from repro.isa.instructions import Instruction, Opcode
from repro.isa.kernel import Kernel
from repro.liveness.liveness import analyze_liveness


class CompactionError(ValueError):
    """Compaction cannot be performed safely for this kernel shape."""


def _successor_pcs(kernel: Kernel, pc: int) -> list[int]:
    inst = kernel[pc]
    if inst.is_exit:
        return []
    if inst.is_branch:
        targets = [kernel.label_pc(inst.target)]
        if inst.is_conditional_branch and pc + 1 < len(kernel):
            targets.append(pc + 1)
        return targets
    return [pc + 1] if pc + 1 < len(kernel) else []


def _uses_reached(kernel: Kernel, start_pc: int, reg: int) -> set[int]:
    """Use PCs of ``reg`` reachable from ``start_pc`` (inclusive) without
    passing a redefinition of ``reg``."""
    uses: set[int] = set()
    seen: set[int] = set()
    stack = [start_pc]
    while stack:
        pc = stack.pop()
        if pc in seen or pc >= len(kernel):
            continue
        seen.add(pc)
        inst = kernel[pc]
        if reg in inst.srcs:
            uses.add(pc)
        if reg in inst.dsts:
            continue  # value killed past this point on this path
        stack.extend(_successor_pcs(kernel, pc))
    return uses


def _dst_clobbered(kernel: Kernel, start_pc: int, src: int, dst: int) -> bool:
    """Whether a redefinition of ``dst`` can clobber the moved value of
    ``src`` before a renamed use reads it.

    Walks forward from ``start_pc`` (the instruction after the release)
    along paths that do not redefine ``src`` — the rename chain ends at
    a redefinition.  A definition of ``dst`` inside that region is fatal
    iff some use of ``src`` lies ahead of it on such a path: after the
    rename that use reads ``dst`` and would observe the clobber.  An
    instruction that redefines both ends the chain and cannot clobber
    (its own ``src`` operands read before the write).
    """
    seen: set[int] = set()
    stack = [start_pc]
    while stack:
        pc = stack.pop()
        if pc in seen or pc >= len(kernel):
            continue
        seen.add(pc)
        inst = kernel[pc]
        if src in inst.dsts:
            continue
        if dst in inst.dsts:
            for succ in _successor_pcs(kernel, pc):
                if _uses_reached(kernel, succ, src):
                    return True
            continue
        stack.extend(_successor_pcs(kernel, pc))
    return False


def _other_defs_reach(kernel: Kernel, reg: int, use_pc: int, barrier_pc: int) -> bool:
    """Whether any definition of ``reg`` other than the move at
    ``barrier_pc`` reaches ``use_pc`` without passing ``barrier_pc``."""
    sources = [0] + [
        pc + 1
        for pc, inst in enumerate(kernel)
        if reg in inst.dsts and pc != barrier_pc and pc + 1 < len(kernel)
    ]
    seen: set[int] = set()
    stack = list(sources)
    while stack:
        pc = stack.pop()
        if pc in seen or pc >= len(kernel):
            continue
        if pc == barrier_pc:
            continue  # would pass through the move; that path is renamed
        seen.add(pc)
        if pc == use_pc:
            return True
        inst = kernel[pc]
        if reg in inst.dsts:
            continue
        stack.extend(_successor_pcs(kernel, pc))
    return False


def compact_register_indices(kernel: Kernel, base_set_size: int) -> Kernel:
    """Run index compaction for every RELEASE point of a kernel.

    The input must already contain the injected primitives.  Returns a
    kernel in which, at every RELEASE, no live register index reaches
    past ``base_set_size``.  Idempotent on already-compact kernels.
    """
    if base_set_size <= 0:
        raise ValueError("base set size must be positive")

    # Iterate because renaming shifts liveness; each round fixes one
    # release point, and there are finitely many.
    for _ in range(len(kernel) + 1):
        info = analyze_liveness(kernel)
        change = _compact_one(kernel, base_set_size, info)
        if change is None:
            return kernel
        kernel = change
    raise CompactionError("compaction failed to converge")  # pragma: no cover


def _compact_one(kernel: Kernel, base_set_size: int, info) -> Kernel | None:
    """Fix the first offending release point; None when all are clean."""
    for pc, inst in enumerate(kernel):
        if inst.opcode is not Opcode.RELEASE:
            continue
        live_after = info.live_out[pc]
        overflow = sorted(r for r in live_after if r >= base_set_size)
        if not overflow:
            continue
        occupied = {r for r in live_after if r < base_set_size}
        free = [i for i in range(base_set_size) if i not in occupied]
        if len(overflow) > len(free):
            raise CompactionError(
                f"release at pc {pc}: {len(overflow)} live extended "
                f"registers but only {len(free)} free base slots — "
                "|Bs| below the release-point live count"
            )

        instructions = list(kernel.instructions)
        # Pair each overflow register with a base slot that is free at
        # the release AND survives until the renamed uses (no
        # redefinition of the slot on the way — see _dst_clobbered; the
        # oracle caught MRI-Q computing with a clobbered slot when the
        # pairing was done blindly by release-point liveness alone).
        # Matched with augmenting paths, not first-fit: one register's
        # only safe slot may be another's first choice.  When nothing
        # clobbers, this reduces to the plain overflow[i] -> free[i]
        # pairing, so previously-correct kernels compile unchanged.
        safe_slots = {
            src: [f for f in free if not _dst_clobbered(kernel, pc + 1, src, f)]
            for src in overflow
        }
        slot_owner: dict[int, int] = {}

        def _assign(src: int, visited: set[int]) -> bool:
            for f in safe_slots[src]:
                if f in visited:
                    continue
                visited.add(f)
                if f not in slot_owner or _assign(slot_owner[f], visited):
                    slot_owner[f] = src
                    return True
            return False

        for src in overflow:
            if not _assign(src, set()):
                raise CompactionError(
                    f"release at pc {pc}: no conflict-free base slot "
                    f"assignment covers R{src} (every free slot is "
                    "redefined before a renamed use)"
                )
        slot_of = {src: f for f, src in slot_owner.items()}
        rename_pairs = [(src, slot_of[src]) for src in overflow]
        # Insert MOVs before the release (old pc shifts by the count).
        movs = [
            Instruction(
                Opcode.MOV, (dst,), (src,),
                comment=f"compaction: R{src} -> R{dst}",
            )
            for src, dst in rename_pairs
        ]
        # The release may carry a label (region boundary); keep it on the
        # first inserted MOV so branches still pass through the moves.
        release = instructions[pc]
        if release.label is not None and movs:
            movs[0] = movs[0].with_label(release.label)
            instructions[pc] = replace(release, label=None)
        instructions[pc:pc] = movs
        shifted = kernel.with_instructions(instructions)
        release_pc = pc + len(movs)

        # Rename downstream uses.
        new_instructions = list(shifted.instructions)
        for (src, dst), mov_offset in zip(rename_pairs, range(len(movs))):
            mov_pc = pc + mov_offset
            start = release_pc  # uses begin after the release point
            reached = _uses_reached(shifted, start + 1, src)
            for use_pc in reached:
                if _other_defs_reach(shifted, src, use_pc, mov_pc):
                    raise CompactionError(
                        f"use of R{src} at pc {use_pc} is reachable from "
                        "another definition; rename would be unsound"
                    )
            for use_pc in reached:
                cur = new_instructions[use_pc]
                new_instructions[use_pc] = replace(
                    cur,
                    srcs=tuple(dst if r == src else r for r in cur.srcs),
                )
        return shifted.with_instructions(new_instructions)
    return None


def verify_compact(kernel: Kernel, base_set_size: int) -> None:
    """Assert no live register index reaches |Bs| at any RELEASE point."""
    info = analyze_liveness(kernel)
    for pc, inst in enumerate(kernel):
        if inst.opcode is Opcode.RELEASE:
            overflow = [r for r in info.live_out[pc] if r >= base_set_size]
            if overflow:
                raise CompactionError(
                    f"release at pc {pc} leaves live extended registers "
                    f"{sorted(overflow)}"
                )
