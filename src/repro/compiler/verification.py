"""Static verification of compiled RegMutex kernels.

The hardware contract (enforced dynamically by
:class:`repro.regmutex.mapping.RegMutexRegisterMapper` with a
``PermissionError``) is: a warp may only touch an architected register
with index >= |Bs| while it holds an SRP section.  This module proves
the property statically for a compiled kernel, so miscompiled kernels
are rejected before they ever reach the simulator:

* **hold-state dataflow** — for every PC, compute whether the warp may
  be holding / not-holding a section when the instruction executes
  (a forward may-analysis over instruction-level edges; ACQUIRE exits in
  the holding state, RELEASE in the released state, everything else
  propagates).
* **access check** — any instruction that reads or writes an extended
  register while the not-holding state is reachable at its PC is a
  violation.
* **balance check** — an ACQUIRE reachable in the holding state or a
  RELEASE reachable in the released state is legal (the no-nesting rule
  makes them no-ops) but reported as a *warning*, since the compiler
  should not emit them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Opcode
from repro.isa.kernel import Kernel


class RegMutexSafetyError(ValueError):
    """A compiled kernel can touch extended registers without a section."""


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of the static check."""

    violations: tuple[str, ...]
    warnings: tuple[str, ...]
    # (may_hold, may_not_hold) reachable states per pc.
    hold_states: tuple[tuple[bool, bool], ...] = field(repr=False, default=())

    @property
    def ok(self) -> bool:
        return not self.violations


def verify_regmutex_safety(kernel: Kernel, base_set_size: int) -> VerificationResult:
    """Prove no extended-register access can happen without a section."""
    n = len(kernel)
    # State lattice per pc: a pair of reachability bits
    # (reachable-holding, reachable-not-holding) *before* the instruction.
    may_hold = [False] * n
    may_free = [False] * n
    may_free[0] = True  # warps launch without a section

    # Worklist forward propagation.
    work = [0]
    while work:
        pc = work.pop()
        inst = kernel[pc]
        out_hold, out_free = may_hold[pc], may_free[pc]
        if inst.opcode is Opcode.ACQUIRE:
            out_hold, out_free = out_hold or out_free, False
        elif inst.opcode is Opcode.RELEASE:
            out_hold, out_free = False, out_hold or out_free
        for succ in kernel.successors_of_pc(pc):
            changed = False
            if out_hold and not may_hold[succ]:
                may_hold[succ] = True
                changed = True
            if out_free and not may_free[succ]:
                may_free[succ] = True
                changed = True
            if changed:
                work.append(succ)

    violations: list[str] = []
    warnings: list[str] = []
    for pc, inst in enumerate(kernel):
        extended = [r for r in inst.registers if r >= base_set_size]
        if extended and may_free[pc]:
            regs = ", ".join(f"R{r}" for r in sorted(set(extended)))
            violations.append(
                f"pc {pc}: {inst.opcode.value} touches extended {regs} "
                "on a path that holds no SRP section"
            )
        if inst.opcode is Opcode.ACQUIRE and may_hold[pc]:
            warnings.append(
                f"pc {pc}: re-acquire reachable while holding (no-op)"
            )
        if inst.opcode is Opcode.RELEASE and may_free[pc]:
            warnings.append(
                f"pc {pc}: release reachable while not holding (no-op)"
            )
        if extended and not may_hold[pc] and not may_free[pc]:
            # Unreachable from pc 0: both reachability bits stayed False,
            # so the access check above never saw it.  Dead code cannot
            # corrupt state at runtime, but an extended access there is
            # still suspicious (a branch-target bug away from being
            # live), so surface it instead of silently passing.
            regs = ", ".join(f"R{r}" for r in sorted(set(extended)))
            warnings.append(
                f"pc {pc}: {inst.opcode.value} touches extended {regs} "
                "in unreachable code (never verified against the "
                "hold-state contract)"
            )

    return VerificationResult(
        violations=tuple(violations),
        warnings=tuple(warnings),
        hold_states=tuple(zip(may_hold, may_free)),
    )


def assert_regmutex_safe(kernel: Kernel, base_set_size: int) -> None:
    """Raise :class:`RegMutexSafetyError` on any violation."""
    result = verify_regmutex_safety(kernel, base_set_size)
    if not result.ok:
        detail = "\n  ".join(result.violations[:10])
        raise RegMutexSafetyError(
            f"{len(result.violations)} extended-register safety "
            f"violation(s):\n  {detail}"
        )
