"""RegMutex compiler support (paper §III-A).

Four methodical steps: (1) register liveness analysis (lives in
:mod:`repro.liveness`), (2) extended-set size selection, (3)
acquire/release primitive injection, (4) architected register index
compaction.  :func:`repro.compiler.pipeline.regmutex_compile` chains
them into a single kernel-to-kernel transformation.
"""

from repro.compiler.es_selection import (
    EsSelection,
    select_extended_set_size,
    candidate_es_sizes,
)
from repro.compiler.regions import AcquireRegion, find_acquire_regions
from repro.compiler.acquire_release import inject_primitives
from repro.compiler.compaction import compact_register_indices, CompactionError
from repro.compiler.pipeline import regmutex_compile, CompilationReport

__all__ = [
    "EsSelection",
    "select_extended_set_size",
    "candidate_es_sizes",
    "AcquireRegion",
    "find_acquire_regions",
    "inject_primitives",
    "compact_register_indices",
    "CompactionError",
    "regmutex_compile",
    "CompilationReport",
]
