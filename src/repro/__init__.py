"""RegMutex reproduction: inter-warp GPU register time-sharing.

A full-system reproduction of *RegMutex: Inter-Warp GPU Register
Time-Sharing* (ISCA 2018) on a simplified Python cycle-level GPU
simulator.  See README.md for a tour and DESIGN.md for the system
inventory.

Public API quick reference::

    from repro import (
        GTX480, simulate_kernel,
        RegMutexTechnique, PairedWarpsTechnique,
        OwfTechnique, RfvTechnique,
        regmutex_compile, analyze_liveness,
        build_app_kernel, get_app, APPLICATIONS,
    )
"""

from repro.analysis.bottleneck import attribute_bottlenecks
from repro.analysis.sweeps import register_file_size_sweep
from repro.arch.config import (
    GTX480,
    GTX480_HALF_RF,
    KEPLER_LIKE,
    PASCAL_LIKE,
    VOLTA_LIKE,
    GpuConfig,
    fermi_like,
)
from repro.arch.occupancy import theoretical_occupancy, OccupancyResult
from repro.compiler.verification import (
    assert_regmutex_safe,
    verify_regmutex_safety,
)
from repro.sim.multikernel import launch_concurrent
from repro.baselines.owf import OwfTechnique, owf_priority
from repro.baselines.rfv import RfvTechnique
from repro.compiler.pipeline import regmutex_compile, compilation_report
from repro.compiler.es_selection import select_extended_set_size
from repro.isa.builder import KernelBuilder
from repro.isa.kernel import Kernel, KernelMetadata
from repro.isa.parser import parse_kernel
from repro.isa.printer import format_kernel
from repro.liveness.liveness import analyze_liveness
from repro.liveness.pressure import dynamic_pressure_trace, static_pressure
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.regmutex.paired import PairedWarpsTechnique
from repro.regmutex.storage import (
    regmutex_storage_bits,
    paired_storage_bits,
    rfv_storage_bits,
)
from repro.sim.gpu import Gpu, simulate_kernel
from repro.sim.technique import BaselineTechnique
from repro.workloads.suite import (
    APPLICATIONS,
    OCCUPANCY_LIMITED_APPS,
    REGISTER_RELAXED_APPS,
    FIGURE1_APPS,
    build_app_kernel,
    get_app,
)

__version__ = "1.0.0"

__all__ = [
    "GTX480",
    "GTX480_HALF_RF",
    "KEPLER_LIKE",
    "PASCAL_LIKE",
    "VOLTA_LIKE",
    "GpuConfig",
    "fermi_like",
    "attribute_bottlenecks",
    "register_file_size_sweep",
    "assert_regmutex_safe",
    "verify_regmutex_safety",
    "launch_concurrent",
    "theoretical_occupancy",
    "OccupancyResult",
    "OwfTechnique",
    "owf_priority",
    "RfvTechnique",
    "regmutex_compile",
    "compilation_report",
    "select_extended_set_size",
    "KernelBuilder",
    "Kernel",
    "KernelMetadata",
    "parse_kernel",
    "format_kernel",
    "analyze_liveness",
    "dynamic_pressure_trace",
    "static_pressure",
    "RegMutexTechnique",
    "PairedWarpsTechnique",
    "regmutex_storage_bits",
    "paired_storage_bits",
    "rfv_storage_bits",
    "Gpu",
    "simulate_kernel",
    "BaselineTechnique",
    "APPLICATIONS",
    "OCCUPANCY_LIMITED_APPS",
    "REGISTER_RELAXED_APPS",
    "FIGURE1_APPS",
    "build_app_kernel",
    "get_app",
    "__version__",
]
