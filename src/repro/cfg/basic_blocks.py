"""Basic-block splitting (leader analysis).

A leader is: the first instruction, any branch target, and any
instruction immediately following a branch or exit.  Blocks are maximal
leader-to-leader ranges of the flat instruction list.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction
from repro.isa.kernel import Kernel


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line instruction range ``[start, end)``."""

    index: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start >= self.end:
            raise ValueError(f"empty basic block [{self.start}, {self.end})")

    @property
    def pcs(self) -> range:
        return range(self.start, self.end)

    @property
    def last_pc(self) -> int:
        return self.end - 1

    def __len__(self) -> int:
        return self.end - self.start

    def instructions(self, kernel: Kernel) -> tuple[Instruction, ...]:
        return kernel.instructions[self.start : self.end]


def split_into_blocks(kernel: Kernel) -> list[BasicBlock]:
    """Split a kernel into basic blocks in program order."""
    n = len(kernel)
    leaders: set[int] = {0}
    for pc, inst in enumerate(kernel):
        if inst.is_branch:
            leaders.add(kernel.label_pc(inst.target))
            if pc + 1 < n:
                leaders.add(pc + 1)
        elif inst.is_exit and pc + 1 < n:
            leaders.add(pc + 1)

    ordered = sorted(leaders)
    blocks: list[BasicBlock] = []
    for i, start in enumerate(ordered):
        end = ordered[i + 1] if i + 1 < len(ordered) else n
        blocks.append(BasicBlock(index=i, start=start, end=end))
    return blocks
