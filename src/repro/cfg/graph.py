"""Control-flow graph over basic blocks.

Edges: fall-through from a block whose terminator is not an
unconditional transfer, plus branch-target edges.  ``EXIT`` terminators
produce no successors.  A synthetic-free representation — virtual
entry/exit handling lives in the dominance module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfg.basic_blocks import BasicBlock, split_into_blocks
from repro.isa.instructions import Opcode
from repro.isa.kernel import Kernel


@dataclass
class ControlFlowGraph:
    """CFG: blocks in program order plus successor/predecessor maps."""

    kernel: Kernel
    blocks: list[BasicBlock]
    successors: dict[int, tuple[int, ...]]
    predecessors: dict[int, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.predecessors:
            preds: dict[int, list[int]] = {b.index: [] for b in self.blocks}
            for src, dsts in self.successors.items():
                for dst in dsts:
                    preds[dst].append(src)
            self.predecessors = {k: tuple(v) for k, v in preds.items()}

    @property
    def entry(self) -> int:
        return 0

    def exit_blocks(self) -> tuple[int, ...]:
        """Blocks with no successors (terminated by EXIT or falling off)."""
        return tuple(
            b.index for b in self.blocks if not self.successors[b.index]
        )

    def block_of_pc(self, pc: int) -> BasicBlock:
        """The block containing ``pc`` (binary search over sorted ranges)."""
        lo, hi = 0, len(self.blocks) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            blk = self.blocks[mid]
            if pc < blk.start:
                hi = mid - 1
            elif pc >= blk.end:
                lo = mid + 1
            else:
                return blk
        raise IndexError(f"pc {pc} outside kernel range")

    def reverse_post_order(self) -> list[int]:
        """Blocks in reverse post-order from the entry (forward dataflow order)."""
        visited: set[int] = set()
        order: list[int] = []

        def dfs(node: int) -> None:
            # Iterative DFS to survive deep CFGs.
            stack: list[tuple[int, int]] = [(node, 0)]
            visited.add(node)
            while stack:
                current, child_idx = stack[-1]
                succs = self.successors[current]
                if child_idx < len(succs):
                    stack[-1] = (current, child_idx + 1)
                    nxt = succs[child_idx]
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(current)
                    stack.pop()

        dfs(self.entry)
        # Unreachable blocks appended in program order so analyses still
        # terminate (conservatively) on degenerate inputs.
        for blk in self.blocks:
            if blk.index not in visited:
                order.append(blk.index)
        order.reverse()
        return order


def build_cfg(kernel: Kernel) -> ControlFlowGraph:
    """Construct the CFG for a kernel."""
    blocks = split_into_blocks(kernel)
    start_to_block = {b.start: b.index for b in blocks}
    successors: dict[int, tuple[int, ...]] = {}

    for blk in blocks:
        term = kernel[blk.last_pc]
        succs: list[int] = []
        if term.is_exit:
            pass
        elif term.opcode is Opcode.JMP:
            succs.append(start_to_block[kernel.label_pc(term.target)])
        elif term.is_conditional_branch:
            # Not-taken (fall-through) first, then taken.
            if blk.end < len(kernel):
                succs.append(start_to_block[blk.end])
            succs.append(start_to_block[kernel.label_pc(term.target)])
        else:
            if blk.end < len(kernel):
                succs.append(start_to_block[blk.end])
        # Deduplicate while preserving order (self-loop branches etc.).
        unique: list[int] = []
        for s in succs:
            if s not in unique:
                unique.append(s)
        successors[blk.index] = tuple(unique)

    return ControlFlowGraph(kernel=kernel, blocks=blocks, successors=successors)
