"""Dominator and post-dominator trees (Cooper-Harvey-Kennedy algorithm).

The RegMutex liveness pass needs *immediate post-dominators* of branch
blocks: a register defined before a divergent branch and used inside any
arm must be treated as live in every arm until the branches reconverge
at the immediate post-dominator (paper §III-A1, Figure 3).

Post-dominance is computed as dominance on the reversed CFG with a
virtual exit node that links every exit block (GPU kernels can have
several ``EXIT`` points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cfg.graph import ControlFlowGraph

VIRTUAL_EXIT = -1


@dataclass(frozen=True)
class DominatorTree:
    """Immediate-(post-)dominator relation over block indices.

    ``idom[b]`` is the immediate dominator of block ``b``; the root maps
    to itself.  For the post-dominator tree the root is ``VIRTUAL_EXIT``.
    """

    root: int
    idom: dict[int, int]

    def immediate(self, block: int) -> Optional[int]:
        """Immediate dominator of ``block``; None for the root."""
        if block == self.root:
            return None
        return self.idom.get(block)

    def dominates(self, a: int, b: int) -> bool:
        """Whether ``a`` (post-)dominates ``b`` (reflexive)."""
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            if node == self.root:
                return False
            node = self.idom.get(node)
        return False

    def dominators_of(self, block: int) -> list[int]:
        """The (post-)dominator chain from ``block`` up to the root."""
        chain = [block]
        node = block
        while node != self.root:
            node = self.idom[node]
            chain.append(node)
        return chain


def _compute_idoms(
    nodes: list[int],
    root: int,
    preds: dict[int, tuple[int, ...]],
) -> dict[int, int]:
    """Cooper-Harvey-Kennedy 'a simple, fast dominance algorithm'."""
    # Reverse post-order numbering from the root over the given edges.
    order: list[int] = []
    visited = {root}
    stack: list[tuple[int, int]] = [(root, 0)]
    succs: dict[int, list[int]] = {n: [] for n in nodes}
    for node, ps in preds.items():
        for p in ps:
            succs.setdefault(p, []).append(node)
    while stack:
        current, child_idx = stack[-1]
        children = succs.get(current, [])
        if child_idx < len(children):
            stack[-1] = (current, child_idx + 1)
            nxt = children[child_idx]
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, 0))
        else:
            order.append(current)
            stack.pop()
    order.reverse()
    rpo_number = {node: i for i, node in enumerate(order)}

    idom: dict[int, int] = {root: root}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_number[a] > rpo_number[b]:
                a = idom[a]
            while rpo_number[b] > rpo_number[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == root:
                continue
            candidates = [p for p in preds.get(node, ()) if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def dominator_tree(cfg: ControlFlowGraph) -> DominatorTree:
    """Dominator tree rooted at the CFG entry."""
    nodes = [b.index for b in cfg.blocks]
    idom = _compute_idoms(nodes, cfg.entry, cfg.predecessors)
    return DominatorTree(root=cfg.entry, idom=idom)


def post_dominator_tree(cfg: ControlFlowGraph) -> DominatorTree:
    """Post-dominator tree rooted at a virtual exit joining all EXIT blocks."""
    nodes = [b.index for b in cfg.blocks] + [VIRTUAL_EXIT]
    # Reverse the CFG: predecessors of node n = successors of n in the CFG,
    # with the virtual exit preceding (in reverse orientation) every real
    # exit block.
    rev_preds: dict[int, tuple[int, ...]] = {}
    for blk in cfg.blocks:
        rev_preds[blk.index] = cfg.successors[blk.index]
    exits = cfg.exit_blocks()
    for ex in exits:
        rev_preds[ex] = rev_preds[ex] + (VIRTUAL_EXIT,) if rev_preds[ex] else (VIRTUAL_EXIT,)
    rev_preds[VIRTUAL_EXIT] = ()
    # In the reversed graph, edges flow from VIRTUAL_EXIT backwards:
    # node n's predecessors (reversed) are its CFG successors; the DFS in
    # _compute_idoms walks successors-of-reversed = predecessors-of-CFG.
    idom = _compute_idoms(nodes, VIRTUAL_EXIT, rev_preds)
    return DominatorTree(root=VIRTUAL_EXIT, idom=idom)
