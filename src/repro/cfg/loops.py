"""Natural-loop detection via back edges of the dominator tree.

Used by workload characterization (inner loops are where register
pressure spikes — paper §II, Figure 1) and by tests asserting that the
generator produces the loop shapes it promises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.dominance import dominator_tree
from repro.cfg.graph import ControlFlowGraph


@dataclass(frozen=True)
class NaturalLoop:
    """A natural loop: header block plus all body blocks (header included)."""

    header: int
    body: frozenset[int]

    def __contains__(self, block: int) -> bool:
        return block in self.body

    @property
    def size(self) -> int:
        return len(self.body)


def find_natural_loops(cfg: ControlFlowGraph) -> list[NaturalLoop]:
    """All natural loops, merged per header, ordered by header index."""
    dom = dominator_tree(cfg)
    loops: dict[int, set[int]] = {}

    for blk in cfg.blocks:
        for succ in cfg.successors[blk.index]:
            if dom.dominates(succ, blk.index):
                # Back edge blk -> succ; collect the loop body by walking
                # predecessors from the latch until the header.
                header = succ
                body = loops.setdefault(header, {header})
                stack = [blk.index]
                while stack:
                    node = stack.pop()
                    if node in body:
                        continue
                    body.add(node)
                    stack.extend(cfg.predecessors[node])

    return [
        NaturalLoop(header=h, body=frozenset(b))
        for h, b in sorted(loops.items())
    ]


def loop_nesting_depth(cfg: ControlFlowGraph) -> dict[int, int]:
    """Per-block nesting depth: number of natural loops containing the block."""
    loops = find_natural_loops(cfg)
    depth = {blk.index: 0 for blk in cfg.blocks}
    for loop in loops:
        for block in loop.body:
            depth[block] += 1
    return depth
