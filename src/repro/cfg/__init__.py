"""Control-flow analysis substrate.

Builds basic blocks and a control-flow graph from a
:class:`repro.isa.kernel.Kernel`, plus dominator/post-dominator trees and
natural-loop detection.  The RegMutex compiler uses post-dominators for
divergence-conservative liveness (paper §III-A1) and loops for workload
characterization.
"""

from repro.cfg.basic_blocks import BasicBlock, split_into_blocks
from repro.cfg.graph import ControlFlowGraph, build_cfg
from repro.cfg.dominance import DominatorTree, dominator_tree, post_dominator_tree
from repro.cfg.loops import NaturalLoop, find_natural_loops

__all__ = [
    "BasicBlock",
    "split_into_blocks",
    "ControlFlowGraph",
    "build_cfg",
    "DominatorTree",
    "dominator_tree",
    "post_dominator_tree",
    "NaturalLoop",
    "find_natural_loops",
]
