"""Bottleneck attribution: where did the scheduler-idle cycles go?

The SM counters already split idle scheduler cycles into memory,
scoreboard, barrier, and acquire stalls; this module turns one or two
:class:`~repro.sim.stats.SmStats` into a readable report, including the
before/after comparison used when explaining why a technique won or
lost (e.g. RegMutex trades memory stalls for acquire stalls on the
section-starved apps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import SmStats

_CATEGORIES = ("memory", "scoreboard", "barrier", "acquire")


@dataclass(frozen=True)
class BottleneckReport:
    """Idle-cycle attribution for one SM run."""

    cycles: int
    issue_slots: int
    issued: int
    stalls: dict[str, int]

    @property
    def idle_slots(self) -> int:
        return sum(self.stalls.values())

    @property
    def issue_utilization(self) -> float:
        """Issued instructions per issue slot (the SM's achieved IPC over
        its peak IPC)."""
        if self.issue_slots == 0:
            return 0.0
        return self.issued / self.issue_slots

    def fraction(self, category: str) -> float:
        """This stall category's share of all idle slots."""
        if category not in _CATEGORIES:
            raise ValueError(
                f"unknown category {category!r}; one of {_CATEGORIES}"
            )
        idle = self.idle_slots
        return self.stalls[category] / idle if idle else 0.0

    def dominant(self) -> str:
        """The stall category with the most idle slots ('none' if the SM
        never idled)."""
        if not self.idle_slots:
            return "none"
        return max(self.stalls, key=lambda k: self.stalls[k])

    def format(self) -> str:
        lines = [
            f"cycles: {self.cycles}, issue utilization "
            f"{self.issue_utilization:.0%}"
        ]
        for cat in _CATEGORIES:
            lines.append(
                f"  {cat:<11} {self.stalls[cat]:>10} idle slots "
                f"({self.fraction(cat):.0%})"
            )
        return "\n".join(lines)

    def flame(self, width: int = 44) -> str:
        """Flame-style stall attribution: proportional bars per category.

        The top bar is the issued/idle split of all issue slots; below
        it, idle slots fan out into the stall categories, widest first —
        the textual analogue of a two-level flame graph.
        """
        slots = max(1, self.issue_slots)
        issued_chars = round(self.issue_utilization * width)
        lines = [
            f"issue slots  |{'#' * issued_chars}"
            f"{'.' * (width - issued_chars)}| "
            f"{self.issued} issued / {self.idle_slots} idle",
        ]
        for cat in sorted(_CATEGORIES, key=lambda c: -self.stalls[c]):
            share = self.stalls[cat] / slots
            chars = round(share * width)
            lines.append(
                f"  {cat:<11}|{'#' * chars}{' ' * (width - chars)}| "
                f"{self.fraction(cat):>4.0%} of idle "
                f"({self.stalls[cat]} slots)"
            )
        return "\n".join(lines)


def attribute_bottlenecks(stats: SmStats, num_schedulers: int = 2) -> BottleneckReport:
    """Build a report from one SM's counters."""
    return BottleneckReport(
        cycles=stats.cycles,
        issue_slots=stats.cycles * num_schedulers,
        issued=stats.instructions_issued,
        stalls={
            "memory": stats.stall_memory,
            "scoreboard": stats.stall_scoreboard,
            "barrier": stats.stall_barrier,
            "acquire": stats.stall_acquire,
        },
    )


def compare(before: BottleneckReport, after: BottleneckReport) -> str:
    """A two-column diff of stall shares, for technique A/B explanations."""
    lines = [
        f"{'category':<12} {'before':>10} {'after':>10}",
    ]
    for cat in _CATEGORIES:
        lines.append(
            f"{cat:<12} {before.fraction(cat):>9.0%} "
            f"{after.fraction(cat):>9.0%}"
        )
    lines.append(
        f"{'issue util':<12} {before.issue_utilization:>9.0%} "
        f"{after.issue_utilization:>9.0%}"
    )
    return "\n".join(lines)
