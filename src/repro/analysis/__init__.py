"""Post-run analysis tools: bottleneck attribution and design sweeps."""

from repro.analysis.bottleneck import BottleneckReport, attribute_bottlenecks
from repro.analysis.sweeps import (
    RfSizePoint,
    register_file_size_sweep,
    rf_size_sweep_spec,
)

__all__ = [
    "BottleneckReport",
    "attribute_bottlenecks",
    "RfSizePoint",
    "register_file_size_sweep",
    "rf_size_sweep_spec",
]
