"""Post-run analysis tools: bottleneck attribution and design sweeps."""

from repro.analysis.bottleneck import BottleneckReport, attribute_bottlenecks
from repro.analysis.sweeps import (
    RfSizePoint,
    register_file_size_sweep,
)

__all__ = [
    "BottleneckReport",
    "attribute_bottlenecks",
    "RfSizePoint",
    "register_file_size_sweep",
]
