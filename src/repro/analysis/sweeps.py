"""Design-space sweeps built on the declarative experiment layer.

The headline sweep generalizes the paper's §IV-B experiment: instead of
one halved register file, sweep the file size and measure how much
performance each technique retains — "how small can the register file
get before the kernel falls off a cliff, and how far does RegMutex push
that cliff?".

Each sweep is declared as an :class:`ExperimentSpec` whose row builder
tolerates per-point failures (a scale where no CTA fits is a data point,
not an error), so it runs serially through a runner or in parallel
through an :class:`~repro.harness.orchestrator.Orchestrator` unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.arch.config import GpuConfig, GTX480
from repro.harness.runner import ExperimentRunner
from repro.harness.spec import (
    ExperimentSpec,
    JobResults,
    JobSpec,
    TechniqueSpec,
    run_experiment,
)
from repro.workloads.suite import get_app

DEFAULT_SCALES = (1.0, 0.75, 0.5, 0.375)


@dataclass(frozen=True)
class RfSizePoint:
    """One point of the register-file size sweep."""

    app: str
    scale: float
    registers_per_sm: int
    increase_baseline: float      # vs the full-size file, no technique
    increase_regmutex: float      # vs the full-size file, with RegMutex
    fits_baseline: bool           # could the kernel be placed at all?
    fits_regmutex: bool

    @property
    def regmutex_recovery(self) -> float:
        """Fraction of the bare slowdown RegMutex recovers at this point."""
        if self.increase_baseline <= 0:
            return 0.0
        return 1.0 - self.increase_regmutex / self.increase_baseline


def _scaled(config: GpuConfig, scale: float) -> GpuConfig:
    regs = int(config.registers_per_sm * scale)
    # Keep warp-size alignment so per-warp register packs stay whole.
    regs -= regs % config.warp_size
    return dataclasses.replace(
        config, name=f"{config.name}-rf{scale:g}", registers_per_sm=regs
    )


def rf_size_sweep_spec(
    app: str,
    config: GpuConfig = GTX480,
    scales: tuple[float, ...] = DEFAULT_SCALES,
) -> ExperimentSpec:
    """Declare the register-file size sweep for one application."""
    es = get_app(app).expected_es
    full_job = JobSpec(app, config, TechniqueSpec.of("baseline"))
    plan = []
    for scale in scales:
        scaled = _scaled(config, scale)
        plan.append(
            (scale, scaled,
             JobSpec(app, scaled, TechniqueSpec.of("baseline")),
             JobSpec(app, scaled,
                     TechniqueSpec.of("regmutex", extended_set_size=es)))
        )

    def build(results: JobResults) -> list[RfSizePoint]:
        full = results[full_job]

        def metric(job: JobSpec) -> tuple[float, bool]:
            # The kernel may stop fitting at small scales (no CTA
            # placeable); carry an infinite increase instead of raising.
            if results.failed(job):
                return float("inf"), False
            return results[job].increase_vs(full), True

        points = []
        for scale, scaled, base_job, rm_job in plan:
            inc_base, fits_base = metric(base_job)
            inc_rm, fits_rm = metric(rm_job)
            points.append(RfSizePoint(
                app=app,
                scale=scale,
                registers_per_sm=scaled.registers_per_sm,
                increase_baseline=inc_base,
                increase_regmutex=inc_rm,
                fits_baseline=fits_base,
                fits_regmutex=fits_rm,
            ))
        return points

    jobs = (full_job,) + tuple(
        j for _, _, base, rm in plan for j in (base, rm)
    )
    return ExperimentSpec(f"rf-size-sweep/{app}", jobs, build)


def register_file_size_sweep(
    runner: ExperimentRunner,
    app: str,
    config: GpuConfig = GTX480,
    scales: tuple[float, ...] = DEFAULT_SCALES,
    orchestrator=None,
) -> list[RfSizePoint]:
    """Sweep the register file size for one application."""
    spec = rf_size_sweep_spec(app, config, scales)
    if orchestrator is not None:
        return orchestrator.run_specs([spec])[spec.name]
    return run_experiment(spec, runner)
