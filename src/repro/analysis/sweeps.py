"""Design-space sweeps built on the experiment runner.

The headline sweep generalizes the paper's §IV-B experiment: instead of
one halved register file, sweep the file size and measure how much
performance each technique retains — "how small can the register file
get before the kernel falls off a cliff, and how far does RegMutex push
that cliff?".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.arch.config import GpuConfig, GTX480
from repro.harness.runner import ExperimentRunner
from repro.regmutex.issue_logic import RegMutexTechnique
from repro.sim.technique import BaselineTechnique
from repro.workloads.suite import build_app_kernel, get_app

DEFAULT_SCALES = (1.0, 0.75, 0.5, 0.375)


@dataclass(frozen=True)
class RfSizePoint:
    """One point of the register-file size sweep."""

    app: str
    scale: float
    registers_per_sm: int
    increase_baseline: float      # vs the full-size file, no technique
    increase_regmutex: float      # vs the full-size file, with RegMutex
    fits_baseline: bool           # could the kernel be placed at all?
    fits_regmutex: bool

    @property
    def regmutex_recovery(self) -> float:
        """Fraction of the bare slowdown RegMutex recovers at this point."""
        if self.increase_baseline <= 0:
            return 0.0
        return 1.0 - self.increase_regmutex / self.increase_baseline


def _scaled(config: GpuConfig, scale: float) -> GpuConfig:
    regs = int(config.registers_per_sm * scale)
    # Keep warp-size alignment so per-warp register packs stay whole.
    regs -= regs % config.warp_size
    return dataclasses.replace(
        config, name=f"{config.name}-rf{scale:g}", registers_per_sm=regs
    )


def register_file_size_sweep(
    runner: ExperimentRunner,
    app: str,
    config: GpuConfig = GTX480,
    scales: tuple[float, ...] = DEFAULT_SCALES,
) -> list[RfSizePoint]:
    """Sweep the register file size for one application.

    The kernel may stop fitting at small scales (no CTA placeable);
    those points are reported with ``fits_* = False`` and an infinite
    increase is avoided by carrying ``float('inf')``.
    """
    spec = get_app(app)
    kernel = build_app_kernel(spec)
    full = runner.run(kernel, config, BaselineTechnique())

    points: list[RfSizePoint] = []
    for scale in scales:
        scaled = _scaled(config, scale)

        def _try(technique):
            try:
                record = runner.run(kernel, scaled, technique)
                return record.increase_vs(full), True
            except RuntimeError:
                return float("inf"), False

        inc_base, fits_base = _try(BaselineTechnique())
        inc_rm, fits_rm = _try(
            RegMutexTechnique(extended_set_size=spec.expected_es)
        )
        points.append(RfSizePoint(
            app=app,
            scale=scale,
            registers_per_sm=scaled.registers_per_sm,
            increase_baseline=inc_base,
            increase_regmutex=inc_rm,
            fits_baseline=fits_base,
            fits_regmutex=fits_rm,
        ))
    return points
