"""Register liveness analysis and pressure profiling.

Implements the paper's §III-A1 analysis: backward dataflow liveness on
the CFG with two divergence-conservative extensions, plus per-instruction
live-register counts and the Figure 1 dynamic pressure traces.
"""

from repro.liveness.dataflow import BackwardDataflow, DataflowResult
from repro.liveness.liveness import (
    LivenessInfo,
    analyze_liveness,
    instruction_defs_uses,
)
from repro.liveness.pressure import (
    PressureProfile,
    static_pressure,
    dynamic_pressure_trace,
)

__all__ = [
    "BackwardDataflow",
    "DataflowResult",
    "LivenessInfo",
    "analyze_liveness",
    "instruction_defs_uses",
    "PressureProfile",
    "static_pressure",
    "dynamic_pressure_trace",
]
