"""Register pressure profiling: static per-PC counts and dynamic traces.

``static_pressure`` gives live counts per program counter (what the
RegMutex compiler consumes).  ``dynamic_pressure_trace`` walks a single
thread's dynamic execution path — using the branch annotations the
workload generator attaches — and emits the percentage-live-over-time
series of the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.kernel import Kernel
from repro.liveness.liveness import LivenessInfo, analyze_liveness
from repro.sim.rand import DeterministicRng


@dataclass
class PressureProfile:
    """Static pressure facts derived from liveness."""

    kernel: Kernel
    live_count: list[int]

    @property
    def max_live(self) -> int:
        return max(self.live_count) if self.live_count else 0

    def pcs_above(self, threshold: int) -> list[int]:
        """Program counters whose live count exceeds ``threshold``."""
        return [pc for pc, c in enumerate(self.live_count) if c > threshold]

    def fraction_above(self, threshold: int) -> float:
        """Static fraction of instructions with pressure above threshold."""
        if not self.live_count:
            return 0.0
        return len(self.pcs_above(threshold)) / len(self.live_count)

    def histogram(self) -> dict[int, int]:
        """live-count -> number of PCs at that count."""
        out: dict[int, int] = {}
        for c in self.live_count:
            out[c] = out.get(c, 0) + 1
        return dict(sorted(out.items()))


def static_pressure(kernel: Kernel, liveness: LivenessInfo | None = None) -> PressureProfile:
    info = liveness or analyze_liveness(kernel)
    return PressureProfile(kernel=kernel, live_count=info.live_count)


@dataclass
class DynamicTrace:
    """A single thread's dynamic execution pressure trace (Figure 1).

    ``live_counts[i]`` is the live-register count at the i-th dynamically
    executed instruction; ``utilization[i]`` is that count divided by the
    kernel's allocated register count.
    """

    kernel: Kernel
    pcs: list[int]
    live_counts: list[int]

    @property
    def instructions_executed(self) -> int:
        return len(self.pcs)

    @property
    def utilization(self) -> list[float]:
        alloc = self.kernel.metadata.regs_per_thread
        return [c / alloc for c in self.live_counts]

    def mean_utilization(self) -> float:
        util = self.utilization
        return sum(util) / len(util) if util else 0.0

    def fraction_fully_utilized(self, tolerance: int = 0) -> float:
        """Fraction of dynamic instructions at (or within ``tolerance`` of)
        the maximum live count."""
        if not self.live_counts:
            return 0.0
        peak = max(self.live_counts)
        hits = sum(1 for c in self.live_counts if c >= peak - tolerance)
        return hits / len(self.live_counts)


def dynamic_pressure_trace(
    kernel: Kernel,
    max_instructions: int = 100_000,
    seed: int = 0,
    liveness: LivenessInfo | None = None,
) -> DynamicTrace:
    """Trace one thread through the kernel, sampling live counts.

    Branches resolve via their ``trip_count`` annotation when present
    (loop-style deterministic iteration) or ``taken_probability`` via a
    deterministic RNG otherwise; unannotated conditional branches default
    to not-taken.  Raises if the walk exceeds ``max_instructions`` —
    synthetic kernels are finite by construction, so hitting the cap
    indicates a malformed workload.
    """
    info = liveness or analyze_liveness(kernel)
    counts = info.live_count
    rng = DeterministicRng(seed)

    pcs: list[int] = []
    live: list[int] = []
    trips_remaining: dict[int, int] = {}
    pc = 0
    n = len(kernel)

    while pc < n:
        inst = kernel[pc]
        pcs.append(pc)
        live.append(counts[pc])
        if len(pcs) > max_instructions:
            raise RuntimeError(
                f"dynamic trace exceeded {max_instructions} instructions; "
                "kernel may not terminate"
            )
        if inst.is_exit:
            break
        if inst.is_branch:
            if inst.is_conditional_branch:
                if inst.trip_count is not None:
                    remaining = trips_remaining.get(pc, inst.trip_count)
                    if remaining > 0:
                        trips_remaining[pc] = remaining - 1
                        pc = kernel.label_pc(inst.target)
                        continue
                    trips_remaining[pc] = inst.trip_count  # reset for re-entry
                    pc += 1
                    continue
                prob = inst.taken_probability if inst.taken_probability is not None else 0.0
                if rng.uniform() < prob:
                    pc = kernel.label_pc(inst.target)
                    continue
                pc += 1
                continue
            pc = kernel.label_pc(inst.target)  # JMP
            continue
        pc += 1

    return DynamicTrace(kernel=kernel, pcs=pcs, live_counts=live)
