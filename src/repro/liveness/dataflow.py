"""Generic iterative dataflow framework over the CFG.

A small worklist solver parameterized by per-block transfer functions.
Liveness is the only in-tree client, but the framework keeps the solver
logic (worklist, convergence, meet-over-successors) testable in
isolation and reusable for future analyses (reaching definitions, etc.).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

from repro.cfg.graph import ControlFlowGraph

State = TypeVar("State", bound=frozenset)


@dataclass
class DataflowResult(Generic[State]):
    """Fixed-point facts at block boundaries."""

    block_in: dict[int, State]
    block_out: dict[int, State]
    iterations: int


class BackwardDataflow(Generic[State]):
    """Backward may-analysis: OUT[b] = union of IN over successors,
    IN[b] = transfer(b, OUT[b]).

    ``transfer`` receives the block index and the OUT set and must return
    the IN set.  ``boundary`` seeds the OUT of exit blocks.
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        transfer: Callable[[int, frozenset], frozenset],
        boundary: frozenset = frozenset(),
    ) -> None:
        self._cfg = cfg
        self._transfer = transfer
        self._boundary = boundary

    def solve(self, max_iterations: int = 10_000) -> DataflowResult:
        cfg = self._cfg
        block_in: dict[int, frozenset] = {
            b.index: frozenset() for b in cfg.blocks
        }
        block_out: dict[int, frozenset] = {
            b.index: frozenset() for b in cfg.blocks
        }

        # Process in post-order (reverse of RPO) for fast backward convergence.
        order = list(reversed(cfg.reverse_post_order()))
        worklist: deque[int] = deque(order)
        queued = set(order)
        iterations = 0

        while worklist:
            iterations += 1
            if iterations > max_iterations:
                raise RuntimeError(
                    f"dataflow failed to converge after {max_iterations} steps"
                )
            block = worklist.popleft()
            queued.discard(block)

            succs = cfg.successors[block]
            if succs:
                out: frozenset = frozenset().union(
                    *(block_in[s] for s in succs)
                )
            else:
                out = self._boundary
            new_in = self._transfer(block, out)

            if out != block_out[block] or new_in != block_in[block]:
                block_out[block] = out
                block_in[block] = new_in
                for pred in cfg.predecessors[block]:
                    if pred not in queued:
                        worklist.append(pred)
                        queued.add(pred)

        return DataflowResult(
            block_in=block_in, block_out=block_out, iterations=iterations
        )
