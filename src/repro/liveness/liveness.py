"""Divergence-conservative register liveness (paper §III-A1).

The core is standard backward liveness on the CFG:

    live_out[b] = union of live_in over successors of b
    live_in[b]  = uses(b) | (live_out[b] - defs(b))

with per-instruction refinement inside each block.  GPU divergence adds
two conservative rules the paper illustrates with Figure 3:

1. **Branch-arm union**: a register live into *any* successor of a
   divergent branch must be considered live through *all* arms until the
   immediate post-dominator (threads of one warp may interleave both
   arms in an unknown order).  Standard may-liveness already unions over
   successors; the extra conservatism is that a value defined in one arm
   and used after the reconvergence point must be treated as live in the
   *other* arms too.
2. **Definition-in-branch rule**: if a register is defined inside a
   branch arm and used at/after the post-dominator, it is alive in the
   sibling arms (the other arm's threads must not clobber it).

We implement both by computing standard liveness first and then, for
each conditional-branch block ``b`` with immediate post-dominator ``p``,
unioning into every block on any path ``b .. p`` the registers that are
live into ``p`` and *referenced anywhere within the branch region*, plus
registers live out of any arm.  This matches nvdisasm-style conservative
liveness and is a strict over-approximation of the precise per-thread
answer — safe for RegMutex (overestimating liveness can only enlarge
acquire regions, never break correctness).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg.dominance import VIRTUAL_EXIT, post_dominator_tree
from repro.cfg.graph import ControlFlowGraph, build_cfg
from repro.isa.instructions import Instruction
from repro.isa.kernel import Kernel
from repro.liveness.dataflow import BackwardDataflow


def instruction_defs_uses(inst: Instruction) -> tuple[frozenset[int], frozenset[int]]:
    """(defs, uses) register sets of one instruction."""
    return frozenset(inst.dsts), frozenset(inst.srcs)


@dataclass
class LivenessInfo:
    """Per-instruction liveness facts for one kernel.

    ``live_in[pc]`` / ``live_out[pc]`` are frozensets of architected
    register indices.  ``live_count[pc]`` is ``len(live_in[pc] | defs(pc))``
    — the number of registers that must physically exist while the
    instruction at ``pc`` executes (a definition needs its destination
    allocated even if the value dies immediately).
    """

    kernel: Kernel
    cfg: ControlFlowGraph
    live_in: list[frozenset[int]]
    live_out: list[frozenset[int]]

    @property
    def live_count(self) -> list[int]:
        counts = []
        for pc, inst in enumerate(self.kernel):
            counts.append(len(self.live_in[pc] | frozenset(inst.dsts)))
        return counts

    def max_live(self) -> int:
        """Maximum simultaneous live registers anywhere in the kernel."""
        counts = self.live_count
        return max(counts) if counts else 0

    def live_at_barriers(self) -> list[tuple[int, frozenset[int]]]:
        """(pc, live set) at every CTA-wide synchronization point.

        Drives the second deadlock-avoidance rule of §III-A2: |Bs| must
        cover the live count at every ``BAR.SYNC``.
        """
        return [
            (pc, self.live_in[pc] | frozenset(self.kernel[pc].dsts))
            for pc, inst in enumerate(self.kernel)
            if inst.is_barrier
        ]


def _block_transfer(kernel: Kernel, cfg: ControlFlowGraph):
    """Build the per-block transfer closure for the dataflow solver."""
    block_defs: dict[int, frozenset[int]] = {}
    block_uses: dict[int, frozenset[int]] = {}
    for blk in cfg.blocks:
        defs: set[int] = set()
        uses: set[int] = set()
        for pc in blk.pcs:
            d, u = instruction_defs_uses(kernel[pc])
            # upward-exposed uses: read before any def in this block
            uses.update(u - defs)
            defs.update(d)
        block_defs[blk.index] = frozenset(defs)
        block_uses[blk.index] = frozenset(uses)

    def transfer(block: int, out: frozenset) -> frozenset:
        return block_uses[block] | (out - block_defs[block])

    return transfer


def _branch_region_blocks(
    cfg: ControlFlowGraph, branch_block: int, ipdom: int
) -> set[int]:
    """Blocks on any path from the branch (exclusive) to its immediate
    post-dominator (exclusive) — the divergent region."""
    region: set[int] = set()
    stack = [s for s in cfg.successors[branch_block] if s != ipdom]
    while stack:
        node = stack.pop()
        if node in region or node == ipdom:
            continue
        region.add(node)
        stack.extend(
            s for s in cfg.successors[node] if s != ipdom and s not in region
        )
    return region


def analyze_liveness(kernel: Kernel, cfg: ControlFlowGraph | None = None) -> LivenessInfo:
    """Run divergence-conservative liveness for a kernel."""
    cfg = cfg or build_cfg(kernel)
    transfer = _block_transfer(kernel, cfg)
    result = BackwardDataflow(cfg, transfer).solve()

    block_out = dict(result.block_out)

    # --- divergence conservatism --------------------------------------------
    pdom = post_dominator_tree(cfg)
    for blk in cfg.blocks:
        term = kernel[blk.last_pc]
        if not term.is_conditional_branch:
            continue
        if len(cfg.successors[blk.index]) < 2:
            continue  # degenerate branch, no divergence
        ip = pdom.immediate(blk.index)
        if ip is None or ip == VIRTUAL_EXIT:
            # No reconvergence point before exit: union over whole suffix
            # handled naturally by may-liveness; skip region widening.
            continue
        region = _branch_region_blocks(cfg, blk.index, ip)
        if not region:
            continue
        # Registers referenced inside the region:
        region_refs: set[int] = set()
        for rb in region:
            for pc in cfg.blocks[rb].pcs:
                region_refs.update(kernel[pc].registers)
        # Values needed at reconvergence that the region touches must stay
        # live throughout every arm (rules 1 and 2 above).
        refs = frozenset(region_refs)
        live_at_ipdom = frozenset(result.block_in[ip])
        pinned = refs & live_at_ipdom
        # Values live out of any arm are pinned across all arms as well.
        arm_live: frozenset[int] = frozenset().union(
            *(result.block_out[rb] for rb in region)
        ) if region else frozenset()
        pinned |= arm_live & refs
        # Values flowing into the divergent region (live out of the branch
        # block, i.e. live into at least one arm) and touched inside it
        # are pinned through every arm — Figure 3's R3 case.
        pinned |= frozenset(result.block_out[blk.index]) & refs
        if not pinned:
            continue
        for rb in region:
            block_out[rb] = block_out[rb] | pinned
        block_out[blk.index] = block_out[blk.index] | pinned

    # --- per-instruction refinement -------------------------------------------
    n = len(kernel)
    live_in: list[frozenset[int]] = [frozenset()] * n
    live_out: list[frozenset[int]] = [frozenset()] * n
    for blk in cfg.blocks:
        current = block_out[blk.index]
        for pc in reversed(blk.pcs):
            d, u = instruction_defs_uses(kernel[pc])
            live_out[pc] = current
            current = u | (current - d)
            live_in[pc] = current

    return LivenessInfo(kernel=kernel, cfg=cfg, live_in=live_in, live_out=live_out)
