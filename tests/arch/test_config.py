"""Tests for device configurations."""

import pytest

from repro.arch.config import GTX480, GTX480_HALF_RF, GpuConfig, fermi_like


class TestGtx480:
    def test_paper_parameters(self):
        """§IV: 15 SMs, 128 KB register file per SM, 2 schedulers, 48 warps."""
        assert GTX480.num_sms == 15
        assert GTX480.registers_per_sm == 32 * 1024   # 128 KB of 32-bit regs
        assert GTX480.num_schedulers == 2
        assert GTX480.max_warps_per_sm == 48
        assert GTX480.scheduler_policy == "gto"

    def test_warp_register_packs(self):
        """§III-B2: 32K registers / 32 lanes = 1K register packs."""
        assert GTX480.warp_register_packs == 1024

    def test_half_register_file(self):
        assert GTX480_HALF_RF.registers_per_sm == 16 * 1024
        assert GTX480_HALF_RF.num_sms == GTX480.num_sms
        assert "half" in GTX480_HALF_RF.name.lower()

    def test_with_scheduler(self):
        lrr = GTX480.with_scheduler("lrr")
        assert lrr.scheduler_policy == "lrr"
        assert GTX480.scheduler_policy == "gto"  # original untouched


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"warp_size": 0},
        {"num_sms": 0},
        {"max_warps_per_sm": 0},
        {"registers_per_sm": 0},
        {"scheduler_policy": "magic"},
        {"l1_hit_rate": 1.5},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            fermi_like(**kwargs)

    def test_fermi_like_overrides(self):
        cfg = fermi_like(num_sms=4, dram_latency=100)
        assert cfg.num_sms == 4
        assert cfg.dram_latency == 100
        assert cfg.max_warps_per_sm == GTX480.max_warps_per_sm
