"""Tests for the post-Fermi presets and the paper's generalization claim."""

import pytest

from repro.arch.config import GTX480, KEPLER_LIKE, PASCAL_LIKE, VOLTA_LIKE
from repro.arch.occupancy import (
    occupancy_limited_by_registers,
    theoretical_occupancy,
)
from repro.isa.kernel import KernelMetadata


class TestPresets:
    @pytest.mark.parametrize("cfg", [KEPLER_LIKE, PASCAL_LIKE, VOLTA_LIKE])
    def test_doubled_register_file(self, cfg):
        assert cfg.registers_per_sm == 2 * GTX480.registers_per_sm

    @pytest.mark.parametrize("cfg", [KEPLER_LIKE, PASCAL_LIKE, VOLTA_LIKE])
    def test_raised_warp_ceiling(self, cfg):
        assert cfg.max_warps_per_sm == 64

    def test_volta_warp_count_matches_paper(self):
        """§II: 'on Nvidia Volta GPUs, there can be up to 64 warps
        residing on an SM'."""
        assert VOLTA_LIKE.max_warps_per_sm == 64


class TestGeneralizationClaim:
    """§IV: 'in all post-Fermi Nvidia GPUs having more than 32 registers
    per thread definitely results in incomplete occupancy' — the
    register-file doubling does not keep pace with the warp ceiling."""

    @pytest.mark.parametrize("cfg", [KEPLER_LIKE, PASCAL_LIKE, VOLTA_LIKE])
    def test_33_regs_caps_occupancy(self, cfg):
        md = KernelMetadata(regs_per_thread=33, threads_per_cta=256)
        occ = theoretical_occupancy(cfg, md)
        assert occ.occupancy < 1.0
        assert occupancy_limited_by_registers(cfg, md)

    @pytest.mark.parametrize("cfg", [KEPLER_LIKE, PASCAL_LIKE, VOLTA_LIKE])
    def test_32_regs_allows_full_occupancy(self, cfg):
        md = KernelMetadata(regs_per_thread=32, threads_per_cta=256)
        occ = theoretical_occupancy(cfg, md)
        assert occ.occupancy == 1.0

    def test_regmutex_still_applies_on_newer_arch(self):
        """A 40-register kernel on the Volta-like part is register-limited
        and the heuristic finds a viable split — the technique carries
        over, as §IV argues."""
        from repro.compiler.es_selection import select_extended_set_size
        from repro.workloads.generator import (
            KernelShape, PressurePhase, generate_kernel,
        )
        kernel = generate_kernel(KernelShape(
            name="volta-kernel",
            phases=(
                PressurePhase(live_regs=20, length=30, mem_ratio=0.2),
                PressurePhase(live_regs=40, length=20, mem_ratio=0.03),
                PressurePhase(live_regs=20, length=25, mem_ratio=0.2),
            ),
            regs_per_thread=40,
            threads_per_cta=256,
            outer_trips=3,
        ))
        sel = select_extended_set_size(kernel, VOLTA_LIKE)
        assert sel.uses_regmutex
        assert sel.srp_sections >= 1
        assert sel.occupancy_warps > theoretical_occupancy(
            VOLTA_LIKE, kernel.metadata
        ).resident_warps
