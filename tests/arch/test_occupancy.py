"""Tests for the theoretical occupancy calculator."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.config import GTX480, fermi_like
from repro.arch.occupancy import (
    occupancy_limited_by_registers,
    round_regs_to_granularity,
    theoretical_occupancy,
)
from repro.isa.kernel import KernelMetadata


class TestRounding:
    @pytest.mark.parametrize("regs,expected", [
        (21, 24), (25, 28), (44, 44), (32, 32), (33, 36), (30, 32),
        (12, 12), (15, 16), (13, 16), (16, 16), (18, 20), (28, 28),
        (1, 4), (4, 4),
    ])
    def test_table1_roundings(self, regs, expected):
        """Table I's parenthesised numbers at granularity 4."""
        assert round_regs_to_granularity(regs, 4) == expected

    def test_granularity_one_is_identity(self):
        assert round_regs_to_granularity(21, 1) == 21

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            round_regs_to_granularity(0, 4)

    @given(st.integers(min_value=1, max_value=256),
           st.integers(min_value=1, max_value=8))
    def test_rounding_properties(self, regs, gran):
        rounded = round_regs_to_granularity(regs, gran)
        assert rounded >= regs
        assert rounded % gran == 0
        assert rounded - regs < gran


class TestTheoreticalOccupancy:
    def test_thread_limited_kernel(self):
        md = KernelMetadata(regs_per_thread=8, threads_per_cta=256)
        occ = theoretical_occupancy(GTX480, md)
        # 1536 threads / 256 = 6 CTAs = 48 warps: full occupancy.
        assert occ.ctas_per_sm == 6
        assert occ.occupancy == 1.0

    def test_register_limited_kernel(self):
        md = KernelMetadata(regs_per_thread=32, threads_per_cta=512)
        occ = theoretical_occupancy(GTX480, md)
        # 32 regs * 512 threads = 16K regs/CTA -> 2 CTAs.
        assert occ.ctas_per_sm == 2
        assert occ.limiting_resource == "registers"

    def test_shared_memory_limit(self):
        md = KernelMetadata(
            regs_per_thread=8, threads_per_cta=128, shared_mem_per_cta=16 * 1024
        )
        occ = theoretical_occupancy(GTX480, md)
        assert occ.ctas_per_sm == 3  # 48K / 16K
        assert occ.limiting_resource == "shared_mem"

    def test_cta_slot_limit(self):
        md = KernelMetadata(regs_per_thread=4, threads_per_cta=64)
        occ = theoretical_occupancy(GTX480, md)
        assert occ.ctas_per_sm == GTX480.max_ctas_per_sm

    def test_regs_override(self):
        md = KernelMetadata(regs_per_thread=32, threads_per_cta=512)
        occ = theoretical_occupancy(GTX480, md, regs_per_thread=20)
        assert occ.ctas_per_sm == 3  # 20*512 = 10K -> 3 CTAs

    def test_reserved_registers_shrink_pool(self):
        md = KernelMetadata(regs_per_thread=32, threads_per_cta=512)
        occ = theoretical_occupancy(GTX480, md, reserved_registers=16 * 1024)
        assert occ.ctas_per_sm == 1

    def test_granularity_override_matches_paper_example(self):
        """§III-A2 worked example: |Bs|=18 on a 1536-thread-per-SM Fermi
        yields full occupancy at granularity 1 (18*1536 = 27648 <= 32K)."""
        md = KernelMetadata(regs_per_thread=24, threads_per_cta=256)
        occ = theoretical_occupancy(GTX480, md, regs_per_thread=18, granularity=1)
        assert occ.resident_warps == 48

    def test_occupancy_fraction(self):
        md = KernelMetadata(regs_per_thread=24, threads_per_cta=256)
        occ = theoretical_occupancy(GTX480, md)
        assert occ.resident_warps == 40  # 5 CTAs * 8 warps
        assert occ.occupancy == pytest.approx(40 / 48)

    @given(
        st.integers(min_value=4, max_value=63),
        st.sampled_from([64, 128, 192, 256, 384, 512]),
    )
    def test_monotone_in_register_demand(self, regs, threads):
        md_small = KernelMetadata(regs_per_thread=regs, threads_per_cta=threads)
        md_large = KernelMetadata(regs_per_thread=regs + 4, threads_per_cta=threads)
        occ_small = theoretical_occupancy(GTX480, md_small)
        occ_large = theoretical_occupancy(GTX480, md_large)
        assert occ_small.resident_warps >= occ_large.resident_warps

    @given(
        st.integers(min_value=4, max_value=63),
        st.sampled_from([64, 128, 256, 512]),
        st.integers(min_value=0, max_value=48 * 1024),
    )
    def test_never_overcommits_resources(self, regs, threads, smem):
        md = KernelMetadata(
            regs_per_thread=regs, threads_per_cta=threads, shared_mem_per_cta=smem
        )
        occ = theoretical_occupancy(GTX480, md)
        rounded = round_regs_to_granularity(regs, 4)
        assert occ.ctas_per_sm * rounded * threads <= GTX480.registers_per_sm
        assert occ.ctas_per_sm * threads <= GTX480.max_threads_per_sm
        assert occ.ctas_per_sm * smem <= GTX480.shared_mem_per_sm
        assert occ.resident_warps <= GTX480.max_warps_per_sm


class TestRegisterLimited:
    def test_register_limited_detection(self):
        limited = KernelMetadata(regs_per_thread=32, threads_per_cta=512)
        relaxed = KernelMetadata(regs_per_thread=8, threads_per_cta=256)
        assert occupancy_limited_by_registers(GTX480, limited)
        assert not occupancy_limited_by_registers(GTX480, relaxed)

    def test_half_rf_flips_status(self):
        md = KernelMetadata(regs_per_thread=16, threads_per_cta=256)
        assert not occupancy_limited_by_registers(GTX480, md)
        assert occupancy_limited_by_registers(
            GTX480.with_half_register_file(), md
        )
