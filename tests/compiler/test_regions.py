"""Tests for acquire-region discovery."""

import pytest

from repro.compiler.regions import AcquireRegion, find_acquire_regions
from repro.isa.builder import KernelBuilder
from repro.liveness.liveness import analyze_liveness
from repro.workloads.suite import APPLICATIONS, build_app_kernel


def spike_kernel(low=4, high=10, spike_len=6):
    """low pressure, one high-pressure spike, low pressure again."""
    b = KernelBuilder(regs_per_thread=high)
    for r in range(low):
        b.ldc(r)
    for i in range(5):
        b.alu(1 + i % (low - 1), 0, 1)
    for r in range(low, high):
        b.ldc(r)
    for i in range(spike_len):
        b.alu(low + i % (high - low), (i + 1) % high, (i + 2) % high)
    for r in range(low, high):  # reduce: last uses
        b.alu(0, 0, r)
    for i in range(5):
        b.alu(1 + i % (low - 1), 0, 1)
    b.store(0, 0)
    b.exit()
    return b.build()


class TestAcquireRegion:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AcquireRegion(5, 5)

    def test_overlaps(self):
        assert AcquireRegion(0, 5).overlaps(AcquireRegion(4, 8))
        assert not AcquireRegion(0, 5).overlaps(AcquireRegion(5, 8))


class TestFindAcquireRegions:
    def test_no_region_when_pressure_below_bs(self):
        k = spike_kernel(low=4, high=10)
        assert find_acquire_regions(k, base_set_size=12) == []

    def test_single_spike_found(self):
        k = spike_kernel(low=4, high=10)
        regions = find_acquire_regions(k, base_set_size=6)
        assert len(regions) == 1
        (region,) = regions
        info = analyze_liveness(k)
        # Every PC above the threshold is inside the region.
        for pc, count in enumerate(info.live_count):
            if count > 6:
                assert region.start <= pc < region.end

    def test_close_regions_merged(self):
        """Two spikes separated by fewer than merge_gap instructions fuse."""
        b = KernelBuilder(regs_per_thread=10)
        for r in range(10):
            b.ldc(r)
        for i in range(4):
            b.alu(i % 10, (i + 1) % 10, (i + 2) % 10)
        # Brief dip: reduce to 4 regs, then redefine immediately.
        for r in range(4, 10):
            b.alu(0, 0, r)
        for r in range(4, 10):
            b.ldc(r)
        for i in range(4):
            b.alu(i % 10, (i + 1) % 10, (i + 2) % 10)
        for r in range(1, 10):
            b.alu(0, 0, r)
        b.store(0, 0)
        b.exit()
        k = b.build()
        merged = find_acquire_regions(k, base_set_size=6, merge_gap=8)
        separate = find_acquire_regions(k, base_set_size=6, merge_gap=0)
        assert len(merged) <= len(separate)
        assert len(merged) == 1

    def test_regions_disjoint_and_sorted(self):
        for app in ("BFS", "SAD", "CUTCP"):
            spec = APPLICATIONS[app]
            k = build_app_kernel(spec)
            regions = find_acquire_regions(k, spec.expected_bs)
            for a, b2 in zip(regions, regions[1:]):
                assert a.end <= b2.start

    @pytest.mark.parametrize("app", sorted(APPLICATIONS))
    def test_suite_apps_have_regions_at_table1_bs(self, app):
        """Every app's pressure must exceed its |Bs| somewhere — otherwise
        RegMutex would be a no-op on it, contradicting the paper."""
        spec = APPLICATIONS[app]
        k = build_app_kernel(spec)
        assert find_acquire_regions(k, spec.expected_bs)
