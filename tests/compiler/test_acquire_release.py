"""Tests for primitive injection and region normalization."""

import pytest

from repro.compiler.acquire_release import (
    inject_primitives,
    normalize_region,
    _offending_edges,
)
from repro.compiler.regions import AcquireRegion, find_acquire_regions
from repro.isa.builder import KernelBuilder
from repro.isa.instructions import Opcode
from repro.workloads.suite import APPLICATIONS, build_app_kernel
from tests.compiler.test_regions import spike_kernel


def _walk_check_pairing(kernel, max_steps=50_000):
    """Single-thread walk asserting acquire/release are well-paired along
    the dynamic path (re-acquires/re-releases are no-ops but must never
    leave the warp holding a set at EXIT... unless EXIT reclaims)."""
    held = False
    acquires = releases = 0
    pc = 0
    trips = {}
    steps = 0
    while pc < len(kernel):
        steps += 1
        assert steps < max_steps, "walk did not terminate"
        inst = kernel[pc]
        if inst.opcode is Opcode.ACQUIRE:
            if not held:
                acquires += 1
            held = True
        elif inst.opcode is Opcode.RELEASE:
            if held:
                releases += 1
            held = False
        if inst.is_exit:
            break
        if inst.is_branch:
            if inst.is_conditional_branch:
                remaining = trips.get(pc, inst.trip_count or 0)
                if remaining > 0:
                    trips[pc] = remaining - 1
                    pc = kernel.label_pc(inst.target)
                    continue
                trips[pc] = inst.trip_count or 0
                pc += 1
                continue
            pc = kernel.label_pc(inst.target)
            continue
        pc += 1
    return acquires, releases, held


class TestNormalization:
    def test_straightline_region_unchanged(self):
        k = spike_kernel()
        regions = find_acquire_regions(k, 6)
        (region,) = regions
        assert normalize_region(k, region) == region

    def test_region_with_backedge_grows_to_loop(self):
        """A region covering part of a loop body must grow to contain the
        whole loop (the back edge would otherwise escape it)."""
        b = KernelBuilder(regs_per_thread=8)
        for r in range(8):
            b.ldc(r)
        b.label("head")
        for i in range(4):
            b.alu(i % 8, (i + 1) % 8, (i + 2) % 8)
        b.setp(0, 0, 1)
        b.branch("head", 0, trip_count=3)
        b.store(0, 0)
        b.exit()
        k = b.build()
        head = k.label_pc("head")
        branch_pc = next(
            pc for pc, i in enumerate(k) if i.is_conditional_branch
        )
        # A region containing the back edge but not the header: the back
        # edge escapes it, so it must grow to swallow the whole loop.
        region = AcquireRegion(head + 2, branch_pc + 1)
        grown = normalize_region(k, region)
        assert grown.start <= head
        assert grown.end > branch_pc
        assert _offending_edges(k, grown) == []

    def test_interior_straightline_region_needs_no_growth(self):
        """A straight-line region strictly inside a loop body is already
        single-entry/single-exit: acquire and release simply execute once
        per iteration."""
        b = KernelBuilder(regs_per_thread=8)
        for r in range(8):
            b.ldc(r)
        b.label("head")
        for i in range(4):
            b.alu(i % 8, (i + 1) % 8, (i + 2) % 8)
        b.setp(0, 0, 1)
        b.branch("head", 0, trip_count=3)
        b.store(0, 0)
        b.exit()
        k = b.build()
        head = k.label_pc("head")
        region = AcquireRegion(head + 1, head + 3)
        assert normalize_region(k, region) == region

    def test_no_offending_edges_after_normalization(self):
        for app in ("BFS", "CUTCP", "ParticleFilter", "SRAD"):
            spec = APPLICATIONS[app]
            k = build_app_kernel(spec)
            for region in find_acquire_regions(k, spec.expected_bs):
                grown = normalize_region(k, region)
                assert _offending_edges(k, grown) == []


class TestInjection:
    def test_empty_regions_no_change(self):
        k = spike_kernel()
        result = inject_primitives(k, [])
        assert result.kernel is k

    def test_acquire_release_inserted(self):
        k = spike_kernel()
        regions = find_acquire_regions(k, 6)
        result = inject_primitives(k, regions)
        ops = [i.opcode for i in result.kernel]
        assert ops.count(Opcode.ACQUIRE) == 1
        assert ops.count(Opcode.RELEASE) == 1
        acq, rel = ops.index(Opcode.ACQUIRE), ops.index(Opcode.RELEASE)
        assert acq < rel

    def test_all_other_instructions_preserved_in_order(self):
        k = spike_kernel()
        result = inject_primitives(k, find_acquire_regions(k, 6))
        originals = [i for i in result.kernel if not i.is_regmutex]
        import dataclasses
        stripped = [dataclasses.replace(i, label=None) for i in originals]
        expected = [dataclasses.replace(i, label=None) for i in k]
        assert stripped == expected

    def test_labels_preserved_or_moved_to_primitives(self):
        for app in ("BFS", "SAD"):
            spec = APPLICATIONS[app]
            k = build_app_kernel(spec)
            result = inject_primitives(
                k, find_acquire_regions(k, spec.expected_bs)
            )
            assert set(result.kernel.labels) == set(k.labels)

    def test_dynamic_pairing_on_suite_apps(self):
        for app in ("BFS", "CUTCP", "SAD", "SRAD", "ParticleFilter"):
            spec = APPLICATIONS[app]
            k = build_app_kernel(spec)
            result = inject_primitives(
                k, find_acquire_regions(k, spec.expected_bs)
            )
            acquires, releases, held = _walk_check_pairing(result.kernel)
            assert acquires > 0
            assert acquires == releases + (1 if held else 0)

    def test_acquire_pcs_point_at_acquires(self):
        k = spike_kernel()
        result = inject_primitives(k, find_acquire_regions(k, 6))
        for pc in result.acquire_pcs:
            assert result.kernel[pc].opcode is Opcode.ACQUIRE
        for pc in result.release_pcs:
            assert result.kernel[pc].opcode is Opcode.RELEASE
