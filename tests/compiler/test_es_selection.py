"""Tests for the |Es| selection heuristic (§III-A2)."""

import pytest

from repro.arch.config import GTX480, GTX480_HALF_RF
from repro.compiler.es_selection import (
    candidate_es_sizes,
    select_extended_set_size,
    _round_to_even,
)
from repro.isa.builder import KernelBuilder
from repro.workloads.suite import APPLICATIONS, build_app_kernel


class TestRoundToEven:
    @pytest.mark.parametrize("value,expected", [
        (2.4, 2), (3.6, 4), (4.8, 4), (6.0, 6), (7.2, 8), (8.4, 8),
        (7.0, 8),   # exact odd: halves round up
        (1.2, 2), (11.2, 12), (9.6, 10),
    ])
    def test_examples(self, value, expected):
        assert _round_to_even(value) == expected


class TestCandidates:
    def test_paper_worked_example(self):
        """R=24: 24 * {0.1..0.35} rounded to even = {2, 4, 6, 8}."""
        assert candidate_es_sizes(24) == [2, 4, 6, 8]

    @pytest.mark.parametrize("rounded,expected_member", [
        (24, 6),   # BFS / MRI-Q
        (28, 8),   # CUTCP / HeartWall / TPACF
        (44, 6),   # DWT2D
        (32, 8),   # HotSpot3D
        (32, 12),  # ParticleFilter / SAD
        (12, 4),   # Gaussian
        (16, 4),   # MergeSort / MonteCarlo / SPMV
        (20, 8),   # SRAD
        (40, 12),  # LavaMD
        (36, 6),   # RadixSort
    ])
    def test_table1_splits_are_candidates(self, rounded, expected_member):
        assert expected_member in candidate_es_sizes(rounded)

    def test_all_candidates_even_and_in_range(self):
        for rounded in range(8, 64, 4):
            for es in candidate_es_sizes(rounded):
                assert es % 2 == 0
                assert 0 < es < rounded


def _pressure_kernel(regs=24, threads=256, peak_len=20):
    """A kernel with a clear low/high pressure split for heuristic tests."""
    b = KernelBuilder(regs_per_thread=regs, threads_per_cta=threads)
    for r in range(8):
        b.ldc(r)
    for i in range(10):
        b.alu(2 + i % 6, 0, 1)
    for r in range(8, regs):
        b.ldc(r)
    for i in range(peak_len):
        b.op_list = None
        b.alu(8 + i % (regs - 8), (i + 1) % regs, (i + 2) % regs)
    # Final uses keep the high registers alive through the peak.
    for r in range(8, regs):
        b.alu(0, 0, r, opcode=__import__("repro.isa.instructions",
                                          fromlist=["Opcode"]).Opcode.FADD)
    b.store(0, 0)
    b.exit()
    return b.build()


class TestWorkedExample:
    def test_paper_section3a2_example(self):
        """R=24 on Fermi, register usage the only limit: the heuristic must
        pick |Es|=6 (|Bs|=18, 26 SRP sections) as in the paper's text."""
        kernel = _pressure_kernel(regs=24, threads=256)
        # threads=256: 24 regs -> 5 CTAs (register-limited since thread
        # cap is 6); mirrors the paper's full-occupancy arithmetic.
        sel = select_extended_set_size(kernel, GTX480)
        assert sel.extended_set_size == 6
        assert sel.base_set_size == 18
        assert sel.srp_sections == 26
        assert sel.occupancy_warps == 48


class TestForcedEs:
    def test_forced_split_validated(self):
        kernel = _pressure_kernel()
        sel = select_extended_set_size(kernel, GTX480, forced_es=8)
        assert sel.extended_set_size == 8
        assert sel.base_set_size == 16

    def test_forced_zero_disables(self):
        kernel = _pressure_kernel()
        sel = select_extended_set_size(kernel, GTX480, forced_es=0)
        assert not sel.uses_regmutex

    def test_forced_too_large_rejected(self):
        kernel = _pressure_kernel()
        with pytest.raises(ValueError):
            select_extended_set_size(kernel, GTX480, forced_es=24)


class TestDeadlockRules:
    def test_rule1_at_least_one_section(self):
        """A forced split whose SRP cannot hold one section must fall back
        to |Es| = 0."""
        kernel = _pressure_kernel(regs=24, threads=256)
        # Tiny register file: |Bs| packing leaves nothing for the SRP.
        from repro.arch.config import fermi_like
        tight = fermi_like(registers_per_sm=18 * 48 * 32)  # exactly the bases
        sel = select_extended_set_size(kernel, tight, forced_es=6)
        assert not sel.uses_regmutex
        assert "deadlock rule 1" in sel.reason

    def test_rule2_barrier_floor(self):
        """|Bs| below the live count at a barrier is rejected."""
        b = KernelBuilder(regs_per_thread=24, threads_per_cta=256)
        for r in range(22):
            b.ldc(r)
        b.barrier()                      # 22 live across the barrier
        for r in range(22):
            b.alu(0, 0, r)
        for r in range(22, 24):
            b.ldc(r)
        b.alu(0, 22, 23)
        b.store(0, 0)
        b.exit()
        sel = select_extended_set_size(b.build(), GTX480, forced_es=6)
        # |Bs| = 18 < 22 live at the barrier -> rejected.
        assert not sel.uses_regmutex
        assert "deadlock rule 2" in sel.reason


class TestNotRegisterLimited:
    def test_relaxed_kernel_untouched(self):
        kernel = _pressure_kernel(regs=12, threads=128)
        sel = select_extended_set_size(kernel, GTX480)
        assert not sel.uses_regmutex
        assert "not limited" in sel.reason


class TestTable1Agreement:
    @pytest.mark.parametrize(
        "app", [a for a, s in APPLICATIONS.items() if s.heuristic_matches]
    )
    def test_heuristic_reproduces_table1(self, app):
        spec = APPLICATIONS[app]
        kernel = build_app_kernel(spec)
        config = GTX480 if spec.group == "occupancy-limited" else GTX480_HALF_RF
        sel = select_extended_set_size(kernel, config)
        assert sel.extended_set_size == spec.expected_es
        assert sel.base_set_size == spec.expected_bs

    @pytest.mark.parametrize(
        "app", [a for a, s in APPLICATIONS.items() if not s.heuristic_matches]
    )
    def test_forced_table1_split_is_viable(self, app):
        """Even where the heuristic disagrees (unknown launch geometry),
        Table I's split must pass both deadlock rules."""
        spec = APPLICATIONS[app]
        kernel = build_app_kernel(spec)
        config = GTX480 if spec.group == "occupancy-limited" else GTX480_HALF_RF
        sel = select_extended_set_size(kernel, config, forced_es=spec.expected_es)
        assert sel.uses_regmutex
        assert sel.srp_sections >= 1
