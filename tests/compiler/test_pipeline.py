"""Tests for the end-to-end RegMutex compilation pipeline."""

import pytest

from repro.arch.config import GTX480, GTX480_HALF_RF
from repro.compiler.compaction import verify_compact
from repro.compiler.pipeline import compilation_report, regmutex_compile
from repro.isa.instructions import Opcode
from repro.workloads.suite import APPLICATIONS, build_app_kernel, get_app


class TestRegmutexCompile:
    def test_register_limited_app_instrumented(self):
        spec = get_app("BFS")
        kernel = build_app_kernel(spec)
        compiled = regmutex_compile(kernel, GTX480, forced_es=spec.expected_es)
        md = compiled.metadata
        assert md.uses_regmutex
        assert md.base_set_size == spec.expected_bs
        assert md.extended_set_size == spec.expected_es
        assert compiled.regmutex_instruction_count() > 0

    def test_report_attached(self):
        spec = get_app("BFS")
        kernel = build_app_kernel(spec)
        compiled = regmutex_compile(kernel, GTX480, forced_es=spec.expected_es)
        report = compilation_report(compiled)
        assert report is not None
        assert report.instrumented
        assert report.acquire_count >= 1
        assert report.overhead_instructions >= 2

    def test_relaxed_app_untouched_on_full_rf(self):
        """Apps without register-limited occupancy get zero-size extended
        sets and no instrumentation (paper §IV)."""
        spec = get_app("Gaussian")
        kernel = build_app_kernel(spec)
        compiled = regmutex_compile(kernel, GTX480)
        assert not compiled.metadata.uses_regmutex
        assert compiled.regmutex_instruction_count() == 0
        report = compilation_report(compiled)
        assert not report.instrumented

    def test_relaxed_app_instrumented_on_half_rf(self):
        spec = get_app("Gaussian")
        kernel = build_app_kernel(spec)
        compiled = regmutex_compile(kernel, GTX480_HALF_RF)
        assert compiled.metadata.uses_regmutex

    def test_double_compilation_rejected(self):
        spec = get_app("BFS")
        kernel = build_app_kernel(spec)
        compiled = regmutex_compile(kernel, GTX480, forced_es=spec.expected_es)
        with pytest.raises(ValueError, match="already compiled"):
            regmutex_compile(compiled, GTX480)

    def test_compaction_verified_on_all_apps(self):
        for name, spec in APPLICATIONS.items():
            kernel = build_app_kernel(spec)
            config = GTX480 if spec.group == "occupancy-limited" else GTX480_HALF_RF
            compiled = regmutex_compile(kernel, config, forced_es=spec.expected_es)
            if compiled.metadata.uses_regmutex:
                verify_compact(compiled, compiled.metadata.base_set_size)

    def test_compaction_can_be_disabled(self):
        spec = get_app("BFS")
        kernel = build_app_kernel(spec)
        with_c = regmutex_compile(kernel, GTX480, forced_es=spec.expected_es)
        without_c = regmutex_compile(
            kernel, GTX480, forced_es=spec.expected_es, enable_compaction=False
        )
        assert len(without_c) <= len(with_c)

    def test_metadata_regs_rounded(self):
        spec = get_app("BFS")  # 21 regs -> 24 rounded
        compiled = regmutex_compile(
            build_app_kernel(spec), GTX480, forced_es=spec.expected_es
        )
        assert compiled.metadata.regs_per_thread == 24

    def test_scrambled_indices_still_compile(self):
        """Compaction stress: high-index long-lived values forced by the
        scramble knob must still produce a verified-compact kernel."""
        import dataclasses
        from repro.workloads.suite import _shape
        from repro.workloads.generator import generate_kernel

        spec = get_app("BFS")
        shape = dataclasses.replace(_shape(spec), scramble_indices=True)
        kernel = generate_kernel(shape)
        compiled = regmutex_compile(kernel, GTX480, forced_es=spec.expected_es)
        if compiled.metadata.uses_regmutex:
            verify_compact(compiled, compiled.metadata.base_set_size)
