"""Tests for extended-index access coverage (region widening)."""

import pytest

from repro.compiler.regions import (
    AcquireRegion,
    cover_extended_defs,
    find_acquire_regions,
)
from repro.isa.builder import KernelBuilder


def ramp_kernel():
    """An extended-index register (R9) is *defined* early, while the live
    count is far below the threshold — the count-based region cannot see
    it, but the write physically needs a held section."""
    b = KernelBuilder(regs_per_thread=10, threads_per_cta=64)
    b.ldc(0)
    b.ldc(9)            # count 2: extended def far outside the region
    b.ldc(1)
    b.alu(1, 0, 1)
    b.alu(0, 0, 1)
    for r in range(2, 9):
        b.ldc(r)        # pressure climbs past the threshold here
    for i in range(4):
        b.alu(5 + i % 4, (i + 1) % 10, 9)
    for r in range(1, 10):
        b.alu(0, 0, r)
    b.store(0, 0)
    b.exit()
    return b.build()


class TestCoverExtendedDefs:
    def test_ramp_def_pulled_into_region(self):
        k = ramp_kernel()
        regions = find_acquire_regions(k, base_set_size=6)
        (region,) = regions
        # Every def of an index >= 6 is inside the region.
        for pc, inst in enumerate(k):
            if any(r >= 6 for r in inst.dsts):
                assert region.start <= pc < region.end, f"pc {pc} uncovered"

    def test_without_coverage_ramp_is_outside(self):
        k = ramp_kernel()
        regions = find_acquire_regions(
            k, base_set_size=6, cover_extended_accesses=False
        )
        (region,) = regions
        first_ext_def = next(
            pc for pc, i in enumerate(k) if any(r >= 6 for r in i.dsts)
        )
        assert first_ext_def < region.start  # the unsafe raw shape

    def test_trailing_def_extends_end(self):
        b = KernelBuilder(regs_per_thread=10, threads_per_cta=64)
        for r in range(10):
            b.ldc(r)
        for i in range(4):
            b.alu(6 + i % 4, (i + 1) % 10, (i + 2) % 10)
        for r in range(1, 10):
            b.alu(0, 0, r)   # pressure collapses
        b.ldc(9)             # late extended def, low count here
        b.alu(0, 0, 9)
        b.store(0, 0)
        b.exit()
        k = b.build()
        regions = find_acquire_regions(k, base_set_size=6)
        late_def = max(
            pc for pc, i in enumerate(k) if any(r >= 6 for r in i.dsts)
        )
        assert any(r.start <= late_def < r.end for r in regions)

    def test_trailing_use_left_to_compaction(self):
        """A trailing *use* must not widen the region (compaction moves
        the value instead)."""
        b = KernelBuilder(regs_per_thread=10, threads_per_cta=64)
        for r in range(10):
            b.ldc(r)
        for i in range(4):
            b.alu(6 + i % 4, (i + 1) % 10, (i + 2) % 10)
        for r in range(1, 9):
            b.alu(0, 0, r)
        b.alu(2, 2, 9)       # use of R9 after pressure collapsed
        b.store(0, 2)
        b.exit()
        k = b.build()
        regions = find_acquire_regions(k, base_set_size=6)
        use_pc = len(k) - 3
        assert all(not (r.start <= use_pc < r.end) for r in regions)

    def test_no_regions_returns_empty(self):
        b = KernelBuilder(regs_per_thread=4, threads_per_cta=64)
        b.ldc(0).ldc(1).alu(0, 1).exit()
        assert cover_extended_defs(b.build(), [], base_set_size=4) == []

    def test_idempotent(self):
        k = ramp_kernel()
        regions = find_acquire_regions(k, base_set_size=6)
        again = cover_extended_defs(k, regions, base_set_size=6)
        assert again == regions
